"""Pairwise-mask secure aggregation — and why DIG-FL needs to opt out.

A simplified Bonawitz et al. (CCS'17) scheme: every participant pair
(i, j) shares a seed; party i adds ``+PRG(s_ij)`` for each j > i and
``−PRG(s_ji)`` for each j < i to its update before upload.  The masks
cancel in the server's sum, so the server learns **only the aggregate**.

This is a deliberate boundary demonstration for the paper's Sec. II-A
privacy discussion: DIG-FL's estimators need the *individual* updates
``δ_{t,i}`` (that is precisely the training log), so under full secure
aggregation the contribution signal is destroyed — the masked per-party
uploads are indistinguishable from noise while their sum is untouched.
Deployments must choose: per-participant accountability (DIG-FL) or
aggregate-only visibility (secure aggregation), or hybrid designs outside
this paper's scope.  ``tests/test_hfl_secure.py`` verifies both sides of
the trade-off.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import derive_seed
from repro.utils.validation import check_positive_int


class SecureAggregationSession:
    """Pairwise-mask secure aggregation over flat update vectors.

    All parties are assumed online for every round (no dropout recovery —
    the full protocol's secret-sharing machinery is out of scope here).
    """

    def __init__(self, n_parties: int, dim: int, *, seed: int = 0) -> None:
        self.n_parties = check_positive_int(n_parties, "n_parties")
        self.dim = check_positive_int(dim, "dim")
        self.seed = seed

    def _pair_mask(self, i: int, j: int, round_index: int) -> np.ndarray:
        """The shared mask of the (unordered) pair {i, j} for one round."""
        lo, hi = (i, j) if i < j else (j, i)
        rng = np.random.default_rng(derive_seed(self.seed, round_index, lo, hi))
        return rng.normal(size=self.dim)

    def mask_update(
        self, participant: int, update: np.ndarray, round_index: int
    ) -> np.ndarray:
        """The masked vector participant ``i`` uploads."""
        if not 0 <= participant < self.n_parties:
            raise ValueError(f"unknown participant {participant}")
        update = np.asarray(update, dtype=np.float64)
        if update.shape != (self.dim,):
            raise ValueError(f"update shape {update.shape} != ({self.dim},)")
        masked = update.copy()
        for other in range(self.n_parties):
            if other == participant:
                continue
            mask = self._pair_mask(participant, other, round_index)
            if participant < other:
                masked += mask
            else:
                masked -= mask
        return masked

    def aggregate(self, masked_updates: np.ndarray) -> np.ndarray:
        """Server-side sum; the pairwise masks cancel exactly."""
        masked_updates = np.asarray(masked_updates, dtype=np.float64)
        if masked_updates.shape != (self.n_parties, self.dim):
            raise ValueError(
                f"expected ({self.n_parties}, {self.dim}), got {masked_updates.shape}"
            )
        return masked_updates.sum(axis=0)

    def mask_all(
        self, updates: np.ndarray, round_index: int
    ) -> np.ndarray:
        """Convenience: mask every row of an (n, dim) update matrix."""
        updates = np.asarray(updates, dtype=np.float64)
        return np.stack(
            [self.mask_update(i, updates[i], round_index) for i in range(self.n_parties)]
        )
