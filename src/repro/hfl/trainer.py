"""FedSGD / FedAvg trainer for horizontal federated learning.

Implements the protocol of Sec. III-A: in epoch ``t`` every participant
computes a local update ``δ_{t,i} = θ_{t-1} - θ_{t-1,i}`` from the current
global model and its local dataset, the server aggregates
``G_t = Σ_i ω_{t,i} δ_{t,i}`` (uniform ``1/n`` for plain FedSGD) and applies
``θ_t = θ_{t-1} - G_t``.

By default a participant takes a single full-batch gradient step
(``δ_{t,i} = α_t ∇loss(i, θ_{t-1})`` — FedSGD, the algorithm the paper
evaluates).  Passing a :class:`LocalTrainingConfig` turns this into FedAvg
(McMahan et al.): several mini-batch SGD steps per round, after which the
*accumulated* local update is shipped.  DIG-FL is agnostic to the choice —
it consumes ``δ_{t,i}`` whatever produced it.

The trainer doubles as the retraining engine for the exact-Shapley and
TMC/GT baselines via the ``participants`` coalition argument, and hosts the
DIG-FL reweight mechanism via the ``reweighter`` hook.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Protocol, Sequence

import numpy as np

from repro.autodiff.grad import grad
from repro.data.dataset import Dataset
from repro.hfl.log import EpochRecord, TrainingLog
from repro.metrics.cost import FLOAT64_BYTES, CostLedger
from repro.nn.models import Classifier
from repro.nn.optim import LRSchedule
from repro.obs.trace import NULL_TRACER, Tracer
from repro.utils.rng import derive_seed
from repro.utils.validation import check_positive_int

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (robust -> io -> log)
    from repro.robust.aggregators import Aggregator
    from repro.robust.checkpoint import CheckpointManager
    from repro.robust.screening import UpdateScreener


class Reweighter(Protocol):
    """Server-side hook choosing per-epoch aggregation weights.

    Receives the state the DIG-FL reweight mechanism needs (Sec. II-F) and
    returns one non-negative weight per active participant, summing to 1.
    """

    def weights(
        self,
        model: Classifier,
        theta_before: np.ndarray,
        local_updates: np.ndarray,
        lr: float,
        epoch: int,
    ) -> np.ndarray: ...


def resolve_coalition(
    locals_: Sequence[Dataset], participants: Sequence[int] | None
) -> list[int]:
    """Validate a coalition against the federation (default: everyone)."""
    if participants is None:
        participants = list(range(len(locals_)))
    else:
        participants = list(participants)
    if not participants:
        raise ValueError("coalition must contain at least one participant")
    bad = [i for i in participants if not 0 <= i < len(locals_)]
    if bad:
        raise ValueError(f"unknown participant indices {bad}")
    return participants


def masked_weights(mask: np.ndarray, base_weights: np.ndarray) -> np.ndarray:
    """Zero absent/quarantined parties and renormalise the survivors.

    An all-zero surviving mass returns zero weights (the round applies no
    update) — shared by the synchronous trainers and the runtime engine so
    partial rounds aggregate identically everywhere.
    """
    weights = np.where(mask, base_weights, 0.0)
    total = weights.sum()
    if total > 0.0:
        weights = weights / total
    return weights


def flat_gradient(model: Classifier, X: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Gradient of the model's loss on (X, y), flattened to one vector."""
    loss = model.loss(X, y)
    grads = grad(loss, model.parameters(), allow_unused=True)
    return np.concatenate([g.data.ravel() for g in grads])


def validation_gradient(
    model: Classifier, theta: np.ndarray, validation: Dataset
) -> np.ndarray:
    """``∇loss^v(θ)`` evaluated by temporarily loading ``θ`` into the model."""
    saved = model.get_flat()
    model.set_flat(theta)
    try:
        return flat_gradient(model, validation.X, validation.y)
    finally:
        model.set_flat(saved)


@dataclass(frozen=True)
class LocalTrainingConfig:
    """FedAvg-style local training: several mini-batch steps per round.

    ``local_steps=1`` with ``batch_size=None`` reproduces FedSGD exactly.
    Mini-batch sampling is seeded per (epoch, participant), so runs are
    reproducible and coalitions see identical local draws.
    """

    local_steps: int = 1
    batch_size: int | None = None
    momentum: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        check_positive_int(self.local_steps, "local_steps")
        if self.batch_size is not None:
            check_positive_int(self.batch_size, "batch_size")
        if not 0.0 <= self.momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {self.momentum}")


@dataclass
class HFLResult:
    """Outcome of one federated training run."""

    model: Classifier
    log: TrainingLog

    @property
    def final_theta(self) -> np.ndarray:
        return self.model.get_flat()


class HFLTrainer:
    """FedSGD (default) or FedAvg over a fixed federation of local datasets."""

    def __init__(
        self,
        model_factory: Callable[[], Classifier],
        epochs: int,
        lr_schedule: LRSchedule,
        local_config: LocalTrainingConfig | None = None,
    ) -> None:
        self.model_factory = model_factory
        self.epochs = check_positive_int(epochs, "epochs")
        self.lr_schedule = lr_schedule
        self.local_config = local_config

    def local_update(
        self,
        model: Classifier,
        theta_before: np.ndarray,
        data: Dataset,
        lr: float,
        epoch: int,
        participant: int,
    ) -> np.ndarray:
        """One participant's update ``δ = θ_{t-1} − θ_{t-1,i}`` for this round.

        Pure in its inputs: the result depends only on ``theta_before`` (the
        model must already hold it), the local data and the (epoch,
        participant)-seeded mini-batch draw — which is what lets
        :mod:`repro.runtime` evaluate participants on worker-local model
        replicas and still match this trainer bit for bit.
        """
        config = self.local_config
        if config is None or (config.local_steps == 1 and config.batch_size is None):
            # FedSGD fast path: one full-batch gradient step.
            return lr * flat_gradient(model, data.X, data.y)
        rng = np.random.default_rng(
            derive_seed(config.seed, epoch, participant)
        )
        theta = theta_before.copy()
        velocity = np.zeros_like(theta)
        for _ in range(config.local_steps):
            if config.batch_size is not None and config.batch_size < len(data):
                idx = rng.choice(len(data), size=config.batch_size, replace=False)
                X, y = data.X[idx], data.y[idx]
            else:
                X, y = data.X, data.y
            model.set_flat(theta)
            g = flat_gradient(model, X, y)
            if config.momentum:
                velocity = config.momentum * velocity + g
                g = velocity
            theta = theta - lr * g
        model.set_flat(theta_before)  # restore the global model
        return theta_before - theta

    def train(
        self,
        locals_: Sequence[Dataset],
        validation: Dataset | None = None,
        *,
        participants: Sequence[int] | None = None,
        reweighter: Reweighter | None = None,
        init_theta: np.ndarray | None = None,
        ledger: CostLedger | None = None,
        track_validation: bool = False,
        weight_by_samples: bool = False,
        aggregator: "Aggregator | None" = None,
        screener: "UpdateScreener | None" = None,
        checkpoint: "CheckpointManager | None" = None,
        resume: bool = False,
        tracer: Tracer | None = None,
    ) -> HFLResult:
        """Run FedSGD and return the final model plus the training log.

        Parameters
        ----------
        locals_:
            Local datasets, one per participant in the full federation.
        validation:
            Server-held validation set; required when ``track_validation``
            or a reweighter needs it.
        participants:
            Coalition to train with (defaults to everyone).  Used by the
            leave-one-out / exact Shapley baselines.
        reweighter:
            Optional DIG-FL reweight mechanism; defaults to uniform 1/n.
        init_theta:
            Starting global model; defaults to the factory's fresh
            initialisation.  Passing the same vector across runs makes
            coalition utilities comparable (same ``θ_0`` in Eq. 2).
        ledger:
            Optional cost ledger; model up/downloads are recorded on it.
        track_validation:
            Record validation loss/accuracy per epoch (used for Fig. 7
            convergence curves).
        weight_by_samples:
            Aggregate with FedAvg's data-size weights ``|D_i| / Σ|D_j|``
            instead of the paper's uniform ``1/n``.  Ignored when a
            reweighter is supplied (it owns the weights).  The weights are
            recorded in the log, and the DIG-FL estimators read them from
            there, so contribution accounting stays consistent.
        aggregator:
            Server-side aggregation rule from :mod:`repro.robust` (default
            and ``WeightedMean``: the seed ``weights @ updates``, bit for
            bit).  Non-linear rules store their applied ``G_t`` on the
            :class:`~repro.hfl.log.EpochRecord`.
        screener:
            Pre-aggregation :class:`~repro.robust.screening.UpdateScreener`;
            quarantined updates are zeroed, weight-renormalised away and
            marked absent in the round's participation mask (so DIG-FL
            attributes them zero for that round), with each incident on
            the screener's quarantine ledger.
        checkpoint:
            :class:`~repro.robust.checkpoint.CheckpointManager`; when set,
            the training log is atomically persisted after every round.
        resume:
            Continue from ``checkpoint``'s last complete round instead of
            round 1 (fresh start when no checkpoint file exists yet).
            Deterministic local updates make the resumed run bit-for-bit
            identical to an uninterrupted one.
        tracer:
            Optional :class:`repro.obs.trace.Tracer`; one
            ``trainer.epoch`` span is emitted per round.  The default is
            the shared no-op tracer, which costs one predicate per epoch.
        """
        participants = resolve_coalition(locals_, participants)
        if (track_validation or reweighter is not None) and validation is None:
            raise ValueError("validation dataset required for tracking / reweighting")
        if resume and checkpoint is None:
            raise ValueError("resume=True requires a checkpoint manager")

        model = self.model_factory()
        if init_theta is not None:
            model.set_flat(init_theta)
        p = model.num_parameters()
        k = len(participants)
        log = TrainingLog(participant_ids=participants)
        start_epoch = 1
        if resume:
            prior = checkpoint.resume()
            if prior is not None:
                if list(prior.participant_ids) != list(participants):
                    raise ValueError(
                        f"checkpoint trained participants {prior.participant_ids}, "
                        f"cannot resume with {participants}"
                    )
                log = prior
                model.set_flat(log.final_theta)
                start_epoch = log.n_epochs + 1
                if screener is not None:
                    screener.warm_start(log)

        tracer = tracer if tracer is not None else NULL_TRACER
        for epoch in range(start_epoch, self.epochs + 1):
            # Manual begin/end keeps the loop body untouched; a NULL_SPAN
            # costs nothing when no tracer was passed.
            epoch_span = tracer.span("trainer.epoch", epoch=epoch, kind="hfl")
            lr = self.lr_schedule.lr_at(epoch)
            theta_before = model.get_flat()

            local_updates = np.empty((k, p), dtype=np.float64)
            for row, i in enumerate(participants):
                local_updates[row] = self.local_update(
                    model, theta_before, locals_[i], lr, epoch, i
                )
            if ledger is not None:
                # Each participant downloads θ and uploads its local model.
                ledger.record_bytes("server->participant", k * p * FLOAT64_BYTES)
                ledger.record_bytes("participant->server", k * p * FLOAT64_BYTES)

            mask = None
            if screener is not None:
                mask = screener.screen(epoch, participants, local_updates)
                if not mask.all():
                    local_updates[~mask] = 0.0

            if reweighter is not None:
                weights = np.asarray(
                    reweighter.weights(model, theta_before, local_updates, lr, epoch),
                    dtype=np.float64,
                )
                if weights.shape != (k,):
                    raise ValueError(
                        f"reweighter returned shape {weights.shape}, expected ({k},)"
                    )
                if mask is not None and not mask.all():
                    weights = masked_weights(mask, weights)
            elif weight_by_samples:
                sizes = np.array([len(locals_[i]) for i in participants], dtype=float)
                if mask is not None and not mask.all():
                    weights = masked_weights(mask, sizes)
                else:
                    weights = sizes / sizes.sum()
            elif mask is not None and not mask.all():
                # Same float expression as the runtime engine's fault path,
                # so screened sync and engine logs stay bit-for-bit equal.
                arrived = int(mask.sum())
                weights = mask / arrived if arrived else np.zeros(k, dtype=np.float64)
            else:
                weights = np.full(k, 1.0 / k)

            applied = None
            if aggregator is None:
                global_update = weights @ local_updates
            else:
                arrived = mask if mask is not None else np.ones(k, dtype=bool)
                global_update = aggregator.aggregate(local_updates, weights, arrived)
                if not aggregator.linear:
                    applied = global_update
            model.set_flat(theta_before - global_update)

            val_loss = val_acc = float("nan")
            if track_validation:
                val_loss = model.loss(validation.X, validation.y).item()
                val_acc = model.accuracy(validation.X, validation.y)

            log.records.append(
                EpochRecord(
                    epoch=epoch,
                    lr=lr,
                    theta_before=theta_before,
                    local_updates=local_updates,
                    weights=weights,
                    val_loss=val_loss,
                    val_accuracy=val_acc,
                    participation=None if mask is None or mask.all() else mask,
                    applied_update=applied,
                )
            )
            if checkpoint is not None:
                checkpoint.save(log)
            epoch_span.end()
        return HFLResult(model=model, log=log)
