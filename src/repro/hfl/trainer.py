"""FedSGD / FedAvg trainer for horizontal federated learning.

Implements the protocol of Sec. III-A: in epoch ``t`` every participant
computes a local update ``δ_{t,i} = θ_{t-1} - θ_{t-1,i}`` from the current
global model and its local dataset, the server aggregates
``G_t = Σ_i ω_{t,i} δ_{t,i}`` (uniform ``1/n`` for plain FedSGD) and applies
``θ_t = θ_{t-1} - G_t``.

By default a participant takes a single full-batch gradient step
(``δ_{t,i} = α_t ∇loss(i, θ_{t-1})`` — FedSGD, the algorithm the paper
evaluates).  Passing a :class:`LocalTrainingConfig` turns this into FedAvg
(McMahan et al.): several mini-batch SGD steps per round, after which the
*accumulated* local update is shipped.  DIG-FL is agnostic to the choice —
it consumes ``δ_{t,i}`` whatever produced it.

The trainer doubles as the retraining engine for the exact-Shapley and
TMC/GT baselines via the ``participants`` coalition argument, and hosts the
DIG-FL reweight mechanism via the ``reweighter`` hook.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol, Sequence

import numpy as np

from repro.autodiff.grad import grad
from repro.data.dataset import Dataset
from repro.hfl.log import EpochRecord, TrainingLog
from repro.metrics.cost import FLOAT64_BYTES, CostLedger
from repro.nn.models import Classifier
from repro.nn.optim import LRSchedule
from repro.utils.rng import derive_seed
from repro.utils.validation import check_positive_int


class Reweighter(Protocol):
    """Server-side hook choosing per-epoch aggregation weights.

    Receives the state the DIG-FL reweight mechanism needs (Sec. II-F) and
    returns one non-negative weight per active participant, summing to 1.
    """

    def weights(
        self,
        model: Classifier,
        theta_before: np.ndarray,
        local_updates: np.ndarray,
        lr: float,
        epoch: int,
    ) -> np.ndarray: ...


def resolve_coalition(
    locals_: Sequence[Dataset], participants: Sequence[int] | None
) -> list[int]:
    """Validate a coalition against the federation (default: everyone)."""
    if participants is None:
        participants = list(range(len(locals_)))
    else:
        participants = list(participants)
    if not participants:
        raise ValueError("coalition must contain at least one participant")
    bad = [i for i in participants if not 0 <= i < len(locals_)]
    if bad:
        raise ValueError(f"unknown participant indices {bad}")
    return participants


def flat_gradient(model: Classifier, X: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Gradient of the model's loss on (X, y), flattened to one vector."""
    loss = model.loss(X, y)
    grads = grad(loss, model.parameters(), allow_unused=True)
    return np.concatenate([g.data.ravel() for g in grads])


def validation_gradient(
    model: Classifier, theta: np.ndarray, validation: Dataset
) -> np.ndarray:
    """``∇loss^v(θ)`` evaluated by temporarily loading ``θ`` into the model."""
    saved = model.get_flat()
    model.set_flat(theta)
    try:
        return flat_gradient(model, validation.X, validation.y)
    finally:
        model.set_flat(saved)


@dataclass(frozen=True)
class LocalTrainingConfig:
    """FedAvg-style local training: several mini-batch steps per round.

    ``local_steps=1`` with ``batch_size=None`` reproduces FedSGD exactly.
    Mini-batch sampling is seeded per (epoch, participant), so runs are
    reproducible and coalitions see identical local draws.
    """

    local_steps: int = 1
    batch_size: int | None = None
    momentum: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        check_positive_int(self.local_steps, "local_steps")
        if self.batch_size is not None:
            check_positive_int(self.batch_size, "batch_size")
        if not 0.0 <= self.momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {self.momentum}")


@dataclass
class HFLResult:
    """Outcome of one federated training run."""

    model: Classifier
    log: TrainingLog

    @property
    def final_theta(self) -> np.ndarray:
        return self.model.get_flat()


class HFLTrainer:
    """FedSGD (default) or FedAvg over a fixed federation of local datasets."""

    def __init__(
        self,
        model_factory: Callable[[], Classifier],
        epochs: int,
        lr_schedule: LRSchedule,
        local_config: LocalTrainingConfig | None = None,
    ) -> None:
        self.model_factory = model_factory
        self.epochs = check_positive_int(epochs, "epochs")
        self.lr_schedule = lr_schedule
        self.local_config = local_config

    def local_update(
        self,
        model: Classifier,
        theta_before: np.ndarray,
        data: Dataset,
        lr: float,
        epoch: int,
        participant: int,
    ) -> np.ndarray:
        """One participant's update ``δ = θ_{t-1} − θ_{t-1,i}`` for this round.

        Pure in its inputs: the result depends only on ``theta_before`` (the
        model must already hold it), the local data and the (epoch,
        participant)-seeded mini-batch draw — which is what lets
        :mod:`repro.runtime` evaluate participants on worker-local model
        replicas and still match this trainer bit for bit.
        """
        config = self.local_config
        if config is None or (config.local_steps == 1 and config.batch_size is None):
            # FedSGD fast path: one full-batch gradient step.
            return lr * flat_gradient(model, data.X, data.y)
        rng = np.random.default_rng(
            derive_seed(config.seed, epoch, participant)
        )
        theta = theta_before.copy()
        velocity = np.zeros_like(theta)
        for _ in range(config.local_steps):
            if config.batch_size is not None and config.batch_size < len(data):
                idx = rng.choice(len(data), size=config.batch_size, replace=False)
                X, y = data.X[idx], data.y[idx]
            else:
                X, y = data.X, data.y
            model.set_flat(theta)
            g = flat_gradient(model, X, y)
            if config.momentum:
                velocity = config.momentum * velocity + g
                g = velocity
            theta = theta - lr * g
        model.set_flat(theta_before)  # restore the global model
        return theta_before - theta

    def train(
        self,
        locals_: Sequence[Dataset],
        validation: Dataset | None = None,
        *,
        participants: Sequence[int] | None = None,
        reweighter: Reweighter | None = None,
        init_theta: np.ndarray | None = None,
        ledger: CostLedger | None = None,
        track_validation: bool = False,
        weight_by_samples: bool = False,
    ) -> HFLResult:
        """Run FedSGD and return the final model plus the training log.

        Parameters
        ----------
        locals_:
            Local datasets, one per participant in the full federation.
        validation:
            Server-held validation set; required when ``track_validation``
            or a reweighter needs it.
        participants:
            Coalition to train with (defaults to everyone).  Used by the
            leave-one-out / exact Shapley baselines.
        reweighter:
            Optional DIG-FL reweight mechanism; defaults to uniform 1/n.
        init_theta:
            Starting global model; defaults to the factory's fresh
            initialisation.  Passing the same vector across runs makes
            coalition utilities comparable (same ``θ_0`` in Eq. 2).
        ledger:
            Optional cost ledger; model up/downloads are recorded on it.
        track_validation:
            Record validation loss/accuracy per epoch (used for Fig. 7
            convergence curves).
        weight_by_samples:
            Aggregate with FedAvg's data-size weights ``|D_i| / Σ|D_j|``
            instead of the paper's uniform ``1/n``.  Ignored when a
            reweighter is supplied (it owns the weights).  The weights are
            recorded in the log, and the DIG-FL estimators read them from
            there, so contribution accounting stays consistent.
        """
        participants = resolve_coalition(locals_, participants)
        if (track_validation or reweighter is not None) and validation is None:
            raise ValueError("validation dataset required for tracking / reweighting")

        model = self.model_factory()
        if init_theta is not None:
            model.set_flat(init_theta)
        p = model.num_parameters()
        k = len(participants)
        log = TrainingLog(participant_ids=participants)

        for epoch in range(1, self.epochs + 1):
            lr = self.lr_schedule.lr_at(epoch)
            theta_before = model.get_flat()

            local_updates = np.empty((k, p), dtype=np.float64)
            for row, i in enumerate(participants):
                local_updates[row] = self.local_update(
                    model, theta_before, locals_[i], lr, epoch, i
                )
            if ledger is not None:
                # Each participant downloads θ and uploads its local model.
                ledger.record_bytes("server->participant", k * p * FLOAT64_BYTES)
                ledger.record_bytes("participant->server", k * p * FLOAT64_BYTES)

            if reweighter is not None:
                weights = np.asarray(
                    reweighter.weights(model, theta_before, local_updates, lr, epoch),
                    dtype=np.float64,
                )
                if weights.shape != (k,):
                    raise ValueError(
                        f"reweighter returned shape {weights.shape}, expected ({k},)"
                    )
            elif weight_by_samples:
                sizes = np.array([len(locals_[i]) for i in participants], dtype=float)
                weights = sizes / sizes.sum()
            else:
                weights = np.full(k, 1.0 / k)

            global_update = weights @ local_updates
            model.set_flat(theta_before - global_update)

            val_loss = val_acc = float("nan")
            if track_validation:
                val_loss = model.loss(validation.X, validation.y).item()
                val_acc = model.accuracy(validation.X, validation.y)

            log.records.append(
                EpochRecord(
                    epoch=epoch,
                    lr=lr,
                    theta_before=theta_before,
                    local_updates=local_updates,
                    weights=weights,
                    val_loss=val_loss,
                    val_accuracy=val_acc,
                )
            )
        return HFLResult(model=model, log=log)
