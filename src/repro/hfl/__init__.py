"""Horizontal federated learning simulator (FedSGD/FedAvg + training logs)."""

from repro.hfl.attacks import (
    AdversarialHFLTrainer,
    gaussian_noise,
    noise_echo,
    random_update,
    scale,
    sign_flip,
    stale_update,
    zero_update,
)
from repro.hfl.compression import quantize, random_sparsify, topk_sparsify
from repro.hfl.log import EpochRecord, TrainingLog
from repro.hfl.secure import SecureAggregationSession
from repro.hfl.trainer import (
    HFLResult,
    HFLTrainer,
    LocalTrainingConfig,
    Reweighter,
    flat_gradient,
    validation_gradient,
)

__all__ = [
    "AdversarialHFLTrainer",
    "EpochRecord",
    "HFLResult",
    "HFLTrainer",
    "LocalTrainingConfig",
    "Reweighter",
    "SecureAggregationSession",
    "TrainingLog",
    "flat_gradient",
    "gaussian_noise",
    "noise_echo",
    "quantize",
    "random_sparsify",
    "random_update",
    "scale",
    "sign_flip",
    "stale_update",
    "topk_sparsify",
    "validation_gradient",
    "zero_update",
]
