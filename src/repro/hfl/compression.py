"""Update compression for communication-constrained participants.

Real federations often sparsify or quantise updates before upload.  DIG-FL
reads whatever the server received, so compression directly perturbs the
contribution signal; these transforms (same shape as the adversarial ones
in :mod:`repro.hfl.attacks` — ``(update, epoch) → update``) let the
experiments quantify how much accuracy the estimator keeps.

* :func:`topk_sparsify` — keep only the k largest-magnitude coordinates,
* :func:`random_sparsify` — keep a random fraction, rescaled to be unbiased,
* :func:`quantize` — uniform scalar quantisation to a given bit width.
"""

from __future__ import annotations

import numpy as np

from repro.hfl.attacks import UpdateTransform
from repro.utils.rng import derive_seed
from repro.utils.validation import check_fraction, check_positive_int


def topk_sparsify(fraction: float) -> UpdateTransform:
    """Keep the top-``fraction`` coordinates by magnitude, zero the rest."""
    check_fraction(fraction, "fraction", inclusive=False)

    def transform(update: np.ndarray, epoch: int) -> np.ndarray:
        del epoch
        k = max(1, int(round(fraction * update.size)))
        out = np.zeros_like(update)
        idx = np.argpartition(np.abs(update), -k)[-k:]
        out[idx] = update[idx]
        return out

    return transform


def random_sparsify(fraction: float, *, seed: int = 0) -> UpdateTransform:
    """Keep a random ``fraction`` of coordinates, scaled by 1/fraction.

    The scaling makes the compressed update an unbiased estimator of the
    original, the property convergence analyses of sparsified SGD rely on.
    """
    check_fraction(fraction, "fraction", inclusive=False)

    def transform(update: np.ndarray, epoch: int) -> np.ndarray:
        rng = np.random.default_rng(derive_seed(seed, epoch))
        keep = rng.random(update.shape) < fraction
        return np.where(keep, update / fraction, 0.0)

    return transform


def quantize(bits: int) -> UpdateTransform:
    """Uniform scalar quantisation to ``2^bits`` levels over [-max, max]."""
    check_positive_int(bits, "bits")
    levels = 2**bits - 1

    def transform(update: np.ndarray, epoch: int) -> np.ndarray:
        del epoch
        scale = np.max(np.abs(update))
        if scale < 1e-300:
            return update.copy()
        normalized = (update / scale + 1.0) / 2.0  # -> [0, 1]
        quantized = np.round(normalized * levels) / levels
        return (quantized * 2.0 - 1.0) * scale

    return transform
