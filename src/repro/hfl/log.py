"""Training-log records — the only input DIG-FL needs besides validation data.

Sec. II-B: "we propose to use only the training log (local gradients from all
participants) to estimate the marginal contribution".  The HFL trainer
records, per epoch, the global model it started from, every participant's
local update ``δ_{t,i}``, the learning rate ``α_t`` and the aggregation
weights actually applied.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class EpochRecord:
    """Everything the server observed in one FedSGD epoch.

    ``local_updates`` has one row per *active* participant, aligned with the
    log's ``participant_ids``.

    ``participation`` is the per-round arrival mask written by
    :mod:`repro.runtime` under faults / deadlines, and by the screening
    pass of :mod:`repro.robust` under quarantine: ``participation[row]``
    is False when that participant's update missed the round or was
    quarantined (its ``local_updates`` row is zero and its weight was
    renormalised away).  ``None`` — the synchronous trainers' value —
    means everyone arrived.

    ``applied_update`` is the global update the server *actually applied*
    when a non-linear robust aggregator (coordinate-wise median, trimmed
    mean, Krum, …) produced something other than ``weights @
    local_updates``.  ``None`` — the common case — means the linear rule.
    """

    epoch: int  # 1-indexed, as in the paper
    lr: float
    theta_before: np.ndarray  # global model θ_{t-1}, flat
    local_updates: np.ndarray  # (k, p): δ_{t,i} = α_t ∇loss(i, θ_{t-1})
    weights: np.ndarray  # aggregation weights (k,), uniform = 1/k
    val_loss: float = float("nan")
    val_accuracy: float = float("nan")
    participation: np.ndarray | None = None  # (k,) bool; None = all arrived
    applied_update: np.ndarray | None = None  # robust G_t; None = weights @ updates

    def participation_mask(self) -> np.ndarray:
        """The arrival mask, materialised (all-True when ``None``)."""
        if self.participation is None:
            return np.ones(len(self.weights), dtype=bool)
        return np.asarray(self.participation, dtype=bool)

    @property
    def n_arrived(self) -> int:
        """Participants whose update made it into this round's aggregate."""
        return int(self.participation_mask().sum())

    @property
    def global_update(self) -> np.ndarray:
        """The aggregated update ``G_t`` that was applied this epoch."""
        if self.applied_update is not None:
            return self.applied_update
        return self.weights @ self.local_updates

    @property
    def theta_after(self) -> np.ndarray:
        return self.theta_before - self.global_update


@dataclass
class TrainingLog:
    """Full FedSGD history for one (coalition of) participants."""

    participant_ids: list[int]
    records: list[EpochRecord] = field(default_factory=list)

    @property
    def n_participants(self) -> int:
        return len(self.participant_ids)

    @property
    def n_epochs(self) -> int:
        return len(self.records)

    @property
    def initial_theta(self) -> np.ndarray:
        if not self.records:
            raise ValueError("log has no records")
        return self.records[0].theta_before

    @property
    def final_theta(self) -> np.ndarray:
        if not self.records:
            raise ValueError("log has no records")
        return self.records[-1].theta_after

    def val_loss_curve(self) -> np.ndarray:
        return np.array([r.val_loss for r in self.records])

    def val_accuracy_curve(self) -> np.ndarray:
        return np.array([r.val_accuracy for r in self.records])

    def participation_matrix(self) -> np.ndarray:
        """(τ, k) boolean matrix of who arrived each round (Sec. per-epoch).

        Synchronous logs are all-True; runtime logs under faults show the
        holes the estimators must zero out.
        """
        return np.stack([r.participation_mask() for r in self.records])

    def rounds_attended(self, participant_id: int) -> int:
        """How many rounds this participant's update actually arrived in."""
        try:
            row = self.participant_ids.index(participant_id)
        except ValueError:
            raise KeyError(
                f"participant {participant_id} not in log ({self.participant_ids})"
            ) from None
        return int(sum(r.participation_mask()[row] for r in self.records))

    def updates_of(self, participant_id: int) -> np.ndarray:
        """All epochs' local updates of one participant, shape (τ, p)."""
        try:
            row = self.participant_ids.index(participant_id)
        except ValueError:
            raise KeyError(
                f"participant {participant_id} not in log ({self.participant_ids})"
            ) from None
        return np.stack([r.local_updates[row] for r in self.records])
