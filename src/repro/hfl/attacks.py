"""Adversarial update transforms for HFL robustness experiments.

Sec. I motivates contribution measurement partly as a defence: it can
"localize low-quality participants and thus reduce their impact to …
avoid adversarial sample attacks".  Label corruption (``repro.data``)
covers *data-level* adversaries; this module covers *update-level* ones —
participants that run the protocol but ship manipulated updates:

* :func:`sign_flip` — gradient ascent: pushes the global model uphill,
* :func:`scale` — boosting/attenuation (model-replacement style when large),
* :func:`gaussian_noise` — jamming with seeded noise,
* :func:`zero_update` — the free-rider, contributing nothing,
* :func:`random_update` — uploads noise unrelated to its data.

The :class:`AdversarialHFLTrainer` applies a per-participant transform to
the honest update before it reaches the server; everything else (logging,
aggregation, DIG-FL) is inherited unchanged, so the estimators can be
evaluated against these adversaries directly.
"""

from __future__ import annotations

from typing import Callable, Mapping

import numpy as np

from repro.data.dataset import Dataset
from repro.hfl.trainer import HFLTrainer
from repro.nn.models import Classifier
from repro.utils.rng import derive_seed

# An attack maps (honest_update, epoch) -> shipped_update.
UpdateTransform = Callable[[np.ndarray, int], np.ndarray]


def sign_flip(strength: float = 1.0) -> UpdateTransform:
    """Ship ``−strength · δ`` — straight gradient ascent on the global loss."""
    if strength <= 0:
        raise ValueError(f"strength must be positive, got {strength}")

    def transform(update: np.ndarray, epoch: int) -> np.ndarray:
        del epoch
        return -strength * update

    return transform


def scale(factor: float) -> UpdateTransform:
    """Ship ``factor · δ`` (boosting for factor > 1, soft free-riding < 1)."""

    def transform(update: np.ndarray, epoch: int) -> np.ndarray:
        del epoch
        return factor * update

    return transform


def gaussian_noise(sigma: float, *, seed: int = 0) -> UpdateTransform:
    """Add seeded N(0, σ²) noise to the honest update."""
    if sigma < 0:
        raise ValueError(f"sigma must be non-negative, got {sigma}")

    def transform(update: np.ndarray, epoch: int) -> np.ndarray:
        rng = np.random.default_rng(derive_seed(seed, epoch))
        return update + sigma * rng.normal(size=update.shape)

    return transform


def zero_update() -> UpdateTransform:
    """The free-rider: always ships a zero vector."""

    def transform(update: np.ndarray, epoch: int) -> np.ndarray:
        del epoch
        return np.zeros_like(update)

    return transform


def random_update(sigma: float = 1.0, *, seed: int = 0) -> UpdateTransform:
    """Ship pure noise of the honest update's shape (no local training)."""
    if sigma <= 0:
        raise ValueError(f"sigma must be positive, got {sigma}")

    def transform(update: np.ndarray, epoch: int) -> np.ndarray:
        rng = np.random.default_rng(derive_seed(seed, epoch))
        return sigma * rng.normal(size=update.shape)

    return transform


def stale_update() -> UpdateTransform:
    """The lazy free-rider: always re-ships the *previous* round's update.

    The first round is honest (there is nothing to replay yet); from then
    on the party trains but uploads last round's result — plausible-looking
    traffic carrying one-round-stale information.
    """
    last: dict[str, np.ndarray] = {}

    def transform(update: np.ndarray, epoch: int) -> np.ndarray:
        shipped = last.get("update", update)
        last["update"] = update
        return shipped

    return transform


def noise_echo(sigma: float = 0.05, *, seed: int = 0) -> UpdateTransform:
    """The camouflaged free-rider: echoes its own past upload plus noise.

    Round 0 ships pure seeded noise; afterwards the party re-ships its own
    previous upload perturbed by fresh N(0, σ²) noise — the "delta-weights
    attack" shape: statistically plausible updates that never encode any
    local training.
    """
    if sigma < 0:
        raise ValueError(f"sigma must be non-negative, got {sigma}")
    last: dict[str, np.ndarray] = {}

    def transform(update: np.ndarray, epoch: int) -> np.ndarray:
        rng = np.random.default_rng(derive_seed(seed, epoch))
        noise = sigma * rng.normal(size=update.shape)
        shipped = last.get("shipped")
        shipped = noise if shipped is None else shipped + noise
        last["shipped"] = shipped
        return shipped

    return transform


class AdversarialHFLTrainer(HFLTrainer):
    """HFLTrainer where selected participants manipulate their updates.

    ``attacks`` maps participant index → transform.  Honest participants
    are untouched; the server (and hence the training log DIG-FL reads)
    sees only the manipulated updates — exactly the threat model in which
    contribution scores must expose the attackers.
    """

    def __init__(
        self,
        *args,
        attacks: Mapping[int, UpdateTransform] | None = None,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        self.attacks = dict(attacks or {})

    def local_update(
        self,
        model: Classifier,
        theta_before: np.ndarray,
        data: Dataset,
        lr: float,
        epoch: int,
        participant: int,
    ) -> np.ndarray:
        update = super().local_update(
            model, theta_before, data, lr, epoch, participant
        )
        attack = self.attacks.get(participant)
        if attack is not None:
            update = attack(update, epoch)
            if update.shape != theta_before.shape:
                raise ValueError(
                    f"attack for participant {participant} changed the update "
                    f"shape to {update.shape}"
                )
        return update
