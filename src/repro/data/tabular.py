"""Synthetic stand-ins for the paper's ten VFL tabular datasets.

Table I lists five regression sets (Boston, Diabetes, Wine quality, Seoul
bike sharing, California housing) used with vertical linear regression and
five classification sets (Iris, Wine, Breast cancer, Credit-card default,
Adult) used with vertical logistic regression.  What the VFL experiments
exercise is the *vertical* structure: features are split across parties whose
informativeness differs, and DIG-FL must rank the parties by contribution.

Each generator below preserves the paper dataset's shape (rows × columns)
and task, and produces features with heterogeneous signal strength:

* the ground-truth coefficient for feature ``j`` decays geometrically, so
  some features (and hence some parties) carry much more signal,
* features are mildly correlated through a random low-rank mixing matrix,
  as in real tabular data,
* targets carry additive Gaussian noise (regression) or logistic sampling
  noise (classification).
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset
from repro.utils.rng import make_rng
from repro.utils.validation import check_positive_int


def _correlated_features(
    rng: np.random.Generator, n_samples: int, n_features: int, mixing: float = 0.3
) -> np.ndarray:
    """Standard-normal features with mild cross-correlation."""
    latent = rng.normal(size=(n_samples, n_features))
    mix = np.eye(n_features) + mixing * rng.normal(size=(n_features, n_features)) / np.sqrt(
        n_features
    )
    X = latent @ mix
    X -= X.mean(axis=0)
    X /= X.std(axis=0) + 1e-12
    return X


def _signal_coefficients(
    rng: np.random.Generator, n_features: int, decay: float
) -> np.ndarray:
    """Ground-truth weights with geometrically decaying magnitude.

    A random permutation decides *which* features are the strong ones, so
    vertical splits assign parties genuinely different contributions.
    """
    magnitudes = decay ** np.arange(n_features)
    signs = rng.choice([-1.0, 1.0], size=n_features)
    coef = magnitudes * signs
    return coef[rng.permutation(n_features)]


def make_tabular_regression(
    name: str,
    n_samples: int,
    n_features: int,
    *,
    noise: float = 0.3,
    decay: float = 0.75,
    seed=None,
) -> Dataset:
    """Linear-ground-truth regression dataset with heterogeneous features."""
    check_positive_int(n_samples, "n_samples")
    check_positive_int(n_features, "n_features")
    rng = make_rng(seed)
    X = _correlated_features(rng, n_samples, n_features)
    coef = _signal_coefficients(rng, n_features, decay)
    y = X @ coef + noise * rng.normal(size=n_samples)
    return Dataset(name=name, X=X, y=y.astype(np.float64), task="regression")


def make_tabular_classification(
    name: str,
    n_samples: int,
    n_features: int,
    *,
    temperature: float = 1.0,
    decay: float = 0.75,
    seed=None,
) -> Dataset:
    """Binary dataset with a logistic ground truth.

    ``temperature`` scales the logits before sampling labels: smaller means
    cleaner labels.
    """
    check_positive_int(n_samples, "n_samples")
    check_positive_int(n_features, "n_features")
    rng = make_rng(seed)
    X = _correlated_features(rng, n_samples, n_features)
    coef = _signal_coefficients(rng, n_features, decay)
    logits = (X @ coef) / max(temperature, 1e-9)
    probs = 1.0 / (1.0 + np.exp(-np.clip(logits, -500, 500)))
    y = (rng.random(n_samples) < probs).astype(np.int64)
    return Dataset(name=name, X=X, y=y, task="binary", num_classes=2)


def make_tabular_multiclass(
    name: str,
    n_samples: int,
    n_features: int,
    n_classes: int,
    *,
    temperature: float = 1.0,
    decay: float = 0.75,
    seed=None,
) -> Dataset:
    """Multiclass dataset with a softmax ground truth.

    Extends the paper's binary VFL datasets to multiclass for the
    :class:`~repro.models.SoftmaxRegressionModel` vertical extension; the
    per-feature signal decay keeps parties heterogeneous.
    """
    check_positive_int(n_samples, "n_samples")
    check_positive_int(n_features, "n_features")
    check_positive_int(n_classes, "n_classes")
    if n_classes < 2:
        raise ValueError(f"n_classes must be >= 2, got {n_classes}")
    rng = make_rng(seed)
    X = _correlated_features(rng, n_samples, n_features)
    # One decaying coefficient column per class, independently permuted.
    W = np.stack(
        [_signal_coefficients(rng, n_features, decay) for _ in range(n_classes)],
        axis=1,
    )
    logits = (X @ W) / max(temperature, 1e-9)
    logits -= logits.max(axis=1, keepdims=True)
    probs = np.exp(logits)
    probs /= probs.sum(axis=1, keepdims=True)
    y = np.array([rng.choice(n_classes, p=p) for p in probs], dtype=np.int64)
    return Dataset(name=name, X=X, y=y, task="multiclass", num_classes=n_classes)


# --- paper datasets (shape-preserving), keyed as in Table I ----------------
# Sizes follow Table I: "rows*cols" where cols includes the target column,
# so the feature count is cols-1.


def boston_like(*, seed=None) -> Dataset:
    """Boston house prices: 506 rows, 13 features, regression."""
    return make_tabular_regression("boston", 506, 13, seed=seed)


def diabetes_like(*, seed=None) -> Dataset:
    """Diabetes progression: 442 rows, 10 features, regression."""
    return make_tabular_regression("diabetes", 442, 10, seed=seed)


def wine_quality_like(*, seed=None) -> Dataset:
    """Wine quality: 4898 rows, 11 features, regression."""
    return make_tabular_regression("wine_quality", 4898, 11, seed=seed)


def seoul_bike_like(*, seed=None) -> Dataset:
    """Seoul bike sharing demand: 17379 rows, 14 features, regression."""
    return make_tabular_regression("seoul_bike", 17379, 14, seed=seed)


def california_like(*, seed=None) -> Dataset:
    """California housing: 20641 rows, 8 features, regression."""
    return make_tabular_regression("california", 20641, 8, seed=seed)


def iris_like(*, seed=None) -> Dataset:
    """Iris (binarised as in vertical logistic regression): 150 rows, 4 features."""
    return make_tabular_classification("iris", 150, 4, temperature=0.5, seed=seed)


def wine_like(*, seed=None) -> Dataset:
    """Wine: 173 rows, 13 features, binary."""
    return make_tabular_classification("wine", 173, 13, temperature=0.7, seed=seed)


def breast_cancer_like(*, seed=None) -> Dataset:
    """Breast cancer: 569 rows, 30 features, binary."""
    return make_tabular_classification("breast_cancer", 569, 30, seed=seed)


def credit_card_like(*, seed=None) -> Dataset:
    """Default of credit-card clients: 30000 rows, 22 features, binary."""
    return make_tabular_classification("credit_card", 30000, 22, temperature=1.5, seed=seed)


def adult_like(*, seed=None) -> Dataset:
    """Adult income: 48842 rows, 14 features, binary."""
    return make_tabular_classification("adult", 48842, 14, temperature=1.2, seed=seed)
