"""Partitioning data across federated participants, plus quality corruption.

Implements the three experimental manipulations of Sec. V:

* **IID partition** — samples split uniformly at random,
* **non-IID shards** — low-quality participants receive samples from only a
  random subset of classes ("1 to 9 categories out of 10"),
* **mislabeling** — a fraction of a participant's labels replaced with
  random *incorrect* labels,

and the **vertical split** used by the VFL experiments, where each party owns
a disjoint block of feature columns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal, Mapping

import numpy as np

from repro.data.dataset import Dataset
from repro.utils.rng import make_rng
from repro.utils.validation import check_fraction, check_positive_int

Quality = Literal["clean", "mislabeled", "noniid"]


def iid_partition(
    n_samples: int, n_parties: int, *, seed=None
) -> list[np.ndarray]:
    """Split ``range(n_samples)`` into ``n_parties`` near-equal random parts."""
    check_positive_int(n_samples, "n_samples")
    check_positive_int(n_parties, "n_parties")
    if n_parties > n_samples:
        raise ValueError(
            f"cannot split {n_samples} samples across {n_parties} parties"
        )
    rng = make_rng(seed)
    perm = rng.permutation(n_samples)
    return [np.sort(part) for part in np.array_split(perm, n_parties)]


def noniid_class_partition(
    labels: np.ndarray,
    n_parties: int,
    n_noniid: int,
    *,
    num_classes: int,
    min_classes: int = 1,
    max_classes: int | None = None,
    seed=None,
) -> tuple[list[np.ndarray], list[Quality]]:
    """Shard-style partition with ``n_noniid`` class-skewed participants.

    Clean participants draw a stratified sample covering every class;
    each non-IID participant draws only from a random subset of
    ``k ∈ [min_classes, max_classes]`` classes (paper: 1 to 9 of 10).
    Returns per-party index arrays and quality tags.
    """
    labels = np.asarray(labels)
    check_positive_int(n_parties, "n_parties")
    if not 0 <= n_noniid <= n_parties:
        raise ValueError(f"n_noniid must be in [0, {n_parties}], got {n_noniid}")
    if max_classes is None:
        max_classes = num_classes - 1
    if not 1 <= min_classes <= max_classes < num_classes:
        raise ValueError(
            f"need 1 <= min_classes <= max_classes < num_classes, got "
            f"[{min_classes}, {max_classes}] vs {num_classes}"
        )
    rng = make_rng(seed)
    n_samples = len(labels)
    quota = n_samples // n_parties

    pools = {c: list(rng.permutation(np.flatnonzero(labels == c))) for c in range(num_classes)}

    def draw_from(classes, count: int) -> list[int]:
        """Take up to ``count`` indices round-robin from the class pools."""
        taken: list[int] = []
        order = list(classes)
        while len(taken) < count and order:
            empty = []
            for c in order:
                if len(taken) >= count:
                    break
                if pools[c]:
                    taken.append(pools[c].pop())
                else:
                    empty.append(c)
            order = [c for c in order if c not in empty]
        return taken

    parts: list[np.ndarray] = []
    qualities: list[Quality] = []
    # Clean parties draw first, stratified round-robin over every class, so
    # they keep full IID coverage — the paper "evenly assigned shards from
    # all categories (i.e., IID data) to n−m participants".
    for _ in range(n_parties - n_noniid):
        taken = draw_from(rng.permutation(num_classes), quota)
        parts.append(np.sort(np.array(taken, dtype=np.int64)))
        qualities.append("clean")
    # Skewed parties take ONLY their chosen classes from what remains,
    # accepting fewer samples when the pools run dry — a party holding
    # nothing but its narrow classes is the behaviour the experiment needs,
    # not a backfilled nearly-IID one.  A small floor (widening the class
    # set if necessary) keeps every party trainable.
    for _ in range(n_noniid):
        k = int(rng.integers(min_classes, max_classes + 1))
        classes = list(rng.choice(num_classes, size=k, replace=False))
        taken = draw_from(classes, quota)
        while len(taken) < max(1, quota // 8) and len(classes) < num_classes:
            extra = rng.integers(0, num_classes)
            if extra not in classes:
                classes.append(int(extra))
                taken.extend(draw_from([int(extra)], quota - len(taken)))
        parts.append(np.sort(np.array(taken, dtype=np.int64)))
        qualities.append("noniid")
    # Shuffle party order so non-IID parties are not always the low indices.
    order = rng.permutation(n_parties)
    return [parts[i] for i in order], [qualities[i] for i in order]


def dirichlet_label_partition(
    labels: np.ndarray,
    n_parties: int,
    alpha: float,
    *,
    num_classes: int,
    seed=None,
) -> list[np.ndarray]:
    """Dirichlet(α) label-skew partition — the standard FL non-IID knob.

    For each class, the samples are divided among parties according to a
    draw from ``Dirichlet(α·1)``: small α ⇒ each class concentrates on few
    parties (strong skew), large α ⇒ near-IID.  Complements the paper's
    shard scheme with the continuous severity dial most FL work uses.
    """
    labels = np.asarray(labels)
    check_positive_int(n_parties, "n_parties")
    check_positive_int(num_classes, "num_classes")
    if alpha <= 0:
        raise ValueError(f"alpha must be positive, got {alpha}")
    rng = make_rng(seed)
    parts: list[list[int]] = [[] for _ in range(n_parties)]
    for c in range(num_classes):
        class_idx = rng.permutation(np.flatnonzero(labels == c))
        if len(class_idx) == 0:
            continue
        proportions = rng.dirichlet(np.full(n_parties, alpha))
        # Convert proportions to contiguous cut points over this class.
        cuts = (np.cumsum(proportions)[:-1] * len(class_idx)).astype(int)
        for party, chunk in enumerate(np.split(class_idx, cuts)):
            parts[party].extend(chunk.tolist())
    # Guarantee non-empty parties by stealing from the largest.
    for party in range(n_parties):
        while not parts[party]:
            donor = max(range(n_parties), key=lambda q: len(parts[q]))
            if len(parts[donor]) <= 1:
                raise ValueError(
                    f"cannot give {n_parties} parties non-empty shares of "
                    f"{len(labels)} samples"
                )
            parts[party].append(parts[donor].pop())
    return [np.sort(np.array(p, dtype=np.int64)) for p in parts]


def mislabel(
    y: np.ndarray,
    fraction: float,
    num_classes: int,
    *,
    seed=None,
) -> tuple[np.ndarray, np.ndarray]:
    """Replace ``fraction`` of labels with random *incorrect* classes.

    Returns ``(corrupted_labels, corrupted_mask)``.
    """
    check_fraction(fraction, "fraction")
    check_positive_int(num_classes, "num_classes")
    rng = make_rng(seed)
    y = np.asarray(y).copy()
    n = len(y)
    n_bad = int(round(fraction * n))
    mask = np.zeros(n, dtype=bool)
    if n_bad == 0:
        return y, mask
    bad_idx = rng.choice(n, size=n_bad, replace=False)
    # Draw an offset in [1, num_classes) so the new label always differs.
    offsets = rng.integers(1, num_classes, size=n_bad)
    y[bad_idx] = (y[bad_idx] + offsets) % num_classes
    mask[bad_idx] = True
    return y, mask


def pairwise_mislabel(
    y: np.ndarray,
    fraction: float,
    num_classes: int,
    *,
    seed=None,
) -> tuple[np.ndarray, np.ndarray]:
    """Structured label noise: class ``c`` flips to ``(c + 1) % num_classes``.

    Unlike :func:`mislabel` (symmetric — a corrupted label lands uniformly
    on any *other* class), pairwise noise confuses each class with exactly
    one neighbour, the harder-to-detect "annotator confusion" regime.
    Returns ``(corrupted_labels, corrupted_mask)``.
    """
    check_fraction(fraction, "fraction")
    check_positive_int(num_classes, "num_classes")
    rng = make_rng(seed)
    y = np.asarray(y).copy()
    n = len(y)
    n_bad = int(round(fraction * n))
    mask = np.zeros(n, dtype=bool)
    if n_bad == 0:
        return y, mask
    bad_idx = rng.choice(n, size=n_bad, replace=False)
    y[bad_idx] = (y[bad_idx] + 1) % num_classes
    mask[bad_idx] = True
    return y, mask


def vertical_partition(
    n_features: int, n_parties: int, *, seed=None
) -> list[np.ndarray]:
    """Split feature columns into ``n_parties`` disjoint non-empty blocks.

    Column assignment is randomised so that, combined with the geometrically
    decaying ground-truth coefficients of :mod:`repro.data.tabular`, parties
    end up with genuinely different signal content.
    """
    check_positive_int(n_features, "n_features")
    check_positive_int(n_parties, "n_parties")
    if n_parties > n_features:
        raise ValueError(
            f"cannot give {n_parties} parties non-empty blocks of {n_features} features"
        )
    rng = make_rng(seed)
    perm = rng.permutation(n_features)
    return [np.sort(block) for block in np.array_split(perm, n_parties)]


@dataclass(frozen=True)
class FederatedSplit:
    """One horizontal federation: local datasets plus ground-truth tags."""

    locals: list[Dataset]
    qualities: list[Quality]
    validation: Dataset
    #: How the split was generated (partition scheme, alpha, per-party class
    #: histograms, noise rates, ...) — JSON-friendly, for scenario verdicts.
    metadata: Mapping = field(default_factory=dict)

    @property
    def n_parties(self) -> int:
        return len(self.locals)


def build_hfl_federation(
    dataset: Dataset,
    n_parties: int,
    *,
    n_mislabeled: int = 0,
    n_noniid: int = 0,
    mislabel_fraction: float = 0.5,
    noniid_max_classes: int | None = None,
    validation_fraction: float = 0.1,
    seed=None,
) -> FederatedSplit:
    """Build the experimental federation of Sec. V-C.

    10% of the data becomes the server validation set; the remainder is
    split across ``n_parties``.  ``n_noniid`` parties get class-skewed
    shards; ``n_mislabeled`` parties (disjoint from the non-IID ones) have
    ``mislabel_fraction`` of their labels corrupted.
    """
    if dataset.task not in ("binary", "multiclass"):
        raise ValueError("HFL federations require a classification dataset")
    if n_mislabeled + n_noniid > n_parties:
        raise ValueError(
            f"{n_mislabeled} mislabeled + {n_noniid} non-IID exceeds {n_parties} parties"
        )
    rng = make_rng(seed)
    train, validation = dataset.validation_split(validation_fraction, seed=rng)

    if n_noniid > 0:
        parts, qualities = noniid_class_partition(
            train.y,
            n_parties,
            n_noniid,
            num_classes=dataset.num_classes,
            max_classes=noniid_max_classes,
            seed=rng,
        )
    else:
        parts = iid_partition(len(train), n_parties, seed=rng)
        qualities = ["clean"] * n_parties

    # Corrupt labels of n_mislabeled among the clean parties.
    clean_slots = [i for i, q in enumerate(qualities) if q == "clean"]
    mislabel_slots = list(rng.permutation(clean_slots)[:n_mislabeled])

    locals_: list[Dataset] = []
    final_qualities: list[Quality] = []
    for i, part in enumerate(parts):
        local = train.subset(part, name=f"{dataset.name}/party{i}")
        if i in mislabel_slots:
            corrupted, _ = mislabel(
                local.y, mislabel_fraction, dataset.num_classes, seed=rng
            )
            local = Dataset(
                name=local.name,
                X=local.X,
                y=corrupted,
                task=local.task,
                num_classes=local.num_classes,
            )
            final_qualities.append("mislabeled")
        else:
            final_qualities.append(qualities[i])
        locals_.append(local)
    return FederatedSplit(locals=locals_, qualities=final_qualities, validation=validation)


def class_histogram(y: np.ndarray, num_classes: int) -> list[int]:
    """Per-class sample counts of one party's labels (JSON-friendly)."""
    return np.bincount(np.asarray(y, dtype=np.int64), minlength=num_classes).tolist()


def build_dirichlet_federation(
    dataset: Dataset,
    n_parties: int,
    *,
    alpha: float,
    validation_fraction: float = 0.1,
    seed=None,
) -> FederatedSplit:
    """Dirichlet(α) label-skew federation with histogram metadata.

    Every party is tagged ``"noniid"`` (α is a global skew dial, not a
    per-party corruption), and ``metadata["class_histograms"]`` records the
    per-party label distribution the skew produced, so scenario verdicts
    can report *how* non-IID each party actually came out.
    """
    if dataset.task not in ("binary", "multiclass"):
        raise ValueError("HFL federations require a classification dataset")
    rng = make_rng(seed)
    train, validation = dataset.validation_split(validation_fraction, seed=rng)
    parts = dirichlet_label_partition(
        train.y,
        n_parties,
        alpha,
        num_classes=dataset.num_classes,
        seed=rng,
    )
    locals_ = [
        train.subset(part, name=f"{dataset.name}/party{i}")
        for i, part in enumerate(parts)
    ]
    histograms = [
        class_histogram(local.y, dataset.num_classes) for local in locals_
    ]
    return FederatedSplit(
        locals=locals_,
        qualities=["noniid"] * n_parties,
        validation=validation,
        metadata={
            "partition": "dirichlet",
            "alpha": float(alpha),
            "class_histograms": histograms,
        },
    )


@dataclass(frozen=True)
class VerticalSplit:
    """One vertical federation: per-party feature blocks plus splits."""

    feature_blocks: list[np.ndarray]
    train: Dataset
    validation: Dataset

    @property
    def n_parties(self) -> int:
        return len(self.feature_blocks)


def build_vfl_federation(
    dataset: Dataset,
    n_parties: int,
    *,
    validation_fraction: float = 0.1,
    max_rows: int | None = None,
    seed=None,
) -> VerticalSplit:
    """Vertically split a tabular dataset across ``n_parties``.

    ``max_rows`` optionally subsamples rows first (keeps the exact-Shapley
    baselines tractable on the larger datasets).
    """
    if dataset.X.ndim != 2:
        raise ValueError("VFL federations require tabular (2-D) data")
    rng = make_rng(seed)
    if max_rows is not None and max_rows < len(dataset):
        keep = rng.choice(len(dataset), size=max_rows, replace=False)
        dataset = dataset.subset(np.sort(keep))
    train, validation = dataset.validation_split(validation_fraction, seed=rng)
    blocks = vertical_partition(dataset.X.shape[1], n_parties, seed=rng)
    return VerticalSplit(feature_blocks=blocks, train=train, validation=validation)
