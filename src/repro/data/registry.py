"""Registry mapping the paper's dataset keys to generators and settings.

Table I of the paper names each dataset with a subscripted key
(``D_M`` … ``D_A``); Table III fixes the VFL party count ``n`` per dataset.
Benchmarks iterate this registry so every table/figure touches exactly the
datasets the paper used.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.data import synthetic, tabular
from repro.data.dataset import Dataset


@dataclass(frozen=True)
class DatasetInfo:
    """Metadata for one paper dataset."""

    key: str  # paper key, e.g. "D_M"
    name: str
    maker: Callable[..., Dataset]
    task: str
    setting: str  # "hfl" or "vfl"
    paper_size: str
    vfl_parties: int = 0  # n column of Table III (VFL only)
    vfl_model: str = ""  # "linreg" or "logreg" (VFL only)

    def make(self, *, seed=None, **kwargs) -> Dataset:
        return self.maker(seed=seed, **kwargs)


HFL_DATASETS: dict[str, DatasetInfo] = {
    "mnist": DatasetInfo("D_M", "mnist", synthetic.mnist_like, "multiclass", "hfl", "70,000"),
    "cifar10": DatasetInfo("D_C", "cifar10", synthetic.cifar_like, "multiclass", "hfl", "60,000"),
    "motor": DatasetInfo("D_O", "motor", synthetic.motor_like, "multiclass", "hfl", "11,000"),
    "real": DatasetInfo("D_R", "real", synthetic.real_like, "multiclass", "hfl", "110,000"),
}

VFL_DATASETS: dict[str, DatasetInfo] = {
    "boston": DatasetInfo(
        "D_B", "boston", tabular.boston_like, "regression", "vfl", "506*14",
        vfl_parties=13, vfl_model="linreg",
    ),
    "diabetes": DatasetInfo(
        "D_D", "diabetes", tabular.diabetes_like, "regression", "vfl", "442*11",
        vfl_parties=10, vfl_model="linreg",
    ),
    "wine_quality": DatasetInfo(
        "D_Wq", "wine_quality", tabular.wine_quality_like, "regression", "vfl",
        "4898*12", vfl_parties=11, vfl_model="linreg",
    ),
    "seoul_bike": DatasetInfo(
        "D_S", "seoul_bike", tabular.seoul_bike_like, "regression", "vfl",
        "17379*15", vfl_parties=14, vfl_model="linreg",
    ),
    "california": DatasetInfo(
        "D_Ca", "california", tabular.california_like, "regression", "vfl",
        "20641*9", vfl_parties=8, vfl_model="linreg",
    ),
    "iris": DatasetInfo(
        "D_I", "iris", tabular.iris_like, "binary", "vfl", "150*5",
        vfl_parties=4, vfl_model="logreg",
    ),
    "wine": DatasetInfo(
        "D_W", "wine", tabular.wine_like, "binary", "vfl", "173*14",
        vfl_parties=13, vfl_model="logreg",
    ),
    "breast_cancer": DatasetInfo(
        "D_Bc", "breast_cancer", tabular.breast_cancer_like, "binary", "vfl",
        "569*31", vfl_parties=15, vfl_model="logreg",
    ),
    "credit_card": DatasetInfo(
        "D_Cc", "credit_card", tabular.credit_card_like, "binary", "vfl",
        "30000*23", vfl_parties=11, vfl_model="logreg",
    ),
    "adult": DatasetInfo(
        "D_A", "adult", tabular.adult_like, "binary", "vfl", "48842*15",
        vfl_parties=14, vfl_model="logreg",
    ),
}

ALL_DATASETS: dict[str, DatasetInfo] = {**HFL_DATASETS, **VFL_DATASETS}


def get_dataset_info(name: str) -> DatasetInfo:
    """Look up a dataset by short name (e.g. ``"mnist"``) or paper key (``"D_M"``)."""
    if name in ALL_DATASETS:
        return ALL_DATASETS[name]
    for info in ALL_DATASETS.values():
        if info.key == name:
            return info
    raise KeyError(
        f"unknown dataset {name!r}; known: {sorted(ALL_DATASETS)} "
        f"or keys {[i.key for i in ALL_DATASETS.values()]}"
    )
