"""Synthetic stand-ins for the paper's four HFL image datasets.

The paper's HFL experiments run on MNIST, CIFAR10 and two crawled sets
(MOTOR: 11k motorcycle/non-motorcycle images; REAL: 110k images in 10
keyword classes).  None are downloadable here, and — crucially — the
experiments never depend on image *content*: they manipulate data quality
(label noise, non-IID shards) and measure how contribution estimates track
it.  We therefore generate Gaussian-mixture "images" that preserve what the
experiments exercise:

* class count and channel geometry (MNIST 10×(1,10,10); CIFAR/REAL
  10×(3,8,8); MOTOR 2×(3,8,8)),
* a difficulty ordering (MNIST easiest, REAL noisiest) via the ratio of
  prototype separation to within-class noise,
* within-class substructure (each class is a mixture of sub-prototypes) so
  that non-IID shard partitions genuinely skew participant distributions.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset
from repro.utils.rng import make_rng
from repro.utils.validation import check_positive_int


def make_image_classification(
    name: str,
    n_samples: int,
    image_shape: tuple[int, int, int],
    num_classes: int,
    *,
    separation: float = 3.0,
    noise: float = 1.0,
    subclusters: int = 3,
    seed=None,
) -> Dataset:
    """Gaussian-mixture image classification dataset.

    Each class gets ``subclusters`` sub-prototypes drawn at distance
    ``separation`` from the origin; samples are a sub-prototype plus
    isotropic noise.  Higher ``separation``/``noise`` ratio ⇒ easier task.
    """
    check_positive_int(n_samples, "n_samples")
    check_positive_int(num_classes, "num_classes")
    check_positive_int(subclusters, "subclusters")
    rng = make_rng(seed)
    dim = int(np.prod(image_shape))
    prototypes = rng.normal(size=(num_classes, subclusters, dim))
    prototypes *= separation / np.linalg.norm(prototypes, axis=2, keepdims=True)
    # Give each class a shared "class direction" so sub-clusters of one class
    # sit closer to each other than to other classes.
    class_centers = rng.normal(size=(num_classes, 1, dim))
    class_centers *= separation / np.linalg.norm(class_centers, axis=2, keepdims=True)
    prototypes = class_centers + 0.5 * prototypes

    y = rng.integers(0, num_classes, size=n_samples)
    sub = rng.integers(0, subclusters, size=n_samples)
    X = prototypes[y, sub] + noise * rng.normal(size=(n_samples, dim))
    X = X.reshape(n_samples, *image_shape).astype(np.float64)
    return Dataset(name=name, X=X, y=y.astype(np.int64), task="multiclass",
                   num_classes=num_classes)


def mnist_like(n_samples: int = 4000, *, seed=None) -> Dataset:
    """10-class, single-channel, well separated — the MNIST stand-in.

    Paper size is 70,000; the default is scaled down because the exact
    Shapley baseline retrains the model 2^n times.  Pass ``n_samples`` to
    scale up.
    """
    return make_image_classification(
        "mnist", n_samples, (1, 10, 10), 10, separation=4.0, noise=1.0, seed=seed
    )


def cifar_like(n_samples: int = 4000, *, seed=None) -> Dataset:
    """10-class, 3-channel, moderately separated — the CIFAR10 stand-in."""
    return make_image_classification(
        "cifar10", n_samples, (3, 8, 8), 10, separation=2.6, noise=1.0, seed=seed
    )


def motor_like(n_samples: int = 2200, *, seed=None) -> Dataset:
    """Binary motorcycle/non-motorcycle stand-in (paper: 11,000 images)."""
    return make_image_classification(
        "motor", n_samples, (3, 8, 8), 2, separation=2.8, noise=1.0, seed=seed
    )


def real_like(n_samples: int = 5000, *, seed=None) -> Dataset:
    """10 keyword classes, noisy crawled data — the REAL stand-in.

    Lower separation and extra subclusters model crawl noise; the paper
    reports the weakest PCC (0.833) on this dataset and the same relative
    difficulty shows up here.
    """
    return make_image_classification(
        "real", n_samples, (3, 8, 8), 10, separation=1.8, noise=1.2,
        subclusters=5, seed=seed,
    )
