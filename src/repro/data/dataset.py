"""Dataset container shared by HFL and VFL experiments.

A :class:`Dataset` is an in-memory design matrix plus targets, tagged with a
task type so models and utility functions can be selected generically.  The
``validation_split`` helper mirrors the paper's protocol: 10% of the data is
held out on the server as the validation set ``D^v`` and the remainder is
distributed to participants.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Literal

import numpy as np

from repro.utils.rng import make_rng

Task = Literal["regression", "binary", "multiclass"]


@dataclass(frozen=True)
class Dataset:
    """Features + targets + metadata.

    ``X`` is ``(n, d)`` for tabular data or ``(n, C, H, W)`` for images;
    ``y`` is float for regression and integer class indices otherwise.
    """

    name: str
    X: np.ndarray
    y: np.ndarray
    task: Task
    num_classes: int = 0

    def __post_init__(self) -> None:
        if len(self.X) != len(self.y):
            raise ValueError(
                f"X has {len(self.X)} rows but y has {len(self.y)} entries"
            )
        if self.task in ("binary", "multiclass") and self.num_classes < 2:
            raise ValueError(
                f"{self.task} dataset needs num_classes >= 2, got {self.num_classes}"
            )

    def __len__(self) -> int:
        return len(self.X)

    @property
    def n_features(self) -> int:
        """Feature count for tabular data; flattened size for images."""
        return int(np.prod(self.X.shape[1:]))

    def subset(self, indices: np.ndarray, name: str | None = None) -> "Dataset":
        """A new dataset restricted to ``indices`` (copies)."""
        indices = np.asarray(indices)
        return replace(
            self,
            name=name or self.name,
            X=self.X[indices].copy(),
            y=self.y[indices].copy(),
        )

    def feature_slice(self, columns: np.ndarray, name: str | None = None) -> "Dataset":
        """Restrict tabular data to the given feature columns (for VFL)."""
        if self.X.ndim != 2:
            raise ValueError("feature_slice only applies to tabular (2-D) data")
        columns = np.asarray(columns)
        return replace(
            self,
            name=name or self.name,
            X=self.X[:, columns].copy(),
            y=self.y.copy(),
        )

    def validation_split(
        self, fraction: float = 0.1, *, seed=None
    ) -> tuple["Dataset", "Dataset"]:
        """Random ``(train, validation)`` split; validation gets ``fraction``.

        Matches Sec. V-A: "we first randomly extracted 10% of the training
        data as the validation dataset".
        """
        if not 0.0 < fraction < 1.0:
            raise ValueError(f"fraction must be in (0, 1), got {fraction}")
        rng = make_rng(seed)
        perm = rng.permutation(len(self))
        n_val = max(1, int(round(fraction * len(self))))
        val_idx, train_idx = perm[:n_val], perm[n_val:]
        return (
            self.subset(train_idx, name=f"{self.name}/train"),
            self.subset(val_idx, name=f"{self.name}/val"),
        )

    def standardized(self) -> "Dataset":
        """Zero-mean / unit-variance feature scaling (tabular only).

        Constant features are left centred with unit divisor to avoid
        division by zero.
        """
        if self.X.ndim != 2:
            raise ValueError("standardized only applies to tabular (2-D) data")
        mean = self.X.mean(axis=0)
        std = self.X.std(axis=0)
        std = np.where(std < 1e-12, 1.0, std)
        return replace(self, X=(self.X - mean) / std)
