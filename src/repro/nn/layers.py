"""Neural-network layers on the autodiff substrate.

Convolution is implemented with an im2col gather (the :func:`take` primitive)
followed by an ordinary matrix product, so its gradient — and the
Hessian-vector products DIG-FL Algorithm 1 needs — come for free from the
autodiff engine.
"""

from __future__ import annotations

import numpy as np

from repro.autodiff.tensor import (
    Tensor,
    add,
    amax,
    as_tensor,
    broadcast_to,
    matmul,
    relu,
    reshape,
    sigmoid,
    take,
    tanh,
    transpose,
)
from repro.nn.module import Module
from repro.utils.rng import make_rng


class Linear(Module):
    """Affine map ``x @ W + b`` with Glorot-uniform initialisation."""

    def __init__(self, in_features: int, out_features: int, *, seed=None) -> None:
        super().__init__()
        rng = make_rng(seed)
        bound = np.sqrt(6.0 / (in_features + out_features))
        self.weight = Tensor(
            rng.uniform(-bound, bound, size=(in_features, out_features)),
            requires_grad=True,
        )
        self.bias = Tensor(np.zeros(out_features), requires_grad=True)
        self.in_features = in_features
        self.out_features = out_features

    def forward(self, x):
        x = as_tensor(x)
        out = matmul(x, self.weight)
        return add(out, broadcast_to(reshape(self.bias, (1, self.out_features)), out.shape))


class ReLU(Module):
    """Elementwise ``max(x, 0)`` activation."""

    def forward(self, x):
        return relu(x)


class Tanh(Module):
    """Elementwise hyperbolic-tangent activation."""

    def forward(self, x):
        return tanh(x)


class Sigmoid(Module):
    """Elementwise logistic activation."""

    def forward(self, x):
        return sigmoid(x)


class Flatten(Module):
    """Collapse all but the batch dimension."""

    def forward(self, x):
        x = as_tensor(x)
        return reshape(x, (x.shape[0], int(np.prod(x.shape[1:]))))


class Sequential(Module):
    """Run child modules in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self._order: list[str] = []
        for i, module in enumerate(modules):
            name = f"layer{i}"
            setattr(self, name, module)
            self._order.append(name)

    def forward(self, x):
        for name in self._order:
            x = getattr(self, name)(x)
        return x

    def __iter__(self):
        return (getattr(self, name) for name in self._order)


def _im2col_indices(
    channels: int, height: int, width: int, kernel: int, stride: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray, int, int]:
    """Index arrays mapping an image to its unfolded patch matrix.

    Returns ``(c_idx, i_idx, j_idx, out_h, out_w)`` where each index array has
    shape ``(channels*kernel*kernel, out_h*out_w)``.
    """
    out_h = (height - kernel) // stride + 1
    out_w = (width - kernel) // stride + 1
    c = np.repeat(np.arange(channels), kernel * kernel)
    ki = np.tile(np.repeat(np.arange(kernel), kernel), channels)
    kj = np.tile(np.arange(kernel), kernel * channels)
    base_i = stride * np.repeat(np.arange(out_h), out_w)
    base_j = stride * np.tile(np.arange(out_w), out_h)
    c_idx = c[:, None] * np.ones((1, out_h * out_w), dtype=np.int64)
    i_idx = ki[:, None] + base_i[None, :]
    j_idx = kj[:, None] + base_j[None, :]
    return c_idx.astype(np.int64), i_idx, j_idx, out_h, out_w


class Conv2d(Module):
    """2-D convolution (valid padding) via im2col + matmul.

    Input shape ``(batch, in_channels, H, W)``; output
    ``(batch, out_channels, out_H, out_W)``.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        *,
        seed=None,
    ) -> None:
        super().__init__()
        rng = make_rng(seed)
        fan_in = in_channels * kernel_size * kernel_size
        bound = np.sqrt(6.0 / (fan_in + out_channels))
        self.weight = Tensor(
            rng.uniform(-bound, bound, size=(fan_in, out_channels)),
            requires_grad=True,
        )
        self.bias = Tensor(np.zeros(out_channels), requires_grad=True)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self._index_cache: dict[tuple[int, int], tuple] = {}

    def _indices(self, height: int, width: int):
        key = (height, width)
        if key not in self._index_cache:
            self._index_cache[key] = _im2col_indices(
                self.in_channels, height, width, self.kernel_size, self.stride
            )
        return self._index_cache[key]

    def forward(self, x):
        x = as_tensor(x)
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ValueError(
                f"expected (batch, {self.in_channels}, H, W), got {x.shape}"
            )
        batch = x.shape[0]
        c_idx, i_idx, j_idx, out_h, out_w = self._indices(x.shape[2], x.shape[3])
        # (batch, fan_in, out_h*out_w) gathered in one differentiable take.
        patches = take(x, (slice(None), c_idx, i_idx, j_idx))
        # -> (batch*out_positions, fan_in) for a single 2-D matmul.
        cols = reshape(
            transpose(patches, (0, 2, 1)), (batch * out_h * out_w, c_idx.shape[0])
        )
        out = add(
            matmul(cols, self.weight),
            broadcast_to(
                reshape(self.bias, (1, self.out_channels)),
                (batch * out_h * out_w, self.out_channels),
            ),
        )
        out = reshape(out, (batch, out_h, out_w, self.out_channels))
        return transpose(out, (0, 3, 1, 2))


class MaxPool2d(Module):
    """Non-overlapping max pooling (kernel == stride)."""

    def __init__(self, kernel_size: int) -> None:
        super().__init__()
        self.kernel_size = kernel_size

    def forward(self, x):
        x = as_tensor(x)
        k = self.kernel_size
        batch, channels, height, width = x.shape
        if height % k or width % k:
            raise ValueError(
                f"spatial dims {height}x{width} not divisible by kernel {k}"
            )
        x = reshape(x, (batch, channels, height // k, k, width // k, k))
        x = amax(x, axis=3)
        x = amax(x, axis=4)
        return x


class Dropout(Module):
    """Inverted dropout with an explicit train/eval switch.

    Masks are drawn from a module-owned seeded generator so runs are
    reproducible; at evaluation time (``.eval()``) the layer is the
    identity, so federated aggregation and DIG-FL's validation gradients
    see the deterministic network.
    """

    def __init__(self, p: float = 0.5, *, seed=None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self.training = True
        self._rng = make_rng(seed)

    def train(self) -> "Dropout":
        self.training = True
        return self

    def eval(self) -> "Dropout":
        self.training = False
        return self

    def forward(self, x):
        x = as_tensor(x)
        if not self.training or self.p == 0.0:
            return x
        keep = 1.0 - self.p
        mask = (self._rng.random(x.shape) < keep).astype(np.float64) / keep
        from repro.autodiff.tensor import Tensor, mul

        return mul(x, Tensor(mask))


class AvgPool2d(Module):
    """Non-overlapping average pooling (kernel == stride).

    Smooth everywhere, so models built with it have well-defined Hessians —
    handy for stress-testing the second-order term of DIG-FL.
    """

    def __init__(self, kernel_size: int) -> None:
        super().__init__()
        self.kernel_size = kernel_size

    def forward(self, x):
        x = as_tensor(x)
        k = self.kernel_size
        batch, channels, height, width = x.shape
        if height % k or width % k:
            raise ValueError(
                f"spatial dims {height}x{width} not divisible by kernel {k}"
            )
        x = reshape(x, (batch, channels, height // k, k, width // k, k))
        return x.mean(axis=(3, 5))
