"""Model factories matching the paper's four HFL image models.

The paper trains HFL-CNN-{MNIST,CIFAR,MOTOR,REAL}.  Our synthetic image
datasets (see :mod:`repro.data.synthetic`) keep the class counts and relative
difficulty; the factories below build proportionally sized networks.  A pure
MLP variant is provided because the benchmarks run hundreds of retrainings
(for the exact-Shapley baselines) and the conv nets, while fully functional,
are reserved for the integration tests and examples.
"""

from __future__ import annotations

import numpy as np

from repro.autodiff.functional import cross_entropy_with_logits
from repro.autodiff.tensor import Tensor
from repro.nn.layers import (
    Conv2d,
    Flatten,
    Linear,
    MaxPool2d,
    ReLU,
    Sequential,
    Tanh,
)
from repro.nn.module import Module
from repro.utils.rng import spawn_rngs


class Classifier(Module):
    """A feature extractor + head, with the softmax cross-entropy loss bound in.

    This is the unit of model state the HFL simulator replicates across
    participants: ``loss(X, y)`` is everything FedSGD and DIG-FL need.
    """

    def __init__(self, network: Sequential, num_classes: int) -> None:
        super().__init__()
        self.network = network
        self.num_classes = num_classes

    def forward(self, x):
        return self.network(x)

    def loss(self, inputs: np.ndarray, labels: np.ndarray) -> Tensor:
        return cross_entropy_with_logits(self.forward(Tensor(inputs)), labels)

    def predict(self, inputs: np.ndarray) -> np.ndarray:
        logits = self.forward(Tensor(inputs))
        return np.argmax(logits.data, axis=1)

    def accuracy(self, inputs: np.ndarray, labels: np.ndarray) -> float:
        return float(np.mean(self.predict(inputs) == np.asarray(labels)))


def make_mlp_classifier(
    input_dim: int,
    num_classes: int,
    hidden: tuple[int, ...] = (32,),
    *,
    activation: str = "tanh",
    seed=None,
) -> Classifier:
    """Fully connected classifier on flattened inputs.

    ``tanh`` is the default activation so that the loss is twice
    differentiable everywhere — the assumption under which Lemmas 1–3 hold.
    """
    act = {"tanh": Tanh, "relu": ReLU}[activation]
    dims = [input_dim, *hidden]
    rngs = spawn_rngs(seed, len(dims))
    layers: list[Module] = [Flatten()]
    for i in range(len(dims) - 1):
        layers.append(Linear(dims[i], dims[i + 1], seed=rngs[i]))
        layers.append(act())
    layers.append(Linear(dims[-1], num_classes, seed=rngs[-1]))
    return Classifier(Sequential(*layers), num_classes)


def make_cnn_classifier(
    image_shape: tuple[int, int, int],
    num_classes: int,
    channels: int = 8,
    *,
    seed=None,
) -> Classifier:
    """Small conv net: Conv(3x3) → ReLU → MaxPool(2) → Flatten → Linear.

    ``image_shape`` is ``(C, H, W)``; H and W must leave the pooled feature
    map with integer dimensions.
    """
    in_c, height, width = image_shape
    conv_h, conv_w = height - 2, width - 2
    if conv_h % 2 or conv_w % 2:
        raise ValueError(
            f"image {height}x{width} leaves odd conv output {conv_h}x{conv_w}; "
            "pick H, W with (H-2), (W-2) even"
        )
    rngs = spawn_rngs(seed, 2)
    feat_dim = channels * (conv_h // 2) * (conv_w // 2)
    network = Sequential(
        Conv2d(in_c, channels, kernel_size=3, seed=rngs[0]),
        ReLU(),
        MaxPool2d(2),
        Flatten(),
        Linear(feat_dim, num_classes, seed=rngs[1]),
    )
    return Classifier(network, num_classes)


# Factories keyed like the paper's model names. Image shapes follow the
# synthetic datasets in repro.data.synthetic (channel-count and class-count
# preserved from MNIST / CIFAR10 / MOTOR / REAL).
def make_hfl_model(name: str, *, arch: str = "mlp", seed=None) -> Classifier:
    """Build the HFL model for one of the paper's four image datasets.

    ``name`` is one of ``mnist``, ``cifar10``, ``motor``, ``real``;
    ``arch`` selects ``mlp`` (fast, used by benchmarks) or ``cnn``.
    """
    specs = {
        "mnist": ((1, 10, 10), 10),
        "cifar10": ((3, 8, 8), 10),
        "motor": ((3, 8, 8), 2),
        "real": ((3, 8, 8), 10),
    }
    if name not in specs:
        raise KeyError(f"unknown HFL dataset {name!r}; expected one of {sorted(specs)}")
    image_shape, num_classes = specs[name]
    if arch == "cnn":
        return make_cnn_classifier(image_shape, num_classes, seed=seed)
    if arch == "mlp":
        input_dim = int(np.prod(image_shape))
        return make_mlp_classifier(input_dim, num_classes, hidden=(32,), seed=seed)
    raise ValueError(f"arch must be 'mlp' or 'cnn', got {arch!r}")
