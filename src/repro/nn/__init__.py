"""Neural-network layers, model factories and optimisers (numpy substrate)."""

from repro.nn.layers import (
    AvgPool2d,
    Conv2d,
    Dropout,
    Flatten,
    Linear,
    MaxPool2d,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
)
from repro.nn.models import (
    Classifier,
    make_cnn_classifier,
    make_hfl_model,
    make_mlp_classifier,
)
from repro.nn.module import Module
from repro.nn.optim import Adam, LRSchedule, SGD

__all__ = [
    "Adam",
    "AvgPool2d",
    "Classifier",
    "Conv2d",
    "Dropout",
    "Flatten",
    "LRSchedule",
    "Linear",
    "MaxPool2d",
    "Module",
    "ReLU",
    "SGD",
    "Sequential",
    "Sigmoid",
    "Tanh",
    "make_cnn_classifier",
    "make_hfl_model",
    "make_mlp_classifier",
]
