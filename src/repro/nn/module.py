"""Module base class: parameter registration and flat-vector views.

Federated algorithms in this library ship model state around as flat float64
vectors (the ``θ`` of the paper), so every module exposes
``get_flat``/``set_flat`` built on :mod:`repro.utils.packing`.
"""

from __future__ import annotations

import copy
from typing import Iterator

import numpy as np

from repro.autodiff.tensor import Tensor
from repro.utils.packing import ParamSpec, flatten_params, unflatten_params


class Module:
    """Base class for layers and models.

    Subclasses assign :class:`Tensor` attributes (parameters) and
    :class:`Module` attributes (children); both are discovered automatically
    in attribute-assignment order, giving a deterministic parameter layout —
    essential when participants exchange flat update vectors.
    """

    def __init__(self) -> None:
        self._params: dict[str, Tensor] = {}
        self._children: dict[str, Module] = {}

    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Tensor):
            self.__dict__.setdefault("_params", {})[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_children", {})[name] = value
        object.__setattr__(self, name, value)

    # -- parameter access ----------------------------------------------------

    def parameters(self) -> list[Tensor]:
        """All trainable tensors, depth-first in registration order."""
        out: list[Tensor] = list(self._params.values())
        for child in self._children.values():
            out.extend(child.parameters())
        return out

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Tensor]]:
        for name, p in self._params.items():
            yield f"{prefix}{name}", p
        for cname, child in self._children.items():
            yield from child.named_parameters(prefix=f"{prefix}{cname}.")

    def num_parameters(self) -> int:
        return int(sum(p.size for p in self.parameters()))

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.grad = None

    # -- flat-vector state ----------------------------------------------------

    def param_spec(self) -> ParamSpec:
        return ParamSpec.of([p.data for p in self.parameters()])

    def get_flat(self) -> np.ndarray:
        """Current parameters as one float64 vector (a copy)."""
        flat, _ = flatten_params([p.data for p in self.parameters()])
        return flat

    def set_flat(self, flat: np.ndarray) -> None:
        """Load parameters from a flat vector produced by :meth:`get_flat`."""
        arrays = unflatten_params(flat, self.param_spec())
        for p, arr in zip(self.parameters(), arrays):
            p.data = arr

    def clone(self) -> "Module":
        """Deep copy with independent parameter storage."""
        return copy.deepcopy(self)

    # -- forward --------------------------------------------------------------

    def forward(self, x):  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, x):
        return self.forward(x)
