"""Optimisers for local training steps.

FedSGD only needs plain gradient descent, but participants in the examples
also use momentum locally; both operate in-place on a module's parameters.
"""

from __future__ import annotations

import numpy as np

from repro.autodiff.tensor import Tensor


class SGD:
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        params: list[Tensor],
        lr: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        if weight_decay < 0:
            raise ValueError(f"weight_decay must be non-negative, got {weight_decay}")
        self.params = list(params)
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        """Apply one update using each parameter's ``.grad``."""
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            g = p.grad.data
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            if self.momentum:
                v *= self.momentum
                v += g
                g = v
            p.data = p.data - self.lr * g

    def zero_grad(self) -> None:
        for p in self.params:
            p.grad = None


class Adam:
    """Adam optimiser (Kingma & Ba) for local training in the examples.

    FedSGD/FedAvg aggregation is optimiser-agnostic on the participant
    side: whatever produces the local model, the shipped update is
    ``θ_{t-1} − θ_{t-1,i}``.
    """

    def __init__(
        self,
        params: list[Tensor],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
    ) -> None:
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        if eps <= 0:
            raise ValueError(f"eps must be positive, got {eps}")
        self.params = list(params)
        self.lr = lr
        self.beta1, self.beta2 = beta1, beta2
        self.eps = eps
        self._step = 0
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        """One Adam update from each parameter's ``.grad``."""
        self._step += 1
        bias1 = 1.0 - self.beta1**self._step
        bias2 = 1.0 - self.beta2**self._step
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            g = p.grad.data
            m *= self.beta1
            m += (1.0 - self.beta1) * g
            v *= self.beta2
            v += (1.0 - self.beta2) * g * g
            m_hat = m / bias1
            v_hat = v / bias2
            p.data = p.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def zero_grad(self) -> None:
        for p in self.params:
            p.grad = None


class LRSchedule:
    """Per-epoch learning rates ``α_t`` (constant or decaying).

    DIG-FL's contribution formulas multiply the second-order term by ``α_t``,
    so the schedule is shared between the trainer and the estimator.
    """

    def __init__(self, base_lr: float, decay: float = 1.0) -> None:
        if base_lr <= 0:
            raise ValueError(f"base_lr must be positive, got {base_lr}")
        if not 0.0 < decay <= 1.0:
            raise ValueError(f"decay must be in (0, 1], got {decay}")
        self.base_lr = base_lr
        self.decay = decay

    def lr_at(self, epoch: int) -> float:
        """Learning rate for 1-indexed ``epoch``."""
        if epoch < 1:
            raise ValueError(f"epoch is 1-indexed, got {epoch}")
        return self.base_lr * (self.decay ** (epoch - 1))
