"""Shared utilities: seeded RNG helpers, parameter vector packing, timers.

These helpers are deliberately free of any FL- or Shapley-specific logic so
that every other subpackage can depend on them without cycles.
"""

from repro.utils.packing import ParamSpec, flatten_params, unflatten_params
from repro.utils.rng import SeedSequence, make_rng, spawn_rngs
from repro.utils.timer import Stopwatch
from repro.utils.validation import (
    check_fraction,
    check_positive_int,
    check_probability_vector,
)

__all__ = [
    "ParamSpec",
    "SeedSequence",
    "Stopwatch",
    "check_fraction",
    "check_positive_int",
    "check_probability_vector",
    "flatten_params",
    "make_rng",
    "spawn_rngs",
    "unflatten_params",
]
