"""Argument validation helpers.

Small, explicit checks raising ``ValueError`` with actionable messages.  The
library is driven by benchmark sweeps, so a bad parameter should fail loudly
at the call site rather than corrupt a long-running experiment.
"""

from __future__ import annotations

import numpy as np


def check_positive_int(value: int, name: str) -> int:
    """Validate that ``value`` is an integer >= 1 and return it."""
    if not isinstance(value, (int, np.integer)) or isinstance(value, bool):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if value < 1:
        raise ValueError(f"{name} must be >= 1, got {value}")
    return int(value)


def check_non_negative_int(value: int, name: str) -> int:
    """Validate that ``value`` is an integer >= 0 and return it."""
    if not isinstance(value, (int, np.integer)) or isinstance(value, bool):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value}")
    return int(value)


def check_fraction(value: float, name: str, *, inclusive: bool = True) -> float:
    """Validate that ``value`` lies in [0, 1] (or (0, 1) when not inclusive)."""
    value = float(value)
    if inclusive:
        if not 0.0 <= value <= 1.0:
            raise ValueError(f"{name} must be in [0, 1], got {value}")
    else:
        if not 0.0 < value < 1.0:
            raise ValueError(f"{name} must be in (0, 1), got {value}")
    return value


def check_positive_float(value: float, name: str) -> float:
    """Validate that ``value`` is a finite float > 0 and return it."""
    value = float(value)
    if not np.isfinite(value) or value <= 0.0:
        raise ValueError(f"{name} must be a finite positive number, got {value}")
    return value


def check_probability_vector(vec: np.ndarray, name: str, atol: float = 1e-8) -> np.ndarray:
    """Validate a non-negative vector summing to one and return it as float64."""
    vec = np.asarray(vec, dtype=np.float64)
    if vec.ndim != 1:
        raise ValueError(f"{name} must be 1-D, got shape {vec.shape}")
    if np.any(vec < -atol):
        raise ValueError(f"{name} must be non-negative")
    total = float(vec.sum())
    if abs(total - 1.0) > atol:
        raise ValueError(f"{name} must sum to 1, sums to {total}")
    return vec


def check_matching_lengths(name_a: str, a, name_b: str, b) -> None:
    """Raise when two sized collections differ in length."""
    if len(a) != len(b):
        raise ValueError(
            f"{name_a} and {name_b} must have equal length: {len(a)} != {len(b)}"
        )
