"""Wall-clock measurement used by the cost benchmarks.

The paper reports computation cost as seconds of algorithm runtime.  The
:class:`Stopwatch` accumulates time across several start/stop windows so the
benchmarks can exclude setup (data generation) from the measured cost.

Timing reads ``time.perf_counter()`` — monotonic and the highest-resolution
clock Python offers — never ``time.time()``, whose wall clock can jump
backwards under NTP adjustment and corrupt accumulated cost measurements.
A regression test pins this choice.
"""

from __future__ import annotations

import time
from contextlib import contextmanager


class Stopwatch:
    """Accumulating wall-clock timer.

    Example::

        sw = Stopwatch()
        with sw.running():
            expensive_call()
        print(sw.elapsed)
    """

    def __init__(self) -> None:
        self._elapsed = 0.0
        self._started_at: float | None = None

    @property
    def elapsed(self) -> float:
        """Seconds accumulated so far (includes a currently open window)."""
        extra = 0.0
        if self._started_at is not None:
            extra = time.perf_counter() - self._started_at
        return self._elapsed + extra

    def start(self) -> None:
        if self._started_at is not None:
            raise RuntimeError("stopwatch already running")
        self._started_at = time.perf_counter()

    def stop(self) -> float:
        """Close the current window; returns total elapsed seconds."""
        if self._started_at is None:
            raise RuntimeError("stopwatch is not running")
        self._elapsed += time.perf_counter() - self._started_at
        self._started_at = None
        return self._elapsed

    def reset(self) -> None:
        self._elapsed = 0.0
        self._started_at = None

    @contextmanager
    def running(self):
        """Context manager measuring the enclosed block."""
        self.start()
        try:
            yield self
        finally:
            self.stop()
