"""Deterministic random-number-generator plumbing.

Every stochastic component in the library takes either an integer seed or a
:class:`numpy.random.Generator`.  Centralising the coercion here keeps the
whole experiment pipeline reproducible: a single root seed fans out into
independent child generators for data generation, partitioning, model
initialisation and Monte-Carlo sampling.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

# Re-exported so callers can type-annotate without importing numpy.random.
SeedSequence = np.random.SeedSequence

RngLike = "int | None | np.random.Generator | np.random.SeedSequence"


def make_rng(seed: int | None | np.random.Generator | np.random.SeedSequence = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Passing an existing generator returns it unchanged, so components can
    share a stream when the caller wants correlated draws.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(
    seed: int | None | np.random.Generator | np.random.SeedSequence,
    n: int,
) -> list[np.random.Generator]:
    """Derive ``n`` statistically independent child generators from ``seed``.

    Used to hand each federated participant its own stream so that adding or
    removing a participant does not perturb the draws of the others — a
    property the leave-one-out Shapley baselines rely on.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if isinstance(seed, np.random.Generator):
        # Spawn through the generator's bit-generator seed sequence.
        seq = seed.bit_generator.seed_seq
        if seq is None:  # pragma: no cover - numpy always sets seed_seq
            raise ValueError("generator has no seed sequence to spawn from")
    elif isinstance(seed, np.random.SeedSequence):
        seq = seed
    else:
        seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(n)]


def derive_seed(seed: int | None, *salt: int) -> int:
    """Mix ``salt`` integers into ``seed`` to get a stable derived seed.

    Handy for benchmarks that sweep a parameter grid and want a distinct but
    reproducible seed per grid point.
    """
    seq = np.random.SeedSequence([0 if seed is None else seed, *salt])
    return int(seq.generate_state(1, dtype=np.uint64)[0] % (2**63))


def shuffled(items: Iterable, rng: np.random.Generator) -> list:
    """Return ``items`` as a new list in a random order (input untouched)."""
    out = list(items)
    rng.shuffle(out)
    return out
