"""Flattening model parameters to a single vector and back.

DIG-FL treats the model as one parameter vector: local updates, global
gradients and validation gradients are all elements of R^p.  Models in this
library expose their parameters as lists of numpy arrays; these helpers pack
them into a contiguous float64 vector and restore the original shapes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ParamSpec:
    """Shapes and sizes of a parameter list, enough to invert flattening."""

    shapes: tuple[tuple[int, ...], ...]
    sizes: tuple[int, ...]

    @property
    def total_size(self) -> int:
        return int(sum(self.sizes))

    @classmethod
    def of(cls, params: list[np.ndarray]) -> "ParamSpec":
        shapes = tuple(tuple(p.shape) for p in params)
        sizes = tuple(int(p.size) for p in params)
        return cls(shapes=shapes, sizes=sizes)


def flatten_params(params: list[np.ndarray]) -> tuple[np.ndarray, ParamSpec]:
    """Concatenate a list of arrays into one float64 vector.

    Returns the vector and a :class:`ParamSpec` that
    :func:`unflatten_params` uses to restore shapes.  An empty list yields a
    zero-length vector.
    """
    spec = ParamSpec.of(params)
    if not params:
        return np.zeros(0, dtype=np.float64), spec
    flat = np.concatenate([np.asarray(p, dtype=np.float64).ravel() for p in params])
    return flat, spec


def unflatten_params(flat: np.ndarray, spec: ParamSpec) -> list[np.ndarray]:
    """Inverse of :func:`flatten_params`."""
    flat = np.asarray(flat, dtype=np.float64)
    if flat.ndim != 1:
        raise ValueError(f"expected 1-D vector, got shape {flat.shape}")
    if flat.size != spec.total_size:
        raise ValueError(
            f"vector has {flat.size} elements but spec expects {spec.total_size}"
        )
    out: list[np.ndarray] = []
    offset = 0
    for shape, size in zip(spec.shapes, spec.sizes):
        out.append(flat[offset : offset + size].reshape(shape).copy())
        offset += size
    return out


def params_close(a: list[np.ndarray], b: list[np.ndarray], atol: float = 1e-10) -> bool:
    """True when two parameter lists match shape-wise and element-wise."""
    if len(a) != len(b):
        return False
    return all(
        x.shape == y.shape and np.allclose(x, y, atol=atol) for x, y in zip(a, b)
    )
