"""Cryptographic substrate for the VFL protocol (Paillier + masking)."""

from repro.crypto.masking import MaskGenerator
from repro.crypto.paillier import (
    FRACTIONAL_BITS,
    EncryptedNumber,
    PrivateKey,
    PublicKey,
    add_vectors,
    decrypt_vector,
    encrypt_vector,
    generate_keypair,
)
from repro.crypto.primes import generate_prime, generate_prime_pair, is_probable_prime

__all__ = [
    "EncryptedNumber",
    "FRACTIONAL_BITS",
    "MaskGenerator",
    "PrivateKey",
    "PublicKey",
    "add_vectors",
    "decrypt_vector",
    "encrypt_vector",
    "generate_keypair",
    "generate_prime",
    "generate_prime_pair",
    "is_probable_prime",
]
