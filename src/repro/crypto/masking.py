"""Additive random masks for hiding gradients from the trusted third-party.

Step 4 of the paper's running-example protocol has each participant add an
encrypted random mask ``M_i`` to its encrypted gradient before the
third-party decrypts, so the third-party only ever sees ``grad + M_i``; the
participant strips the mask locally afterwards.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import make_rng


class MaskGenerator:
    """Produces and remembers additive masks per (round, tag)."""

    def __init__(self, scale: float = 1.0, *, seed=None) -> None:
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        self._rng = make_rng(seed)
        self._scale = scale
        self._masks: dict[tuple[int, str], np.ndarray] = {}

    def mask_for(self, round_index: int, tag: str, size: int) -> np.ndarray:
        """Fresh mask for (round, tag); re-querying returns the same mask."""
        key = (round_index, tag)
        if key not in self._masks:
            self._masks[key] = self._rng.uniform(-self._scale, self._scale, size=size)
        mask = self._masks[key]
        if len(mask) != size:
            raise ValueError(
                f"mask for {key} has size {len(mask)}, requested {size}"
            )
        return mask

    def unmask(self, round_index: int, tag: str, masked: np.ndarray) -> np.ndarray:
        """Remove a previously issued mask from ``masked``."""
        key = (round_index, tag)
        if key not in self._masks:
            raise KeyError(f"no mask was issued for {key}")
        return np.asarray(masked) - self._masks[key]

    def discard(self, round_index: int, tag: str) -> None:
        """Forget a mask once the round is complete."""
        self._masks.pop((round_index, tag), None)
