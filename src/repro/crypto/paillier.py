"""Paillier additively homomorphic encryption with fixed-point float support.

This is the ``[[·]]`` of the paper's Sec. IV-B running example: the trusted
third-party generates the key pair, participants exchange encrypted
residuals/gradients, and the homomorphic operations used are exactly

* ciphertext + ciphertext           (encrypted residual aggregation),
* ciphertext + plaintext float      (adding random masks),
* ciphertext * plaintext float      (multiplying the residual by a feature).

Floats are handled python-paillier-style: each :class:`EncryptedNumber`
carries a base-2 ``exponent``; multiplication by an encoded scalar adds
exponents, and addition first aligns them by homomorphically scaling the
coarser operand.  Decoding maps residues above ``n/2`` back to negatives.

Key size defaults to 1024 bits as in the paper; the test suite uses smaller
keys purely for speed (security is irrelevant to correctness there).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.crypto.primes import generate_prime_pair

#: Bits of fractional precision per encoding step.
FRACTIONAL_BITS = 32


def _lcm(a: int, b: int) -> int:
    return a * b // math.gcd(a, b)


@dataclass(frozen=True)
class PublicKey:
    """Paillier public key (n, g = n+1)."""

    n: int

    @property
    def n_sq(self) -> int:
        return self.n * self.n

    @property
    def max_int(self) -> int:
        """Largest magnitude representable before wraparound (n // 3)."""
        return self.n // 3

    @property
    def key_bits(self) -> int:
        return self.n.bit_length()

    def raw_encrypt(self, m: int, rng: random.Random | None = None) -> int:
        """Encrypt integer ``m`` (mod n) with fresh randomness."""
        rng = rng or random.Random()
        n, n_sq = self.n, self.n_sq
        m = m % n
        # g = n+1 lets g^m mod n^2 be computed without exponentiation.
        g_m = (1 + m * n) % n_sq
        while True:
            r = rng.randrange(1, n)
            if math.gcd(r, n) == 1:
                break
        return (g_m * pow(r, n, n_sq)) % n_sq

    def encrypt(self, value: float, exponent: int = -FRACTIONAL_BITS,
                rng: random.Random | None = None) -> "EncryptedNumber":
        """Encrypt a float at fixed-point ``exponent`` (base 2)."""
        encoded = _encode(value, exponent, self)
        return EncryptedNumber(self, self.raw_encrypt(encoded, rng), exponent)


@dataclass(frozen=True)
class PrivateKey:
    """Paillier private key.

    Stores λ = lcm(p−1, q−1) and μ = λ⁻¹ mod n (enough for the textbook
    decryption), plus the prime factors so decryption can run ~4× faster
    through the Chinese Remainder Theorem: two half-size exponentiations
    mod p² and q² instead of one full-size one mod n².
    """

    public_key: PublicKey
    lam: int
    mu: int
    p: int = 0
    q: int = 0

    def __post_init__(self) -> None:
        if self.p and self.q:
            if self.p * self.q != self.public_key.n:
                raise ValueError("p·q does not match the public modulus")
            # Precompute the CRT constants once (frozen dataclass: go
            # through object.__setattr__).
            object.__setattr__(self, "_p_sq", self.p * self.p)
            object.__setattr__(self, "_q_sq", self.q * self.q)
            object.__setattr__(
                self, "_hp", self._h(self.p, self._p_sq)
            )
            object.__setattr__(
                self, "_hq", self._h(self.q, self._q_sq)
            )
            object.__setattr__(self, "_q_inv_p", pow(self.q, -1, self.p))

    def _h(self, prime: int, prime_sq: int) -> int:
        """CRT helper: h = L_p(g^{p-1} mod p²)^{-1} mod p for g = n+1."""
        u = pow(1 + self.public_key.n, prime - 1, prime_sq)
        l_value = (u - 1) // prime
        return pow(l_value % prime, -1, prime)

    def raw_decrypt(self, ciphertext: int) -> int:
        if self.p and self.q:
            return self._raw_decrypt_crt(ciphertext)
        n, n_sq = self.public_key.n, self.public_key.n_sq
        u = pow(ciphertext, self.lam, n_sq)
        l_value = (u - 1) // n
        return (l_value * self.mu) % n

    def _raw_decrypt_crt(self, ciphertext: int) -> int:
        """Decrypt via CRT on the factors (Paillier '99, §7)."""
        p, q = self.p, self.q
        up = pow(ciphertext % self._p_sq, p - 1, self._p_sq)
        mp = ((up - 1) // p * self._hp) % p
        uq = pow(ciphertext % self._q_sq, q - 1, self._q_sq)
        mq = ((uq - 1) // q * self._hq) % q
        # Garner recombination.
        diff = (mp - mq) % p
        return (mq + q * ((diff * self._q_inv_p) % p)) % self.public_key.n

    def decrypt(self, enc: "EncryptedNumber") -> float:
        """Decrypt and decode to a float (handles negatives)."""
        if enc.public_key.n != self.public_key.n:
            raise ValueError("ciphertext was encrypted under a different key")
        return _decode(self.raw_decrypt(enc.ciphertext), enc.exponent, self.public_key)


def generate_keypair(bits: int = 1024, seed: int | None = None) -> tuple[PublicKey, PrivateKey]:
    """Generate a Paillier key pair with an n of roughly ``bits`` bits."""
    rng = random.Random(seed)
    p, q = generate_prime_pair(bits // 2, rng)
    n = p * q
    pub = PublicKey(n)
    lam = _lcm(p - 1, q - 1)
    # For g = n+1: L(g^λ mod n²) = λ mod n, so μ = λ^{-1} mod n.
    mu = pow(lam % n, -1, n)
    return pub, PrivateKey(pub, lam, mu, p=p, q=q)


def _encode(value: float, exponent: int, pk: PublicKey) -> int:
    """Fixed-point encode ``value * 2^-exponent`` as a residue mod n."""
    if exponent > 0:
        raise ValueError(f"exponent must be <= 0, got {exponent}")
    scaled = int(round(value * (2 ** -exponent)))
    if abs(scaled) > pk.max_int:
        raise OverflowError(
            f"value {value} at exponent {exponent} exceeds the plaintext space; "
            "use a larger key or fewer fractional bits"
        )
    return scaled % pk.n


def _decode(residue: int, exponent: int, pk: PublicKey) -> float:
    n = pk.n
    if residue > n // 2:
        residue -= n
    return residue * (2.0 ** exponent)


class EncryptedNumber:
    """A Paillier ciphertext with a fixed-point exponent.

    Supports ``+`` with another :class:`EncryptedNumber` or a plaintext
    float, and ``*`` with a plaintext float — everything the VFL protocol
    needs, and nothing that would require interaction.
    """

    __slots__ = ("public_key", "ciphertext", "exponent")

    def __init__(self, public_key: PublicKey, ciphertext: int, exponent: int):
        self.public_key = public_key
        self.ciphertext = ciphertext
        self.exponent = exponent

    @property
    def nbytes(self) -> int:
        """Wire size: a ciphertext lives in Z_{n²}."""
        return (2 * self.public_key.key_bits + 7) // 8

    def _scaled_to(self, exponent: int) -> "EncryptedNumber":
        """Homomorphically rescale to a finer (more negative) exponent."""
        if exponent == self.exponent:
            return self
        if exponent > self.exponent:
            raise ValueError("can only rescale to a finer exponent")
        factor = 2 ** (self.exponent - exponent)
        new_c = pow(self.ciphertext, factor, self.public_key.n_sq)
        return EncryptedNumber(self.public_key, new_c, exponent)

    def __add__(self, other):
        pk = self.public_key
        if isinstance(other, EncryptedNumber):
            if other.public_key.n != pk.n:
                raise ValueError("cannot add ciphertexts under different keys")
            exponent = min(self.exponent, other.exponent)
            a = self._scaled_to(exponent)
            b = other._scaled_to(exponent)
            return EncryptedNumber(pk, (a.ciphertext * b.ciphertext) % pk.n_sq, exponent)
        # plaintext float/int
        value = float(other)
        encoded = _encode(value, self.exponent, pk)
        g_m = (1 + encoded * pk.n) % pk.n_sq
        return EncryptedNumber(pk, (self.ciphertext * g_m) % pk.n_sq, self.exponent)

    __radd__ = __add__

    def __sub__(self, other):
        if isinstance(other, EncryptedNumber):
            return self + (other * -1.0)
        return self + (-float(other))

    def __mul__(self, scalar):
        """Multiply by a plaintext scalar (float: exponents add)."""
        if isinstance(scalar, EncryptedNumber):
            raise TypeError(
                "Paillier is additively homomorphic only; "
                "ciphertext*ciphertext needs an interactive protocol"
            )
        pk = self.public_key
        value = float(scalar)
        if value == int(value) and abs(value) <= pk.max_int:
            # Integer scalars keep the exponent (no precision lost).
            encoded = int(value) % pk.n
            exponent = self.exponent
        else:
            encoded = _encode(value, -FRACTIONAL_BITS, pk)
            exponent = self.exponent - FRACTIONAL_BITS
        new_c = pow(self.ciphertext, encoded, pk.n_sq)
        return EncryptedNumber(pk, new_c, exponent)

    __rmul__ = __mul__


# --- vector helpers ---------------------------------------------------------


def encrypt_vector(pk: PublicKey, values, rng: random.Random | None = None) -> list[EncryptedNumber]:
    """Encrypt an iterable of floats elementwise."""
    rng = rng or random.Random()
    return [pk.encrypt(float(v), rng=rng) for v in values]


def decrypt_vector(sk: PrivateKey, ciphers) -> list[float]:
    """Decrypt a list of :class:`EncryptedNumber` to floats."""
    return [sk.decrypt(c) for c in ciphers]


def add_vectors(a: list[EncryptedNumber], b) -> list[EncryptedNumber]:
    """Elementwise sum of a ciphertext vector with ciphertexts or plaintexts."""
    if len(a) != len(b):
        raise ValueError(f"length mismatch: {len(a)} vs {len(b)}")
    return [x + y for x, y in zip(a, b)]
