"""Probabilistic prime generation for Paillier key pairs.

Miller–Rabin with a small-prime sieve; entirely self-contained so the VFL
protocol substrate has no dependency beyond the standard library.
"""

from __future__ import annotations

import random

# Primes below 1000 — cheap trial division rejects ~90% of candidates before
# any modular exponentiation happens.
_SMALL_PRIMES: list[int] = []


def _small_primes() -> list[int]:
    if not _SMALL_PRIMES:
        sieve = bytearray([1]) * 1000
        sieve[0] = sieve[1] = 0
        for i in range(2, 32):
            if sieve[i]:
                sieve[i * i :: i] = bytearray(len(sieve[i * i :: i]))
        _SMALL_PRIMES.extend(i for i, flag in enumerate(sieve) if flag)
    return _SMALL_PRIMES


def is_probable_prime(n: int, rounds: int = 40, rng: random.Random | None = None) -> bool:
    """Miller–Rabin primality test with ``rounds`` random bases.

    Error probability is at most ``4**-rounds`` for composite ``n``.
    """
    if n < 2:
        return False
    for p in _small_primes():
        if n == p:
            return True
        if n % p == 0:
            return False
    rng = rng or random.Random()
    # Write n-1 = d * 2^r with d odd.
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        a = rng.randrange(2, n - 1)
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = pow(x, 2, n)
            if x == n - 1:
                break
        else:
            return False
    return True


def generate_prime(bits: int, rng: random.Random | None = None) -> int:
    """A random probable prime with exactly ``bits`` bits."""
    if bits < 8:
        raise ValueError(f"bits must be >= 8, got {bits}")
    rng = rng or random.Random()
    while True:
        # Force the top bit (exact size) and the bottom bit (odd).
        candidate = rng.getrandbits(bits) | (1 << (bits - 1)) | 1
        if is_probable_prime(candidate, rng=rng):
            return candidate


def generate_prime_pair(bits: int, rng: random.Random | None = None) -> tuple[int, int]:
    """Two distinct primes of ``bits`` bits each (for an RSA-style modulus)."""
    rng = rng or random.Random()
    p = generate_prime(bits, rng)
    q = generate_prime(bits, rng)
    while q == p:
        q = generate_prime(bits, rng)
    return p, q
