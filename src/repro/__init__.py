"""DIG-FL: efficient participant contribution evaluation for HFL and VFL.

Reproduction of Wang et al., *Efficient Participant Contribution Evaluation
for Horizontal and Vertical Federated Learning* (ICDE 2022).

Public API tour
---------------
* :mod:`repro.core` — the DIG-FL estimators (Algorithms 1 and 2, the VFL
  estimator of Eq. 27) and the reweight mechanism (Eq. 17–18).
* :mod:`repro.hfl` / :mod:`repro.vfl` — federated training simulators that
  produce the training logs DIG-FL consumes; :mod:`repro.vfl.encrypted` runs
  the paper's Paillier protocol end to end.
* :mod:`repro.shapley` — exact Shapley ground truth plus the TMC / GT / MR /
  IM baselines of Sec. V-D.
* :mod:`repro.data` — synthetic stand-ins for the paper's 14 datasets,
  partitioners and data-quality corruption.
* :mod:`repro.autodiff`, :mod:`repro.nn`, :mod:`repro.models`,
  :mod:`repro.crypto` — the substrates (autodiff with double-backward,
  neural layers, analytic models, Paillier encryption).

Quickstart::

    from repro.data import mnist_like, build_hfl_federation
    from repro.hfl import HFLTrainer
    from repro.nn import LRSchedule, make_hfl_model
    from repro.core import estimate_hfl_resource_saving

    fed = build_hfl_federation(mnist_like(2000, seed=0), n_parties=5,
                               n_mislabeled=1, n_noniid=1, seed=0)
    trainer = HFLTrainer(lambda: make_hfl_model("mnist", seed=0),
                         epochs=15, lr_schedule=LRSchedule(0.5))
    result = trainer.train(fed.locals, fed.validation)
    report = estimate_hfl_resource_saving(
        result.log, fed.validation, lambda: make_hfl_model("mnist", seed=0))
    print(dict(zip(report.participant_ids, report.totals)))
"""

from repro.core import (
    ContributionReport,
    DIGFLReweighter,
    VFLDIGFLReweighter,
    estimate_hfl_interactive,
    estimate_hfl_resource_saving,
    estimate_vfl_first_order,
    estimate_vfl_second_order,
)
from repro.scenario import HFLScenario, VFLScenario, quick_audit

__version__ = "1.0.0"

__all__ = [
    "ContributionReport",
    "DIGFLReweighter",
    "HFLScenario",
    "VFLDIGFLReweighter",
    "VFLScenario",
    "__version__",
    "estimate_hfl_interactive",
    "estimate_hfl_resource_saving",
    "estimate_vfl_first_order",
    "estimate_vfl_second_order",
    "quick_audit",
]
