"""Defense and recovery for long-running contribution audits.

PR 1 gave the runtime a *timing-plane* fault model (dropouts, stragglers,
crash-retry).  This package hardens the *data plane* and the server
itself — the two ways a long audit still dies:

* **Defense** — a corrupted local update (NaN bomb, sign flip, ×100
  boosting; all constructible via :mod:`repro.hfl.attacks`) silently
  poisons ``θ_t``, the training log and every downstream DIG-FL score.
  :mod:`repro.robust.aggregators` bounds the damage (coordinate-wise
  median, trimmed mean, norm clipping, Krum/multi-Krum behind one
  :class:`Aggregator` interface, weighted mean being the seed behaviour);
  :mod:`repro.robust.screening` removes bad updates outright, records
  each exclusion in a :class:`QuarantineLedger`, and marks the party
  absent in the round's participation mask so the estimators already
  attribute correctly.
* **Recovery** — a server crash used to throw the whole log away.
  :mod:`repro.robust.checkpoint` appends the log per round to a
  checksummed, atomically-renamed file and resumes from the last
  complete round, bit-for-bit.

Quickstart::

    from repro.robust import CheckpointManager, TrimmedMean, UpdateScreener

    screener = UpdateScreener()
    checkpoint = CheckpointManager("run_dir")
    result = trainer.train(
        fed.locals, fed.validation,
        aggregator=TrimmedMean(0.2), screener=screener,
        checkpoint=checkpoint, resume=True,
    )
    print(screener.ledger.summary())

CLI: ``python -m repro.cli audit-hfl --robust-agg trimmed --screen
--checkpoint-dir run_dir --resume``.
"""

from repro.robust.aggregators import (
    AGGREGATOR_NAMES,
    Aggregator,
    CoordinateMedian,
    Krum,
    NormClipping,
    TrimmedMean,
    WeightedMean,
    make_aggregator,
)
from repro.robust.checkpoint import CheckpointError, CheckpointManager
from repro.robust.config import RobustConfig
from repro.robust.quarantine import QuarantineIncident, QuarantineLedger
from repro.robust.screening import ScreenConfig, UpdateScreener, rms_norm

__all__ = [
    "AGGREGATOR_NAMES",
    "Aggregator",
    "CheckpointError",
    "CheckpointManager",
    "CoordinateMedian",
    "Krum",
    "NormClipping",
    "QuarantineIncident",
    "QuarantineLedger",
    "RobustConfig",
    "ScreenConfig",
    "TrimmedMean",
    "UpdateScreener",
    "WeightedMean",
    "make_aggregator",
    "rms_norm",
]
