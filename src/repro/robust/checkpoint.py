"""Crash-safe checkpointing of training logs, and resume.

DIG-FL's premise is "evaluate from the training log" — so losing the log
to a mid-run crash forfeits every contribution score of the run.  The
:class:`CheckpointManager` makes the log durable round by round:

* after every round the trainer hands the manager the full log so far;
* the manager serialises it through :mod:`repro.io` (which embeds a
  content checksum) into a **temporary file in the same directory**,
  flushes it to disk, and ``os.replace``s it over the checkpoint — so the
  checkpoint file on disk is always a *complete, self-consistent prefix*
  of the run.  A crash mid-write leaves the previous round's file intact;
  a crash between rounds loses at most the round in flight.

:meth:`CheckpointManager.resume` is the recovery entry point: it
validates integrity (the checksum check in :mod:`repro.io`) and returns
the log of the last complete round, from which the trainers continue —
bit-for-bit identically to a run that never crashed, because FedSGD's
trajectory depends only on ``θ`` and the (epoch, participant)-seeded
local draws.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.hfl.log import TrainingLog
from repro.io import (
    TrainingLogIntegrityError,
    load_training_log,
    load_vfl_training_log,
    save_training_log,
    save_vfl_training_log,
)
from repro.vfl.log import VFLTrainingLog


class CheckpointError(RuntimeError):
    """A checkpoint exists but cannot be trusted or does not match the run."""


class CheckpointManager:
    """Atomic, checksummed persistence of one training run's log.

    ``kind`` is ``"hfl"`` or ``"vfl"`` and fixes the serialisation format;
    one manager owns one checkpoint file (``training_log.npz`` inside
    ``directory``), created on first :meth:`save`.
    """

    FILENAME = "training_log.npz"

    def __init__(self, directory: str | Path, *, kind: str = "hfl") -> None:
        if kind not in ("hfl", "vfl"):
            raise ValueError(f"kind must be 'hfl' or 'vfl', got {kind!r}")
        self.directory = Path(directory)
        self.kind = kind

    @property
    def path(self) -> Path:
        return self.directory / self.FILENAME

    def exists(self) -> bool:
        return self.path.exists()

    # ------------------------------------------------------------------ save

    def save(self, log: TrainingLog | VFLTrainingLog) -> None:
        """Atomically persist the log (all complete rounds so far)."""
        self.directory.mkdir(parents=True, exist_ok=True)
        # The tmp name must keep the .npz suffix: np.savez appends it
        # otherwise and the rename source would not exist.
        tmp = self.path.with_name("." + self.path.stem + ".tmp.npz")
        if self.kind == "hfl":
            save_training_log(log, tmp)
        else:
            save_vfl_training_log(log, tmp)
        with open(tmp, "rb+") as fh:
            os.fsync(fh.fileno())
        os.replace(tmp, self.path)
        self._fsync_directory()

    def _fsync_directory(self) -> None:
        """Make the rename itself durable (best effort off POSIX)."""
        try:
            fd = os.open(self.directory, os.O_RDONLY)
        except OSError:  # pragma: no cover - non-POSIX platforms
            return
        try:
            os.fsync(fd)
        except OSError:  # pragma: no cover
            pass
        finally:
            os.close(fd)

    # ---------------------------------------------------------------- resume

    def resume(self) -> TrainingLog | VFLTrainingLog | None:
        """Validated log of the last complete round (None: no checkpoint).

        Raises :class:`CheckpointError` when the file exists but fails the
        integrity check or is the wrong log format — a corrupt checkpoint
        must never be silently discarded (that would throw away the very
        rounds checkpointing exists to protect).
        """
        if not self.exists():
            return None
        try:
            if self.kind == "hfl":
                return load_training_log(self.path)
            return load_vfl_training_log(self.path)
        except TrainingLogIntegrityError as exc:
            raise CheckpointError(
                f"checkpoint {self.path} failed integrity validation: {exc}. "
                "Move the file aside to restart from scratch."
            ) from exc
        except ValueError as exc:
            raise CheckpointError(
                f"checkpoint {self.path} is not a {self.kind.upper()} "
                f"training log: {exc}"
            ) from exc

    def clear(self) -> None:
        """Delete the checkpoint (e.g. after the run completed and was archived)."""
        if self.exists():
            self.path.unlink()
