"""Structured quarantine ledger: every excluded update, with its reason.

Screening (``repro.robust.screening``) never silently drops an update —
each exclusion becomes a :class:`QuarantineIncident` on a
:class:`QuarantineLedger`, the audit trail that lets an operator answer
*who was excluded, when, and why*, and lets the DIG-FL reports be
cross-checked against the participation masks in the training log (a
quarantined party is marked absent for that round, so its per-epoch
contribution is zero by construction).
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Mapping

_LEDGER_FORMAT = "repro.quarantine_ledger.v1"

# Screening rules, by incident ``rule`` value.
RULE_NONFINITE = "nonfinite"
RULE_NORM = "norm"
RULE_COSINE = "cosine"


@dataclass(frozen=True)
class QuarantineIncident:
    """One update excluded from one round.

    ``rule`` names the screening rule that fired; ``detail`` carries the
    rule-specific numbers (the offending norm and the scale estimate, the
    cosine against the cohort median, …) so incidents are auditable
    without re-running the screen.
    """

    round: int
    party: int
    rule: str
    detail: Mapping[str, float] = field(default_factory=dict)

    def to_payload(self) -> dict:
        return {
            "round": self.round,
            "party": self.party,
            "rule": self.rule,
            "detail": dict(self.detail),
        }


@dataclass
class QuarantineLedger:
    """Append-only record of every quarantined update."""

    incidents: list[QuarantineIncident] = field(default_factory=list)

    def record(
        self, round: int, party: int, rule: str, **detail: float
    ) -> QuarantineIncident:
        """Append an incident and return it."""
        incident = QuarantineIncident(
            round=round, party=party, rule=rule, detail=detail
        )
        self.incidents.append(incident)
        return incident

    def __len__(self) -> int:
        return len(self.incidents)

    def __iter__(self) -> Iterator[QuarantineIncident]:
        return iter(self.incidents)

    def parties(self) -> list[int]:
        """Every party that was quarantined at least once, sorted."""
        return sorted({i.party for i in self.incidents})

    def rounds_of(self, party: int) -> list[int]:
        """The rounds in which ``party`` was quarantined, in order."""
        return [i.round for i in self.incidents if i.party == party]

    def by_rule(self) -> dict[str, int]:
        """Incident counts per screening rule."""
        return dict(Counter(i.rule for i in self.incidents))

    def summary(self) -> dict[str, object]:
        """Aggregate view for dashboards and the CLI."""
        return {
            "incidents": len(self.incidents),
            "parties": self.parties(),
            "by_rule": self.by_rule(),
        }

    def save(self, path: str | Path) -> None:
        """Write the ledger as JSON (the auditor-facing artifact)."""
        payload = {
            "format": _LEDGER_FORMAT,
            "incidents": [i.to_payload() for i in self.incidents],
        }
        Path(path).write_text(json.dumps(payload, indent=2))

    @classmethod
    def load(cls, path: str | Path) -> "QuarantineLedger":
        """Read a ledger written by :meth:`save`."""
        payload = json.loads(Path(path).read_text())
        if payload.get("format") != _LEDGER_FORMAT:
            raise ValueError(
                f"{path} is not a quarantine ledger "
                f"(format={payload.get('format')!r})"
            )
        ledger = cls()
        for item in payload["incidents"]:
            ledger.record(
                int(item["round"]),
                int(item["party"]),
                str(item["rule"]),
                **{k: float(v) for k, v in item.get("detail", {}).items()},
            )
        return ledger
