"""Byzantine-robust server-side aggregation rules for HFL.

The FedSGD server of Sec. III-A aggregates ``G_t = Σ_i ω_{t,i} δ_{t,i}`` —
a weighted mean, which a *single* corrupted update can drive arbitrarily
far (breakdown point 0).  This module packages the weighted mean behind an
:class:`Aggregator` interface and adds the classic robust alternatives:

* :class:`CoordinateMedian` — coordinate-wise median (breakdown ½),
* :class:`TrimmedMean` — coordinate-wise β-trimmed mean (breakdown β),
* :class:`NormClipping` — scale every update down to a norm cap before the
  weighted mean (bounds, rather than removes, an attacker's pull),
* :class:`Krum` — Blanchard et al.'s update-selection rule (and multi-Krum
  when ``multi > 1``): keep the update(s) closest to their peers.

All aggregators receive the same inputs the plain server uses — the
``(k, p)`` matrix of local updates, the aggregation weights, and the
round's arrival mask — and return the global update ``G_t`` to apply.
Rows where ``mask`` is False (dropouts, deadline misses, quarantined
updates) are zero in the matrix and carry zero weight; robust rules must
ignore them entirely rather than treat the zero rows as votes.

Only :class:`WeightedMean` is *linear* in the updates (``G_t`` expressible
as logged weights times logged updates); the trainers store the applied
update on the :class:`~repro.hfl.log.EpochRecord` for the non-linear rules
so the logged trajectory stays exact.
"""

from __future__ import annotations

import abc

import numpy as np


class Aggregator(abc.ABC):
    """One server-side aggregation rule ``(updates, weights, mask) → G_t``."""

    #: Registry name (also what the CLI's ``--robust-agg`` accepts).
    name: str = ""
    #: True when the result is exactly ``weights @ local_updates`` — the
    #: trainers then skip storing a separate applied update in the log.
    linear: bool = False

    @abc.abstractmethod
    def aggregate(
        self,
        local_updates: np.ndarray,
        weights: np.ndarray,
        mask: np.ndarray,
    ) -> np.ndarray:
        """The global update ``G_t`` for one round.

        ``local_updates`` is ``(k, p)`` with zero rows for absent parties,
        ``weights`` sums to 1 over the arrived parties (all-zero when no
        one arrived), ``mask`` is the ``(k,)`` boolean arrival mask.
        """

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class WeightedMean(Aggregator):
    """The paper's server: ``G_t = Σ_i ω_{t,i} δ_{t,i}`` (seed behaviour)."""

    name = "mean"
    linear = True

    def aggregate(
        self, local_updates: np.ndarray, weights: np.ndarray, mask: np.ndarray
    ) -> np.ndarray:
        del mask  # absent rows already have zero weight
        return weights @ local_updates


class CoordinateMedian(Aggregator):
    """Coordinate-wise median over the arrived updates (breakdown point ½)."""

    name = "median"

    def aggregate(
        self, local_updates: np.ndarray, weights: np.ndarray, mask: np.ndarray
    ) -> np.ndarray:
        del weights
        arrived = local_updates[mask]
        if len(arrived) == 0:
            return np.zeros(local_updates.shape[1])
        return np.median(arrived, axis=0)


class TrimmedMean(Aggregator):
    """Coordinate-wise trimmed mean: drop the ``⌊β·m⌋`` extremes per side.

    ``trim_ratio`` is β; with ``m`` arrivals the rule survives up to
    ``⌊β·m⌋`` Byzantine parties.  When trimming would remove everything
    the trim count is clamped so at least one value per coordinate
    remains (the median, effectively).
    """

    name = "trimmed"

    def __init__(self, trim_ratio: float = 0.2) -> None:
        if not 0.0 <= trim_ratio < 0.5:
            raise ValueError(f"trim_ratio must be in [0, 0.5), got {trim_ratio}")
        self.trim_ratio = trim_ratio

    def aggregate(
        self, local_updates: np.ndarray, weights: np.ndarray, mask: np.ndarray
    ) -> np.ndarray:
        del weights
        arrived = local_updates[mask]
        m = len(arrived)
        if m == 0:
            return np.zeros(local_updates.shape[1])
        g = int(np.floor(self.trim_ratio * m))
        g = min(g, (m - 1) // 2)
        if g == 0:
            return arrived.mean(axis=0)
        ordered = np.sort(arrived, axis=0)
        return ordered[g : m - g].mean(axis=0)


class NormClipping(Aggregator):
    """Clip every arrived update to a norm cap, then take the weighted mean.

    ``clip_norm=None`` uses the round's median arrived-update norm as the
    cap — an attacker can still point the wrong way, but can no longer
    out-shout the honest majority by norm alone.
    """

    name = "clip"

    def __init__(self, clip_norm: float | None = None) -> None:
        if clip_norm is not None and clip_norm <= 0.0:
            raise ValueError(f"clip_norm must be positive, got {clip_norm}")
        self.clip_norm = clip_norm

    def aggregate(
        self, local_updates: np.ndarray, weights: np.ndarray, mask: np.ndarray
    ) -> np.ndarray:
        arrived = local_updates[mask]
        if len(arrived) == 0:
            return np.zeros(local_updates.shape[1])
        norms = np.linalg.norm(local_updates, axis=1)
        cap = self.clip_norm
        if cap is None:
            cap = float(np.median(norms[mask]))
        if cap <= 0.0:
            return weights @ local_updates
        scales = np.ones(len(local_updates))
        blown = norms > cap
        scales[blown] = cap / norms[blown]
        return weights @ (local_updates * scales[:, None])


class Krum(Aggregator):
    """Krum / multi-Krum (Blanchard et al., NeurIPS 2017).

    Scores every arrived update by the summed squared distance to its
    ``m − f − 2`` nearest peers and keeps the ``multi`` best-scoring
    updates (averaged uniformly).  ``n_byzantine=None`` assumes the
    largest ``f`` with ``m ≥ 2f + 3``; fewer than three arrivals fall
    back to the weighted mean (no redundancy to exploit).
    """

    name = "krum"

    def __init__(self, n_byzantine: int | None = None, multi: int = 1) -> None:
        if n_byzantine is not None and n_byzantine < 0:
            raise ValueError(f"n_byzantine must be non-negative, got {n_byzantine}")
        if multi < 1:
            raise ValueError(f"multi must be at least 1, got {multi}")
        self.n_byzantine = n_byzantine
        self.multi = multi

    def aggregate(
        self, local_updates: np.ndarray, weights: np.ndarray, mask: np.ndarray
    ) -> np.ndarray:
        arrived = local_updates[mask]
        m = len(arrived)
        if m == 0:
            return np.zeros(local_updates.shape[1])
        if m <= 2:
            return weights @ local_updates
        f = self.n_byzantine if self.n_byzantine is not None else max((m - 3) // 2, 0)
        neighbours = max(m - f - 2, 1)
        sq = np.sum((arrived[:, None, :] - arrived[None, :, :]) ** 2, axis=2)
        np.fill_diagonal(sq, np.inf)
        scores = np.sort(sq, axis=1)[:, :neighbours].sum(axis=1)
        keep = min(self.multi, m)
        chosen = np.sort(np.argsort(scores, kind="stable")[:keep])
        return arrived[chosen].mean(axis=0)


def make_aggregator(name: str, **params) -> Aggregator:
    """Build an aggregator by registry name (the CLI's ``--robust-agg``).

    ``multikrum`` is ``krum`` with ``multi`` defaulting to 3.
    """
    if name == "mean":
        return WeightedMean()
    if name == "median":
        return CoordinateMedian()
    if name == "trimmed":
        return TrimmedMean(**params)
    if name == "clip":
        return NormClipping(**params)
    if name == "krum":
        return Krum(**params)
    if name == "multikrum":
        params.setdefault("multi", 3)
        return Krum(**params)
    raise ValueError(
        f"unknown aggregator {name!r} "
        "(choose from mean, median, trimmed, clip, krum, multikrum)"
    )


AGGREGATOR_NAMES = ("mean", "median", "trimmed", "clip", "krum", "multikrum")
