"""Pre-aggregation update screening: quarantine bad updates before ``G_t``.

Robust aggregators bound how far a corrupted update can pull the global
model; screening removes the update entirely *and says so*.  Three rules,
cheapest first:

1. **Non-finite** — any NaN/Inf coordinate.  One such update would
   otherwise poison ``θ_t``, the training log, and every downstream
   DIG-FL score in a single round.
2. **Norm blow-up** — the update's RMS norm exceeds ``norm_factor`` times
   a running *robust scale estimate* (the median of recently accepted RMS
   norms plus the current round's cohort).  Catches model-replacement /
   boosting attacks and diverging parties; RMS (norm over √p) keeps the
   scale comparable across VFL feature blocks of different sizes.
3. **Cosine outlier** — the update points against the cohort: its cosine
   similarity to the coordinate-wise median of the surviving updates is
   below ``cosine_threshold``.  Catches sign-flip attacks that match the
   honest norm exactly.  Needs a homogeneous cohort (same dimension, at
   least ``min_cohort`` survivors), so it is skipped for VFL blocks.

A quarantined update is zeroed, its party is marked absent in that
round's participation mask (so all four DIG-FL estimators already
attribute correctly — absent ⇒ zero per-epoch contribution, arrived-count
divisor), and the incident lands in the
:class:`~repro.robust.quarantine.QuarantineLedger`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.robust.quarantine import (
    RULE_COSINE,
    RULE_NONFINITE,
    RULE_NORM,
    QuarantineLedger,
)


def rms_norm(update: np.ndarray) -> float:
    """``‖u‖₂ / √p`` — dimension-free scale of an update."""
    u = np.asarray(update)
    if u.size == 0:
        return 0.0
    return float(np.linalg.norm(u) / np.sqrt(u.size))


@dataclass(frozen=True)
class ScreenConfig:
    """Thresholds of the screening pass.

    The defaults are deliberately loose: honest non-IID parties disagree
    with the cohort *direction* mildly (cosine stays far above −0.5) and
    their norms sit within a small factor of the cohort median, while the
    attacks worth screening (NaN bombs, ×100 boosting, sign flips) sit
    orders of magnitude outside.  ``history_window`` bounds the memory of
    the running scale estimate so a slowly decaying gradient norm (normal
    late in training) does not make old large norms look like the rule.
    """

    check_nonfinite: bool = True
    norm_factor: float = 10.0  # quarantine when rms > factor × scale
    min_scale_samples: int = 3  # accepted norms needed before the norm rule arms
    cosine_threshold: float | None = -0.5  # None disables the direction rule
    min_cohort: int = 3  # survivors needed for cross-party rules
    history_window: int = 200  # accepted RMS norms retained

    def __post_init__(self) -> None:
        if self.norm_factor <= 1.0:
            raise ValueError(f"norm_factor must exceed 1, got {self.norm_factor}")
        if self.cosine_threshold is not None and not -1.0 <= self.cosine_threshold <= 1.0:
            raise ValueError(
                f"cosine_threshold must be in [-1, 1], got {self.cosine_threshold}"
            )
        if self.min_cohort < 2:
            raise ValueError(f"min_cohort must be at least 2, got {self.min_cohort}")
        if self.history_window < 1:
            raise ValueError(
                f"history_window must be positive, got {self.history_window}"
            )


class UpdateScreener:
    """Stateful screening pass shared by the HFL/VFL trainers and the runtime.

    State is just the rolling history of accepted RMS norms (the robust
    scale estimate); :meth:`warm_start` rebuilds it from a checkpointed
    training log so a resumed run screens exactly like an uninterrupted
    one.
    """

    def __init__(
        self,
        config: ScreenConfig | None = None,
        ledger: QuarantineLedger | None = None,
    ) -> None:
        self.config = config if config is not None else ScreenConfig()
        self.ledger = ledger if ledger is not None else QuarantineLedger()
        self._norms: deque[float] = deque(maxlen=self.config.history_window)

    # ------------------------------------------------------------------ screen

    def screen(
        self,
        round: int,
        party_ids: Sequence[int],
        updates: Sequence[np.ndarray] | np.ndarray,
        mask: np.ndarray | None = None,
        *,
        homogeneous: bool = True,
    ) -> np.ndarray:
        """Screen one round's updates; returns the surviving arrival mask.

        ``updates[row]`` is party ``party_ids[row]``'s candidate update
        (matrix rows for HFL, per-party gradient blocks for VFL — shapes
        may differ when ``homogeneous=False``, which also disables the
        cosine rule).  ``mask`` marks the rows that actually arrived this
        round (faults); screening only ever *clears* mask bits.
        """
        rows = [np.asarray(u) for u in updates]
        k = len(rows)
        if len(party_ids) != k:
            raise ValueError(
                f"{len(party_ids)} party ids for {k} updates"
            )
        verdict = (
            np.ones(k, dtype=bool) if mask is None else np.asarray(mask, dtype=bool).copy()
        )
        config = self.config

        # Rule 1: non-finite coordinates.
        if config.check_nonfinite:
            for row in range(k):
                if verdict[row] and not np.all(np.isfinite(rows[row])):
                    bad = int(np.size(rows[row]) - np.sum(np.isfinite(rows[row])))
                    verdict[row] = False
                    self.ledger.record(
                        round, party_ids[row], RULE_NONFINITE,
                        nonfinite_coordinates=float(bad),
                    )

        # Rule 2: norm blow-up against the running robust scale.
        norms = np.array(
            [rms_norm(rows[row]) if verdict[row] else 0.0 for row in range(k)]
        )
        pool = list(self._norms) + [norms[row] for row in range(k) if verdict[row]]
        if len(pool) >= config.min_scale_samples:
            scale = float(np.median(pool))
            if scale > 0.0:
                for row in range(k):
                    if verdict[row] and norms[row] > config.norm_factor * scale:
                        verdict[row] = False
                        self.ledger.record(
                            round, party_ids[row], RULE_NORM,
                            rms_norm=norms[row], scale=scale,
                            factor=norms[row] / scale,
                        )

        # Rule 3: cosine outlier against the surviving cohort median.
        if (
            homogeneous
            and config.cosine_threshold is not None
            and int(verdict.sum()) >= config.min_cohort
            and len({rows[row].shape for row in range(k)}) == 1
        ):
            survivors = np.stack([rows[row] for row in range(k) if verdict[row]])
            reference = np.median(survivors, axis=0)
            ref_norm = float(np.linalg.norm(reference))
            if ref_norm > 0.0:
                for row in range(k):
                    if not verdict[row]:
                        continue
                    u_norm = float(np.linalg.norm(rows[row]))
                    if u_norm == 0.0:
                        continue
                    cosine = float(rows[row].ravel() @ reference.ravel()) / (
                        u_norm * ref_norm
                    )
                    if cosine < config.cosine_threshold:
                        verdict[row] = False
                        self.ledger.record(
                            round, party_ids[row], RULE_COSINE, cosine=cosine
                        )

        # Feed the scale estimate with what was finally accepted.
        for row in range(k):
            if verdict[row]:
                self._norms.append(norms[row])
        return verdict

    # --------------------------------------------------------------- warm start

    def observe_norms(self, norms: Sequence[float]) -> None:
        """Append already-accepted RMS norms to the scale history."""
        for value in norms:
            self._norms.append(float(value))

    def warm_start(self, log) -> None:
        """Rebuild the scale history from a checkpointed training log.

        Accepts either an HFL :class:`~repro.hfl.log.TrainingLog` (update
        rows) or a VFL :class:`~repro.vfl.log.VFLTrainingLog` (per-party
        gradient blocks), replaying only the updates that were accepted —
        quarantined/absent rounds are holes in the participation mask and
        contribute nothing, so a resumed screener matches an
        uninterrupted one exactly.
        """
        if hasattr(log, "feature_blocks"):  # VFL log
            for record in log.records:
                arrived = record.participation_mask()
                for party in log.active_parties:
                    if arrived[party]:
                        block = log.feature_blocks[party]
                        self._norms.append(rms_norm(record.train_gradient[block]))
        else:  # HFL log
            for record in log.records:
                arrived = record.participation_mask()
                for row in range(len(arrived)):
                    if arrived[row]:
                        self._norms.append(rms_norm(record.local_updates[row]))
