"""One-stop configuration for the defense/recovery layer.

:class:`RobustConfig` is what the CLI flags (``--robust-agg``,
``--screen``, ``--checkpoint-dir``, ``--resume``) and the workload
builders speak; its ``make_*`` factories translate the declarative fields
into the live objects the trainers take.  The default configuration is
the *seed regime* — weighted-mean aggregation, screening off, no
checkpointing — under which the trainers are bit-for-bit identical to
the pre-robust code (pinned by ``tests/test_runtime_equivalence.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.robust.aggregators import Aggregator, make_aggregator
from repro.robust.checkpoint import CheckpointManager
from repro.robust.quarantine import QuarantineLedger
from repro.robust.screening import ScreenConfig, UpdateScreener


@dataclass(frozen=True)
class RobustConfig:
    """Declarative description of the robustness features of one run."""

    aggregator: str = "mean"
    trim_ratio: float = 0.2  # TrimmedMean
    clip_norm: float | None = None  # NormClipping (None = median norm)
    krum_byzantine: int | None = None  # Krum/multi-Krum assumed f
    krum_multi: int = 1  # updates multi-Krum averages
    screen: bool = False
    screen_config: ScreenConfig = field(default_factory=ScreenConfig)
    checkpoint_dir: str | Path | None = None
    resume: bool = False

    def __post_init__(self) -> None:
        if self.resume and self.checkpoint_dir is None:
            raise ValueError("resume=True requires a checkpoint_dir")

    def is_default(self) -> bool:
        """True in the seed regime (no robust feature active)."""
        return (
            self.aggregator == "mean"
            and not self.screen
            and self.checkpoint_dir is None
        )

    def make_aggregator(self) -> Aggregator | None:
        """The aggregator, or ``None`` for the seed weighted-mean path."""
        if self.aggregator == "mean":
            return None
        if self.aggregator == "trimmed":
            return make_aggregator("trimmed", trim_ratio=self.trim_ratio)
        if self.aggregator == "clip":
            return make_aggregator("clip", clip_norm=self.clip_norm)
        if self.aggregator in ("krum", "multikrum"):
            params: dict = {"n_byzantine": self.krum_byzantine}
            if self.aggregator == "multikrum" or self.krum_multi > 1:
                params["multi"] = max(self.krum_multi, 3 if self.aggregator == "multikrum" else 1)
            return make_aggregator("krum", **params)
        return make_aggregator(self.aggregator)

    def make_screener(self, ledger: QuarantineLedger | None = None) -> UpdateScreener | None:
        """A fresh screener (None when screening is off)."""
        if not self.screen:
            return None
        return UpdateScreener(self.screen_config, ledger)

    def make_checkpoint(self, kind: str) -> CheckpointManager | None:
        """The checkpoint manager (None when checkpointing is off)."""
        if self.checkpoint_dir is None:
            return None
        return CheckpointManager(self.checkpoint_dir, kind=kind)
