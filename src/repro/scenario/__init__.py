"""Declarative scenarios: one-call runners plus the adverse-condition suite.

Two layers:

* :mod:`repro.scenario.base` — the original declarative facade
  (:class:`HFLScenario`, :class:`VFLScenario`, :func:`quick_audit`):
  federation → training → estimation → summary in one call.
* :mod:`repro.scenario.generators` / :mod:`repro.scenario.matrix` — the
  robustness suite: generators for adverse federations (Dirichlet label
  skew, per-party label noise, free-riders, VFL modality dropout) and the
  :class:`RobustnessMatrix` harness that runs every registered estimator
  backend across the scenario grid and judges each cell (bad parties in
  the bottom-``k``, streaming ``np.array_equal`` batch, Spearman vs exact
  Shapley).

Quickstart::

    from repro.scenario import RobustnessMatrix

    result = RobustnessMatrix(seed=0).run()
    print(result.table())
    result.assert_robustness()
"""

from repro.scenario.base import (
    HFLScenario,
    ScenarioResult,
    VFLScenario,
    VFLScenarioResult,
    quick_audit,
)
from repro.scenario.generators import (
    RIDER_KINDS,
    AdverseRun,
    AdverseScenario,
    DirichletLabelSkew,
    FreeRiders,
    LabelNoise,
    VFLModalityDropout,
    cell_seed,
    get_scenario,
    scenario_grid,
    scenario_names,
)
from repro.scenario.matrix import CellVerdict, MatrixResult, RobustnessMatrix

__all__ = [
    "AdverseRun",
    "AdverseScenario",
    "CellVerdict",
    "DirichletLabelSkew",
    "FreeRiders",
    "HFLScenario",
    "LabelNoise",
    "MatrixResult",
    "RIDER_KINDS",
    "RobustnessMatrix",
    "ScenarioResult",
    "VFLModalityDropout",
    "VFLScenario",
    "VFLScenarioResult",
    "cell_seed",
    "get_scenario",
    "quick_audit",
    "scenario_grid",
    "scenario_names",
]
