"""One-call scenario runner: federation → training → estimation → summary.

The experiment modules each wire the pipeline by hand; downstream users
usually want a single declarative entry point:

    from repro.scenario import HFLScenario

    result = HFLScenario(
        dataset="mnist", n_parties=6, n_mislabeled=2,
        epochs=12, compute_exact=True,
    ).run()
    print(result.summary())

A scenario builds the synthetic federation, trains (optionally under
attack / reweighting), runs DIG-FL, optionally computes the exact Shapley
ground truth, and returns everything in one result object.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.core import (
    DIGFLReweighter,
    estimate_hfl_resource_saving,
    flag_low_quality,
)
from repro.core.contribution import ContributionReport
from repro.data import HFL_DATASETS, build_hfl_federation
from repro.data.partition import FederatedSplit
from repro.hfl import AdversarialHFLTrainer, HFLResult, LocalTrainingConfig
from repro.hfl.attacks import UpdateTransform
from repro.metrics import pearson_correlation
from repro.nn import LRSchedule, make_hfl_model
from repro.shapley import HFLRetrainUtility, exact_shapley
from repro.utils.rng import derive_seed
from repro.utils.validation import check_positive_int


@dataclass
class ScenarioResult:
    """Everything one HFL scenario produced."""

    federation: FederatedSplit
    training: HFLResult
    digfl: ContributionReport
    exact: ContributionReport | None = None
    reweighted_training: HFLResult | None = None

    @property
    def qualities(self) -> list[str]:
        return list(self.federation.qualities)

    @property
    def pcc(self) -> float | None:
        """PCC between DIG-FL and the exact Shapley value, if computed."""
        if self.exact is None:
            return None
        return pearson_correlation(self.digfl.totals, self.exact.totals)

    def flagged(self, threshold: float = 2.5) -> list[int]:
        return flag_low_quality(self.digfl, threshold=threshold)

    def summary(self) -> dict:
        """Compact, JSON-friendly description of the run."""
        out: dict = {
            "n_parties": self.federation.n_parties,
            "qualities": self.qualities,
            "final_accuracy": float(self.training.log.records[-1].val_accuracy),
            "contributions": self.digfl.totals.tolist(),
            "ranking": self.digfl.ranking(),
            "flagged": self.flagged(),
        }
        if self.exact is not None:
            out["exact_shapley"] = self.exact.totals.tolist()
            out["pcc"] = self.pcc
        if self.reweighted_training is not None:
            out["reweighted_accuracy"] = float(
                self.reweighted_training.log.records[-1].val_accuracy
            )
        return out


@dataclass
class HFLScenario:
    """Declarative HFL experiment configuration.

    Attributes mirror the knobs the paper's evaluation sweeps: dataset,
    federation size and corruption, training length, plus the extensions
    (attacks, FedAvg local config, reweighting, exact ground truth).
    """

    dataset: str = "mnist"
    n_parties: int = 5
    n_mislabeled: int = 0
    n_noniid: int = 0
    mislabel_fraction: float = 0.5
    noniid_max_classes: int | None = None
    n_samples: int | None = None
    epochs: int = 10
    lr: float = 0.5
    local_config: LocalTrainingConfig | None = None
    attacks: Mapping[int, UpdateTransform] = field(default_factory=dict)
    reweight: bool = False
    compute_exact: bool = False
    seed: int = 0

    def __post_init__(self) -> None:
        if self.dataset not in HFL_DATASETS:
            raise KeyError(
                f"unknown HFL dataset {self.dataset!r}; known: {sorted(HFL_DATASETS)}"
            )
        check_positive_int(self.n_parties, "n_parties")
        check_positive_int(self.epochs, "epochs")
        bad = [i for i in self.attacks if not 0 <= i < self.n_parties]
        if bad:
            raise ValueError(f"attack targets {bad} outside the federation")

    def model_factory(self):
        """Fresh model with the scenario's deterministic init."""
        return make_hfl_model(self.dataset, seed=derive_seed(self.seed, 3))

    def run(self) -> ScenarioResult:
        """Execute the full pipeline and return the result bundle."""
        info = HFL_DATASETS[self.dataset]
        n_samples = self.n_samples or 250 * self.n_parties
        data = info.make(n_samples=n_samples, seed=derive_seed(self.seed, 1))
        federation = build_hfl_federation(
            data,
            self.n_parties,
            n_mislabeled=self.n_mislabeled,
            n_noniid=self.n_noniid,
            mislabel_fraction=self.mislabel_fraction,
            noniid_max_classes=self.noniid_max_classes,
            seed=derive_seed(self.seed, 2),
        )
        trainer = AdversarialHFLTrainer(
            self.model_factory,
            self.epochs,
            LRSchedule(self.lr),
            local_config=self.local_config,
            attacks=dict(self.attacks),
        )
        training = trainer.train(
            federation.locals, federation.validation, track_validation=True
        )
        digfl = estimate_hfl_resource_saving(
            training.log, federation.validation, self.model_factory
        )

        exact = None
        if self.compute_exact:
            utility = HFLRetrainUtility(
                trainer,
                federation.locals,
                federation.validation,
                init_theta=training.log.initial_theta,
            )
            exact = exact_shapley(utility)

        reweighted = None
        if self.reweight:
            reweighted = trainer.train(
                federation.locals,
                federation.validation,
                reweighter=DIGFLReweighter(federation.validation),
                track_validation=True,
            )
        return ScenarioResult(
            federation=federation,
            training=training,
            digfl=digfl,
            exact=exact,
            reweighted_training=reweighted,
        )


@dataclass
class VFLScenarioResult:
    """Everything one VFL scenario produced."""

    theta: np.ndarray
    digfl: ContributionReport
    exact: ContributionReport | None = None
    validation_score: float = float("nan")

    @property
    def pcc(self) -> float | None:
        if self.exact is None:
            return None
        return pearson_correlation(self.digfl.totals, self.exact.totals)

    def summary(self) -> dict:
        out: dict = {
            "n_parties": self.digfl.n_participants,
            "contributions": self.digfl.totals.tolist(),
            "ranking": self.digfl.ranking(),
            "validation_score": self.validation_score,
        }
        if self.exact is not None:
            out["exact_shapley"] = self.exact.totals.tolist()
            out["pcc"] = self.pcc
        return out


@dataclass
class VFLScenario:
    """Declarative vertical-FL experiment configuration.

    ``n_parties=None`` uses the paper's Table III party count for the
    dataset; ``max_rows`` keeps the optional exact-Shapley ground truth
    (2^n retrainings) tractable.
    """

    dataset: str = "boston"
    n_parties: int | None = None
    epochs: int = 30
    lr: float | None = None
    max_rows: int | None = 1200
    compute_exact: bool = False
    seed: int = 0

    def run(self) -> VFLScenarioResult:
        """Execute the vertical pipeline and return the result bundle."""
        from repro.core import estimate_vfl_first_order
        from repro.experiments.workloads import build_vfl_workload
        from repro.shapley import VFLRetrainUtility

        workload = build_vfl_workload(
            self.dataset,
            n_parties=self.n_parties,
            epochs=self.epochs,
            lr=self.lr,
            max_rows=self.max_rows,
            seed=self.seed,
        )
        digfl = estimate_vfl_first_order(workload.result.log)
        exact = None
        if self.compute_exact:
            utility = VFLRetrainUtility(
                workload.trainer, workload.split.train, workload.split.validation
            )
            exact = exact_shapley(utility)
        score = workload.trainer.model.score(
            workload.result.theta,
            workload.split.validation.X,
            workload.split.validation.y,
        )
        return VFLScenarioResult(
            theta=workload.result.theta,
            digfl=digfl,
            exact=exact,
            validation_score=float(score),
        )


def quick_audit(dataset: str = "mnist", *, seed: int = 0) -> dict:
    """The one-liner: a default corrupted federation, audited end to end."""
    scenario = HFLScenario(
        dataset=dataset,
        n_parties=5,
        n_mislabeled=1,
        n_noniid=1,
        epochs=10,
        compute_exact=True,
        seed=seed,
    )
    return scenario.run().summary()
