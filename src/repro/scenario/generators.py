"""Adverse-federation generators: the scenario axis of the robustness matrix.

Each generator is a small frozen dataclass describing one adverse
condition — Dirichlet label skew, per-party label noise, free-riding
participants, a VFL modality going dark mid-training — and
``generate(seed)`` turns it into an :class:`AdverseRun`: a completed,
fully deterministic training run whose log carries the injected damage,
plus the ground truth the matrix needs to judge an estimator (which
parties are bad, how large a bottom-``k`` they should occupy, how to
compute the exact Shapley reference).

The generators deliberately *train through the normal stack* — the
trainers, the runtime engine, the participation-mask path — instead of
fabricating logs, so a backend that passes the matrix passed it against
exactly the records production serving would feed it.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field, replace
from typing import Callable, Mapping

import numpy as np

from repro.core.contribution import ContributionReport
from repro.data import HFL_DATASETS, build_dirichlet_federation, build_hfl_federation
from repro.data.dataset import Dataset
from repro.data.partition import class_histogram, mislabel, pairwise_mislabel
from repro.hfl import AdversarialHFLTrainer, HFLTrainer
from repro.hfl.attacks import UpdateTransform, noise_echo, stale_update, zero_update
from repro.nn import LRSchedule, make_hfl_model
from repro.shapley import HFLRetrainUtility, exact_shapley
from repro.utils.rng import derive_seed, make_rng

#: Free-rider flavours ``FreeRiders`` knows how to build.
RIDER_KINDS = ("zero", "noise_echo", "stale")


def _salt(token) -> int:
    """Map arbitrary (string) tokens into ``derive_seed``'s int salts."""
    if isinstance(token, (int, np.integer)):
        return int(token)
    return zlib.crc32(str(token).encode("utf-8"))


def cell_seed(seed: int, *tokens) -> int:
    """Stable per-(scenario, backend, ...) seed from string/int tokens."""
    return derive_seed(seed, *(_salt(t) for t in tokens))


@dataclass
class AdverseRun:
    """One generated adverse federation, trained and ready to estimate.

    ``bad_parties`` are the injected low-quality participants a correct
    estimator must expose; ``bottom_k`` is the ranking window they are
    required to occupy (sized to the number of *suspect* parties, which
    may exceed ``bad_parties`` — e.g. a stale free-rider is suspect but
    its one-round-old updates genuinely help, so it is not asserted on).
    ``exact_fn`` lazily computes the exact-Shapley reference (``None``
    when no faithful ground truth exists, e.g. the VFL outage scenario —
    retraining has no fault model to replay the absence).
    """

    name: str
    kind: str  # "hfl" | "vfl"
    seed: int
    n_parties: int
    bad_parties: tuple[int, ...]
    bottom_k: int
    log: object  # TrainingLog | VFLTrainingLog
    metadata: dict
    validation: Dataset | None = None
    model_factory: Callable | None = None
    exact_fn: Callable[[], ContributionReport] | None = None


class AdverseScenario:
    """Interface every generator implements (duck-typed, no registry)."""

    kind: str = "hfl"

    @property
    def name(self) -> str:  # pragma: no cover - overridden everywhere
        raise NotImplementedError

    def generate(self, seed: int = 0) -> AdverseRun:
        raise NotImplementedError


def _corrupt_labels(
    local: Dataset, fraction: float, noise: str, *, seed: int
) -> tuple[Dataset, int]:
    """One party's labels corrupted in place; returns (dataset, n_flipped)."""
    corrupt = mislabel if noise == "symmetric" else pairwise_mislabel
    corrupted, mask = corrupt(local.y, fraction, local.num_classes, seed=seed)
    return (
        Dataset(
            name=local.name,
            X=local.X,
            y=corrupted,
            task=local.task,
            num_classes=local.num_classes,
        ),
        int(mask.sum()),
    )


def _hfl_exact_fn(trainer, federation, log) -> Callable[[], ContributionReport]:
    def compute() -> ContributionReport:
        utility = HFLRetrainUtility(
            trainer,
            federation.locals,
            federation.validation,
            init_theta=log.initial_theta,
        )
        return exact_shapley(utility)

    return compute


@dataclass(frozen=True)
class DirichletLabelSkew(AdverseScenario):
    """Dirichlet(α) non-IID sharding with one heavily-mislabeled party.

    The α dial sets how hostile the *backdrop* is (0.1 ⇒ each class lives
    on few parties; 1.0 ⇒ mild skew); the injected bad party — chosen by a
    seeded draw, ``mislabel_fraction`` of its labels flipped — is what the
    estimator must still separate from merely-skewed honest parties.
    Per-party class histograms land in the split metadata so verdicts can
    report how non-IID each party actually came out.
    """

    alpha: float = 0.1
    dataset: str = "mnist"
    n_parties: int = 5
    epochs: int = 6
    lr: float = 0.5
    n_samples: int = 600
    mislabel_fraction: float = 0.9
    bottom_k: int = 2

    kind = "hfl"

    @property
    def name(self) -> str:
        return f"dirichlet_a{self.alpha:g}"

    def generate(self, seed: int = 0) -> AdverseRun:
        info = HFL_DATASETS[self.dataset]
        data = info.make(n_samples=self.n_samples, seed=derive_seed(seed, 1))
        federation = build_dirichlet_federation(
            data, self.n_parties, alpha=self.alpha, seed=derive_seed(seed, 2)
        )
        bad = int(make_rng(derive_seed(seed, 4)).integers(self.n_parties))
        corrupted, n_flipped = _corrupt_labels(
            federation.locals[bad],
            self.mislabel_fraction,
            "symmetric",
            seed=derive_seed(seed, 5),
        )
        locals_ = list(federation.locals)
        locals_[bad] = corrupted
        qualities = list(federation.qualities)
        qualities[bad] = "mislabeled"
        federation = replace(
            federation,
            locals=locals_,
            qualities=qualities,
            metadata={
                **federation.metadata,
                "mislabeled_party": bad,
                "mislabel_fraction": self.mislabel_fraction,
                "n_flipped": n_flipped,
                "class_histograms": [
                    class_histogram(local.y, data.num_classes) for local in locals_
                ],
            },
        )

        def model_factory():
            return make_hfl_model(self.dataset, seed=derive_seed(seed, 3))

        trainer = HFLTrainer(
            model_factory, epochs=self.epochs, lr_schedule=LRSchedule(self.lr)
        )
        training = trainer.train(
            federation.locals, federation.validation, track_validation=True
        )
        return AdverseRun(
            name=self.name,
            kind="hfl",
            seed=seed,
            n_parties=self.n_parties,
            bad_parties=(bad,),
            bottom_k=self.bottom_k,
            log=training.log,
            metadata=dict(federation.metadata),
            validation=federation.validation,
            model_factory=model_factory,
            exact_fn=_hfl_exact_fn(trainer, federation, training.log),
        )


@dataclass(frozen=True)
class LabelNoise(AdverseScenario):
    """Per-party label noise at explicit rates, symmetric or pairwise.

    ``rates[i]`` is party ``i``'s corruption rate over an otherwise-IID
    split; parties at or above ``bad_threshold`` are the injected bad
    participants.  The default profile has one ruined party (0.8) and one
    merely-degraded party (0.4) — ``bottom_k=2`` allows the degraded one
    to share the bottom without being asserted on.
    """

    noise: str = "symmetric"  # "symmetric" | "pairwise"
    rates: tuple[float, ...] = (0.8, 0.4, 0.0, 0.0, 0.0)
    dataset: str = "mnist"
    epochs: int = 6
    lr: float = 0.5
    n_samples: int = 600
    bad_threshold: float = 0.5
    bottom_k: int = 2

    kind = "hfl"

    def __post_init__(self) -> None:
        if self.noise not in ("symmetric", "pairwise"):
            raise ValueError(
                f"noise must be 'symmetric' or 'pairwise', got {self.noise!r}"
            )

    @property
    def name(self) -> str:
        return f"label_noise_{self.noise}"

    @property
    def n_parties(self) -> int:
        return len(self.rates)

    def generate(self, seed: int = 0) -> AdverseRun:
        info = HFL_DATASETS[self.dataset]
        data = info.make(n_samples=self.n_samples, seed=derive_seed(seed, 1))
        federation = build_hfl_federation(
            data, self.n_parties, seed=derive_seed(seed, 2)
        )
        locals_ = list(federation.locals)
        qualities = list(federation.qualities)
        flipped: list[int] = []
        for i, rate in enumerate(self.rates):
            if rate <= 0.0:
                flipped.append(0)
                continue
            locals_[i], n_flipped = _corrupt_labels(
                locals_[i], rate, self.noise, seed=derive_seed(seed, 4, i)
            )
            qualities[i] = "mislabeled"
            flipped.append(n_flipped)
        bad = tuple(
            i for i, rate in enumerate(self.rates) if rate >= self.bad_threshold
        )
        federation = replace(
            federation,
            locals=locals_,
            qualities=qualities,
            metadata={
                "noise": self.noise,
                "rates": list(self.rates),
                "n_flipped": flipped,
                "bad_threshold": self.bad_threshold,
            },
        )

        def model_factory():
            return make_hfl_model(self.dataset, seed=derive_seed(seed, 3))

        trainer = HFLTrainer(
            model_factory, epochs=self.epochs, lr_schedule=LRSchedule(self.lr)
        )
        training = trainer.train(
            federation.locals, federation.validation, track_validation=True
        )
        return AdverseRun(
            name=self.name,
            kind="hfl",
            seed=seed,
            n_parties=self.n_parties,
            bad_parties=bad,
            bottom_k=self.bottom_k,
            log=training.log,
            metadata=dict(federation.metadata),
            validation=federation.validation,
            model_factory=model_factory,
            exact_fn=_hfl_exact_fn(trainer, federation, training.log),
        )


@dataclass(frozen=True)
class FreeRiders(AdverseScenario):
    """Update-level free-riders: zero, noise-echo and stale uploaders.

    ``riders`` maps party index → flavour.  ``zero`` and ``noise_echo``
    riders contribute nothing real and are asserted into the bottom-``k``;
    a ``stale`` rider's one-round-old updates still carry genuine signal,
    so it widens ``bottom_k`` (it is *allowed* in the bottom) without
    being asserted on.
    """

    riders: Mapping[int, str] = field(
        default_factory=lambda: {0: "zero", 1: "noise_echo", 2: "stale"}
    )
    dataset: str = "mnist"
    n_parties: int = 6
    epochs: int = 6
    lr: float = 0.5
    n_samples: int = 720
    echo_sigma: float = 0.05

    kind = "hfl"

    def __post_init__(self) -> None:
        unknown = {k for k in self.riders.values() if k not in RIDER_KINDS}
        if unknown:
            raise ValueError(
                f"unknown rider kind(s) {sorted(unknown)}; known: {RIDER_KINDS}"
            )
        outside = [i for i in self.riders if not 0 <= i < self.n_parties]
        if outside:
            raise ValueError(f"rider parties {outside} outside the federation")
        if len(self.riders) >= self.n_parties:
            raise ValueError("at least one honest party is required")

    @property
    def name(self) -> str:
        return "free_rider"

    def _attacks(self, seed: int) -> dict[int, UpdateTransform]:
        attacks: dict[int, UpdateTransform] = {}
        for party, flavour in self.riders.items():
            if flavour == "zero":
                attacks[party] = zero_update()
            elif flavour == "stale":
                attacks[party] = stale_update()
            else:
                attacks[party] = noise_echo(
                    self.echo_sigma, seed=derive_seed(seed, 5, party)
                )
        return attacks

    def generate(self, seed: int = 0) -> AdverseRun:
        info = HFL_DATASETS[self.dataset]
        data = info.make(n_samples=self.n_samples, seed=derive_seed(seed, 1))
        federation = build_hfl_federation(
            data, self.n_parties, seed=derive_seed(seed, 2)
        )
        federation = replace(
            federation,
            metadata={"riders": {int(k): v for k, v in self.riders.items()}},
        )

        def model_factory():
            return make_hfl_model(self.dataset, seed=derive_seed(seed, 3))

        trainer = AdversarialHFLTrainer(
            model_factory,
            self.epochs,
            LRSchedule(self.lr),
            attacks=self._attacks(seed),
        )
        training = trainer.train(
            federation.locals, federation.validation, track_validation=True
        )
        bad = tuple(
            sorted(p for p, kind in self.riders.items() if kind != "stale")
        )
        return AdverseRun(
            name=self.name,
            kind="hfl",
            seed=seed,
            n_parties=self.n_parties,
            bad_parties=bad,
            bottom_k=len(self.riders),
            log=training.log,
            metadata=dict(federation.metadata),
            validation=federation.validation,
            model_factory=model_factory,
            exact_fn=_hfl_exact_fn(trainer, federation, training.log),
        )


@dataclass(frozen=True)
class VFLModalityDropout(AdverseScenario):
    """A VFL party's feature block goes dark mid-training.

    A scripted :class:`repro.runtime.Outage` drops ``dark_party`` from
    round ``dark_from`` onward (rounds are 1-indexed, matching the epoch
    numbering in the logs; ``None`` = halfway through the run); the
    engine's participation-mask path then records the absence exactly the
    way crashes do today, and the estimators see zero per-epoch
    contribution for the dark rounds.

    ``dark_party=None`` picks the party the *clean* reference run ranks
    weakest, so "dark party lands bottom-1" is the genuinely correct
    ranking — the vertical blocks carry geometrically decaying signal,
    and darkening a strong block mid-run leaves it more early-round
    credit than a weak block earns in a whole run.  The clean totals are
    recorded in the metadata either way.  No exact-Shapley reference
    exists here — retraining a coalition has no fault model to replay
    the outage — so the Spearman cell stays empty by design.
    """

    dataset: str = "boston"
    n_parties: int = 4
    epochs: int = 20
    dark_party: int | None = None  # None = weakest party of the clean run
    dark_from: int | None = None  # 1-indexed round; None = epochs // 2 + 1
    max_rows: int = 400

    kind = "vfl"

    def __post_init__(self) -> None:
        if self.dark_party is not None and not 0 <= self.dark_party < self.n_parties:
            raise ValueError(
                f"dark_party {self.dark_party} outside the {self.n_parties}-party federation"
            )
        if self.dark_from is not None and not 1 <= self.dark_from <= self.epochs:
            raise ValueError(
                f"dark_from {self.dark_from} outside rounds 1..{self.epochs}"
            )

    @property
    def name(self) -> str:
        return "vfl_modality_dropout"

    def generate(self, seed: int = 0) -> AdverseRun:
        from repro.core import estimate_vfl_first_order
        from repro.experiments.workloads import build_vfl_workload
        from repro.runtime import FaultPlan, Outage, RuntimeConfig

        clean = build_vfl_workload(
            self.dataset,
            n_parties=self.n_parties,
            epochs=self.epochs,
            max_rows=self.max_rows,
            seed=seed,
        )
        clean_totals = estimate_vfl_first_order(clean.result.log).totals
        dark_party = (
            int(np.argmin(clean_totals))
            if self.dark_party is None
            else self.dark_party
        )
        dark_from = (
            self.epochs // 2 + 1 if self.dark_from is None else self.dark_from
        )
        runtime = RuntimeConfig(
            executor="serial",
            faults=FaultPlan(outages=(Outage(dark_party, dark_from),)),
        )
        workload = build_vfl_workload(
            self.dataset,
            n_parties=self.n_parties,
            epochs=self.epochs,
            max_rows=self.max_rows,
            seed=seed,
            runtime=runtime,
        )
        log = workload.result.log
        masks = np.stack([r.participation_mask() for r in log.records])
        return AdverseRun(
            name=self.name,
            kind="vfl",
            seed=seed,
            n_parties=self.n_parties,
            bad_parties=(dark_party,),
            bottom_k=1,
            log=log,
            metadata={
                "dark_party": dark_party,
                "dark_from": dark_from,
                "dark_rounds": int((~masks[:, dark_party]).sum()),
                "epochs": self.epochs,
                "clean_totals": [float(t) for t in clean_totals],
            },
            exact_fn=None,
        )


def scenario_grid() -> list[AdverseScenario]:
    """The default adverse-condition axis of the robustness matrix."""
    return [
        DirichletLabelSkew(alpha=0.1),
        DirichletLabelSkew(alpha=1.0),
        LabelNoise(noise="symmetric"),
        LabelNoise(noise="pairwise"),
        FreeRiders(),
        VFLModalityDropout(),
    ]


def scenario_names() -> list[str]:
    """Names of the default grid, grid order."""
    return [scenario.name for scenario in scenario_grid()]


def get_scenario(name: str) -> AdverseScenario:
    """Look one default-grid scenario up by name."""
    for scenario in scenario_grid():
        if scenario.name == name:
            return scenario
    raise KeyError(
        f"unknown scenario {name!r}; known: {', '.join(scenario_names())}"
    )
