"""The robustness matrix: every backend × every adverse scenario, judged.

For each cell the harness computes three facts:

* **rank correctness** — do the scenario's injected bad participants land
  in the bottom-``k`` of the backend's ranking,
* **streaming integrity** — is a record-by-record streaming estimate
  ``np.array_equal`` to the batch estimate under the adverse condition,
* **fidelity** — Spearman ρ against the exact Shapley value, when the
  scenario admits a faithful ground truth (small federations, no faults).

``MatrixResult.assert_robustness()`` is the CI gate: ``digfl`` (the
paper's estimator) must pass rank correctness in every cell, and *every*
backend must keep streaming == batch; other backends' rank verdicts are
recorded — the matrix documents where they degrade — without failing the
build.  Each scenario trains once per matrix run; each (scenario,
backend) cell gets its own ``derive_seed``-derived seed, so the whole
grid is reproducible and diffable across PRs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.backends import (
    HFLRunContext,
    VFLRunContext,
    get_backend,
    kind_capable_backends,
)
from repro.core.contribution import ContributionReport
from repro.metrics import spearman_correlation
from repro.scenario.generators import (
    AdverseRun,
    AdverseScenario,
    cell_seed,
    scenario_grid,
)


@dataclass
class CellVerdict:
    """One (scenario, backend) cell of the matrix, fully evaluated."""

    scenario: str
    backend: str
    kind: str
    seed: int
    bad_parties: list[int]
    bottom_k: int
    ranking: list[int]
    bad_in_bottom_k: bool
    streaming_equals_batch: bool
    spearman_vs_exact: float | None
    seconds: float
    totals: list[float]

    @property
    def bottom(self) -> list[int]:
        """The worst-ranked ``bottom_k`` participant ids."""
        return self.ranking[-self.bottom_k:] if self.bottom_k else []

    def to_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "backend": self.backend,
            "kind": self.kind,
            "seed": self.seed,
            "bad_parties": self.bad_parties,
            "bottom_k": self.bottom_k,
            "ranking": self.ranking,
            "bad_in_bottom_k": self.bad_in_bottom_k,
            "streaming_equals_batch": self.streaming_equals_batch,
            "spearman_vs_exact": self.spearman_vs_exact,
            "seconds": self.seconds,
            "totals": self.totals,
        }


@dataclass
class MatrixResult:
    """All cells of one matrix run, plus the policy that judges them."""

    cells: list[CellVerdict]
    seed: int

    def failures(self) -> list[str]:
        """Human-readable verdict regressions (empty ⇒ the matrix passes)."""
        problems: list[str] = []
        for cell in self.cells:
            where = f"{cell.scenario} × {cell.backend}"
            if not cell.streaming_equals_batch:
                problems.append(f"{where}: streaming != batch")
            if cell.backend == "digfl" and not cell.bad_in_bottom_k:
                problems.append(
                    f"{where}: bad parties {cell.bad_parties} not in "
                    f"bottom-{cell.bottom_k} {cell.bottom} of ranking {cell.ranking}"
                )
        return problems

    @property
    def ok(self) -> bool:
        return not self.failures()

    def assert_robustness(self) -> None:
        """Raise ``AssertionError`` listing every verdict regression."""
        problems = self.failures()
        if problems:
            raise AssertionError(
                "robustness matrix regressions:\n  " + "\n  ".join(problems)
            )

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "ok": self.ok,
            "failures": self.failures(),
            "cells": [cell.to_dict() for cell in self.cells],
        }

    def table(self) -> str:
        """Fixed-width text table, one row per cell (CLI output)."""
        header = (
            f"{'scenario':<24} {'backend':<12} {'bad→bottom-k':<12} "
            f"{'stream==batch':<13} {'spearman':<9} {'seconds':<8}"
        )
        lines = [header, "-" * len(header)]
        for cell in self.cells:
            rho = (
                "-"
                if cell.spearman_vs_exact is None
                else f"{cell.spearman_vs_exact:.3f}"
            )
            lines.append(
                f"{cell.scenario:<24} {cell.backend:<12} "
                f"{'PASS' if cell.bad_in_bottom_k else 'FAIL':<12} "
                f"{'PASS' if cell.streaming_equals_batch else 'FAIL':<13} "
                f"{rho:<9} {cell.seconds:<8.4f}"
            )
        return "\n".join(lines)


def _streaming_report(backend, run: AdverseRun) -> ContributionReport:
    """Record-by-record streaming estimate over the run's whole log."""
    if run.kind == "hfl":
        estimator = backend.streaming_hfl(
            HFLRunContext(
                run.log.participant_ids, run.validation, run.model_factory
            )
        )
    else:
        estimator = backend.streaming_vfl(
            VFLRunContext(run.log.feature_blocks, run.log.active_parties)
        )
    for record in run.log.records:
        estimator.ingest(record)
    return estimator.report()


def _batch_report(backend, run: AdverseRun) -> ContributionReport:
    if run.kind == "hfl":
        return backend.estimate_hfl(run.log, run.validation, run.model_factory)
    return backend.estimate_vfl(run.log)


@dataclass
class RobustnessMatrix:
    """Scenario grid × backend axis, one :class:`CellVerdict` per cell.

    ``backends=None`` enumerates, per scenario, every registered backend
    supporting the scenario's log kind; an explicit list is filtered the
    same way (asking for ``gtg_shapley`` never errors on the VFL row, it
    just skips it).  ``exact_max_parties`` caps the 2^n exact-Shapley
    reference; larger federations get an empty Spearman cell.
    """

    scenarios: Sequence[AdverseScenario] = field(default_factory=scenario_grid)
    backends: Sequence[str] | None = None
    seed: int = 0
    exact_max_parties: int = 6

    def run(self) -> MatrixResult:
        cells: list[CellVerdict] = []
        for scenario in self.scenarios:
            run = scenario.generate(cell_seed(self.seed, scenario.name))
            exact = None
            if run.exact_fn is not None and run.n_parties <= self.exact_max_parties:
                exact = run.exact_fn()
            names = (
                kind_capable_backends(run.kind)
                if self.backends is None
                else [
                    name
                    for name in self.backends
                    if run.kind in get_backend(name).kinds
                ]
            )
            for name in names:
                cells.append(self._evaluate_cell(run, name, exact))
        return MatrixResult(cells=cells, seed=self.seed)

    def _evaluate_cell(
        self, run: AdverseRun, backend_name: str, exact: ContributionReport | None
    ) -> CellVerdict:
        seed = cell_seed(self.seed, run.name, backend_name)
        options = {}
        if "seed" in get_backend(backend_name).option_defaults:
            options["seed"] = seed
        start = time.perf_counter()
        batch = _batch_report(get_backend(backend_name, **options), run)
        seconds = time.perf_counter() - start
        stream = _streaming_report(get_backend(backend_name, **options), run)
        ranking = batch.ranking()
        bottom = set(ranking[-run.bottom_k:]) if run.bottom_k else set()
        spearman = None
        if exact is not None:
            mine, theirs = batch.aligned_with(exact)
            spearman = float(spearman_correlation(mine, theirs))
        return CellVerdict(
            scenario=run.name,
            backend=backend_name,
            kind=run.kind,
            seed=seed,
            bad_parties=list(run.bad_parties),
            bottom_k=run.bottom_k,
            ranking=ranking,
            bad_in_bottom_k=set(run.bad_parties) <= bottom,
            streaming_equals_batch=bool(
                np.array_equal(batch.totals, stream.totals)
            ),
            spearman_vs_exact=spearman,
            seconds=round(seconds, 6),
            totals=[float(t) for t in batch.totals],
        )
