"""Extension experiment: the price of the encrypted VFL protocol.

The paper's VFL cost numbers come from a Paillier-based framework; our
benchmarks use the plaintext simulator (verified equivalent).  This
experiment quantifies what the encryption layer itself costs — per-epoch
wall-clock and bytes for Algorithm 3 versus the plaintext fast path, as a
function of key size — and confirms the DIG-FL contributions are identical
through either path.
"""

from __future__ import annotations

import numpy as np

from repro.core import estimate_vfl_first_order
from repro.data import boston_like, build_vfl_federation
from repro.experiments.common import ExperimentReport
from repro.metrics import CostLedger, pearson_correlation
from repro.nn import LRSchedule
from repro.vfl import VFLTrainer, build_encrypted_session
from repro.utils.rng import derive_seed


def run_encrypted_overhead(
    *,
    key_bits: tuple[int, ...] = (128, 256, 512),
    n_parties: int = 3,
    n_rows: int = 60,
    epochs: int = 3,
    seed: int = 0,
) -> ExperimentReport:
    """Plaintext vs encrypted cost per training run, by key size."""
    report = ExperimentReport(
        name="encrypted-overhead", paper_reference="Sec. IV-B (extension)"
    )
    dataset = boston_like(seed=derive_seed(seed, 1)).standardized()
    split = build_vfl_federation(
        dataset, n_parties, max_rows=n_rows, seed=derive_seed(seed, 2)
    )
    schedule = LRSchedule(0.1)

    plain_ledger = CostLedger()
    trainer = VFLTrainer("regression", split.feature_blocks, epochs, schedule)
    with plain_ledger.computing():
        plain = trainer.train(split.train, split.validation, ledger=plain_ledger)
    plain_digfl = estimate_vfl_first_order(plain.log)
    report.add(
        {"mode": "plaintext", "key_bits": 0},
        {
            "t_s": plain_ledger.compute_seconds,
            "comm_mb": plain_ledger.total_comm_mb,
            "pcc_vs_plaintext": 1.0,
        },
    )

    train_blocks = [split.train.X[:, b] for b in split.feature_blocks]
    val_blocks = [split.validation.X[:, b] for b in split.feature_blocks]
    for bits in key_bits:
        session = build_encrypted_session(
            "regression", train_blocks, split.train.y, schedule, epochs,
            key_bits=bits, seed=derive_seed(seed, 3, bits),
        )
        result = session.train(split.train.y, split.validation.y, val_blocks)
        pcc = pearson_correlation(result.contributions, plain_digfl.totals)
        report.add(
            {"mode": "paillier", "key_bits": bits},
            {
                "t_s": result.ledger.compute_seconds,
                "comm_mb": result.ledger.total_comm_mb,
                "pcc_vs_plaintext": pcc,
                "theta_err": float(
                    np.max(
                        np.abs(
                            result.theta
                            - np.concatenate(
                                [plain.theta[b] for b in split.feature_blocks]
                            )
                        )
                    )
                ),
            },
        )
    report.notes.append(
        "Expected shape: encrypted time and bytes grow superlinearly with "
        "key size while the learned model and contributions stay identical "
        "to fixed-point precision — encryption is pure overhead, never a "
        "results change."
    )
    return report
