"""Shared plumbing for the paper-reproduction experiments.

Each experiment module builds the paper's workload (scaled to laptop size),
runs DIG-FL plus whatever it is compared against, and returns rows that
mirror the corresponding table or figure.  The benchmarks in
``benchmarks/`` time these entry points; ``python -m repro.experiments``
regenerates everything as a text report.

Scaling note: the paper trains on full MNIST/CIFAR with up to 10
participants and computes the exact Shapley value by 2^n retrainings on a
GPU testbed.  The default ``scale`` here shrinks datasets and participant
counts so the *entire* suite (including every 2^n ground-truth enumeration)
finishes in minutes on one CPU; the qualitative claims — who wins, by
roughly what factor, where the crossovers are — are what we reproduce.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence


@dataclass(frozen=True)
class Row:
    """One printable result row (a table line or a figure series point)."""

    experiment: str
    labels: dict
    metrics: dict

    def format(self) -> str:
        label_part = " ".join(f"{k}={v}" for k, v in self.labels.items())
        metric_part = " ".join(
            f"{k}={v:.4g}" if isinstance(v, float) else f"{k}={v}"
            for k, v in self.metrics.items()
        )
        return f"[{self.experiment}] {label_part} | {metric_part}"


@dataclass
class ExperimentReport:
    """All rows of one table/figure plus free-form notes."""

    name: str
    paper_reference: str
    rows: list[Row] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add(self, labels: dict, metrics: dict) -> None:
        self.rows.append(Row(experiment=self.name, labels=labels, metrics=metrics))

    def format(self) -> str:
        lines = [f"== {self.name} ({self.paper_reference}) =="]
        lines.extend(row.format() for row in self.rows)
        lines.extend(f"note: {note}" for note in self.notes)
        return "\n".join(lines)


def format_table(rows: Sequence[Row], columns: Sequence[str]) -> str:
    """Fixed-width text table over the given metric/label columns."""
    header = " | ".join(f"{c:>14}" for c in columns)
    out = [header, "-" * len(header)]
    for row in rows:
        cells = []
        merged = {**row.labels, **row.metrics}
        for c in columns:
            value = merged.get(c, "")
            if isinstance(value, float):
                cells.append(f"{value:>14.4g}")
            else:
                cells.append(f"{str(value):>14}")
        out.append(" | ".join(cells))
    return "\n".join(out)
