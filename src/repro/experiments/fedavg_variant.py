"""Extension experiment: does DIG-FL survive FedAvg local training?

The paper evaluates on FedSGD, where ``δ_{t,i}`` is exactly one local
gradient step and the Lemma 1 linearisation is tightest.  Real deployments
run FedAvg — several mini-batch steps per round — and the accumulated
update is no longer a single gradient.  DIG-FL still consumes ``δ``
unchanged; this sweep measures how its agreement with the exact Shapley
value degrades as local work per round grows.
"""

from __future__ import annotations

from repro.core import estimate_hfl_resource_saving
from repro.data import HFL_DATASETS, build_hfl_federation
from repro.experiments.common import ExperimentReport
from repro.hfl import HFLTrainer, LocalTrainingConfig
from repro.metrics import pearson_correlation
from repro.nn import LRSchedule, make_hfl_model
from repro.shapley import HFLRetrainUtility, exact_shapley
from repro.utils.rng import derive_seed


def run_fedavg_sweep(
    *,
    dataset: str = "mnist",
    local_steps: tuple[int, ...] = (1, 2, 4, 8),
    batch_size: int | None = 64,
    n_parties: int = 5,
    epochs: int = 8,
    lr: float = 0.2,
    seed: int = 0,
) -> ExperimentReport:
    """PCC vs exact Shapley as a function of local steps per round.

    The exact Shapley retraining uses the *same* FedAvg configuration, so
    both sides of the comparison see identical dynamics.
    """
    report = ExperimentReport(
        name="fedavg-local-steps", paper_reference="FedSGD→FedAvg extension"
    )
    info = HFL_DATASETS[dataset]
    data = info.make(n_samples=1200, seed=derive_seed(seed, 1))
    fed = build_hfl_federation(
        data, n_parties, n_mislabeled=1, n_noniid=1, seed=derive_seed(seed, 2)
    )

    def factory():
        return make_hfl_model(dataset, seed=derive_seed(seed, 3))

    for steps in local_steps:
        config = LocalTrainingConfig(
            local_steps=steps, batch_size=batch_size, seed=derive_seed(seed, 4)
        )
        trainer = HFLTrainer(
            factory, epochs=epochs, lr_schedule=LRSchedule(lr), local_config=config
        )
        result = trainer.train(fed.locals, fed.validation, track_validation=True)
        digfl = estimate_hfl_resource_saving(result.log, fed.validation, factory)
        utility = HFLRetrainUtility(
            trainer, fed.locals, fed.validation,
            init_theta=result.log.initial_theta,
        )
        actual = exact_shapley(utility)
        report.add(
            {"dataset": dataset, "local_steps": steps},
            {
                "pcc": pearson_correlation(digfl.totals, actual.totals),
                "final_acc": float(result.log.records[-1].val_accuracy),
            },
        )
    report.notes.append(
        "Expected shape: PCC stays usable across moderate local-step counts "
        "— the estimator reads whatever δ the protocol produced — with "
        "gradual degradation as updates drift from single gradients."
    )
    return report
