"""Extension experiment: sampling-estimator accuracy as a function of budget.

Figs. 4–5 compare the estimators at one budget each.  This sweep traces the
whole accuracy–cost curve: for a fixed federation (utility values memoised,
so the sweep itself is cheap), each sampling estimator — TMC, GT,
stratified, KernelSHAP — is run at growing evaluation budgets and scored
against the exact Shapley value.  DIG-FL appears as a horizontal line: its
accuracy is budget-independent because it never evaluates a coalition.
"""

from __future__ import annotations

import numpy as np

from repro.core import estimate_hfl_resource_saving
from repro.experiments.common import ExperimentReport
from repro.experiments.workloads import build_hfl_workload
from repro.metrics import pearson_correlation
from repro.shapley import (
    CallableUtility,
    HFLRetrainUtility,
    exact_shapley_values,
    gt_shapley_values,
    kernel_shapley_values,
    stratified_shapley_values,
    tmc_shapley_values,
)


def run_estimator_budget_curves(
    *,
    dataset: str = "mnist",
    n_parties: int = 5,
    epochs: int = 8,
    budgets: tuple[int, ...] = (8, 16, 32, 64, 128),
    n_repeats: int = 3,
    seed: int = 0,
) -> ExperimentReport:
    """PCC vs exact value at each sampling budget (mean over repeats).

    ``budget`` counts *distinct utility evaluations allowed*; since the
    utility is memoised across the whole sweep, the wall-clock cost of this
    experiment is one exact-Shapley enumeration plus bookkeeping.
    """
    report = ExperimentReport(
        name="estimator-budget-curves", paper_reference="Figs. 4-5 extension"
    )
    workload = build_hfl_workload(
        dataset, n_parties=n_parties, n_mislabeled=1, n_noniid=1,
        epochs=epochs, seed=seed,
    )
    fed = workload.federation
    utility = HFLRetrainUtility(
        workload.trainer, fed.locals, fed.validation,
        init_theta=workload.result.log.initial_theta,
    )
    exact = exact_shapley_values(utility)  # caches every coalition

    digfl = estimate_hfl_resource_saving(
        workload.result.log, fed.validation, workload.model_factory
    )
    report.add(
        {"method": "DIG-FL", "budget": 0},
        {"pcc": pearson_correlation(digfl.totals, exact)},
    )

    # Serve every estimator from the fully enumerated value table through a
    # fresh counting wrapper, so the reported cost is the number of DISTINCT
    # coalitions each configuration actually evaluates (what retraining
    # would cost) rather than a nominal knob value.
    value_table = {frozenset(k): utility(k) for k in _all_coalitions(n_parties)}

    def fresh_counting_utility() -> CallableUtility:
        return CallableUtility(n_parties, lambda s: value_table[frozenset(s)])

    estimators = {
        "TMC": lambda u, b, s: tmc_shapley_values(
            u, n_permutations=max(1, b // n_parties), tolerance=0.0, seed=s
        ),
        "GT": lambda u, b, s: gt_shapley_values(u, n_tests=b, seed=s),
        "stratified": lambda u, b, s: stratified_shapley_values(
            u,
            samples_per_stratum=max(1, b // (n_parties * n_parties)),
            seed=s,
        )[0],
        "kernel": lambda u, b, s: kernel_shapley_values(u, n_samples=b, seed=s),
    }
    for method, runner in estimators.items():
        for budget in budgets:
            pccs = []
            evals = []
            for r in range(n_repeats):
                wrapper = fresh_counting_utility()
                estimate = runner(wrapper, budget, seed * 1000 + r)
                pccs.append(pearson_correlation(np.asarray(estimate), exact))
                evals.append(wrapper.evaluations)
            report.add(
                {"method": method, "budget": budget},
                {
                    "pcc": float(np.nanmean(pccs)),
                    "distinct_evals": float(np.mean(evals)),
                },
            )
    report.notes.append(
        "Expected shape: every sampling estimator climbs towards PCC≈1 as "
        "the budget grows; DIG-FL sits at high PCC with zero coalition "
        "evaluations — the whole point of the paper.  distinct_evals counts "
        "unique coalitions touched (= retrainings a real run would pay; at "
        "n=5 it saturates at 2^5)."
    )
    return report


def _all_coalitions(n: int):
    """Every subset of range(n) as a frozenset (2^n of them)."""
    from itertools import combinations

    for size in range(n + 1):
        for members in combinations(range(n), size):
            yield frozenset(members)
