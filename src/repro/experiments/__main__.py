"""Regenerate every table and figure of the paper at laptop scale.

Usage::

    python -m repro.experiments            # quick pass (minutes)
    python -m repro.experiments --full     # paper-scale party counts (slower)

Writes a consolidated text report to ``experiments_output.txt`` in the
current directory and prints it as it goes.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import (
    run_attack_detection,
    run_compression_sweep,
    run_encrypted_overhead,
    run_heterogeneity_sweep,
    run_estimator_budget_curves,
    run_fedavg_sweep,
    run_hfl_accuracy,
    run_hfl_baselines,
    run_learning_rate_ablation,
    run_model_size_scaling,
    run_participant_scaling,
    run_per_epoch,
    run_reweight,
    run_second_term,
    run_second_term_per_epoch,
    run_validation_size_ablation,
    run_vfl_accuracy,
    run_vfl_baselines,
    run_weighting_scheme_ablation,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--full",
        action="store_true",
        help="use the paper's Table III party counts (up to 2^15 retrainings)",
    )
    parser.add_argument(
        "--output", default="experiments_output.txt", help="report file path"
    )
    parser.add_argument(
        "--only",
        action="append",
        metavar="NAME",
        help="run only the named experiment(s); repeatable "
             "(names as printed, e.g. --only reweight --only hfl-accuracy)",
    )
    args = parser.parse_args(argv)

    max_parties = None if args.full else 10
    experiments = [
        ("second-term", lambda: run_second_term()),
        ("second-term-per-epoch", lambda: run_second_term_per_epoch()),
        ("hfl-accuracy", lambda: run_hfl_accuracy()),
        ("vfl-accuracy", lambda: run_vfl_accuracy(max_parties=max_parties)),
        ("per-epoch", lambda: run_per_epoch()),
        ("hfl-baselines", lambda: run_hfl_baselines()),
        ("vfl-baselines", lambda: run_vfl_baselines(max_parties=max_parties)),
        ("reweight", lambda: run_reweight()),
        ("ablation-val-size", lambda: run_validation_size_ablation()),
        ("ablation-lr", lambda: run_learning_rate_ablation()),
        ("ablation-weighting", lambda: run_weighting_scheme_ablation()),
        ("scaling-participants", lambda: run_participant_scaling()),
        ("scaling-model-size", lambda: run_model_size_scaling()),
        ("attack-detection", lambda: run_attack_detection()),
        ("encrypted-overhead", lambda: run_encrypted_overhead()),
        ("fedavg-local-steps", lambda: run_fedavg_sweep()),
        ("estimator-budget-curves", lambda: run_estimator_budget_curves()),
        ("compression-sweep", lambda: run_compression_sweep()),
        ("heterogeneity-sweep", lambda: run_heterogeneity_sweep()),
    ]

    if args.only:
        known = {name for name, _ in experiments}
        unknown = [name for name in args.only if name not in known]
        if unknown:
            parser.error(
                f"unknown experiment(s) {unknown}; choose from {sorted(known)}"
            )
        experiments = [(n, r) for n, r in experiments if n in set(args.only)]

    sections: list[str] = []
    for name, runner in experiments:
        start = time.perf_counter()
        print(f"running {name} ...", flush=True)
        report = runner()
        elapsed = time.perf_counter() - start
        section = report.format() + f"\n(ran in {elapsed:.1f}s)\n"
        print(section, flush=True)
        sections.append(section)

    with open(args.output, "w") as fh:
        fh.write("\n".join(sections))
    print(f"report written to {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
