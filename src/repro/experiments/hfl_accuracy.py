"""Fig. 3: DIG-FL vs actual Shapley value for HFL — accuracy and cost.

The paper pools, per dataset, all corruption settings (m mislabeled or
non-IID participants, m swept over its range) and reports one PCC between
the DIG-FL estimates and the 2^n-retraining ground truth, plus computation
and communication cost for both.

Scaled defaults: n=5 participants (32 retrainings per cell) and
m ∈ {0, 2, 4} for each corruption type.
"""

from __future__ import annotations

import numpy as np

from repro.core import estimate_hfl_resource_saving
from repro.data import HFL_DATASETS
from repro.experiments.common import ExperimentReport
from repro.experiments.workloads import build_hfl_workload
from repro.metrics import CostLedger, pearson_correlation
from repro.shapley import HFLRetrainUtility, exact_shapley
from repro.utils.rng import derive_seed


def hfl_cells(n_parties: int, ms: tuple[int, ...]):
    """The (m, corruption-kind) grid of Sec. V-C1, m=0 appearing once."""
    cells = [(0, "none")]
    for m in ms:
        if m == 0:
            continue
        cells.append((m, "mislabeled"))
        cells.append((m, "noniid"))
    return cells


def run_hfl_accuracy(
    *,
    datasets: tuple[str, ...] = tuple(HFL_DATASETS),
    n_parties: int = 5,
    ms: tuple[int, ...] = (0, 2, 4),
    epochs: int = 10,
    seed: int = 0,
) -> ExperimentReport:
    """One row per dataset: pooled PCC + DIG-FL/actual cost columns."""
    report = ExperimentReport(name="hfl-vs-actual", paper_reference="Fig. 3")
    for dataset in datasets:
        estimates: list[float] = []
        actuals: list[float] = []
        digfl_ledger = CostLedger()
        actual_seconds = 0.0
        actual_comm = 0
        for cell_index, (m, kind) in enumerate(hfl_cells(n_parties, ms)):
            workload = build_hfl_workload(
                dataset,
                n_parties=n_parties,
                n_mislabeled=m if kind == "mislabeled" else 0,
                n_noniid=m if kind == "noniid" else 0,
                epochs=epochs,
                seed=derive_seed(seed, cell_index),
            )
            fed = workload.federation
            digfl = estimate_hfl_resource_saving(
                workload.result.log, fed.validation, workload.model_factory,
                ledger=digfl_ledger,
            )
            utility = HFLRetrainUtility(
                workload.trainer, fed.locals, fed.validation,
                init_theta=workload.result.log.initial_theta,
            )
            actual = exact_shapley(utility)
            actual_seconds += utility.ledger.compute_seconds
            actual_comm += utility.ledger.total_comm_bytes
            estimates.extend(digfl.totals.tolist())
            actuals.extend(actual.totals.tolist())
        report.add(
            {"dataset": dataset},
            {
                "pcc": pearson_correlation(np.array(estimates), np.array(actuals)),
                "t_digfl_s": digfl_ledger.compute_seconds,
                "t_actual_s": actual_seconds,
                "comm_digfl_mb": digfl_ledger.total_comm_mb,
                "comm_actual_mb": actual_comm / (1024.0 * 1024.0),
            },
        )
    report.notes.append(
        "comm_actual counts the model exchanges of the 2^n retrainings; "
        "DIG-FL adds zero communication on top of normal training."
    )
    return report
