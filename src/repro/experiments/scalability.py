"""Scalability study: cost vs participant count and model size.

Not a numbered figure in the paper, but the quantitative core of its
complexity claims (Sec. II-E): DIG-FL's cost is **O(τ·n·p)** — linear in
participants and parameters — while the exact Shapley value needs **2^n**
retrainings and MR needs **2^n** validation evaluations per round.  These
sweeps make the crossover visible at laptop scale.
"""

from __future__ import annotations

import time

from repro.core import estimate_hfl_resource_saving
from repro.data import build_hfl_federation
from repro.data.registry import HFL_DATASETS
from repro.experiments.common import ExperimentReport
from repro.hfl import HFLTrainer
from repro.nn import LRSchedule, make_mlp_classifier
from repro.shapley import HFLRetrainUtility, exact_shapley_values, mr_shapley
from repro.utils.rng import derive_seed


def run_participant_scaling(
    *,
    dataset: str = "mnist",
    party_counts: tuple[int, ...] = (3, 5, 7, 9),
    epochs: int = 6,
    seed: int = 0,
) -> ExperimentReport:
    """DIG-FL vs exact vs MR wall-clock as the federation grows."""
    report = ExperimentReport(
        name="scaling-participants", paper_reference="Sec. II-E complexity"
    )
    info = HFL_DATASETS[dataset]
    for n in party_counts:
        data = info.make(n_samples=200 * n, seed=derive_seed(seed, n))
        fed = build_hfl_federation(data, n, seed=derive_seed(seed, n, 1))

        def factory():
            return make_mlp_classifier(100, 10, hidden=(16,), seed=0)

        trainer = HFLTrainer(factory, epochs=epochs, lr_schedule=LRSchedule(0.5))
        result = trainer.train(fed.locals, fed.validation)

        start = time.perf_counter()
        estimate_hfl_resource_saving(result.log, fed.validation, factory)
        t_digfl = time.perf_counter() - start

        start = time.perf_counter()
        mr_shapley(result.log, fed.validation, factory)
        t_mr = time.perf_counter() - start

        utility = HFLRetrainUtility(
            trainer, fed.locals, fed.validation,
            init_theta=result.log.initial_theta,
        )
        start = time.perf_counter()
        exact_shapley_values(utility)
        t_exact = time.perf_counter() - start

        report.add(
            {"dataset": dataset, "n": n},
            {
                "t_digfl_s": t_digfl,
                "t_mr_s": t_mr,
                "t_exact_s": t_exact,
                "retrainings": utility.evaluations,
            },
        )
    report.notes.append(
        "Expected shape: t_digfl grows linearly in n, t_mr and t_exact "
        "double (2^n) with every added participant."
    )
    return report


def run_model_size_scaling(
    *,
    hidden_sizes: tuple[int, ...] = (8, 32, 128),
    n_parties: int = 5,
    epochs: int = 6,
    seed: int = 0,
) -> ExperimentReport:
    """DIG-FL estimation cost as the parameter count p grows (O(τ·n·p))."""
    report = ExperimentReport(
        name="scaling-model-size", paper_reference="Sec. II-E complexity"
    )
    info = HFL_DATASETS["mnist"]
    data = info.make(n_samples=1000, seed=derive_seed(seed, 1))
    fed = build_hfl_federation(data, n_parties, seed=derive_seed(seed, 2))
    for hidden in hidden_sizes:

        def factory(h=hidden):
            return make_mlp_classifier(100, 10, hidden=(h,), seed=0)

        trainer = HFLTrainer(factory, epochs=epochs, lr_schedule=LRSchedule(0.5))
        result = trainer.train(fed.locals, fed.validation)
        start = time.perf_counter()
        estimate_hfl_resource_saving(result.log, fed.validation, factory)
        t_digfl = time.perf_counter() - start
        report.add(
            {"hidden": hidden, "params": factory().num_parameters()},
            {"t_digfl_s": t_digfl},
        )
    return report
