"""Extension experiment: detecting update-level adversaries with DIG-FL.

The paper motivates contribution measurement as a way to "localize
low-quality participants and … avoid adversarial sample attacks" (Sec. I).
This experiment quantifies that for *protocol-level* adversaries (not in
the paper's evaluation): federations with sign-flippers, free-riders and
noise uploaders, scored by DIG-FL, flagged by the robust outlier rule.

Reported per (attack, #attackers): detection precision/recall of
``flag_low_quality`` and the accuracy recovered by the reweight mechanism.
"""

from __future__ import annotations

import numpy as np

from repro.core import DIGFLReweighter, estimate_hfl_resource_saving
from repro.core.selection import flag_low_quality
from repro.data import HFL_DATASETS, build_hfl_federation
from repro.experiments.common import ExperimentReport
from repro.hfl import AdversarialHFLTrainer, random_update, sign_flip, zero_update
from repro.nn import LRSchedule, make_hfl_model
from repro.utils.rng import derive_seed

ATTACKS = {
    "sign_flip": lambda seed: sign_flip(1.0),
    "free_rider": lambda seed: zero_update(),
    "noise": lambda seed: random_update(0.5, seed=seed),
}


def run_attack_detection(
    *,
    dataset: str = "mnist",
    attacks: tuple[str, ...] = ("sign_flip", "free_rider", "noise"),
    n_parties: int = 6,
    n_attackers: int = 2,
    epochs: int = 12,
    seed: int = 0,
) -> ExperimentReport:
    """Precision/recall of DIG-FL-based attacker flagging, plus recovery."""
    report = ExperimentReport(
        name="attack-detection", paper_reference="Sec. I motivation (extension)"
    )
    if not 0 < n_attackers < n_parties:
        raise ValueError(
            f"need 0 < n_attackers < n_parties, got {n_attackers}/{n_parties}"
        )
    info = HFL_DATASETS[dataset]
    for attack_name in attacks:
        if attack_name not in ATTACKS:
            raise KeyError(f"unknown attack {attack_name!r}; known: {sorted(ATTACKS)}")
        data = info.make(n_samples=250 * n_parties, seed=derive_seed(seed, 1))
        fed = build_hfl_federation(data, n_parties, seed=derive_seed(seed, 2))
        attackers = list(range(n_attackers))  # ids are arbitrary post-shuffle
        attack_map = {
            i: ATTACKS[attack_name](derive_seed(seed, 3, i)) for i in attackers
        }

        def factory():
            return make_hfl_model(dataset, seed=derive_seed(seed, 4))

        trainer = AdversarialHFLTrainer(
            factory, epochs, LRSchedule(0.5), attacks=attack_map
        )
        result = trainer.train(fed.locals, fed.validation, track_validation=True)
        digfl = estimate_hfl_resource_saving(result.log, fed.validation, factory)
        flagged = set(flag_low_quality(digfl, threshold=1.5))
        truth = set(attackers)
        tp = len(flagged & truth)
        precision = tp / len(flagged) if flagged else float("nan")
        recall = tp / len(truth)

        defended = trainer.train(
            fed.locals,
            fed.validation,
            reweighter=DIGFLReweighter(fed.validation),
            track_validation=True,
        )
        report.add(
            {"dataset": dataset, "attack": attack_name, "attackers": n_attackers},
            {
                "precision": precision,
                "recall": recall,
                "acc_attacked": float(result.log.records[-1].val_accuracy),
                "acc_defended": float(defended.log.records[-1].val_accuracy),
                "mean_attacker_phi": float(np.mean(digfl.totals[attackers])),
                "mean_honest_phi": float(
                    np.mean(
                        [digfl.totals[i] for i in range(n_parties) if i not in truth]
                    )
                ),
            },
        )
    report.notes.append(
        "Expected shape: honest mean φ ≫ attacker mean φ; sign-flip recall "
        "1.0; the free-rider sits at φ≈0 (flagged only when honest spread "
        "is tight); reweighting recovers accuracy under sign-flip and "
        "free-riding."
    )
    report.notes.append(
        "Limitation surfaced by the noise attack: Eq. 17 weights by "
        "contribution but does not bound update *norms*, so rare epochs "
        "where huge noise updates correlate positively with the validation "
        "gradient still pass through — norm clipping would compose "
        "naturally with DIG-FL here."
    )
    return report
