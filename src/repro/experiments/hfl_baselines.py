"""Fig. 4 + Table IV: DIG-FL vs TMC / GT / MR / IM in HFL.

Every method estimates the same ground truth (2^n-retraining Shapley).
Budgets follow the paper: TMC gets ~n²log n retrainings (≈ n·log n
permutations), GT gets n(log n)² utility evaluations.  Reported per
(dataset, method): PCC, compute seconds, and communication — retraining
methods pay full training communication per coalition, log-based methods
pay none.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core import estimate_hfl_resource_saving
from repro.data import HFL_DATASETS
from repro.experiments.common import ExperimentReport
from repro.experiments.workloads import build_hfl_workload
from repro.metrics import pearson_correlation
from repro.shapley import (
    HFLRetrainUtility,
    exact_shapley,
    gt_shapley,
    im_scores,
    mr_shapley,
    tmc_shapley,
)


def run_hfl_baselines(
    *,
    datasets: tuple[str, ...] = tuple(HFL_DATASETS),
    n_parties: int = 5,
    epochs: int = 10,
    seed: int = 0,
) -> ExperimentReport:
    """One row per (dataset, method) with PCC and cost columns."""
    report = ExperimentReport(
        name="hfl-baselines", paper_reference="Fig. 4 + Table IV"
    )
    for dataset in datasets:
        workload = build_hfl_workload(
            dataset,
            n_parties=n_parties,
            n_mislabeled=1,
            n_noniid=1,
            epochs=epochs,
            seed=seed,
        )
        fed = workload.federation
        init_theta = workload.result.log.initial_theta

        def fresh_utility() -> HFLRetrainUtility:
            return HFLRetrainUtility(
                workload.trainer, fed.locals, fed.validation, init_theta=init_theta
            )

        exact = exact_shapley(fresh_utility())

        digfl = estimate_hfl_resource_saving(
            workload.result.log, fed.validation, workload.model_factory
        )
        tmc_util = fresh_utility()
        tmc = tmc_shapley(
            tmc_util,
            n_permutations=max(2, int(math.ceil(n_parties * math.log(n_parties)))),
            seed=seed,
        )
        gt_util = fresh_utility()
        gt = gt_shapley(
            gt_util,
            n_tests=max(8, int(math.ceil(n_parties * math.log(n_parties) ** 2))),
            seed=seed,
        )
        mr = mr_shapley(workload.result.log, fed.validation, workload.model_factory)
        im = im_scores(workload.result.log)

        for method, estimate, ledger in (
            ("DIG-FL", digfl.totals, digfl.ledger),
            ("TMC-shapley", tmc.totals, tmc_util.ledger),
            ("GT-shapley", gt.totals, gt_util.ledger),
            ("MR", mr.totals, mr.ledger),
            ("IM", im.totals, im.ledger),
        ):
            report.add(
                {"dataset": dataset, "method": method},
                {
                    "pcc": pearson_correlation(np.asarray(estimate), exact.totals),
                    "t_s": ledger.compute_seconds,
                    "comm_mb": ledger.total_comm_mb,
                },
            )
    report.notes.append(
        "Expected shape per Table IV: DIG-FL's PCC highest on average, IM "
        "weakest; TMC/GT pay retraining communication, log-based methods none."
    )
    return report
