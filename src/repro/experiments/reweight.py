"""Fig. 7: the effect of the DIG-FL reweight mechanism on convergence.

Two settings as in Sec. V-E: CIFAR10-like with non-IID participants and
MOTOR-like with mislabeled participants.  For each fraction of low-quality
participants, train plain FedSGD and DIG-FL-reweighted FedSGD and report
final validation accuracy; for the worst case, also emit the per-epoch
convergence curves (Fig. 7 b/d).
"""

from __future__ import annotations

from repro.core import DIGFLReweighter
from repro.experiments.common import ExperimentReport
from repro.experiments.workloads import build_hfl_workload
from repro.utils.rng import derive_seed


def run_reweight(
    *,
    settings: tuple[tuple[str, str], ...] = (
        ("cifar10", "noniid"),
        ("motor", "mislabeled"),
    ),
    n_parties: int = 5,
    ms: tuple[int, ...] = (0, 2, 4),
    epochs: int = 25,
    noniid_max_classes: int = 2,
    seed: int = 0,
) -> ExperimentReport:
    """Accuracy-vs-m rows plus convergence curves for the largest m.

    Non-IID participants are restricted to ``noniid_max_classes`` classes:
    the Fig. 7 effect needs sharply skewed parties (with mild skew,
    full-batch FedSGD aggregation is already close to training on the
    union, and reweighting has nothing to fix).
    """
    report = ExperimentReport(name="reweight", paper_reference="Fig. 7")
    for dataset, kind in settings:
        for m in ms:
            cell_seed = derive_seed(seed, hash((dataset, kind, m)) & 0xFFFF)
            base = build_hfl_workload(
                dataset,
                n_parties=n_parties,
                n_mislabeled=m if kind == "mislabeled" else 0,
                n_noniid=m if kind == "noniid" else 0,
                noniid_max_classes=noniid_max_classes if kind == "noniid" else None,
                epochs=epochs,
                seed=cell_seed,
            )
            fed = base.federation
            reweighted = base.trainer.train(
                fed.locals,
                fed.validation,
                reweighter=DIGFLReweighter(fed.validation),
                track_validation=True,
            )
            acc_plain = float(base.result.log.records[-1].val_accuracy)
            acc_reweight = float(reweighted.log.records[-1].val_accuracy)
            report.add(
                {"dataset": dataset, "kind": kind, "m": m},
                {"acc_fedsgd": acc_plain, "acc_digfl": acc_reweight},
            )
            if m == max(ms):
                plain_curve = base.result.log.val_accuracy_curve()
                reweight_curve = reweighted.log.val_accuracy_curve()
                for t in range(epochs):
                    report.add(
                        {"dataset": dataset, "kind": kind, "m": m, "epoch": t + 1},
                        {
                            "acc_fedsgd": float(plain_curve[t]),
                            "acc_digfl": float(reweight_curve[t]),
                        },
                    )
    report.notes.append(
        "Expected shape per Fig. 7: plain FedSGD degrades as m grows; the "
        "reweight mechanism recovers most of the lost accuracy and "
        "stabilises convergence."
    )
    return report
