"""Standard workload builders shared by the experiment modules.

A *workload* bundles everything one experimental cell needs: the federated
split, the trainer, a completed training run, and (for HFL) the model
factory — so the experiment modules stay declarative.

Passing a :class:`repro.runtime.RuntimeConfig` swaps the synchronous
in-process loop for the event-driven engine: same trainers, same logs,
but with parallel local updates, fault injection and round deadlines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable


from repro.data import (
    HFL_DATASETS,
    VFL_DATASETS,
    build_hfl_federation,
    build_vfl_federation,
)
from repro.data.partition import FederatedSplit, VerticalSplit
from repro.hfl import HFLResult, HFLTrainer
from repro.nn import LRSchedule, make_hfl_model
from repro.nn.models import Classifier
from repro.robust import QuarantineLedger, RobustConfig
from repro.runtime import FederatedRuntime, RuntimeConfig
from repro.utils.rng import derive_seed
from repro.vfl import VFLResult, VFLTrainer

# Default scaled-down sample counts per HFL dataset (paper sizes in Table I
# are 11k-110k; the exact-Shapley ground truth retrains 2^n times).
HFL_SAMPLES = {"mnist": 1200, "cifar10": 1200, "motor": 1000, "real": 1200}

# Row caps for the larger VFL datasets (keeps 2^n retraining tractable).
VFL_MAX_ROWS = 1500


@dataclass
class HFLWorkload:
    """One HFL experimental cell: federation + completed FedSGD run.

    ``runtime`` is the engine the run executed on (``None`` for the
    synchronous trainer); its event log holds the per-round fault record.
    """

    dataset: str
    federation: FederatedSplit
    trainer: HFLTrainer
    result: HFLResult
    model_factory: Callable[[], Classifier]
    runtime: FederatedRuntime | None = None
    quarantine: QuarantineLedger | None = None

    @property
    def qualities(self) -> list[str]:
        return list(self.federation.qualities)


def build_hfl_workload(
    dataset: str,
    *,
    n_parties: int = 5,
    n_mislabeled: int = 0,
    n_noniid: int = 0,
    mislabel_fraction: float = 0.5,
    noniid_max_classes: int | None = None,
    epochs: int = 10,
    lr: float = 0.5,
    n_samples: int | None = None,
    seed: int = 0,
    runtime: RuntimeConfig | None = None,
    robust: RobustConfig | None = None,
) -> HFLWorkload:
    """Build the Sec. V-C HFL cell: corrupt participants, train, log.

    With ``runtime`` the federation trains on the event-driven engine
    (parallel executors, faults, deadlines) instead of the synchronous
    loop; the returned workload carries the engine for event inspection.
    ``robust`` activates the :mod:`repro.robust` layer (robust
    aggregation, update screening, checkpoint/resume); the workload then
    carries the run's quarantine ledger.
    """
    info = HFL_DATASETS[dataset]
    n_samples = n_samples or HFL_SAMPLES[dataset]
    data = info.make(n_samples=n_samples, seed=derive_seed(seed, 1))
    federation = build_hfl_federation(
        data,
        n_parties,
        n_mislabeled=n_mislabeled,
        n_noniid=n_noniid,
        mislabel_fraction=mislabel_fraction,
        noniid_max_classes=noniid_max_classes,
        seed=derive_seed(seed, 2),
    )

    def model_factory() -> Classifier:
        return make_hfl_model(dataset, seed=derive_seed(seed, 3))

    trainer = HFLTrainer(model_factory, epochs=epochs, lr_schedule=LRSchedule(lr))
    robust = robust if robust is not None else RobustConfig()
    ledger = QuarantineLedger()
    screener = robust.make_screener(ledger)
    robust_kwargs = dict(
        aggregator=robust.make_aggregator(),
        screener=screener,
        checkpoint=robust.make_checkpoint("hfl"),
        resume=robust.resume,
    )
    engine = None
    if runtime is None:
        result = trainer.train(
            federation.locals, federation.validation, track_validation=True,
            **robust_kwargs,
        )
    else:
        engine = FederatedRuntime(runtime)
        result = engine.run_hfl(
            trainer, federation.locals, federation.validation,
            track_validation=True, **robust_kwargs,
        )
    return HFLWorkload(
        dataset=dataset,
        federation=federation,
        trainer=trainer,
        result=result,
        model_factory=model_factory,
        runtime=engine,
        quarantine=ledger if screener is not None else None,
    )


@dataclass
class VFLWorkload:
    """One VFL experimental cell: vertical split + completed run."""

    dataset: str
    task: str
    split: VerticalSplit
    trainer: VFLTrainer
    result: VFLResult
    runtime: FederatedRuntime | None = None
    quarantine: QuarantineLedger | None = None


def build_vfl_workload(
    dataset: str,
    *,
    n_parties: int | None = None,
    epochs: int = 30,
    lr: float | None = None,
    max_rows: int | None = VFL_MAX_ROWS,
    seed: int = 0,
    runtime: RuntimeConfig | None = None,
    robust: RobustConfig | None = None,
) -> VFLWorkload:
    """Build the Table III VFL cell with the paper's party count.

    ``n_parties=None`` uses the ``n`` column of Table III; ``lr=None``
    picks 0.1 for linear and 0.5 for logistic regression.  ``runtime``
    swaps the synchronous loop for the event-driven engine.  ``robust``
    activates screening and checkpoint/resume; the cross-party robust
    aggregators are an HFL concept (VFL parties own disjoint coordinate
    blocks), so any ``aggregator`` other than ``"mean"`` is rejected.
    """
    info = VFL_DATASETS[dataset]
    if n_parties is None:
        n_parties = info.vfl_parties
    data = info.make(seed=derive_seed(seed, 1)).standardized()
    split = build_vfl_federation(
        data, n_parties, max_rows=max_rows, seed=derive_seed(seed, 2)
    )
    task = data.task
    if lr is None:
        lr = 0.1 if task == "regression" else 0.5
    trainer = VFLTrainer(task, split.feature_blocks, epochs, LRSchedule(lr))
    robust = robust if robust is not None else RobustConfig()
    if robust.aggregator != "mean":
        raise ValueError(
            "robust aggregators apply to HFL updates; VFL parties own "
            f"disjoint feature blocks (got aggregator={robust.aggregator!r})"
        )
    ledger = QuarantineLedger()
    screener = robust.make_screener(ledger)
    robust_kwargs = dict(
        screener=screener,
        checkpoint=robust.make_checkpoint("vfl"),
        resume=robust.resume,
    )
    engine = None
    if runtime is None:
        result = trainer.train(
            split.train, split.validation, track_losses=True, **robust_kwargs
        )
    else:
        engine = FederatedRuntime(runtime)
        result = engine.run_vfl(
            trainer, split.train, split.validation, track_losses=True,
            **robust_kwargs,
        )
    return VFLWorkload(
        dataset=dataset,
        task=task,
        split=split,
        trainer=trainer,
        result=result,
        runtime=engine,
        quarantine=ledger if screener is not None else None,
    )
