"""Paper-reproduction experiments: one module per table/figure.

Run everything with ``python -m repro.experiments`` (writes
``experiments_output.txt``), or call the ``run_*`` functions directly.
"""

from repro.experiments.ablations import (
    run_learning_rate_ablation,
    run_validation_size_ablation,
    run_weighting_scheme_ablation,
)
from repro.experiments.budget_curves import run_estimator_budget_curves
from repro.experiments.common import ExperimentReport, Row, format_table
from repro.experiments.degradation import (
    run_compression_sweep,
    run_heterogeneity_sweep,
)
from repro.experiments.encrypted_overhead import run_encrypted_overhead
from repro.experiments.fedavg_variant import run_fedavg_sweep
from repro.experiments.hfl_accuracy import run_hfl_accuracy
from repro.experiments.hfl_baselines import run_hfl_baselines
from repro.experiments.per_epoch import run_per_epoch
from repro.experiments.reweight import run_reweight
from repro.experiments.robustness import run_attack_detection
from repro.experiments.scalability import (
    run_model_size_scaling,
    run_participant_scaling,
)
from repro.experiments.second_term import run_second_term, run_second_term_per_epoch
from repro.experiments.vfl_accuracy import run_vfl_accuracy
from repro.experiments.vfl_baselines import run_vfl_baselines
from repro.experiments.workloads import (
    HFLWorkload,
    VFLWorkload,
    build_hfl_workload,
    build_vfl_workload,
)

__all__ = [
    "ExperimentReport",
    "HFLWorkload",
    "Row",
    "VFLWorkload",
    "build_hfl_workload",
    "build_vfl_workload",
    "format_table",
    "run_attack_detection",
    "run_compression_sweep",
    "run_encrypted_overhead",
    "run_estimator_budget_curves",
    "run_fedavg_sweep",
    "run_heterogeneity_sweep",
    "run_hfl_accuracy",
    "run_hfl_baselines",
    "run_learning_rate_ablation",
    "run_model_size_scaling",
    "run_participant_scaling",
    "run_per_epoch",
    "run_reweight",
    "run_second_term",
    "run_second_term_per_epoch",
    "run_validation_size_ablation",
    "run_vfl_accuracy",
    "run_vfl_baselines",
    "run_weighting_scheme_ablation",
]
