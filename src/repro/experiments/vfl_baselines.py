"""Fig. 5 + Table V: DIG-FL vs TMC / GT in VFL.

TMC and GT are the only baselines applicable to VFL (Sec. V-D); both
retrain the vertical model per sampled coalition, while DIG-FL reads the
training log.  Budgets follow the paper (TMC ≈ n²log n retrainings,
GT ≈ n(log n)² tests).
"""

from __future__ import annotations

import math

from repro.core import estimate_vfl_first_order
from repro.data import VFL_DATASETS
from repro.experiments.common import ExperimentReport
from repro.experiments.workloads import build_vfl_workload
from repro.metrics import pearson_correlation
from repro.shapley import VFLRetrainUtility, exact_shapley, gt_shapley, tmc_shapley


def run_vfl_baselines(
    *,
    datasets: tuple[str, ...] = tuple(VFL_DATASETS),
    epochs: int = 30,
    max_parties: int | None = None,
    max_rows: int = 1200,
    seed: int = 0,
) -> ExperimentReport:
    """One row per (dataset, method) mirroring Table V plus cost columns."""
    report = ExperimentReport(
        name="vfl-baselines", paper_reference="Fig. 5 + Table V"
    )
    for dataset in datasets:
        n_parties = VFL_DATASETS[dataset].vfl_parties
        if max_parties is not None:
            n_parties = min(n_parties, max_parties)
        workload = build_vfl_workload(
            dataset, n_parties=n_parties, epochs=epochs, max_rows=max_rows, seed=seed
        )

        def fresh_utility() -> VFLRetrainUtility:
            return VFLRetrainUtility(
                workload.trainer, workload.split.train, workload.split.validation
            )

        exact = exact_shapley(fresh_utility())

        digfl = estimate_vfl_first_order(workload.result.log)
        tmc_util = fresh_utility()
        tmc = tmc_shapley(
            tmc_util,
            n_permutations=max(2, int(math.ceil(n_parties * math.log(n_parties)))),
            seed=seed,
        )
        gt_util = fresh_utility()
        gt = gt_shapley(
            gt_util,
            n_tests=max(8, int(math.ceil(n_parties * math.log(n_parties) ** 2))),
            seed=seed,
        )

        for method, totals, ledger in (
            ("DIG-FL", digfl.totals, digfl.ledger),
            ("TMC-shapley", tmc.totals, tmc_util.ledger),
            ("GT-shapley", gt.totals, gt_util.ledger),
        ):
            report.add(
                {"dataset": dataset, "method": method, "n": n_parties},
                {
                    "pcc": pearson_correlation(totals, exact.totals),
                    "t_s": ledger.compute_seconds,
                    "comm_mb": ledger.total_comm_mb,
                },
            )
    report.notes.append(
        "Expected shape per Table V: all three achieve high PCC; DIG-FL is "
        "orders of magnitude cheaper in time and communication."
    )
    return report
