"""Table III: DIG-FL vs actual Shapley value for VFL on ten datasets.

Party counts follow the paper's ``n`` column; the actual Shapley value is
computed by 2^n retrainings of the vertical model.  Reported per dataset:
PCC, DIG-FL seconds, actual-Shapley seconds.
"""

from __future__ import annotations

from repro.core import estimate_vfl_first_order
from repro.data import VFL_DATASETS
from repro.experiments.common import ExperimentReport
from repro.experiments.workloads import build_vfl_workload
from repro.metrics import pearson_correlation
from repro.shapley import VFLRetrainUtility, exact_shapley


def run_vfl_accuracy(
    *,
    datasets: tuple[str, ...] = tuple(VFL_DATASETS),
    epochs: int = 30,
    max_parties: int | None = None,
    max_rows: int = 1200,
    seed: int = 0,
) -> ExperimentReport:
    """One row per dataset, mirroring Table III's columns.

    ``max_parties`` caps the Table III party count (2^n retraining grows
    fast; the quick benchmarks cap at ~10, the full run uses None).
    """
    report = ExperimentReport(name="vfl-vs-actual", paper_reference="Table III")
    for dataset in datasets:
        n_parties = VFL_DATASETS[dataset].vfl_parties
        if max_parties is not None:
            n_parties = min(n_parties, max_parties)
        workload = build_vfl_workload(
            dataset, n_parties=n_parties, epochs=epochs, max_rows=max_rows, seed=seed
        )
        digfl = estimate_vfl_first_order(workload.result.log)
        utility = VFLRetrainUtility(
            workload.trainer, workload.split.train, workload.split.validation
        )
        actual = exact_shapley(utility)
        report.add(
            {"dataset": dataset, "model": VFL_DATASETS[dataset].vfl_model, "n": n_parties},
            {
                "pcc": pearson_correlation(digfl.totals, actual.totals),
                "t_digfl_s": digfl.ledger.compute_seconds,
                "t_actual_s": utility.ledger.compute_seconds,
                "retrainings": utility.evaluations,
            },
        )
    return report
