"""Ablations for the design choices DESIGN.md calls out.

Not in the paper, but they probe the knobs DIG-FL's accuracy rests on:

* **validation-set size** — the estimator's only data requirement is the
  server's validation set; how small can it get before PCC degrades?
* **learning rate** — Lemmas 1-3 are first-order expansions around the
  joint trajectory, so large steps should hurt the approximation.
* **weighting scheme** — Eq. 17's hard rectification vs a softmax.
"""

from __future__ import annotations


from repro.core import DIGFLReweighter, estimate_hfl_resource_saving
from repro.data import HFL_DATASETS, build_hfl_federation
from repro.experiments.common import ExperimentReport
from repro.experiments.workloads import build_hfl_workload
from repro.hfl import HFLTrainer
from repro.metrics import pearson_correlation
from repro.nn import LRSchedule, make_hfl_model
from repro.shapley import HFLRetrainUtility, exact_shapley
from repro.utils.rng import derive_seed


def run_validation_size_ablation(
    *,
    dataset: str = "mnist",
    fractions: tuple[float, ...] = (0.02, 0.05, 0.1, 0.2),
    epochs: int = 10,
    seed: int = 0,
) -> ExperimentReport:
    """PCC vs exact Shapley as the validation fraction shrinks."""
    report = ExperimentReport(
        name="ablation-validation-size", paper_reference="DESIGN.md §5"
    )
    for fraction in fractions:
        data = HFL_DATASETS[dataset].make(n_samples=1500, seed=derive_seed(seed, 1))
        fed = build_hfl_federation(
            data, 5, n_mislabeled=1, n_noniid=1,
            validation_fraction=fraction, seed=derive_seed(seed, 2),
        )

        def factory():
            return make_hfl_model(dataset, seed=derive_seed(seed, 3))

        trainer = HFLTrainer(factory, epochs=epochs, lr_schedule=LRSchedule(0.5))
        result = trainer.train(fed.locals, fed.validation)
        digfl = estimate_hfl_resource_saving(result.log, fed.validation, factory)
        utility = HFLRetrainUtility(
            trainer, fed.locals, fed.validation, init_theta=result.log.initial_theta
        )
        actual = exact_shapley(utility)
        report.add(
            {"dataset": dataset, "val_fraction": fraction, "val_rows": len(fed.validation)},
            {"pcc": pearson_correlation(digfl.totals, actual.totals)},
        )
    return report


def run_learning_rate_ablation(
    *,
    dataset: str = "mnist",
    lrs: tuple[float, ...] = (0.1, 0.3, 0.5, 1.0),
    epochs: int = 10,
    seed: int = 0,
) -> ExperimentReport:
    """First-order approximation quality as the step size grows."""
    report = ExperimentReport(
        name="ablation-learning-rate", paper_reference="DESIGN.md §5"
    )
    for lr in lrs:
        workload = build_hfl_workload(
            dataset, n_mislabeled=1, n_noniid=1, epochs=epochs, lr=lr, seed=seed
        )
        fed = workload.federation
        digfl = estimate_hfl_resource_saving(
            workload.result.log, fed.validation, workload.model_factory
        )
        utility = HFLRetrainUtility(
            workload.trainer, fed.locals, fed.validation,
            init_theta=workload.result.log.initial_theta,
        )
        actual = exact_shapley(utility)
        report.add(
            {"dataset": dataset, "lr": lr},
            {"pcc": pearson_correlation(digfl.totals, actual.totals)},
        )
    return report


def run_weighting_scheme_ablation(
    *,
    dataset: str = "motor",
    m: int = 3,
    epochs: int = 20,
    seed: int = 0,
) -> ExperimentReport:
    """Eq. 17 rectified weights vs softmax weights under heavy mislabeling."""
    report = ExperimentReport(
        name="ablation-weighting-scheme", paper_reference="DESIGN.md §5"
    )
    workload = build_hfl_workload(
        dataset, n_parties=5, n_mislabeled=m, epochs=epochs, seed=seed
    )
    fed = workload.federation
    accs = {"fedsgd": float(workload.result.log.records[-1].val_accuracy)}
    for scheme in ("rectified", "softmax"):
        run = workload.trainer.train(
            fed.locals,
            fed.validation,
            reweighter=DIGFLReweighter(fed.validation, scheme=scheme),
            track_validation=True,
        )
        accs[scheme] = float(run.log.records[-1].val_accuracy)
    report.add(
        {"dataset": dataset, "m": m},
        {
            "acc_fedsgd": accs["fedsgd"],
            "acc_rectified": accs["rectified"],
            "acc_softmax": accs["softmax"],
        },
    )
    report.notes.append(
        "Rectification can silence corrupted updates entirely; softmax "
        "always leaks some weight to them."
    )
    return report
