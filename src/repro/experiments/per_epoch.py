"""Fig. 6: estimated vs actual Shapley value for each epoch (HFL).

Per the paper, the actual per-epoch Shapley value uses the validation
improvement caused by aggregating each subset of the uploaded gradients as
the round utility; a participant leaving an epoch means its gradient is
ignored in that round's aggregation.  The federation has 5 participants:
one mislabeled, one non-IID, three clean — the three colour groups of
Fig. 6.
"""

from __future__ import annotations


from repro.core import estimate_hfl_resource_saving
from repro.data import HFL_DATASETS
from repro.experiments.common import ExperimentReport
from repro.experiments.workloads import build_hfl_workload
from repro.metrics import pearson_correlation
from repro.shapley import per_round_exact_shapley


def run_per_epoch(
    *,
    datasets: tuple[str, ...] = tuple(HFL_DATASETS),
    epochs: int = 10,
    seed: int = 0,
) -> ExperimentReport:
    """Per-epoch curves by participant type + pooled per-epoch PCC."""
    report = ExperimentReport(
        name="per-epoch-shapley", paper_reference="Fig. 6"
    )
    for dataset in datasets:
        workload = build_hfl_workload(
            dataset, n_parties=5, n_mislabeled=1, n_noniid=1, epochs=epochs, seed=seed
        )
        fed = workload.federation
        estimated = estimate_hfl_resource_saving(
            workload.result.log, fed.validation, workload.model_factory
        ).per_epoch
        actual = per_round_exact_shapley(
            workload.result.log, fed.validation, workload.model_factory
        )

        groups = {"clean": [], "mislabeled": [], "noniid": []}
        for i, quality in enumerate(fed.qualities):
            groups[quality].append(i)
        for t in range(epochs):
            metrics: dict = {}
            for quality, members in groups.items():
                if not members:
                    continue
                metrics[f"actual_{quality}"] = float(actual[t, members].mean())
                metrics[f"est_{quality}"] = float(estimated[t, members].mean())
            report.add({"dataset": dataset, "epoch": t + 1}, metrics)

        report.add(
            {"dataset": dataset, "epoch": "all"},
            {
                "pcc": pearson_correlation(estimated.ravel(), actual.ravel()),
            },
        )
    report.notes.append(
        "Expected ordering per the paper: clean > mislabeled and clean > "
        "non-IID in most epochs; pooled per-epoch PCC high."
    )
    return report
