"""Fig. 2 + Table II: the error of ignoring the second-order term.

For every one of the 14 datasets, compute the whole-process contribution
with (φ) and without (φ̂) the Hessian correction and report the relative
error ``|φ − φ̂| / |φ|``.  The paper finds the error within 5%; our shape
criterion is "single-digit percent".

For HFL, φ comes from Algorithm 1 (participant-local HVPs); for VFL from
Eq. 26 evaluated by the simulator (a deployed VFL system cannot compute it,
which is the paper's point).
"""

from __future__ import annotations

import numpy as np

from repro.core import (
    estimate_hfl_interactive,
    estimate_hfl_resource_saving,
    estimate_vfl_first_order,
    estimate_vfl_second_order,
)
from repro.data import HFL_DATASETS, VFL_DATASETS
from repro.experiments.common import ExperimentReport
from repro.experiments.workloads import build_hfl_workload, build_vfl_workload
from repro.metrics import relative_error


def run_second_term(
    *,
    hfl_datasets: tuple[str, ...] = tuple(HFL_DATASETS),
    vfl_datasets: tuple[str, ...] = tuple(VFL_DATASETS),
    hfl_epochs: int = 8,
    vfl_epochs: int = 20,
    hfl_lr: float = 0.05,
    vfl_lr_scale: float = 0.25,
    seed: int = 0,
) -> ExperimentReport:
    """Reproduce Table II (totals) and Fig. 2 (per-epoch closeness).

    The ratio of the dropped term to the kept one scales like
    ``α·t·‖H‖`` (Sec. II-E), so the experiment runs in the small-step
    regime the paper's claim lives in; the learning-rate ablation
    (:func:`repro.experiments.ablations.run_learning_rate_ablation`)
    quantifies the degradation at larger steps.
    """
    report = ExperimentReport(
        name="second-term-error", paper_reference="Fig. 2 + Table II"
    )
    # The binary MOTOR model has a markedly larger curvature-to-gradient
    # ratio than the 10-class models, so its small-step regime starts lower.
    hfl_lrs = {name: hfl_lr for name in hfl_datasets}
    hfl_lrs["motor"] = min(hfl_lr, 0.01)
    for dataset in hfl_datasets:
        # Clean federation: the error measurement isolates the Hessian term,
        # no corruption needed (corrupted runs are covered by Fig. 3/4).
        workload = build_hfl_workload(
            dataset, epochs=hfl_epochs, lr=hfl_lrs[dataset], seed=seed
        )
        fed = workload.federation
        full = estimate_hfl_interactive(
            workload.result.log, fed.validation, workload.model_factory, fed.locals
        )
        approx = estimate_hfl_resource_saving(
            workload.result.log, fed.validation, workload.model_factory
        )
        phi = float(np.abs(full.totals).sum())
        phi_hat = float(np.abs(approx.totals).sum())
        report.add(
            {"setting": "hfl", "dataset": dataset},
            {
                "phi": phi,
                "phi_hat": phi_hat,
                "rel_error": relative_error(phi, phi_hat),
            },
        )

    for dataset in vfl_datasets:
        base_lr = 0.1 if VFL_DATASETS[dataset].vfl_model == "linreg" else 0.5
        workload = build_vfl_workload(
            dataset, epochs=vfl_epochs, lr=base_lr * vfl_lr_scale, seed=seed
        )
        full = estimate_vfl_second_order(
            workload.result.log, workload.trainer.model, workload.split.train
        )
        approx = estimate_vfl_first_order(workload.result.log)
        phi = float(np.abs(full.totals).sum())
        phi_hat = float(np.abs(approx.totals).sum())
        report.add(
            {"setting": f"vfl-{workload.task}", "dataset": dataset},
            {
                "phi": phi,
                "phi_hat": phi_hat,
                "rel_error": relative_error(phi, phi_hat),
            },
        )
    return report


def run_second_term_per_epoch(
    *, hfl_dataset: str = "mnist", vfl_dataset: str = "boston", seed: int = 0
) -> ExperimentReport:
    """Fig. 2's per-epoch view: φ_t vs φ̂_t curves for one HFL + one VFL run."""
    report = ExperimentReport(
        name="second-term-per-epoch", paper_reference="Fig. 2"
    )
    workload = build_hfl_workload(
        hfl_dataset, n_mislabeled=1, n_noniid=1, epochs=8, seed=seed
    )
    fed = workload.federation
    full = estimate_hfl_interactive(
        workload.result.log, fed.validation, workload.model_factory, fed.locals
    )
    approx = estimate_hfl_resource_saving(
        workload.result.log, fed.validation, workload.model_factory
    )
    for t in range(full.per_epoch.shape[0]):
        report.add(
            {"setting": "hfl", "dataset": hfl_dataset, "epoch": t + 1},
            {
                "phi_t": float(np.abs(full.per_epoch[t]).sum()),
                "phi_hat_t": float(np.abs(approx.per_epoch[t]).sum()),
            },
        )

    vfl = build_vfl_workload(vfl_dataset, epochs=15, seed=seed)
    full_v = estimate_vfl_second_order(vfl.result.log, vfl.trainer.model, vfl.split.train)
    approx_v = estimate_vfl_first_order(vfl.result.log)
    for t in range(full_v.per_epoch.shape[0]):
        report.add(
            {"setting": "vfl", "dataset": vfl_dataset, "epoch": t + 1},
            {
                "phi_t": float(np.abs(full_v.per_epoch[t]).sum()),
                "phi_hat_t": float(np.abs(approx_v.per_epoch[t]).sum()),
            },
        )
    return report
