"""Extension experiments: DIG-FL under update compression and Dirichlet skew.

Two deployment realities the paper does not evaluate:

* **Compression** — participants sparsify/quantise updates to save
  bandwidth; the server-side log then contains compressed ``δ`` and the
  estimator inherits the distortion.
* **Continuous heterogeneity** — real federations are not "m corrupted,
  n−m clean" but a spectrum; the Dirichlet(α) partition dials label skew
  continuously, and both the estimator's fidelity and the reweighting
  benefit should vary smoothly with it.
"""

from __future__ import annotations

import numpy as np

from repro.core import DIGFLReweighter, estimate_hfl_resource_saving
from repro.data import HFL_DATASETS, dirichlet_label_partition
from repro.data.dataset import Dataset
from repro.data.partition import FederatedSplit
from repro.experiments.common import ExperimentReport
from repro.experiments.workloads import build_hfl_workload
from repro.hfl import AdversarialHFLTrainer, HFLTrainer, quantize, topk_sparsify
from repro.metrics import pearson_correlation
from repro.nn import LRSchedule, make_hfl_model
from repro.shapley import HFLRetrainUtility, exact_shapley
from repro.utils.rng import derive_seed


def run_compression_sweep(
    *,
    dataset: str = "mnist",
    topk_fractions: tuple[float, ...] = (0.5, 0.1, 0.02),
    quantize_bits: tuple[int, ...] = (8, 4, 2),
    n_parties: int = 5,
    epochs: int = 8,
    seed: int = 0,
) -> ExperimentReport:
    """DIG-FL fidelity (PCC vs exact) as updates get more compressed."""
    report = ExperimentReport(
        name="compression-sweep", paper_reference="deployment extension"
    )
    base = build_hfl_workload(
        dataset, n_parties=n_parties, n_mislabeled=1, n_noniid=1,
        epochs=epochs, seed=seed,
    )
    fed = base.federation

    configs = [("none", None)]
    configs += [(f"topk-{f}", topk_sparsify(f)) for f in topk_fractions]
    configs += [(f"quant-{b}bit", quantize(b)) for b in quantize_bits]

    for label, transform in configs:
        attacks = {} if transform is None else {i: transform for i in range(n_parties)}
        trainer = AdversarialHFLTrainer(
            base.model_factory, epochs, LRSchedule(0.5), attacks=attacks
        )
        result = trainer.train(fed.locals, fed.validation, track_validation=True)
        digfl = estimate_hfl_resource_saving(
            result.log, fed.validation, base.model_factory
        )
        utility = HFLRetrainUtility(
            trainer, fed.locals, fed.validation,
            init_theta=result.log.initial_theta,
        )
        exact = exact_shapley(utility)
        report.add(
            {"dataset": dataset, "compression": label},
            {
                "pcc": pearson_correlation(digfl.totals, exact.totals),
                "final_acc": float(result.log.records[-1].val_accuracy),
            },
        )
    report.notes.append(
        "Expected shape: mild compression (8-bit, top-50%) leaves PCC near "
        "the uncompressed value; aggressive compression degrades both the "
        "model and the estimate together."
    )
    return report


def _dirichlet_federation(
    dataset: str, n_parties: int, alpha: float, seed: int
) -> FederatedSplit:
    """Federation whose parties are Dirichlet(α)-label-skewed."""
    info = HFL_DATASETS[dataset]
    data = info.make(n_samples=1500, seed=derive_seed(seed, 1))
    train, validation = data.validation_split(0.1, seed=derive_seed(seed, 2))
    parts = dirichlet_label_partition(
        train.y, n_parties, alpha, num_classes=data.num_classes,
        seed=derive_seed(seed, 3),
    )
    locals_ = [train.subset(p, name=f"{dataset}/party{i}") for i, p in enumerate(parts)]
    return FederatedSplit(
        locals=locals_, qualities=["clean"] * n_parties, validation=validation
    )


def run_heterogeneity_sweep(
    *,
    dataset: str = "cifar10",
    alphas: tuple[float, ...] = (100.0, 1.0, 0.1),
    n_parties: int = 5,
    epochs: int = 15,
    seed: int = 0,
) -> ExperimentReport:
    """Reweighting benefit and estimator fidelity vs Dirichlet skew α."""
    report = ExperimentReport(
        name="heterogeneity-sweep", paper_reference="non-IID extension"
    )
    for alpha in alphas:
        fed = _dirichlet_federation(dataset, n_parties, alpha, seed)

        def factory():
            return make_hfl_model(dataset, seed=derive_seed(seed, 4))

        trainer = HFLTrainer(factory, epochs, LRSchedule(0.5))
        plain = trainer.train(fed.locals, fed.validation, track_validation=True)
        reweighted = trainer.train(
            fed.locals,
            fed.validation,
            reweighter=DIGFLReweighter(fed.validation),
            track_validation=True,
        )
        digfl = estimate_hfl_resource_saving(plain.log, fed.validation, factory)
        utility = HFLRetrainUtility(
            trainer, fed.locals, fed.validation, init_theta=plain.log.initial_theta
        )
        exact = exact_shapley(utility)
        report.add(
            {"dataset": dataset, "alpha": alpha},
            {
                "pcc": pearson_correlation(digfl.totals, exact.totals),
                "acc_fedsgd": float(plain.log.records[-1].val_accuracy),
                "acc_digfl": float(reweighted.log.records[-1].val_accuracy),
                "contribution_spread": float(np.std(exact.totals)),
            },
        )
    report.notes.append(
        "Expected shape: near-IID (large α) federations have tightly "
        "clustered contributions and no reweighting benefit; strong skew "
        "(small α) spreads contributions and opens an accuracy gap that "
        "reweighting partially recovers."
    )
    return report
