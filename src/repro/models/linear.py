"""Analytic linear and logistic regression.

The VFL experiments (Table III) train vertical linear/logistic regression
where every party owns a block of the coefficient vector.  Closed-form
losses, gradients and Hessians keep the 2^n-retraining exact-Shapley
baselines tractable, and give an independent check of the autodiff engine.

Conventions
-----------
* The model is the coefficient vector ``θ ∈ R^d`` (no intercept — synthetic
  targets are centred; an intercept column can be appended to ``X``).
* Losses are *means* over samples, so learning rates transfer across
  dataset sizes.  (The paper writes sums; the two differ by the constant
  ``1/m`` absorbed into the learning rate.)
"""

from __future__ import annotations

import numpy as np


class LinearRegressionModel:
    """``loss(θ) = mean((Xθ - y)^2) + l2·‖θ‖²`` — Eq. 28 normalised.

    ``l2`` adds ridge regularisation (common in deployed vertical linear
    regression; 0 by default matches the paper's formulation).
    """

    task = "regression"

    def __init__(self, l2: float = 0.0) -> None:
        if l2 < 0:
            raise ValueError(f"l2 must be non-negative, got {l2}")
        self.l2 = l2

    def n_coefficients(self, X: np.ndarray) -> int:
        return X.shape[1]

    def loss(self, theta: np.ndarray, X: np.ndarray, y: np.ndarray) -> float:
        residual = X @ theta - y
        return float(np.mean(residual**2) + self.l2 * theta @ theta)

    def gradient(self, theta: np.ndarray, X: np.ndarray, y: np.ndarray) -> np.ndarray:
        residual = X @ theta - y
        return 2.0 * (X.T @ residual) / len(y) + 2.0 * self.l2 * theta

    def residual(self, theta: np.ndarray, X: np.ndarray, y: np.ndarray) -> np.ndarray:
        """``Xθ - y`` — the quantity the encrypted protocol exchanges."""
        return X @ theta - y

    def hessian(self, theta: np.ndarray, X: np.ndarray, y: np.ndarray) -> np.ndarray:
        del theta, y  # quadratic loss: Hessian is data-only
        d = X.shape[1]
        return 2.0 * (X.T @ X) / len(X) + 2.0 * self.l2 * np.eye(d)

    def hvp(self, theta: np.ndarray, X: np.ndarray, y: np.ndarray, v: np.ndarray) -> np.ndarray:
        """Hessian-vector product without forming the d×d matrix."""
        del theta, y
        return 2.0 * (X.T @ (X @ v)) / len(X) + 2.0 * self.l2 * v

    def predict(self, theta: np.ndarray, X: np.ndarray) -> np.ndarray:
        return X @ theta

    def score(self, theta: np.ndarray, X: np.ndarray, y: np.ndarray) -> float:
        """R² coefficient of determination."""
        pred = self.predict(theta, X)
        ss_res = float(np.sum((y - pred) ** 2))
        ss_tot = float(np.sum((y - y.mean()) ** 2))
        if ss_tot < 1e-300:
            return 0.0
        return 1.0 - ss_res / ss_tot


class LogisticRegressionModel:
    """Mean binary cross-entropy with logits (+ optional L2), labels {0, 1}."""

    task = "binary"

    def __init__(self, l2: float = 0.0) -> None:
        if l2 < 0:
            raise ValueError(f"l2 must be non-negative, got {l2}")
        self.l2 = l2

    def n_coefficients(self, X: np.ndarray) -> int:
        return X.shape[1]

    @staticmethod
    def _sigmoid(z: np.ndarray) -> np.ndarray:
        out = np.empty_like(z)
        pos = z >= 0
        out[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
        ez = np.exp(z[~pos])
        out[~pos] = ez / (1.0 + ez)
        return out

    def loss(self, theta: np.ndarray, X: np.ndarray, y: np.ndarray) -> float:
        z = X @ theta
        # softplus(z) - y z, computed stably.
        softplus = np.maximum(z, 0.0) + np.log1p(np.exp(-np.abs(z)))
        return float(np.mean(softplus - y * z) + self.l2 * theta @ theta)

    def gradient(self, theta: np.ndarray, X: np.ndarray, y: np.ndarray) -> np.ndarray:
        probs = self._sigmoid(X @ theta)
        return X.T @ (probs - y) / len(y) + 2.0 * self.l2 * theta

    def residual(self, theta: np.ndarray, X: np.ndarray, y: np.ndarray) -> np.ndarray:
        """``σ(Xθ) - y`` — plays the role of ``d`` in the encrypted protocol.

        The paper's VFL-LogReg (following Hardy et al.) uses this (or its
        Taylor approximation) as the per-sample residual that parties
        multiply by their local features.
        """
        return self._sigmoid(X @ theta) - y

    def hessian(self, theta: np.ndarray, X: np.ndarray, y: np.ndarray) -> np.ndarray:
        del y
        probs = self._sigmoid(X @ theta)
        weights = probs * (1.0 - probs)
        return (X.T * weights) @ X / len(X) + 2.0 * self.l2 * np.eye(X.shape[1])

    def hvp(self, theta: np.ndarray, X: np.ndarray, y: np.ndarray, v: np.ndarray) -> np.ndarray:
        del y
        probs = self._sigmoid(X @ theta)
        weights = probs * (1.0 - probs)
        return X.T @ (weights * (X @ v)) / len(X) + 2.0 * self.l2 * v

    def predict(self, theta: np.ndarray, X: np.ndarray) -> np.ndarray:
        return (X @ theta > 0).astype(np.int64)

    def score(self, theta: np.ndarray, X: np.ndarray, y: np.ndarray) -> float:
        """Classification accuracy."""
        return float(np.mean(self.predict(theta, X) == y))


class SoftmaxRegressionModel:
    """Multinomial logistic regression over a *flat* coefficient vector.

    Extends the paper's VFL pair (linear/binary-logistic) to multiclass —
    a natural next model in the same GLM family, so the whole vertical
    stack (trainer, DIG-FL estimator, exact Shapley) works unchanged.

    The weight matrix ``W ∈ R^{d×C}`` is stored row-major as ``θ ∈ R^{dC}``,
    so the coefficients of feature ``f`` occupy the contiguous block
    ``[f·C, (f+1)·C)`` — see :func:`expand_feature_blocks`.
    """

    task = "multiclass"

    def __init__(self, n_classes: int) -> None:
        if n_classes < 2:
            raise ValueError(f"n_classes must be >= 2, got {n_classes}")
        self.n_classes = n_classes

    def n_coefficients(self, X: np.ndarray) -> int:
        return X.shape[1] * self.n_classes

    def _weights(self, theta: np.ndarray, X: np.ndarray) -> np.ndarray:
        return theta.reshape(X.shape[1], self.n_classes)

    def _probs(self, theta: np.ndarray, X: np.ndarray) -> np.ndarray:
        logits = X @ self._weights(theta, X)
        logits -= logits.max(axis=1, keepdims=True)
        expz = np.exp(logits)
        return expz / expz.sum(axis=1, keepdims=True)

    def loss(self, theta: np.ndarray, X: np.ndarray, y: np.ndarray) -> float:
        logits = X @ self._weights(theta, X)
        shifted = logits - logits.max(axis=1, keepdims=True)
        log_probs = shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))
        return float(-np.mean(log_probs[np.arange(len(y)), y.astype(np.int64)]))

    def gradient(self, theta: np.ndarray, X: np.ndarray, y: np.ndarray) -> np.ndarray:
        probs = self._probs(theta, X)
        probs[np.arange(len(y)), y.astype(np.int64)] -= 1.0
        return (X.T @ probs / len(y)).ravel()

    def residual(self, theta: np.ndarray, X: np.ndarray, y: np.ndarray) -> np.ndarray:
        """``softmax(XW) − onehot(y)``, shape (m, C)."""
        probs = self._probs(theta, X)
        probs[np.arange(len(y)), y.astype(np.int64)] -= 1.0
        return probs

    def hvp(self, theta: np.ndarray, X: np.ndarray, y: np.ndarray, v: np.ndarray) -> np.ndarray:
        """GLM Hessian-vector product: ``H = (1/m) Σ x xᵀ ⊗ (diag(p)−ppᵀ)``."""
        del y
        probs = self._probs(theta, X)
        direction = v.reshape(X.shape[1], self.n_classes)
        activation = X @ direction  # (m, C)
        weighted = probs * activation
        weighted -= probs * weighted.sum(axis=1, keepdims=True)
        return (X.T @ weighted / len(X)).ravel()

    def hessian(self, theta: np.ndarray, X: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Dense (dC × dC) Hessian — test-sized problems only."""
        d = X.shape[1]
        size = d * self.n_classes
        H = np.empty((size, size))
        for k in range(size):
            e = np.zeros(size)
            e[k] = 1.0
            H[:, k] = self.hvp(theta, X, y, e)
        return H

    def predict(self, theta: np.ndarray, X: np.ndarray) -> np.ndarray:
        return np.argmax(X @ self._weights(theta, X), axis=1)

    def score(self, theta: np.ndarray, X: np.ndarray, y: np.ndarray) -> float:
        return float(np.mean(self.predict(theta, X) == y))


def expand_feature_blocks(
    feature_blocks: list[np.ndarray], n_classes: int
) -> list[np.ndarray]:
    """Map per-party *feature* blocks to flat softmax *coefficient* blocks."""
    if n_classes < 2:
        raise ValueError(f"n_classes must be >= 2, got {n_classes}")
    expanded = []
    for block in feature_blocks:
        block = np.asarray(block)
        coeffs = (block[:, None] * n_classes + np.arange(n_classes)[None, :]).ravel()
        expanded.append(np.sort(coeffs))
    return expanded


def make_vfl_model(task: str, *, n_classes: int = 0, l2: float = 0.0):
    """Model for a VFL dataset.

    ``regression`` → linear, ``binary`` → logistic, ``multiclass`` →
    softmax (requires ``n_classes``).  ``l2`` adds ridge regularisation to
    the GLM pair (the softmax model does not take it).
    """
    if task == "regression":
        return LinearRegressionModel(l2=l2)
    if task == "binary":
        return LogisticRegressionModel(l2=l2)
    if task == "multiclass":
        if l2:
            raise ValueError("l2 regularisation is not implemented for softmax")
        return SoftmaxRegressionModel(n_classes)
    raise ValueError(
        f"VFL supports 'regression', 'binary' or 'multiclass' tasks, got {task!r}"
    )
