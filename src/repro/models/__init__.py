"""Closed-form models for VFL and the retraining-based Shapley baselines."""

from repro.models.linear import (
    LinearRegressionModel,
    LogisticRegressionModel,
    SoftmaxRegressionModel,
    expand_feature_blocks,
    make_vfl_model,
)

__all__ = [
    "LinearRegressionModel",
    "LogisticRegressionModel",
    "SoftmaxRegressionModel",
    "expand_feature_blocks",
    "make_vfl_model",
]
