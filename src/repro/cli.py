"""Command-line interface for quick contribution audits.

Subcommands::

    python -m repro.cli datasets                       # list the 14 datasets
    python -m repro.cli audit-hfl --dataset mnist --parties 5 --mislabeled 1
    python -m repro.cli audit-vfl --dataset boston --parties 6
    python -m repro.cli audit-hfl ... --exact          # add 2^n ground truth
    python -m repro.cli audit-hfl ... --save-log run.npz --save-report run.json
    python -m repro.cli audit-hfl --runtime threads --workers 4 \
        --dropout-rate 0.2 --straggler-ms 30 --round-deadline 80
    python -m repro.cli audit-hfl --robust-agg trimmed --screen \
        --checkpoint-dir ckpt            # re-run with --resume after a crash
    python -m repro.cli serve --port 8733  # streaming evaluation HTTP API
    python -m repro.cli serve --trace --trace-export spans.jsonl
    python -m repro.cli serve --cluster 3 --router-port 8733 --wal-dir wals
    python -m repro.cli serve --cluster 3 --replicas 1   # warm standbys
    python -m repro.cli cluster resize 4   # online rebalance, zero downtime
    python -m repro.cli cluster status
    python -m repro.cli slo check          # exit 1 if any SLO is burning
    python -m repro.cli profile run.npz --kind hfl --dataset mnist
    python -m repro.cli estimate run.npz --estimator gtg_shapley
    python -m repro.cli estimate run.npz --estimator gtg_shapley \
        --option seed=3 --option max_permutations=32
    python -m repro.cli compare run.npz --estimators digfl,gtg_shapley,dpvs
    python -m repro.cli scenario run free_rider --backend digfl
    python -m repro.cli scenario matrix --backends all --check
    python -m repro.cli scenario matrix --scenarios free_rider,label_noise_symmetric \
        --backends digfl,gtg_shapley --save BENCH_scenarios.json

Every audit builds the named synthetic dataset, trains the federation,
runs DIG-FL and prints a contribution table.  The ``--runtime`` family of
flags swaps the synchronous loop for the event-driven engine of
:mod:`repro.runtime` — parallel local updates, dropouts, stragglers and
deadline-based partial aggregation — and prints the fault summary.  The
robust flags activate :mod:`repro.robust`: ``--robust-agg`` picks a
Byzantine-robust aggregation rule, ``--screen`` quarantines bad updates
before aggregation (and prints the quarantine summary), and
``--checkpoint-dir`` / ``--resume`` give crash-safe audits.  ``serve``
boots the :mod:`repro.serve` query service: register saved training logs
over HTTP and query contributions, leaderboards and reweight vectors —
including live, mid-training, when an engine publishes into the same
service; ``--trace`` arms :mod:`repro.obs` span recording and
``--trace-export`` writes the buffered spans as JSONL on shutdown.
``profile`` replays a saved training log through the evaluation service
with the :mod:`repro.obs` phase timers armed and prints where the
estimator's time went (validation gradients, dot products, digests — and
``gtg.reconstruct`` / ``gtg.eval_round`` for the Shapley backends).
``estimate`` replays a saved log through any registered contribution
backend (:mod:`repro.estimators`; ``--estimator`` choices come from the
registry, ``--option KEY=VALUE`` tunes it); ``compare`` runs several
backends over one log and prints the volatility report — per-participant
coefficient of variation, rank stability, and cross-backend Spearman
agreement.  ``scenario`` drives the adversarial suite of
:mod:`repro.scenario`: ``scenario run`` generates one adverse federation
(Dirichlet skew, label noise, free-riders, VFL modality dropout) and
judges one backend against it; ``scenario matrix`` runs the full
scenario × backend grid and prints per-cell verdicts (``--check`` exits
nonzero on any rank-correctness or streaming-equality regression — the
CI gate).
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.core import (
    backend_names,
    estimate_hfl_resource_saving,
    estimate_vfl_first_order,
)
from repro.core.selection import flag_low_quality
from repro.data import ALL_DATASETS, HFL_DATASETS, VFL_DATASETS
from repro.experiments.workloads import build_hfl_workload, build_vfl_workload
from repro.io import save_report, save_training_log, save_vfl_training_log
from repro.metrics import pearson_correlation
from repro.render import contribution_bars
from repro.robust import AGGREGATOR_NAMES, RobustConfig
from repro.runtime import FaultPlan, RuntimeConfig
from repro.shapley import HFLRetrainUtility, VFLRetrainUtility, exact_shapley


def _add_runtime_flags(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("runtime", "event-driven execution engine")
    group.add_argument(
        "--runtime", choices=("sync", "serial", "threads"), default="sync",
        help="sync in-process loop (default), serial engine, or thread pool",
    )
    group.add_argument("--workers", type=int, default=1,
                       help="thread-pool size (runtime=threads)")
    group.add_argument("--dropout-rate", type=float, default=0.0,
                       help="per-round probability a party skips the round")
    group.add_argument("--straggler-ms", type=float, default=0.0,
                       help="mean exponential extra delay per local update")
    group.add_argument("--round-deadline", type=float, default=None, metavar="MS",
                       help="aggregate whatever arrived within MS per round")


def _add_robust_flags(parser: argparse.ArgumentParser, *, vfl: bool = False) -> None:
    group = parser.add_argument_group("robust", "defense and recovery layer")
    if not vfl:
        group.add_argument(
            "--robust-agg", choices=AGGREGATOR_NAMES, default="mean",
            help="Byzantine-robust aggregation rule (default: weighted mean)",
        )
    group.add_argument(
        "--screen", action="store_true",
        help="quarantine non-finite / norm-blowup / cosine-outlier updates",
    )
    group.add_argument(
        "--checkpoint-dir", metavar="DIR", default=None,
        help="persist the training log per round for crash-safe resume",
    )
    group.add_argument(
        "--resume", action="store_true",
        help="continue from the last complete round in --checkpoint-dir",
    )


def _robust_config(args) -> RobustConfig:
    """Translate CLI flags into a RobustConfig (default = seed regime)."""
    if args.resume and args.checkpoint_dir is None:
        raise SystemExit("error: --resume needs --checkpoint-dir")
    return RobustConfig(
        aggregator=getattr(args, "robust_agg", "mean"),
        screen=args.screen,
        checkpoint_dir=args.checkpoint_dir,
        resume=args.resume,
    )


def _print_quarantine_summary(workload) -> None:
    if workload.quarantine is None:
        return
    stats = workload.quarantine.summary()
    if not stats["incidents"]:
        print("screening: no updates quarantined")
        return
    rules = ", ".join(f"{rule}={n}" for rule, n in sorted(stats["by_rule"].items()))
    print(
        f"screening: {stats['incidents']} updates quarantined "
        f"from parties {stats['parties']} ({rules})"
    )


def _runtime_config(args) -> RuntimeConfig | None:
    """Translate CLI flags into a RuntimeConfig (None = synchronous loop)."""
    wants_faults = (
        args.dropout_rate > 0.0
        or args.straggler_ms > 0.0
        or args.round_deadline is not None
    )
    if args.runtime == "sync":
        if wants_faults or args.workers != 1:
            raise SystemExit(
                "error: --workers / --dropout-rate / --straggler-ms / "
                "--round-deadline need --runtime serial or threads"
            )
        return None
    return RuntimeConfig(
        executor="serial" if args.runtime == "serial" else "threads",
        workers=args.workers if args.runtime == "threads" else 1,
        faults=FaultPlan(
            dropout_rate=args.dropout_rate,
            straggler_ms=args.straggler_ms,
            seed=args.seed,
        ),
        round_deadline_ms=args.round_deadline,
    )


def _print_runtime_summary(workload) -> None:
    if workload.runtime is None:
        return
    stats = workload.runtime.event_log.summary()
    print(
        f"runtime: {stats['rounds']:.0f} rounds in {stats['sim_seconds']*1e3:.1f} "
        f"sim-ms | completed {stats['completed']:.0f}/{stats['dispatched']:.0f} "
        f"dispatched, {stats['dropouts']:.0f} dropouts, "
        f"{stats['timeouts']:.0f} deadline misses, {stats['retries']:.0f} retries"
    )


def _cmd_datasets(_args) -> int:
    print(f"{'name':<14} {'key':<6} {'setting':<8} {'task':<11} paper size")
    for name, info in ALL_DATASETS.items():
        print(
            f"{name:<14} {info.key:<6} {info.setting:<8} {info.task:<11} "
            f"{info.paper_size}"
        )
    return 0


def _print_contribution_table(report, qualities=None, exact=None) -> None:
    header = "participant  contribution"
    if qualities is not None:
        header += "  quality"
    if exact is not None:
        header += "      exact"
    print(header)
    for row, pid in enumerate(report.participant_ids):
        line = f"{pid:>11}  {report.totals[row]:+12.5f}"
        if qualities is not None:
            line += f"  {qualities[row]:<10}"
        if exact is not None:
            line += f"  {exact.totals[row]:+9.5f}"
        print(line)
    flagged = flag_low_quality(report)
    if flagged:
        print(f"flagged as low-quality outliers: {flagged}")
    print()
    print(contribution_bars(report, qualities=qualities))


def _cmd_audit_hfl(args) -> int:
    if args.dataset not in HFL_DATASETS:
        print(f"error: {args.dataset!r} is not an HFL dataset "
              f"(choose from {sorted(HFL_DATASETS)})", file=sys.stderr)
        return 2
    workload = build_hfl_workload(
        args.dataset,
        n_parties=args.parties,
        n_mislabeled=args.mislabeled,
        n_noniid=args.noniid,
        epochs=args.epochs,
        lr=args.lr,
        seed=args.seed,
        runtime=_runtime_config(args),
        robust=_robust_config(args),
    )
    _print_runtime_summary(workload)
    _print_quarantine_summary(workload)
    fed = workload.federation
    report = estimate_hfl_resource_saving(
        workload.result.log, fed.validation, workload.model_factory
    )
    exact = None
    if args.exact:
        utility = HFLRetrainUtility(
            workload.trainer, fed.locals, fed.validation,
            init_theta=workload.result.log.initial_theta,
        )
        exact = exact_shapley(utility)
        print(
            f"exact Shapley value: {utility.evaluations} retrainings, "
            f"{utility.ledger.compute_seconds:.1f}s"
        )
    _print_contribution_table(report, qualities=fed.qualities, exact=exact)
    if exact is not None:
        print(f"PCC(DIG-FL, exact) = "
              f"{pearson_correlation(report.totals, exact.totals):.3f}")
    if args.save_log:
        save_training_log(workload.result.log, args.save_log)
        print(f"training log -> {args.save_log}")
    if args.save_report:
        save_report(report, args.save_report)
        print(f"report -> {args.save_report}")
    return 0


def _cmd_audit_vfl(args) -> int:
    if args.dataset not in VFL_DATASETS:
        print(f"error: {args.dataset!r} is not a VFL dataset "
              f"(choose from {sorted(VFL_DATASETS)})", file=sys.stderr)
        return 2
    workload = build_vfl_workload(
        args.dataset,
        n_parties=args.parties if args.parties else None,
        epochs=args.epochs,
        seed=args.seed,
        runtime=_runtime_config(args),
        robust=_robust_config(args),
    )
    _print_runtime_summary(workload)
    _print_quarantine_summary(workload)
    report = estimate_vfl_first_order(workload.result.log)
    exact = None
    if args.exact:
        utility = VFLRetrainUtility(
            workload.trainer, workload.split.train, workload.split.validation
        )
        exact = exact_shapley(utility)
        print(
            f"exact Shapley value: {utility.evaluations} retrainings, "
            f"{utility.ledger.compute_seconds:.1f}s"
        )
    _print_contribution_table(report, exact=exact)
    if exact is not None:
        print(f"PCC(DIG-FL, exact) = "
              f"{pearson_correlation(report.totals, exact.totals):.3f}")
    if args.save_log:
        save_vfl_training_log(workload.result.log, args.save_log)
        print(f"training log -> {args.save_log}")
    if args.save_report:
        save_report(report, args.save_report)
        print(f"report -> {args.save_report}")
    return 0


def _cmd_serve(args) -> int:
    # Imported here so plain audits never pay for the server stack.
    from repro.obs import Observability
    from repro.serve import EvaluationService, serve

    if args.cluster:
        from repro.serve import serve_cluster

        if args.recover:
            raise SystemExit(
                "--recover is implicit in cluster mode: every shard "
                "replays its own WAL on start"
            )
        if args.trace_export:
            raise SystemExit(
                "--trace-export is per-process; cluster workers export "
                "spans via the router's propagated trace ids instead"
            )
        return serve_cluster(
            args.host,
            args.router_port,
            args.cluster,
            wal_root=args.wal_dir,
            standby_replicas=args.replicas,
            drain_deadline_s=args.drain_deadline_s,
            cache_bytes=args.cache_mb * 1024 * 1024,
            max_workers=args.query_workers,
            query_deadline_ms=args.query_deadline_ms,
            admission_limit=args.max_queue,
            chaos_ingest_ms=args.chaos_ingest_ms,
            trace=args.trace,
            robustness_file=args.robustness_file,
        )
    if args.replicas:
        raise SystemExit("--replicas requires --cluster N")

    obs = Observability(trace=args.trace)
    service = EvaluationService(
        cache_bytes=args.cache_mb * 1024 * 1024,
        max_workers=args.query_workers,
        query_deadline_ms=args.query_deadline_ms,
        admission_limit=args.max_queue,
        obs=obs,
    )
    if args.chaos_ingest_ms:
        # Test hook for the CI chaos job: a per-epoch ingest delay widens
        # the window in which a SIGKILL lands mid-ingest.
        import time as _time

        from repro.serve.service import EvaluationService as _ES

        _orig_ingest = _ES.ingest

        def _slow_ingest(self, run_id, record, *, seq=None):
            _time.sleep(args.chaos_ingest_ms / 1e3)
            return _orig_ingest(self, run_id, record, seq=seq)

        service.ingest = _slow_ingest.__get__(service, _ES)
    if args.wal_dir:
        from repro.serve.wal import WriteAheadLog, recover

        wal = WriteAheadLog(args.wal_dir)
        if args.recover:
            report = recover(service, wal)
            print(f"recovery: {report.summary()}")
        service.attach_wal(wal)
    elif args.recover:
        raise SystemExit("--recover requires --wal-dir")
    try:
        return serve(
            args.host,
            args.port,
            service=service,
            robustness_file=args.robustness_file,
        )
    finally:
        if args.trace_export:
            count = obs.tracer.export_jsonl(args.trace_export)
            print(f"exported {count} span(s) -> {args.trace_export}")


def _cmd_cluster(args) -> int:
    # Talks to a running `repro serve --cluster N` router over HTTP.
    import json as _json
    from http.client import HTTPConnection, HTTPException

    if args.action == "resize" and args.shards < 1:
        raise SystemExit("error: resize needs at least 1 shard")
    conn = HTTPConnection(args.host, args.router_port, timeout=args.timeout_s)
    try:
        if args.action == "resize":
            body = _json.dumps({"shards": args.shards}).encode()
            conn.request("POST", "/cluster/resize", body=body,
                         headers={"Content-Type": "application/json"})
        else:
            conn.request("GET", "/cluster")
        response = conn.getresponse()
        payload = _json.loads(response.read().decode() or "{}")
    except (OSError, HTTPException, ValueError) as exc:
        raise SystemExit(
            f"error: no router at http://{args.host}:{args.router_port} "
            f"({exc})"
        ) from exc
    finally:
        conn.close()
    if response.status >= 400:
        raise SystemExit(
            f"error: router answered {response.status}: "
            f"{payload.get('error', 'unknown error')}"
        )
    print(_json.dumps(payload, indent=2, sort_keys=True))
    return 0


def _cmd_slo(args) -> int:
    # Scrapes /statusz on a running server (worker or router) and turns
    # the SLO verdict into an exit code a CI gate can consume:
    # 0 = every objective healthy, 1 = a burn-rate alert is firing,
    # 2 = the server could not be reached or answered an error.
    import json as _json
    import sys
    from http.client import HTTPConnection, HTTPException

    from repro.obs.slo import SloReport

    conn = HTTPConnection(args.host, args.port, timeout=args.timeout_s)
    try:
        conn.request("GET", "/statusz")
        response = conn.getresponse()
        payload = _json.loads(response.read().decode() or "{}")
    except (OSError, HTTPException, ValueError) as exc:
        print(
            f"error: no server at http://{args.host}:{args.port} ({exc})",
            file=sys.stderr,
        )
        return 2
    finally:
        conn.close()
    if response.status >= 400:
        print(
            f"error: server answered {response.status}: "
            f"{payload.get('error', 'unknown error')}",
            file=sys.stderr,
        )
        return 2
    if args.json:
        print(_json.dumps(payload, indent=2, sort_keys=True))
    else:
        slo = payload.get("slo", {})
        report = SloReport(
            generated_at=slo.get("generated_at", 0.0),
            results=slo.get("slos", []),
            counts=slo.get("counts", {}),
        )
        print(report.table())
        counts = slo.get("counts", {})
        print(
            f"requests={counts.get('requests', 0)} "
            f"shed={counts.get('shed', 0)} errors={counts.get('errors', 0)}"
        )
        # A router's /statusz carries every worker's verdict too.
        for shard, worker in sorted(payload.get("workers", {}).items()):
            print(f"worker {shard}: {worker.get('status', 'unknown')}")
    return 1 if payload.get("status") == "burning" else 0


def _cmd_profile(args) -> int:
    # Imported here so plain audits never pay for the server stack.
    from repro.io import load_training_log, load_vfl_training_log
    from repro.obs import Observability
    from repro.serve import EvaluationService
    from repro.serve.http import ApiError

    obs = Observability(trace=False, profile=True)
    service = EvaluationService(obs=obs)
    run_id = "profile"
    try:
        if args.kind == "hfl":
            from repro.serve.http import hfl_validation_and_model

            log = load_training_log(args.log)
            validation, model_factory = hfl_validation_and_model(
                args.dataset, args.seed, args.n_samples
            )
            service.register_hfl(
                log.participant_ids, validation, model_factory, run_id=run_id
            )
        else:
            log = load_vfl_training_log(args.log)
            service.register_vfl(
                log.feature_blocks, log.active_parties, run_id=run_id
            )
        service.ingest_log(run_id, log)
        # Exercise both cached queries so every estimator phase fires.
        service.query("contributions", run_id)
        service.query("leaderboard", run_id)
    except (ApiError, FileNotFoundError, ValueError) as exc:
        raise SystemExit(f"error: {exc}") from exc
    finally:
        service.close()
    print(f"profile of {args.log} ({args.kind}, {log.n_epochs} epochs)")
    print(obs.profiles.for_run(run_id).table())
    return 0


def _parse_backend_options(pairs) -> dict:
    """Turn repeated ``--option KEY=VALUE`` flags into a backend kwargs dict.

    Values parse as JSON when they can (``seed=3`` → int, ``tol=0.01`` →
    float) and fall back to the raw string otherwise.
    """
    import json as _json

    options: dict = {}
    for pair in pairs or []:
        key, sep, raw = pair.partition("=")
        if not sep or not key:
            raise SystemExit(f"error: --option needs KEY=VALUE, got {pair!r}")
        try:
            options[key] = _json.loads(raw)
        except _json.JSONDecodeError:
            options[key] = raw
    return options


def _load_log_for_estimation(args):
    """Load the saved log plus, for HFL, its validation set and model."""
    from repro.io import load_training_log, load_vfl_training_log

    if args.kind == "hfl":
        from repro.serve.http import hfl_validation_and_model

        log = load_training_log(args.log)
        validation, model_factory = hfl_validation_and_model(
            args.dataset, args.seed, args.n_samples
        )
        return log, validation, model_factory
    return load_vfl_training_log(args.log), None, None


def _run_estimator_backend(name, options, args, log, validation, model_factory):
    from repro.core import get_backend

    backend = get_backend(name, **options)
    backend.require(args.kind)
    if args.kind == "hfl":
        return backend.estimate_hfl(log, validation, model_factory)
    return backend.estimate_vfl(log)


def _cmd_estimate(args) -> int:
    options = _parse_backend_options(args.option)
    try:
        log, validation, model_factory = _load_log_for_estimation(args)
        report = _run_estimator_backend(
            args.estimator, options, args, log, validation, model_factory
        )
    except FileNotFoundError:
        raise SystemExit(f"error: no training log at {args.log!r}") from None
    except (ValueError, TypeError) as exc:
        raise SystemExit(f"error: {exc}") from exc
    print(
        f"estimator {args.estimator} (method {report.method}) over "
        f"{log.n_epochs} epochs"
    )
    _print_contribution_table(report)
    if args.save_report:
        save_report(report, args.save_report)
        print(f"report -> {args.save_report}")
    return 0


def _cmd_compare(args) -> int:
    from repro.core import get_backend
    from repro.estimators import volatility_report

    if args.estimators == "all":
        names = [
            n for n in backend_names() if get_backend(n).supports(args.kind)
        ]
    else:
        names = [s.strip() for s in args.estimators.split(",") if s.strip()]
    if len(names) < 2:
        raise SystemExit(
            "error: --estimators needs at least two backends to compare "
            f"(registered: {', '.join(backend_names())})"
        )
    try:
        log, validation, model_factory = _load_log_for_estimation(args)
        reports = {
            name: _run_estimator_backend(
                name, {}, args, log, validation, model_factory
            )
            for name in names
        }
    except FileNotFoundError:
        raise SystemExit(f"error: no training log at {args.log!r}") from None
    except (ValueError, TypeError) as exc:
        raise SystemExit(f"error: {exc}") from exc
    width = max(len(n) for n in names)
    print(f"totals over {log.n_epochs} epochs")
    print(f"{'backend':<{width}}  " + "  ".join(
        f"p{pid:<9}" for pid in reports[names[0]].participant_ids
    ))
    for name in names:
        cells = "  ".join(f"{v:+10.5f}" for v in reports[name].totals)
        print(f"{name:<{width}}  {cells}")
    print()
    print(volatility_report(reports).table())
    return 0


def _matrix_scenarios(raw: str):
    from repro.scenario import get_scenario, scenario_grid, scenario_names

    if raw == "all":
        return scenario_grid()
    try:
        return [get_scenario(token.strip())
                for token in raw.split(",") if token.strip()]
    except KeyError:
        raise SystemExit(
            f"error: unknown scenario in {raw!r} "
            f"(known: {', '.join(scenario_names())})"
        ) from None


def _matrix_backends(raw: str):
    """``all`` → None (every capable backend per scenario kind)."""
    if raw == "all":
        return None
    names = [token.strip() for token in raw.split(",") if token.strip()]
    unknown = sorted(set(names) - set(backend_names()))
    if unknown:
        raise SystemExit(
            f"error: unknown backend(s) {', '.join(unknown)} "
            f"(registered: {', '.join(backend_names())})"
        )
    return names


def _cmd_scenario_run(args) -> int:
    import json as _json

    from repro.scenario import RobustnessMatrix

    scenarios = _matrix_scenarios(args.name)
    result = RobustnessMatrix(
        scenarios=scenarios,
        backends=[args.backend],
        seed=args.seed,
        exact_max_parties=args.exact_max_parties,
    ).run()
    if not result.cells:
        raise SystemExit(
            f"error: backend {args.backend!r} supports none of the "
            f"requested scenarios' log kinds"
        )
    print(result.table())
    if args.json:
        print(_json.dumps(result.to_dict(), indent=2, sort_keys=True))
    return 0


def _cmd_scenario_matrix(args) -> int:
    import json as _json
    from pathlib import Path

    from repro.scenario import RobustnessMatrix

    result = RobustnessMatrix(
        scenarios=_matrix_scenarios(args.scenarios),
        backends=_matrix_backends(args.backends),
        seed=args.seed,
        exact_max_parties=args.exact_max_parties,
    ).run()
    print(result.table())
    if args.save:
        Path(args.save).write_text(
            _json.dumps(result.to_dict(), indent=2, sort_keys=True) + "\n"
        )
        print(f"matrix -> {args.save}")
    failures = result.failures()
    if failures:
        print()
        print("verdict regressions:", file=sys.stderr)
        for problem in failures:
            print(f"  {problem}", file=sys.stderr)
        if args.check:
            return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro.cli", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list the paper's 14 datasets").set_defaults(
        func=_cmd_datasets
    )

    hfl = sub.add_parser("audit-hfl", help="contribution audit for HFL")
    hfl.add_argument("--dataset", default="mnist")
    hfl.add_argument("--parties", type=int, default=5)
    hfl.add_argument("--mislabeled", type=int, default=1)
    hfl.add_argument("--noniid", type=int, default=1)
    hfl.add_argument("--epochs", type=int, default=10)
    hfl.add_argument("--lr", type=float, default=0.5)
    hfl.add_argument("--seed", type=int, default=0)
    hfl.add_argument("--exact", action="store_true",
                     help="also compute the 2^n-retraining ground truth")
    hfl.add_argument("--save-log", metavar="PATH")
    hfl.add_argument("--save-report", metavar="PATH")
    _add_runtime_flags(hfl)
    _add_robust_flags(hfl)
    hfl.set_defaults(func=_cmd_audit_hfl)

    vfl = sub.add_parser("audit-vfl", help="contribution audit for VFL")
    vfl.add_argument("--dataset", default="boston")
    vfl.add_argument("--parties", type=int, default=0,
                     help="0 = the paper's Table III party count")
    vfl.add_argument("--epochs", type=int, default=30)
    vfl.add_argument("--seed", type=int, default=0)
    vfl.add_argument("--exact", action="store_true")
    vfl.add_argument("--save-log", metavar="PATH")
    vfl.add_argument("--save-report", metavar="PATH")
    _add_runtime_flags(vfl)
    _add_robust_flags(vfl, vfl=True)
    vfl.set_defaults(func=_cmd_audit_vfl)

    serve = sub.add_parser(
        "serve", help="HTTP query service for streaming contribution evaluation"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8733)
    serve.add_argument("--cluster", type=int, default=0, metavar="N",
                       help="shard across N worker processes behind a "
                            "consistent-hash router (0 = single process)")
    serve.add_argument("--router-port", type=int, default=8733,
                       help="router port in --cluster mode (workers take "
                            "OS-assigned ports)")
    serve.add_argument("--replicas", type=int, default=0,
                       help="warm standbys per shard in --cluster mode "
                            "(0 or 1; a standby tails its primary's WAL "
                            "and is promoted on primary death)")
    serve.add_argument("--drain-deadline-s", type=float, default=10.0,
                       help="on SIGINT/SIGTERM in --cluster mode, wait "
                            "this long for in-flight requests before "
                            "stopping (new requests get 503+Retry-After)")
    serve.add_argument("--cache-mb", type=int, default=64,
                       help="result/gradient cache budget in MiB")
    serve.add_argument("--query-workers", type=int, default=4,
                       help="thread-pool size for asynchronous queries")
    serve.add_argument("--query-deadline-ms", type=float, default=None,
                       help="per-request deadline; overruns answer 504")
    serve.add_argument("--max-queue", type=int, default=None,
                       help="admission limit; a full queue sheds with 429")
    serve.add_argument("--wal-dir", metavar="DIR", default=None,
                       help="write-ahead log directory for a "
                            "crash-recoverable run registry")
    serve.add_argument("--recover", action="store_true",
                       help="rebuild the registry from --wal-dir before "
                            "serving (replays logs to the exact ingested "
                            "epoch)")
    serve.add_argument("--chaos-ingest-ms", type=float, default=0.0,
                       help=argparse.SUPPRESS)  # CI chaos-job test hook
    serve.add_argument("--trace", action="store_true",
                       help="arm repro.obs span recording (spans per "
                            "request, per ingest, per WAL append)")
    serve.add_argument("--trace-export", metavar="PATH", default=None,
                       help="write buffered spans as JSONL on shutdown")
    serve.add_argument("--robustness-file", metavar="PATH", default=None,
                       help="scenario-matrix verdict file served by GET "
                            "/robustness (default BENCH_scenarios.json)")
    serve.set_defaults(func=_cmd_serve)

    cluster = sub.add_parser(
        "cluster", help="administer a running repro serve --cluster router"
    )
    cluster_sub = cluster.add_subparsers(dest="action", required=True)
    resize = cluster_sub.add_parser(
        "resize",
        help="online rebalance to N shards (moves only the runs the "
             "consistent-hash ring reassigns; serving continues)",
    )
    resize.add_argument("shards", type=int, metavar="N")
    status = cluster_sub.add_parser(
        "status", help="print the router's /cluster topology JSON"
    )
    for sub_parser in (resize, status):
        sub_parser.add_argument("--host", default="127.0.0.1")
        sub_parser.add_argument("--router-port", type=int, default=8733)
        sub_parser.add_argument("--timeout-s", type=float, default=120.0)
        sub_parser.set_defaults(func=_cmd_cluster)

    slo = sub.add_parser(
        "slo", help="judge a running server's SLOs from its /statusz"
    )
    slo_sub = slo.add_subparsers(dest="action", required=True)
    slo_check = slo_sub.add_parser(
        "check",
        help="exit 0 when every objective is healthy, 1 when a "
             "burn-rate alert is firing, 2 when the server is unreachable",
    )
    slo_check.add_argument("--host", default="127.0.0.1")
    slo_check.add_argument("--port", type=int, default=8733)
    slo_check.add_argument("--timeout-s", type=float, default=30.0)
    slo_check.add_argument("--json", action="store_true",
                           help="print the raw /statusz payload instead "
                                "of the verdict table")
    slo_check.set_defaults(func=_cmd_slo)

    profile = sub.add_parser(
        "profile",
        help="replay a saved training log and print estimator phase timings",
    )
    profile.add_argument("log", help="training log (.npz) to profile")
    profile.add_argument("--kind", choices=("hfl", "vfl"), default="hfl")
    profile.add_argument("--dataset", default="mnist",
                         help="dataset the log was trained on (hfl only; "
                              "rebuilds the validation set and model)")
    profile.add_argument("--seed", type=int, default=0,
                         help="seed the log was trained with (hfl only)")
    profile.add_argument("--n-samples", type=int, default=None,
                         help="dataset size override used at training time")
    profile.set_defaults(func=_cmd_profile)

    def _add_log_context_flags(p) -> None:
        p.add_argument("log", help="training log (.npz) to evaluate")
        p.add_argument("--kind", choices=("hfl", "vfl"), default="hfl")
        p.add_argument("--dataset", default="mnist",
                       help="dataset the log was trained on (hfl only; "
                            "rebuilds the validation set and model)")
        p.add_argument("--seed", type=int, default=0,
                       help="seed the log was trained with (hfl only)")
        p.add_argument("--n-samples", type=int, default=None,
                       help="dataset size override used at training time")

    estimate = sub.add_parser(
        "estimate",
        help="replay a saved log through any registered contribution backend",
    )
    _add_log_context_flags(estimate)
    estimate.add_argument("--estimator", choices=backend_names(),
                          default="digfl",
                          help="registered backend (see repro.estimators)")
    estimate.add_argument("--option", action="append", metavar="KEY=VALUE",
                          help="backend option override (repeatable); values "
                               "parse as JSON, e.g. --option seed=3")
    estimate.add_argument("--save-report", metavar="PATH")
    estimate.set_defaults(func=_cmd_estimate)

    compare = sub.add_parser(
        "compare",
        help="run several backends over one log and print the volatility "
             "report",
    )
    _add_log_context_flags(compare)
    compare.add_argument("--estimators", default="all", metavar="A,B,...",
                         help="comma-separated backend names (default: every "
                              "registered backend supporting --kind)")
    compare.set_defaults(func=_cmd_compare)

    scenario = sub.add_parser(
        "scenario",
        help="adversarial scenario suite: generate adverse federations and "
             "judge estimator robustness",
    )
    scenario_sub = scenario.add_subparsers(dest="action", required=True)
    scenario_run = scenario_sub.add_parser(
        "run", help="run one adverse scenario against one backend"
    )
    scenario_run.add_argument(
        "name",
        help="scenario name from the default grid (e.g. free_rider, "
             "dirichlet_a0.1, vfl_modality_dropout), or 'all'",
    )
    scenario_run.add_argument("--backend", choices=backend_names(),
                              default="digfl")
    scenario_run.add_argument("--json", action="store_true",
                              help="also print the full verdict JSON")
    scenario_run.set_defaults(func=_cmd_scenario_run)
    scenario_matrix = scenario_sub.add_parser(
        "matrix",
        help="run the scenario × backend robustness grid and print verdicts",
    )
    scenario_matrix.add_argument(
        "--scenarios", default="all", metavar="A,B,...",
        help="comma-separated scenario names (default: the full grid)",
    )
    scenario_matrix.add_argument(
        "--backends", default="all", metavar="A,B,...",
        help="comma-separated backend names (default: every registered "
             "backend capable of each scenario's log kind)",
    )
    scenario_matrix.add_argument(
        "--check", action="store_true",
        help="exit 1 on any rank-correctness or streaming-equality "
             "regression (the CI gate)",
    )
    scenario_matrix.add_argument("--save", metavar="PATH",
                                 help="write the verdict grid as JSON")
    scenario_matrix.set_defaults(func=_cmd_scenario_matrix)
    for sub_parser in (scenario_run, scenario_matrix):
        sub_parser.add_argument("--seed", type=int, default=0)
        sub_parser.add_argument(
            "--exact-max-parties", type=int, default=6,
            help="cap on the 2^n exact-Shapley reference (larger "
                 "federations skip the Spearman cell)",
        )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    np.set_printoptions(precision=5, suppress=True)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
