"""Persistence for training logs and contribution reports.

DIG-FL's whole premise is "evaluate from the training log", so the log must
outlive the training process: the server archives it per round and any
auditor replays the estimators later.  Logs serialise to a single ``.npz``
(arrays stay binary, metadata rides along as JSON); contribution reports
serialise to plain JSON for downstream dashboards.

Saved logs embed a SHA-256 content checksum over every array, verified on
load — a silently bit-rotted or truncated log would otherwise surface as
subtly wrong contribution scores rather than an error.  Files written
before the checksum existed still load, with a :class:`UserWarning`;
unreadable or mismatching files raise
:class:`TrainingLogIntegrityError`, which the checkpoint/resume machinery
in :mod:`repro.robust.checkpoint` relies on to refuse corrupt state.
"""

from __future__ import annotations

import hashlib
import json
import warnings
import zipfile
from pathlib import Path

import numpy as np

from repro.core.contribution import ContributionReport
from repro.hfl.log import EpochRecord, TrainingLog
from repro.vfl.log import VFLEpochRecord, VFLTrainingLog

_HFL_FORMAT = "repro.hfl.training_log.v1"
_VFL_FORMAT = "repro.vfl.training_log.v1"
_REPORT_FORMAT = "repro.contribution_report.v1"


class TrainingLogIntegrityError(ValueError):
    """A training-log file is unreadable, truncated, or fails its checksum."""


def hash_arrays(digest, arrays: dict[str, np.ndarray]) -> None:
    """Feed named arrays (name, dtype, shape, raw bytes) into ``digest``.

    This is *the* array-hashing scheme of the repo: the embedded ``.npz``
    checksums and the incremental per-epoch digests of
    :mod:`repro.serve.cache` both use it, so a streamed run and a
    round-tripped file agree on content identity.
    """
    for name in sorted(arrays):
        array = np.ascontiguousarray(arrays[name])
        digest.update(name.encode())
        digest.update(str(array.dtype).encode())
        digest.update(str(array.shape).encode())
        digest.update(array.tobytes())


def _content_checksum(arrays: dict[str, np.ndarray]) -> str:
    """SHA-256 over every array's name, dtype, shape and raw bytes."""
    digest = hashlib.sha256()
    hash_arrays(digest, arrays)
    return digest.hexdigest()


def json_checksum(payload) -> str:
    """SHA-256 of a JSON-serialisable payload in canonical form.

    Canonical = sorted keys, no whitespace — so the checksum is a pure
    function of the *content*, not of dict insertion order or formatting.
    The write-ahead log of :mod:`repro.serve.wal` stamps every record
    with this, making a torn or bit-rotted line detectable on replay,
    exactly as :func:`hash_arrays` does for the array payloads the WAL's
    ingested-prefix digests summarise.
    """
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def _open_npz(path: str | Path):
    """``np.load`` with unreadable/truncated files mapped to a clear error."""
    try:
        return np.load(path, allow_pickle=False)
    except (zipfile.BadZipFile, EOFError, OSError, ValueError) as exc:
        raise TrainingLogIntegrityError(
            f"{path} is not a readable training log (corrupt or truncated): {exc}"
        ) from exc


def _verify_checksum(path: str | Path, meta: dict, arrays: dict[str, np.ndarray]) -> None:
    """Check the embedded checksum; warn on legacy files that lack one."""
    expected = meta.get("checksum")
    if expected is None:
        warnings.warn(
            f"{path} has no embedded checksum (written before integrity "
            "checking existed); loading without verification",
            UserWarning,
            stacklevel=3,
        )
        return
    actual = _content_checksum(arrays)
    if actual != expected:
        raise TrainingLogIntegrityError(
            f"{path} failed its integrity check "
            f"(checksum {actual[:12]}… != recorded {expected[:12]}…)"
        )


def _hfl_arrays(log: TrainingLog) -> dict[str, np.ndarray]:
    """The array payload of an HFL log, as :func:`save_training_log` writes it."""
    arrays = {
        "theta_before": np.stack([r.theta_before for r in log.records]),
        "local_updates": np.stack([r.local_updates for r in log.records]),
        "weights": np.stack([r.weights for r in log.records]),
        "participation": np.stack(
            [r.participation_mask() for r in log.records]
        ).astype(np.uint8),
    }
    if any(r.applied_update is not None for r in log.records):
        # Robust aggregators apply a G_t that is not weights @ updates; the
        # stored vector (with per-round presence flags) keeps the loaded
        # trajectory exact.  Rounds without one store their linear G_t.
        arrays["applied_update"] = np.stack(
            [
                r.applied_update if r.applied_update is not None else r.global_update
                for r in log.records
            ]
        )
        arrays["applied_mask"] = np.array(
            [r.applied_update is not None for r in log.records], dtype=np.uint8
        )
    return arrays


def training_log_checksum(log: TrainingLog) -> str:
    """The SHA-256 content checksum :func:`save_training_log` would embed.

    Computable without touching disk, so an in-memory log and its saved
    ``.npz`` share one content identity — :mod:`repro.serve` keys its
    result cache on it.
    """
    if log.n_epochs == 0:
        raise ValueError("cannot checksum an empty training log")
    return _content_checksum(_hfl_arrays(log))


def save_training_log(log: TrainingLog, path: str | Path) -> None:
    """Write an HFL training log to ``path`` (``.npz``), checksummed."""
    if log.n_epochs == 0:
        raise ValueError("refusing to save an empty training log")
    meta = {
        "format": _HFL_FORMAT,
        "participant_ids": log.participant_ids,
        "epochs": [r.epoch for r in log.records],
        "lrs": [r.lr for r in log.records],
        "val_losses": [r.val_loss for r in log.records],
        "val_accuracies": [r.val_accuracy for r in log.records],
    }
    arrays = _hfl_arrays(log)
    meta["checksum"] = _content_checksum(arrays)
    np.savez_compressed(path, meta=json.dumps(meta), **arrays)


def _mask_or_none(participation, t: int) -> np.ndarray | None:
    """Round ``t``'s stored mask, collapsed to ``None`` when everyone arrived.

    ``participation`` is absent in logs written before the runtime existed
    (format v1 files predating the mask) — treat those as full attendance.
    """
    if participation is None:
        return None
    mask = participation[t].astype(bool)
    return None if mask.all() else mask


def load_training_log(path: str | Path) -> TrainingLog:
    """Read an HFL training log written by :func:`save_training_log`.

    Verifies the embedded content checksum (legacy files without one load
    with a warning); unreadable or mismatching files raise
    :class:`TrainingLogIntegrityError`.
    """
    with _open_npz(path) as data:
        meta = json.loads(str(data["meta"]))
        if meta.get("format") != _HFL_FORMAT:
            raise ValueError(
                f"{path} is not an HFL training log "
                f"(format={meta.get('format')!r})"
            )
        arrays = {name: data[name] for name in data.files if name != "meta"}
    _verify_checksum(path, meta, arrays)
    log = TrainingLog(participant_ids=list(meta["participant_ids"]))
    theta_before = arrays["theta_before"]
    local_updates = arrays["local_updates"]
    weights = arrays["weights"]
    participation = arrays.get("participation")
    applied = arrays.get("applied_update")
    applied_mask = arrays.get("applied_mask")
    for t in range(len(meta["epochs"])):
        log.records.append(
            EpochRecord(
                epoch=int(meta["epochs"][t]),
                lr=float(meta["lrs"][t]),
                theta_before=theta_before[t],
                local_updates=local_updates[t],
                weights=weights[t],
                val_loss=float(meta["val_losses"][t]),
                val_accuracy=float(meta["val_accuracies"][t]),
                participation=_mask_or_none(participation, t),
                applied_update=(
                    applied[t]
                    if applied is not None and bool(applied_mask[t])
                    else None
                ),
            )
        )
    return log


def _vfl_arrays(log: VFLTrainingLog) -> dict[str, np.ndarray]:
    """The array payload of a VFL log, as :func:`save_vfl_training_log` writes it."""
    return {
        "theta_before": np.stack([r.theta_before for r in log.records]),
        "train_gradient": np.stack([r.train_gradient for r in log.records]),
        "val_gradient": np.stack([r.val_gradient for r in log.records]),
        "weights": np.stack([r.weights for r in log.records]),
        "participation": np.stack(
            [r.participation_mask() for r in log.records]
        ).astype(np.uint8),
    }


def vfl_training_log_checksum(log: VFLTrainingLog) -> str:
    """The SHA-256 content checksum :func:`save_vfl_training_log` would embed."""
    if log.n_epochs == 0:
        raise ValueError("cannot checksum an empty training log")
    return _content_checksum(_vfl_arrays(log))


def save_vfl_training_log(log: VFLTrainingLog, path: str | Path) -> None:
    """Write a VFL training log to ``path`` (``.npz``), checksummed."""
    if log.n_epochs == 0:
        raise ValueError("refusing to save an empty training log")
    meta = {
        "format": _VFL_FORMAT,
        "active_parties": log.active_parties,
        "feature_blocks": [b.tolist() for b in log.feature_blocks],
        "epochs": [r.epoch for r in log.records],
        "lrs": [r.lr for r in log.records],
        "train_losses": [r.train_loss for r in log.records],
        "val_losses": [r.val_loss for r in log.records],
    }
    arrays = _vfl_arrays(log)
    meta["checksum"] = _content_checksum(arrays)
    np.savez_compressed(path, meta=json.dumps(meta), **arrays)


def load_vfl_training_log(path: str | Path) -> VFLTrainingLog:
    """Read a VFL training log written by :func:`save_vfl_training_log`.

    Integrity semantics match :func:`load_training_log`: checksums are
    verified, legacy files warn, corruption raises
    :class:`TrainingLogIntegrityError`.
    """
    with _open_npz(path) as data:
        meta = json.loads(str(data["meta"]))
        if meta.get("format") != _VFL_FORMAT:
            raise ValueError(
                f"{path} is not a VFL training log "
                f"(format={meta.get('format')!r})"
            )
        arrays = {name: data[name] for name in data.files if name != "meta"}
    _verify_checksum(path, meta, arrays)
    log = VFLTrainingLog(
        feature_blocks=[np.array(b, dtype=np.int64) for b in meta["feature_blocks"]],
        active_parties=list(meta["active_parties"]),
    )
    theta_before = arrays["theta_before"]
    train_gradient = arrays["train_gradient"]
    val_gradient = arrays["val_gradient"]
    weights = arrays["weights"]
    participation = arrays.get("participation")
    for t in range(len(meta["epochs"])):
        log.records.append(
            VFLEpochRecord(
                epoch=int(meta["epochs"][t]),
                lr=float(meta["lrs"][t]),
                theta_before=theta_before[t],
                train_gradient=train_gradient[t],
                val_gradient=val_gradient[t],
                weights=weights[t],
                train_loss=float(meta["train_losses"][t]),
                val_loss=float(meta["val_losses"][t]),
                participation=_mask_or_none(participation, t),
            )
        )
    return log


def save_report(report: ContributionReport, path: str | Path) -> None:
    """Write a contribution report as JSON (per-epoch matrix included)."""
    payload = {
        "format": _REPORT_FORMAT,
        "method": report.method,
        "participant_ids": report.participant_ids,
        "totals": report.totals.tolist(),
        "per_epoch": None if report.per_epoch is None else report.per_epoch.tolist(),
        "cost": report.ledger.summary(),
        "extra": {k: v for k, v in report.extra.items() if _json_safe(v)},
    }
    Path(path).write_text(json.dumps(payload, indent=2))


def load_report(path: str | Path) -> ContributionReport:
    """Read a contribution report written by :func:`save_report`.

    The cost ledger is not round-tripped (wall-clock is not portable);
    the loaded report carries a fresh empty ledger.
    """
    payload = json.loads(Path(path).read_text())
    if payload.get("format") != _REPORT_FORMAT:
        raise ValueError(
            f"{path} is not a contribution report "
            f"(format={payload.get('format')!r})"
        )
    per_epoch = payload["per_epoch"]
    return ContributionReport(
        method=payload["method"],
        participant_ids=list(payload["participant_ids"]),
        totals=np.array(payload["totals"], dtype=np.float64),
        per_epoch=None if per_epoch is None else np.array(per_epoch, dtype=np.float64),
        extra=dict(payload.get("extra", {})),
    )


def _json_safe(value) -> bool:
    try:
        json.dumps(value)
    except (TypeError, ValueError):
        return False
    return True
