"""Persistence for training logs and contribution reports.

DIG-FL's whole premise is "evaluate from the training log", so the log must
outlive the training process: the server archives it per round and any
auditor replays the estimators later.  Logs serialise to a single ``.npz``
(arrays stay binary, metadata rides along as JSON); contribution reports
serialise to plain JSON for downstream dashboards.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.core.contribution import ContributionReport
from repro.hfl.log import EpochRecord, TrainingLog
from repro.vfl.log import VFLEpochRecord, VFLTrainingLog

_HFL_FORMAT = "repro.hfl.training_log.v1"
_VFL_FORMAT = "repro.vfl.training_log.v1"
_REPORT_FORMAT = "repro.contribution_report.v1"


def save_training_log(log: TrainingLog, path: str | Path) -> None:
    """Write an HFL training log to ``path`` (``.npz``)."""
    if log.n_epochs == 0:
        raise ValueError("refusing to save an empty training log")
    meta = {
        "format": _HFL_FORMAT,
        "participant_ids": log.participant_ids,
        "epochs": [r.epoch for r in log.records],
        "lrs": [r.lr for r in log.records],
        "val_losses": [r.val_loss for r in log.records],
        "val_accuracies": [r.val_accuracy for r in log.records],
    }
    np.savez_compressed(
        path,
        meta=json.dumps(meta),
        theta_before=np.stack([r.theta_before for r in log.records]),
        local_updates=np.stack([r.local_updates for r in log.records]),
        weights=np.stack([r.weights for r in log.records]),
        participation=np.stack(
            [r.participation_mask() for r in log.records]
        ).astype(np.uint8),
    )


def _mask_or_none(participation, t: int) -> np.ndarray | None:
    """Round ``t``'s stored mask, collapsed to ``None`` when everyone arrived.

    ``participation`` is absent in logs written before the runtime existed
    (format v1 files predating the mask) — treat those as full attendance.
    """
    if participation is None:
        return None
    mask = participation[t].astype(bool)
    return None if mask.all() else mask


def load_training_log(path: str | Path) -> TrainingLog:
    """Read an HFL training log written by :func:`save_training_log`."""
    with np.load(path, allow_pickle=False) as data:
        meta = json.loads(str(data["meta"]))
        if meta.get("format") != _HFL_FORMAT:
            raise ValueError(
                f"{path} is not an HFL training log "
                f"(format={meta.get('format')!r})"
            )
        log = TrainingLog(participant_ids=list(meta["participant_ids"]))
        theta_before = data["theta_before"]
        local_updates = data["local_updates"]
        weights = data["weights"]
        participation = data["participation"] if "participation" in data else None
    for t in range(len(meta["epochs"])):
        log.records.append(
            EpochRecord(
                epoch=int(meta["epochs"][t]),
                lr=float(meta["lrs"][t]),
                theta_before=theta_before[t],
                local_updates=local_updates[t],
                weights=weights[t],
                val_loss=float(meta["val_losses"][t]),
                val_accuracy=float(meta["val_accuracies"][t]),
                participation=_mask_or_none(participation, t),
            )
        )
    return log


def save_vfl_training_log(log: VFLTrainingLog, path: str | Path) -> None:
    """Write a VFL training log to ``path`` (``.npz``)."""
    if log.n_epochs == 0:
        raise ValueError("refusing to save an empty training log")
    meta = {
        "format": _VFL_FORMAT,
        "active_parties": log.active_parties,
        "feature_blocks": [b.tolist() for b in log.feature_blocks],
        "epochs": [r.epoch for r in log.records],
        "lrs": [r.lr for r in log.records],
        "train_losses": [r.train_loss for r in log.records],
        "val_losses": [r.val_loss for r in log.records],
    }
    np.savez_compressed(
        path,
        meta=json.dumps(meta),
        theta_before=np.stack([r.theta_before for r in log.records]),
        train_gradient=np.stack([r.train_gradient for r in log.records]),
        val_gradient=np.stack([r.val_gradient for r in log.records]),
        weights=np.stack([r.weights for r in log.records]),
        participation=np.stack(
            [r.participation_mask() for r in log.records]
        ).astype(np.uint8),
    )


def load_vfl_training_log(path: str | Path) -> VFLTrainingLog:
    """Read a VFL training log written by :func:`save_vfl_training_log`."""
    with np.load(path, allow_pickle=False) as data:
        meta = json.loads(str(data["meta"]))
        if meta.get("format") != _VFL_FORMAT:
            raise ValueError(
                f"{path} is not a VFL training log "
                f"(format={meta.get('format')!r})"
            )
        log = VFLTrainingLog(
            feature_blocks=[np.array(b, dtype=np.int64) for b in meta["feature_blocks"]],
            active_parties=list(meta["active_parties"]),
        )
        theta_before = data["theta_before"]
        train_gradient = data["train_gradient"]
        val_gradient = data["val_gradient"]
        weights = data["weights"]
        participation = data["participation"] if "participation" in data else None
    for t in range(len(meta["epochs"])):
        log.records.append(
            VFLEpochRecord(
                epoch=int(meta["epochs"][t]),
                lr=float(meta["lrs"][t]),
                theta_before=theta_before[t],
                train_gradient=train_gradient[t],
                val_gradient=val_gradient[t],
                weights=weights[t],
                train_loss=float(meta["train_losses"][t]),
                val_loss=float(meta["val_losses"][t]),
                participation=_mask_or_none(participation, t),
            )
        )
    return log


def save_report(report: ContributionReport, path: str | Path) -> None:
    """Write a contribution report as JSON (per-epoch matrix included)."""
    payload = {
        "format": _REPORT_FORMAT,
        "method": report.method,
        "participant_ids": report.participant_ids,
        "totals": report.totals.tolist(),
        "per_epoch": None if report.per_epoch is None else report.per_epoch.tolist(),
        "cost": report.ledger.summary(),
        "extra": {k: v for k, v in report.extra.items() if _json_safe(v)},
    }
    Path(path).write_text(json.dumps(payload, indent=2))


def load_report(path: str | Path) -> ContributionReport:
    """Read a contribution report written by :func:`save_report`.

    The cost ledger is not round-tripped (wall-clock is not portable);
    the loaded report carries a fresh empty ledger.
    """
    payload = json.loads(Path(path).read_text())
    if payload.get("format") != _REPORT_FORMAT:
        raise ValueError(
            f"{path} is not a contribution report "
            f"(format={payload.get('format')!r})"
        )
    per_epoch = payload["per_epoch"]
    return ContributionReport(
        method=payload["method"],
        participant_ids=list(payload["participant_ids"]),
        totals=np.array(payload["totals"], dtype=np.float64),
        per_epoch=None if per_epoch is None else np.array(per_epoch, dtype=np.float64),
        extra=dict(payload.get("extra", {})),
    )


def _json_safe(value) -> bool:
    try:
        json.dumps(value)
    except (TypeError, ValueError):
        return False
    return True
