"""Composite differentiable functions built from autodiff primitives.

Everything here is expressed through :mod:`repro.autodiff.tensor` primitives,
so all functions support double-backward and can appear inside losses whose
Hessian-vector products DIG-FL's Algorithm 1 evaluates.
"""

from __future__ import annotations

import numpy as np

from repro.autodiff.tensor import (
    Tensor,
    absolute,
    add,
    as_tensor,
    broadcast_to,
    exp,
    log,
    mul,
    neg,
    relu,
    reshape,
    sub,
    take,
    tmean,
    tsum,
)

__all__ = [
    "binary_cross_entropy_with_logits",
    "cross_entropy_with_logits",
    "log_softmax",
    "logsumexp",
    "mse_loss",
    "softmax",
    "softplus",
]


def softplus(z) -> Tensor:
    """Numerically stable ``log(1 + exp(z))``.

    Uses the identity ``softplus(z) = relu(z) + log(1 + exp(-|z|))`` so the
    exponential never overflows.
    """
    z = as_tensor(z)
    return add(relu(z), log(add(1.0, exp(neg(absolute(z))))))


def logsumexp(z, axis: int = -1, keepdims: bool = False) -> Tensor:
    """Stable ``log(sum(exp(z), axis))`` via the max-shift trick.

    The shift is treated as a constant (detached), which leaves the gradient
    exact: d/dz logsumexp = softmax regardless of the shift.
    """
    z = as_tensor(z)
    axis = axis % z.ndim
    shift = Tensor(np.max(z.data, axis=axis, keepdims=True))
    shifted = sub(z, broadcast_to(shift, z.shape))
    out = add(
        log(tsum(exp(shifted), axis=axis, keepdims=True)),
        shift,
    )
    if not keepdims:
        new_shape = tuple(s for i, s in enumerate(z.shape) if i != axis)
        out = reshape(out, new_shape)
    return out


def softmax(z, axis: int = -1) -> Tensor:
    """Softmax along ``axis`` (stable, differentiable)."""
    z = as_tensor(z)
    axis = axis % z.ndim
    lse = logsumexp(z, axis=axis, keepdims=True)
    return exp(sub(z, broadcast_to(lse, z.shape)))


def log_softmax(z, axis: int = -1) -> Tensor:
    """``z - logsumexp(z)`` along ``axis`` — stable log-probabilities."""
    z = as_tensor(z)
    axis = axis % z.ndim
    lse = logsumexp(z, axis=axis, keepdims=True)
    return sub(z, broadcast_to(lse, z.shape))


def mse_loss(pred, target) -> Tensor:
    """Mean squared error ``mean((pred - target)^2)``."""
    pred = as_tensor(pred)
    target = as_tensor(target).detach()
    diff = sub(pred, target)
    return tmean(mul(diff, diff))


def binary_cross_entropy_with_logits(logits, target) -> Tensor:
    """Mean of ``softplus(z) - y*z`` — stable logistic loss.

    Identity: ``-y log σ(z) - (1-y) log(1-σ(z)) = softplus(z) - y z``.
    """
    logits = as_tensor(logits)
    target = as_tensor(target).detach()
    return tmean(sub(softplus(logits), mul(target, logits)))


def cross_entropy_with_logits(logits, labels: np.ndarray) -> Tensor:
    """Mean softmax cross-entropy for integer class labels.

    ``logits`` has shape (batch, classes); ``labels`` is an int vector.
    """
    logits = as_tensor(logits)
    labels = np.asarray(labels)
    if logits.ndim != 2:
        raise ValueError(f"logits must be 2-D, got shape {logits.shape}")
    if labels.ndim != 1 or labels.shape[0] != logits.shape[0]:
        raise ValueError(
            f"labels shape {labels.shape} incompatible with logits {logits.shape}"
        )
    lse = logsumexp(logits, axis=1)
    picked = take(logits, (np.arange(logits.shape[0]), labels.astype(np.int64)))
    return tmean(sub(lse, picked))


def l2_penalty(params) -> Tensor:
    """Sum of squared parameter entries, ``Σ θ²`` (no 1/2 factor)."""
    total = None
    for p in params:
        term = tsum(mul(p, p))
        total = term if total is None else add(total, term)
    if total is None:
        return Tensor(0.0)
    return total


def accuracy(logits, labels: np.ndarray) -> float:
    """Fraction of argmax predictions matching integer labels."""
    data = logits.data if isinstance(logits, Tensor) else np.asarray(logits)
    labels = np.asarray(labels)
    if data.ndim == 1:
        pred = (data > 0).astype(labels.dtype)
    else:
        pred = np.argmax(data, axis=1)
    return float(np.mean(pred == labels))
