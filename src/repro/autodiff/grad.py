"""Functional gradient computation, double-backward and Hessian products.

``grad(output, inputs, create_graph=True)`` returns gradients that are
themselves graph-connected tensors, which is exactly what the HVP trick of
Pearlmutter (1994) — used by DIG-FL's Algorithm 1 — requires:

    H v = d/dθ [ ⟨∇loss(θ), v⟩ ]
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.autodiff.tensor import (
    Tensor,
    add,
    as_tensor,
    enable_grad,
    mul,
    no_grad,
    tsum,
)


def _toposort(root: Tensor) -> list[Tensor]:
    """Reverse topological order of the graph reachable from ``root``."""
    order: list[Tensor] = []
    visited: set[int] = set()
    stack: list[tuple[Tensor, bool]] = [(root, False)]
    while stack:
        node, processed = stack.pop()
        if processed:
            order.append(node)
            continue
        if id(node) in visited:
            continue
        visited.add(id(node))
        stack.append((node, True))
        for parent in node._parents:
            if parent.requires_grad and id(parent) not in visited:
                stack.append((parent, False))
    order.reverse()
    return order


def grad(
    output: Tensor,
    inputs: Sequence[Tensor],
    grad_output: Tensor | None = None,
    create_graph: bool = False,
    allow_unused: bool = False,
) -> list[Tensor]:
    """Gradients of ``output`` with respect to each tensor in ``inputs``.

    Parameters
    ----------
    output:
        The tensor to differentiate (any shape; scalar for a plain loss).
    inputs:
        Leaf (or intermediate) tensors to differentiate with respect to.
    grad_output:
        Adjoint seed; defaults to ones, i.e. ``d(output.sum())``.
    create_graph:
        When true, the returned gradients carry their own graph so they can
        be differentiated again (double-backward).
    allow_unused:
        When true, inputs unreachable from ``output`` yield zero gradients
        instead of raising.
    """
    if not isinstance(output, Tensor):
        raise TypeError("output must be a Tensor")
    if not output.requires_grad:
        raise ValueError("output does not require grad; nothing to differentiate")
    seed = Tensor(1.0) if output.ndim == 0 else Tensor(np.ones(output.shape))
    if grad_output is not None:
        seed = as_tensor(grad_output)
        if seed.shape != output.shape:
            raise ValueError(
                f"grad_output shape {seed.shape} != output shape {output.shape}"
            )

    adjoints: dict[int, Tensor] = {id(output): seed}
    context = enable_grad() if create_graph else no_grad()
    with context:
        for node in _toposort(output):
            node_adj = adjoints.get(id(node))
            if node_adj is None or node._vjp is None:
                continue
            parent_adjs = node._vjp(node_adj)
            for parent, padj in zip(node._parents, parent_adjs):
                if padj is None or not parent.requires_grad:
                    continue
                existing = adjoints.get(id(parent))
                adjoints[id(parent)] = padj if existing is None else add(existing, padj)

    results: list[Tensor] = []
    for inp in inputs:
        adj = adjoints.get(id(inp))
        if adj is None:
            if not allow_unused:
                raise ValueError(
                    "an input is not reachable from output; "
                    "pass allow_unused=True for zero gradients"
                )
            adj = Tensor(np.zeros(inp.shape))
        results.append(adj)
    return results


def backward(output: Tensor, grad_output: Tensor | None = None) -> None:
    """Populate ``.grad`` on every reachable ``requires_grad`` leaf.

    Convenience wrapper over :func:`grad` matching the familiar
    ``loss.backward()`` workflow; gradients accumulate across calls.
    """
    leaves = [
        node
        for node in _toposort(output)
        if node.requires_grad and node._vjp is None
    ]
    grads = grad(output, leaves, grad_output=grad_output, allow_unused=True)
    for leaf, g in zip(leaves, grads):
        leaf.grad = g if leaf.grad is None else add(leaf.grad, g)


def hvp(
    loss_fn: Callable[[Sequence[Tensor]], Tensor],
    params: Sequence[Tensor],
    vectors: Sequence[Tensor],
) -> list[Tensor]:
    """Exact Hessian-vector product ``H(params) @ vectors``.

    ``loss_fn`` is re-evaluated at ``params`` with graph recording on, its
    gradient is contracted against ``vectors`` and differentiated again —
    Pearlmutter's trick, costing two backward passes instead of building the
    p×p Hessian (the optimisation Sec. III-A of the paper relies on).
    """
    if len(params) != len(vectors):
        raise ValueError("params and vectors must have equal length")
    with enable_grad():
        loss = loss_fn(params)
        grads = grad(loss, list(params), create_graph=True)
        dot = None
        for g, v in zip(grads, vectors):
            term = tsum(mul(g, as_tensor(v).detach()))
            dot = term if dot is None else add(dot, term)
        assert dot is not None
        return grad(dot, list(params), allow_unused=True)


def value_and_grad(
    loss_fn: Callable[[Sequence[Tensor]], Tensor],
    params: Sequence[Tensor],
) -> tuple[float, list[Tensor]]:
    """Evaluate ``loss_fn`` and its gradient in one pass."""
    with enable_grad():
        loss = loss_fn(params)
        grads = grad(loss, list(params))
    return loss.item(), grads
