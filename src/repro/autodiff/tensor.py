"""Reverse-mode automatic differentiation on numpy arrays.

This is the gradient substrate the paper obtains from PyTorch.  DIG-FL's
interactive estimator (Algorithm 1) needs Hessian-vector products, i.e.
gradients of gradients, so every primitive here expresses its vector-Jacobian
product *in terms of other tensor operations*.  Running the backward pass
with ``create_graph=True`` therefore yields a differentiable graph and exact
double-backward — the same mechanism ``torch.autograd.grad`` provides.

Design notes
------------
* ``Tensor`` wraps a float64 ``numpy.ndarray``.  Graph edges are stored on
  the output tensor as ``(_parents, _vjp)`` where ``_vjp(g)`` maps the output
  adjoint to a tuple of parent adjoints (``None`` for non-differentiable
  parents).
* A *thread-local* switch (:func:`no_grad` / :func:`enable_grad`) controls
  whether new operations record graph edges, mirroring PyTorch semantics.
  Thread-locality matters: the runtime's pool executor evaluates several
  participants' gradients concurrently, and one thread entering
  ``no_grad()`` for its backward pass must not stop another thread's
  forward pass from recording its graph.
* Gradient computation lives in :mod:`repro.autodiff.grad` as a functional
  ``grad(output, inputs)`` — the form Hessian-vector products need.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Callable, Sequence

import numpy as np


class _GradMode(threading.local):
    """Per-thread graph-recording switch (each thread starts enabled)."""

    enabled = True


_GRAD_MODE = _GradMode()


@contextmanager
def no_grad():
    """Disable graph recording inside the ``with`` block (this thread only)."""
    prev = _GRAD_MODE.enabled
    _GRAD_MODE.enabled = False
    try:
        yield
    finally:
        _GRAD_MODE.enabled = prev


@contextmanager
def enable_grad():
    """Re-enable graph recording (used by double-backward internals)."""
    prev = _GRAD_MODE.enabled
    _GRAD_MODE.enabled = True
    try:
        yield
    finally:
        _GRAD_MODE.enabled = prev


def is_grad_enabled() -> bool:
    """Whether new operations currently record graph edges (this thread)."""
    return _GRAD_MODE.enabled


class Tensor:
    """A numpy array with an optional autodiff graph edge.

    Leaves are created with ``Tensor(data, requires_grad=True)``; every
    operation involving at least one graph-connected tensor produces a new
    graph-connected tensor while grad mode is enabled.
    """

    __slots__ = ("data", "requires_grad", "grad", "_parents", "_vjp", "_op")
    __array_priority__ = 100  # numpy defers binary ops to Tensor

    def __init__(self, data, requires_grad: bool = False):
        self.data = np.asarray(data, dtype=np.float64)
        self.requires_grad = bool(requires_grad)
        self.grad: Tensor | None = None
        self._parents: tuple[Tensor, ...] = ()
        self._vjp: Callable[[Tensor], tuple] | None = None
        self._op: str = "leaf"

    # -- basic introspection ------------------------------------------------

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({np.array2string(self.data, precision=4)}{flag})"

    def item(self) -> float:
        return float(self.data)

    def numpy(self) -> np.ndarray:
        """A defensive copy of the underlying array."""
        return self.data.copy()

    def detach(self) -> "Tensor":
        """A new leaf tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    # -- operator sugar -----------------------------------------------------

    def __add__(self, other):
        return add(self, other)

    def __radd__(self, other):
        return add(other, self)

    def __sub__(self, other):
        return sub(self, other)

    def __rsub__(self, other):
        return sub(other, self)

    def __mul__(self, other):
        return mul(self, other)

    def __rmul__(self, other):
        return mul(other, self)

    def __truediv__(self, other):
        return div(self, other)

    def __rtruediv__(self, other):
        return div(other, self)

    def __neg__(self):
        return neg(self)

    def __pow__(self, exponent):
        return power(self, exponent)

    def __matmul__(self, other):
        return matmul(self, other)

    def __rmatmul__(self, other):
        return matmul(other, self)

    def __getitem__(self, idx):
        return take(self, idx)

    # Comparisons yield plain boolean arrays (non-differentiable).
    def __gt__(self, other):
        return self.data > _as_array(other)

    def __lt__(self, other):
        return self.data < _as_array(other)

    def __ge__(self, other):
        return self.data >= _as_array(other)

    def __le__(self, other):
        return self.data <= _as_array(other)

    # -- method-style ops ---------------------------------------------------

    def sum(self, axis=None, keepdims: bool = False):
        return tsum(self, axis=axis, keepdims=keepdims)

    def mean(self, axis=None, keepdims: bool = False):
        return tmean(self, axis=axis, keepdims=keepdims)

    def reshape(self, *shape):
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return reshape(self, shape)

    def transpose(self, axes=None):
        return transpose(self, axes)

    @property
    def T(self):
        return transpose(self)


def _as_array(value) -> np.ndarray:
    if isinstance(value, Tensor):
        return value.data
    return np.asarray(value, dtype=np.float64)


def as_tensor(value) -> Tensor:
    """Coerce scalars / arrays / tensors into a :class:`Tensor` leaf."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value)


def _make(
    data: np.ndarray,
    parents: tuple[Tensor, ...],
    vjp_builder: Callable[["Tensor"], Callable[[Tensor], tuple]],
    op: str,
) -> Tensor:
    """Create an op output, recording a graph edge when grad mode is on.

    ``vjp_builder(out)`` receives the freshly built output tensor so VJPs of
    ops like ``exp`` can reference their own result.
    """
    out = Tensor(data)
    if _GRAD_MODE.enabled and any(p.requires_grad for p in parents):
        out.requires_grad = True
        out._parents = parents
        out._vjp = vjp_builder(out)
        out._op = op
    return out


def _unbroadcast(g: Tensor, shape: tuple[int, ...]) -> Tensor:
    """Reduce adjoint ``g`` back to ``shape`` after numpy broadcasting.

    Composed entirely of differentiable ops (sum / reshape) so that
    double-backward through broadcasting works.
    """
    while g.ndim > len(shape):
        g = tsum(g, axis=0)
    axes = tuple(
        i for i, (gd, sd) in enumerate(zip(g.shape, shape)) if sd == 1 and gd != 1
    )
    if axes:
        g = tsum(g, axis=axes, keepdims=True)
    if g.shape != shape:
        g = reshape(g, shape)
    return g


# ---------------------------------------------------------------------------
# arithmetic primitives
# ---------------------------------------------------------------------------


def add(a, b) -> Tensor:
    """Elementwise ``a + b`` with numpy broadcasting."""
    a, b = as_tensor(a), as_tensor(b)

    def build(_out):
        def vjp(g):
            return _unbroadcast(g, a.shape), _unbroadcast(g, b.shape)

        return vjp

    return _make(a.data + b.data, (a, b), build, "add")


def sub(a, b) -> Tensor:
    """Elementwise ``a - b`` with numpy broadcasting."""
    a, b = as_tensor(a), as_tensor(b)

    def build(_out):
        def vjp(g):
            return _unbroadcast(g, a.shape), _unbroadcast(neg(g), b.shape)

        return vjp

    return _make(a.data - b.data, (a, b), build, "sub")


def mul(a, b) -> Tensor:
    """Elementwise ``a * b`` with numpy broadcasting."""
    a, b = as_tensor(a), as_tensor(b)

    def build(_out):
        def vjp(g):
            return _unbroadcast(mul(g, b), a.shape), _unbroadcast(mul(g, a), b.shape)

        return vjp

    return _make(a.data * b.data, (a, b), build, "mul")


def div(a, b) -> Tensor:
    """Elementwise ``a / b`` with numpy broadcasting."""
    a, b = as_tensor(a), as_tensor(b)

    def build(_out):
        def vjp(g):
            ga = _unbroadcast(div(g, b), a.shape)
            gb = _unbroadcast(neg(div(mul(g, a), mul(b, b))), b.shape)
            return ga, gb

        return vjp

    return _make(a.data / b.data, (a, b), build, "div")


def neg(a) -> Tensor:
    """Elementwise negation ``-a``."""
    a = as_tensor(a)

    def build(_out):
        def vjp(g):
            return (neg(g),)

        return vjp

    return _make(-a.data, (a,), build, "neg")


def power(a, exponent: float) -> Tensor:
    """Elementwise ``a ** exponent`` for a constant scalar exponent."""
    a = as_tensor(a)
    c = float(exponent)

    def build(_out):
        def vjp(g):
            return (mul(g, mul(c, power(a, c - 1.0))),)

        return vjp

    return _make(a.data**c, (a,), build, "pow")


# ---------------------------------------------------------------------------
# elementwise nonlinearities
# ---------------------------------------------------------------------------


def exp(a) -> Tensor:
    """Elementwise exponential ``e**a``."""
    a = as_tensor(a)

    def build(out):
        def vjp(g):
            return (mul(g, out),)

        return vjp

    return _make(np.exp(a.data), (a,), build, "exp")


def log(a) -> Tensor:
    """Elementwise natural logarithm."""
    a = as_tensor(a)

    def build(_out):
        def vjp(g):
            return (div(g, a),)

        return vjp

    return _make(np.log(a.data), (a,), build, "log")


def sqrt(a) -> Tensor:
    """Elementwise square root (``a ** 0.5``)."""
    return power(a, 0.5)


def tanh(a) -> Tensor:
    """Elementwise hyperbolic tangent."""
    a = as_tensor(a)

    def build(out):
        def vjp(g):
            return (mul(g, sub(1.0, mul(out, out))),)

        return vjp

    return _make(np.tanh(a.data), (a,), build, "tanh")


def sigmoid(a) -> Tensor:
    """Elementwise logistic function ``1 / (1 + e**-a)`` (overflow-safe)."""
    a = as_tensor(a)
    # Numerically stable logistic: exponentiate only non-positive values.
    x = np.asarray(a.data, dtype=np.float64)
    data = np.empty_like(x)
    pos = x >= 0
    data[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ez = np.exp(x[~pos])
    data[~pos] = ez / (1.0 + ez)
    data = data.reshape(x.shape)

    def build(out):
        def vjp(g):
            return (mul(g, mul(out, sub(1.0, out))),)

        return vjp

    return _make(data, (a,), build, "sigmoid")


def relu(a) -> Tensor:
    """Elementwise ``max(a, 0)``; subgradient 0 at the kink."""
    a = as_tensor(a)
    mask = (a.data > 0).astype(np.float64)

    def build(_out):
        def vjp(g):
            # The mask is constant w.r.t. the inputs: second derivative of
            # relu is zero almost everywhere, matching PyTorch behaviour.
            return (mul(g, Tensor(mask)),)

        return vjp

    return _make(a.data * mask, (a,), build, "relu")


def absolute(a) -> Tensor:
    """Elementwise ``|a|``; subgradient 0 at zero."""
    a = as_tensor(a)
    sign = np.sign(a.data)

    def build(_out):
        def vjp(g):
            return (mul(g, Tensor(sign)),)

        return vjp

    return _make(np.abs(a.data), (a,), build, "abs")


# ---------------------------------------------------------------------------
# reductions and shape ops
# ---------------------------------------------------------------------------


def _keepdims_shape(shape: tuple[int, ...], axis) -> tuple[int, ...]:
    if axis is None:
        return (1,) * len(shape)
    axes = axis if isinstance(axis, tuple) else (axis,)
    axes = tuple(ax % len(shape) for ax in axes)
    return tuple(1 if i in axes else s for i, s in enumerate(shape))


def tsum(a, axis=None, keepdims: bool = False) -> Tensor:
    """Sum over ``axis`` (int, tuple or None for all)."""
    a = as_tensor(a)
    if isinstance(axis, list):
        axis = tuple(axis)

    def build(_out):
        def vjp(g):
            if not keepdims and a.ndim > 0:
                g = reshape(g, _keepdims_shape(a.shape, axis))
            return (broadcast_to(g, a.shape),)

        return vjp

    return _make(np.sum(a.data, axis=axis, keepdims=keepdims), (a,), build, "sum")


def tmean(a, axis=None, keepdims: bool = False) -> Tensor:
    """Mean over ``axis`` (sum divided by the reduced element count)."""
    a = as_tensor(a)
    if axis is None:
        count = a.size
    else:
        axes = axis if isinstance(axis, tuple) else (axis,)
        count = int(np.prod([a.shape[ax] for ax in axes]))
    return div(tsum(a, axis=axis, keepdims=keepdims), float(count))


def reshape(a, shape: tuple[int, ...]) -> Tensor:
    """View ``a`` with a new shape (same element count)."""
    a = as_tensor(a)
    old_shape = a.shape

    def build(_out):
        def vjp(g):
            return (reshape(g, old_shape),)

        return vjp

    return _make(a.data.reshape(shape), (a,), build, "reshape")


def transpose(a, axes=None) -> Tensor:
    """Permute axes (numpy semantics; ``None`` reverses them)."""
    a = as_tensor(a)
    if axes is None:
        inverse = None
    else:
        inverse = tuple(np.argsort(axes))

    def build(_out):
        def vjp(g):
            return (transpose(g, inverse),)

        return vjp

    return _make(np.transpose(a.data, axes), (a,), build, "transpose")


def broadcast_to(a, shape: tuple[int, ...]) -> Tensor:
    """Broadcast ``a`` to ``shape``; the adjoint sums over expanded axes."""
    a = as_tensor(a)
    old_shape = a.shape

    def build(_out):
        def vjp(g):
            return (_unbroadcast(g, old_shape),)

        return vjp

    return _make(
        np.broadcast_to(a.data, shape).copy(), (a,), build, "broadcast_to"
    )


def matmul(a, b) -> Tensor:
    """Matrix product of two 2-D tensors (vectors are promoted like numpy)."""
    a, b = as_tensor(a), as_tensor(b)
    if a.ndim == 1 and b.ndim == 1:
        return tsum(mul(a, b))
    if a.ndim == 1:
        return reshape(matmul(reshape(a, (1, a.shape[0])), b), (b.shape[-1],))
    if b.ndim == 1:
        return reshape(matmul(a, reshape(b, (b.shape[0], 1))), (a.shape[0],))
    if a.ndim != 2 or b.ndim != 2:
        raise ValueError(
            f"matmul supports 1-D/2-D operands, got {a.ndim}-D and {b.ndim}-D"
        )

    def build(_out):
        def vjp(g):
            return matmul(g, transpose(b)), matmul(transpose(a), g)

        return vjp

    return _make(a.data @ b.data, (a, b), build, "matmul")


# ---------------------------------------------------------------------------
# indexing
# ---------------------------------------------------------------------------


def take(a, idx) -> Tensor:
    """``a[idx]`` with gradient support; ``idx`` may be any numpy index."""
    a = as_tensor(a)
    shape = a.shape

    def build(_out):
        def vjp(g):
            return (put(g, idx, shape),)

        return vjp

    return _make(np.array(a.data[idx], dtype=np.float64), (a,), build, "take")


def put(g, idx, shape: tuple[int, ...]) -> Tensor:
    """Scatter-add ``g`` into a zero tensor of ``shape`` at ``idx``.

    This is the adjoint of :func:`take`; its own adjoint is :func:`take`
    again, so indexing survives double-backward.
    """
    g = as_tensor(g)

    def build(_out):
        def vjp(gg):
            return (take(gg, idx),)

        return vjp

    data = np.zeros(shape, dtype=np.float64)
    np.add.at(data, idx, g.data)
    return _make(data, (g,), build, "put")


def concatenate(tensors: Sequence, axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` (differentiable)."""
    ts = [as_tensor(t) for t in tensors]
    sizes = [t.shape[axis] for t in ts]
    offsets = np.cumsum([0, *sizes])

    def build(_out):
        def vjp(g):
            grads = []
            for i in range(len(ts)):
                index = [slice(None)] * g.ndim
                index[axis] = slice(int(offsets[i]), int(offsets[i + 1]))
                grads.append(take(g, tuple(index)))
            return tuple(grads)

        return vjp

    return _make(
        np.concatenate([t.data for t in ts], axis=axis), tuple(ts), build, "concat"
    )


def maximum_const(a, threshold: float = 0.0) -> Tensor:
    """Elementwise ``max(a, threshold)`` with subgradient mask."""
    a = as_tensor(a)
    mask = (a.data > threshold).astype(np.float64)

    def build(_out):
        def vjp(g):
            return (mul(g, Tensor(mask)),)

        return vjp

    return _make(np.maximum(a.data, threshold), (a,), build, "maximum_const")


def amax(a, axis: int, keepdims: bool = False) -> Tensor:
    """Max along one axis; gradient flows to the (first) argmax entries."""
    a = as_tensor(a)
    data = np.max(a.data, axis=axis, keepdims=True)
    mask = (a.data == data).astype(np.float64)
    # Split ties evenly so the subgradient sums to one per reduced slice.
    mask /= np.sum(mask, axis=axis, keepdims=True)

    def build(_out):
        def vjp(g):
            if not keepdims:
                g = reshape(g, _keepdims_shape(a.shape, axis))
            return (mul(broadcast_to(g, a.shape), Tensor(mask)),)

        return vjp

    out_data = data if keepdims else np.squeeze(data, axis=axis)
    return _make(out_data, (a,), build, "amax")
