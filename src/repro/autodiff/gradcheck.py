"""Finite-difference verification utilities for gradients and HVPs.

The test suite verifies every primitive this way; the checkers are public
because anyone extending the op set (or writing a custom analytic model
for :mod:`repro.models`) needs the same machinery.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.autodiff.grad import grad, hvp
from repro.autodiff.tensor import Tensor


def numeric_gradient(
    fn: Callable[[Sequence[Tensor]], Tensor],
    inputs: Sequence[np.ndarray],
    *,
    eps: float = 1e-6,
) -> list[np.ndarray]:
    """Central-difference gradient of scalar ``fn`` at ``inputs``.

    ``fn`` receives a list of :class:`Tensor` and returns a scalar tensor;
    inputs are perturbed coordinate by coordinate.
    """
    inputs = [np.asarray(x, dtype=np.float64).copy() for x in inputs]

    def value() -> float:
        return fn([Tensor(x) for x in inputs]).item()

    grads = []
    for x in inputs:
        g = np.zeros_like(x)
        flat_x, flat_g = x.ravel(), g.ravel()
        for i in range(flat_x.size):
            orig = flat_x[i]
            flat_x[i] = orig + eps
            up = value()
            flat_x[i] = orig - eps
            down = value()
            flat_x[i] = orig
            flat_g[i] = (up - down) / (2.0 * eps)
        grads.append(g)
    return grads


def gradcheck(
    fn: Callable[[Sequence[Tensor]], Tensor],
    inputs: Sequence[np.ndarray],
    *,
    eps: float = 1e-6,
    atol: float = 1e-5,
    rtol: float = 1e-4,
) -> bool:
    """Compare autodiff gradients of scalar ``fn`` against finite differences.

    Returns True on success; raises ``AssertionError`` with the worst
    offending coordinate otherwise (mirrors ``torch.autograd.gradcheck``).
    """
    leaves = [Tensor(np.asarray(x, dtype=np.float64), requires_grad=True) for x in inputs]
    analytic = grad(fn(leaves), leaves, allow_unused=True)
    numeric = numeric_gradient(fn, inputs, eps=eps)
    for k, (a, n) in enumerate(zip(analytic, numeric)):
        diff = np.abs(a.data - n)
        bound = atol + rtol * np.abs(n)
        if np.any(diff > bound):
            worst = np.unravel_index(int(np.argmax(diff - bound)), diff.shape)
            raise AssertionError(
                f"gradcheck failed for input {k} at {worst}: "
                f"analytic={a.data[worst]:.8g} numeric={n[worst]:.8g}"
            )
    return True


def hvpcheck(
    fn: Callable[[Sequence[Tensor]], Tensor],
    inputs: Sequence[np.ndarray],
    vectors: Sequence[np.ndarray],
    *,
    eps: float = 1e-6,
    atol: float = 1e-4,
) -> bool:
    """Verify Hessian-vector products against a gradient finite difference.

    Uses ``H·v ≈ (∇f(x + εv) − ∇f(x − εv)) / 2ε``, so it needs only first
    derivatives of ``fn`` on the numeric side.
    """
    leaves = [Tensor(np.asarray(x, dtype=np.float64), requires_grad=True) for x in inputs]
    analytic = hvp(fn, leaves, [Tensor(np.asarray(v)) for v in vectors])

    def gradient_at(points: list[np.ndarray]) -> list[np.ndarray]:
        ts = [Tensor(p, requires_grad=True) for p in points]
        return [g.data for g in grad(fn(ts), ts, allow_unused=True)]

    up = gradient_at([np.asarray(x) + eps * np.asarray(v) for x, v in zip(inputs, vectors)])
    down = gradient_at([np.asarray(x) - eps * np.asarray(v) for x, v in zip(inputs, vectors)])
    for k, (a, gu, gd) in enumerate(zip(analytic, up, down)):
        numeric = (gu - gd) / (2.0 * eps)
        if not np.allclose(a.data, numeric, atol=atol):
            raise AssertionError(
                f"hvpcheck failed for input {k}: max err "
                f"{np.abs(a.data - numeric).max():.3g}"
            )
    return True
