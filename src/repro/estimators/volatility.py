"""Cross-backend volatility analysis of contribution estimates.

Geimer et al. (arXiv:2405.08044) show that contribution scores are often
unstable — across training rounds and across estimation methods — and
that reporting a single leaderboard hides it.  This module computes the
stability artifact for any set of :class:`~repro.core.contribution.ContributionReport`
objects over the *same* participants (typically: several registered
backends evaluating one training log, via ``repro compare``):

* **coefficient of variation** per participant and backend — the spread
  of its per-epoch contributions relative to their mean; high CoV means
  the participant's credit depends heavily on *which* rounds you count;
* **rank stability** per backend — the mean Spearman correlation between
  the cumulative rankings after consecutive epochs; 1.0 means the
  leaderboard never reshuffled while training progressed;
* **cross-backend agreement** — pairwise Spearman correlation of the
  whole-process totals, the "do the methods even agree on the ordering"
  number (and DIG-FL's first external accuracy baseline when one of the
  backends is a Shapley sampler).

Degenerate statistics (a zero-mean contribution stream, fewer than two
epochs) are ``nan``; :meth:`VolatilityReport.to_dict` renders those as
``None`` so the report stays JSON-serialisable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.core.contribution import ContributionReport
from repro.metrics.correlation import spearman_correlation

_EPS = 1e-300


@dataclass
class VolatilityReport:
    """Stability of contribution estimates across epochs and backends."""

    backends: list[str]
    participant_ids: list[int]
    totals: dict[str, np.ndarray]
    cov: dict[str, np.ndarray]
    rank_stability: dict[str, float]
    cross_backend: dict[str, dict[str, float]]

    def agreement(self, a: str, b: str) -> float:
        """Spearman correlation of totals between two backends."""
        return self.cross_backend[a][b]

    def to_dict(self) -> dict:
        """JSON-safe rendering (``nan`` → ``None``)."""

        def scrub(x):
            if isinstance(x, dict):
                return {k: scrub(v) for k, v in x.items()}
            if isinstance(x, np.ndarray):
                return [scrub(float(v)) for v in x]
            if isinstance(x, float) and not np.isfinite(x):
                return None
            return x

        return {
            "backends": list(self.backends),
            "participant_ids": list(self.participant_ids),
            "totals": scrub({k: v for k, v in self.totals.items()}),
            "cov": scrub({k: v for k, v in self.cov.items()}),
            "rank_stability": scrub(dict(self.rank_stability)),
            "cross_backend": scrub(self.cross_backend),
        }

    def table(self) -> str:
        """The aligned text report ``repro compare`` prints."""
        lines = []
        width = max(len(b) for b in self.backends)
        lines.append("per-participant coefficient of variation (per-epoch spread)")
        header = f"{'backend':<{width}}  " + "  ".join(
            f"p{pid:<6}" for pid in self.participant_ids
        )
        lines.append(header)
        for backend in self.backends:
            cells = "  ".join(
                f"{v:7.3f}" if np.isfinite(v) else "      -"
                for v in self.cov[backend]
            )
            lines.append(f"{backend:<{width}}  {cells}")
        lines.append("")
        lines.append("rank stability across epochs (mean consecutive Spearman)")
        for backend in self.backends:
            rho = self.rank_stability[backend]
            shown = f"{rho:+.3f}" if np.isfinite(rho) else "-"
            lines.append(f"{backend:<{width}}  {shown}")
        lines.append("")
        lines.append("cross-backend agreement (Spearman of totals)")
        lines.append(
            f"{'':<{width}}  " + "  ".join(f"{b:>{width}}" for b in self.backends)
        )
        for a in self.backends:
            cells = "  ".join(
                (
                    f"{self.cross_backend[a][b]:>{width}.3f}"
                    if np.isfinite(self.cross_backend[a][b])
                    else f"{'-':>{width}}"
                )
                for b in self.backends
            )
            lines.append(f"{a:<{width}}  {cells}")
        return "\n".join(lines)


def volatility_report(reports: Mapping[str, ContributionReport]) -> VolatilityReport:
    """Build the stability report for named reports over shared participants.

    All reports must cover the same participant ids (any order); they are
    aligned onto the first report's ordering.
    """
    if not reports:
        raise ValueError("need at least one contribution report")
    backends = list(reports)
    first = reports[backends[0]]
    ids = list(first.participant_ids)
    totals: dict[str, np.ndarray] = {}
    cov: dict[str, np.ndarray] = {}
    stability: dict[str, float] = {}
    for name, report in reports.items():
        if sorted(report.participant_ids) != sorted(ids):
            raise ValueError(
                f"report {name!r} covers participants {report.participant_ids}, "
                f"expected {ids}"
            )
        cols = [report.participant_ids.index(pid) for pid in ids]
        totals[name] = report.totals[cols]
        if report.per_epoch is None or report.per_epoch.shape[0] == 0:
            cov[name] = np.full(len(ids), np.nan)
            stability[name] = float("nan")
            continue
        per_epoch = report.per_epoch[:, cols]
        cov[name] = _coefficient_of_variation(per_epoch)
        stability[name] = _rank_stability(per_epoch)
    cross = {
        a: {b: spearman_correlation(totals[a], totals[b]) for b in backends}
        for a in backends
    }
    return VolatilityReport(
        backends=backends,
        participant_ids=ids,
        totals=totals,
        cov=cov,
        rank_stability=stability,
        cross_backend=cross,
    )


def _coefficient_of_variation(per_epoch: np.ndarray) -> np.ndarray:
    """Per-column std/|mean|; ``nan`` where the mean is (numerically) zero."""
    mean = per_epoch.mean(axis=0)
    std = per_epoch.std(axis=0)
    out = np.full(per_epoch.shape[1], np.nan)
    nonzero = np.abs(mean) > _EPS
    out[nonzero] = std[nonzero] / np.abs(mean[nonzero])
    return out


def _rank_stability(per_epoch: np.ndarray) -> float:
    """Mean Spearman between consecutive epochs' cumulative rankings."""
    if per_epoch.shape[0] < 2:
        return float("nan")
    cumulative = np.cumsum(per_epoch, axis=0)
    rhos = [
        spearman_correlation(cumulative[t - 1], cumulative[t])
        for t in range(1, cumulative.shape[0])
    ]
    return float(np.nanmean(rhos)) if rhos else float("nan")
