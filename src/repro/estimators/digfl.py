"""The ``digfl`` backend: the paper's estimators behind the registry.

This is a *rebinding*, not a reimplementation: the streaming classes are
:class:`repro.serve.streaming.StreamingHFLEstimator` /
:class:`~repro.serve.streaming.StreamingVFLEstimator` exactly as the
evaluation service has always constructed them, and the batch entry
points delegate to :func:`repro.core.digfl_hfl.estimate_hfl_resource_saving`
/ :func:`repro.core.digfl_vfl.estimate_vfl_first_order` — so every number
the ``digfl`` backend produces is ``np.array_equal`` to the pre-registry
code paths (the seed contract the registry tests pin).
"""

from __future__ import annotations

from repro.core.backends import (
    EstimatorBackend,
    HFLRunContext,
    VFLRunContext,
    register_backend,
)
from repro.core.contribution import ContributionReport
from repro.core.digfl_hfl import estimate_hfl_resource_saving
from repro.core.digfl_vfl import estimate_vfl_first_order
from repro.serve.streaming import StreamingHFLEstimator, StreamingVFLEstimator


@register_backend
class DigFLBackend(EstimatorBackend):
    """First-order DIG-FL (Alg. 2 / Eq. 16 for HFL, Eq. 27 for VFL)."""

    name = "digfl"
    kinds = ("hfl", "vfl")
    summary = "per-epoch gradient inner products (the paper's Alg. 2 / Eq. 27)"
    option_defaults: dict = {}

    def streaming_hfl(self, ctx: HFLRunContext) -> StreamingHFLEstimator:
        return StreamingHFLEstimator(
            ctx.participant_ids,
            ctx.validation,
            ctx.model_factory,
            use_logged_weights=ctx.use_logged_weights,
            val_grad_memo=ctx.val_grad_memo,
        )

    def streaming_vfl(self, ctx: VFLRunContext) -> StreamingVFLEstimator:
        return StreamingVFLEstimator(ctx.feature_blocks, ctx.active_parties)

    def estimate_hfl(
        self,
        log,
        validation,
        model_factory,
        *,
        use_logged_weights: bool = False,
        ledger=None,
        val_grad_memo=None,
        profiler=None,
    ) -> ContributionReport:
        # The original batch algorithm, untouched: same floats, same
        # summation order, same report as before the registry existed.
        return estimate_hfl_resource_saving(
            log,
            validation,
            model_factory,
            use_logged_weights=use_logged_weights,
            ledger=ledger,
            val_grad_memo=val_grad_memo,
            profiler=profiler,
        )

    def estimate_vfl(self, log, *, ledger=None, profiler=None) -> ContributionReport:
        del profiler  # Eq. 27 has no profiled hot phase of its own
        return estimate_vfl_first_order(log, ledger=ledger)
