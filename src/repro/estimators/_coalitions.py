"""Coalition utilities over reconstructed models — shared MC machinery.

GTG-Shapley and DPVS both price a coalition ``S`` in round ``t`` the MR
way (:mod:`repro.shapley.reconstruction`): rebuild the model the
coalition would have produced from the stored updates,

    θ_t(S) = θ_{t-1} − (1/|S|) Σ_{i∈S} δ_{t,i}

and take the validation improvement ``u_t(S) = loss^v(θ_{t-1}) −
loss^v(θ_t(S))``.  :class:`CoalitionValuer` owns one round's base loss
and a ``frozenset``-keyed cache of coalition values, so permutation
walks that revisit a prefix (the whole point of DPVS's fixed pruned
prefix, and common under GTG's guided first walk) pay one model
evaluation per *distinct* coalition.
"""

from __future__ import annotations

import numpy as np

from repro.obs.profile import NULL_PROFILER


class CoalitionValuer:
    """Cached ``u_t(S)`` for one epoch record's reconstruction game."""

    def __init__(
        self,
        model,
        record,
        validation,
        *,
        profiler=NULL_PROFILER,
        phase: str = "gtg.reconstruct",
    ) -> None:
        self.model = model
        self.record = record
        self.validation = validation
        self.profiler = profiler
        self.phase = phase
        self.evaluations = 0
        self.cache_hits = 0
        with profiler.phase(phase):
            model.set_flat(record.theta_before)
            self.base_loss = float(
                model.loss(validation.X, validation.y).item()
            )
        self._cache: dict[frozenset[int], float] = {frozenset(): 0.0}

    def value(self, coalition: frozenset[int]) -> float:
        got = self._cache.get(coalition)
        if got is not None:
            self.cache_hits += 1
            return got
        with self.profiler.phase(self.phase):
            members = sorted(coalition)
            update = self.record.local_updates[members].mean(axis=0)
            self.model.set_flat(self.record.theta_before - update)
            after = float(self.model.loss(self.validation.X, self.validation.y).item())
        got = self.base_loss - after
        self._cache[coalition] = got
        self.evaluations += 1
        return got


def check_update_rows(record, n: int) -> None:
    """The shared shape guard every HFL streaming ingest performs."""
    if record.local_updates.shape[0] != n:
        raise ValueError(
            f"record carries {record.local_updates.shape[0]} update rows, "
            f"expected {n}"
        )


def present_rows(record) -> np.ndarray:
    """Row indices whose update actually entered this round's aggregate."""
    return np.flatnonzero(record.participation_mask())
