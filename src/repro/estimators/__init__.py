"""Pluggable contribution-estimator backends behind one registry.

The registry interface (:class:`~repro.core.backends.EstimatorBackend`,
:func:`~repro.core.backends.register_backend`,
:func:`~repro.core.backends.get_backend`) lives in :mod:`repro.core`;
this package holds the implementations, registered at import time:

* ``digfl`` (:mod:`~repro.estimators.digfl`) — the paper's estimators,
  rebinding the existing batch and streaming code paths unchanged
  (bit-for-bit equal to the pre-registry call sites);
* ``gtg_shapley`` (:mod:`~repro.estimators.gtg`) — guided truncation
  Monte-Carlo Shapley over models reconstructed from the update log
  (Liu et al., arXiv:2109.02053), seeded and deterministic;
* ``dpvs`` (:mod:`~repro.estimators.dpvs`) — permutation-sampling
  Shapley with dynamic pruning of low-impact participants
  (DPVS-Shapley, arXiv:2410.15093).

:mod:`~repro.estimators.volatility` compares any set of backends on one
log: per-participant coefficient of variation, per-backend rank
stability across epochs, and pairwise cross-backend Spearman agreement —
the artifact ``repro compare`` prints and
``examples/backend_faceoff.py`` demonstrates.

Every backend serves through the same
:class:`~repro.serve.service.EvaluationService`: ``POST /runs`` takes an
``estimator:`` field (default ``digfl``), the backend name and options
are folded into the run's content digest (so cached answers never leak
between backends), and query payloads carry the answering backend.
"""

from repro.core.backends import (
    BackendInfo,
    EstimatorBackend,
    HFLRunContext,
    UnknownBackendError,
    UnsupportedLogKind,
    VFLRunContext,
    backend_infos,
    backend_names,
    get_backend,
    register_backend,
)
from repro.estimators.digfl import DigFLBackend
from repro.estimators.dpvs import DPVSBackend, StreamingDPVSEstimator
from repro.estimators.gtg import GTGShapleyBackend, StreamingGTGShapley
from repro.estimators.volatility import VolatilityReport, volatility_report

__all__ = [
    "BackendInfo",
    "DPVSBackend",
    "DigFLBackend",
    "EstimatorBackend",
    "GTGShapleyBackend",
    "HFLRunContext",
    "StreamingDPVSEstimator",
    "StreamingGTGShapley",
    "UnknownBackendError",
    "UnsupportedLogKind",
    "VFLRunContext",
    "VolatilityReport",
    "backend_infos",
    "backend_names",
    "get_backend",
    "register_backend",
    "volatility_report",
]
