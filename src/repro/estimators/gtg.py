"""GTG-Shapley: guided truncation Monte-Carlo over reconstructed models.

Liu et al. (arXiv:2109.02053) make per-round Shapley estimation cheap
with three ideas, all implemented here on top of the training log the
repo already records:

* **Reconstruction, not retraining** — coalition ``S``'s round-``t``
  model is rebuilt from the stored updates (the MR scheme of
  :mod:`repro.shapley.reconstruction`), so utility evaluations cost one
  validation forward pass each.
* **Truncation, twice** — *between rounds*: a round whose full-coalition
  improvement ``u_t(N)`` is negligible against the loss scale is skipped
  outright (every participant scores zero there); *within a round*: a
  permutation walk stops charging marginals once the running prefix
  value is within tolerance of ``u_t(N)`` — the remaining players'
  marginals are treated as zero, saving their model reconstructions.
* **Guidance + convergence** — the first permutation visits
  participants in descending order of their contribution so far (so the
  truncation point arrives early), later permutations are seeded-random,
  and sampling stops when the running Shapley means move less than a
  relative tolerance for two consecutive permutations.

Everything is deterministic under a fixed ``seed``: round ``t`` draws
its permutations from ``make_rng(derive_seed(seed, t))``, so the same
log ingested in any batching yields bit-identical estimates — the same
streaming/batch contract the DIG-FL estimators honour.

Per-round participation masks are respected the DIG-FL way: a
participant absent from round ``t`` shipped nothing, is excluded from
the round's game, and scores exactly zero that round.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.core.backends import EstimatorBackend, HFLRunContext, register_backend
from repro.data.dataset import Dataset
from repro.estimators._coalitions import CoalitionValuer, check_update_rows, present_rows
from repro.hfl.log import EpochRecord, TrainingLog
from repro.nn.models import Classifier
from repro.serve.streaming import _StreamingBase
from repro.utils.rng import derive_seed, make_rng

_EPS = 1e-12


class StreamingGTGShapley(_StreamingBase):
    """GTG-Shapley, one :class:`EpochRecord` at a time.

    Tolerances: ``round_tolerance`` gates the between-round truncation
    (relative to the round's base validation loss),
    ``truncation_tolerance`` the within-round walk cutoff (relative to
    ``u_t(N)``), ``convergence_tolerance`` the early stop on the running
    means.  ``max_permutations`` bounds the Monte-Carlo loop;
    ``min_permutations`` is the floor before the convergence criterion
    may fire.
    """

    method = "gtg-shapley"

    def __init__(
        self,
        participant_ids: Sequence[int],
        validation: Dataset,
        model_factory: Callable[[], Classifier],
        *,
        seed: int = 0,
        max_permutations: int = 16,
        min_permutations: int = 2,
        round_tolerance: float = 1e-4,
        truncation_tolerance: float = 0.01,
        convergence_tolerance: float = 0.05,
    ) -> None:
        super().__init__(participant_ids)
        if max_permutations < 1:
            raise ValueError(f"max_permutations must be >= 1, got {max_permutations}")
        self.validation = validation
        self.model = model_factory()
        self.seed = int(seed)
        self.max_permutations = int(max_permutations)
        self.min_permutations = max(1, int(min_permutations))
        self.round_tolerance = float(round_tolerance)
        self.truncation_tolerance = float(truncation_tolerance)
        self.convergence_tolerance = float(convergence_tolerance)
        self.permutations_run = 0
        self.coalition_evaluations = 0
        self.rounds_truncated = 0
        self.walks_truncated = 0

    def ingest(self, record: EpochRecord, *, memo_key: str | None = None) -> np.ndarray:
        """Consume one epoch: reconstruct, sample, truncate, converge."""
        del memo_key  # utilities are losses, not validation gradients
        n = self.n_participants
        check_update_rows(record, n)
        with self.ledger.computing():
            present = present_rows(record)
            row = np.zeros(n)
            if present.size:
                row = self._evaluate_round(record, present)
        return self._push(row)

    def ingest_log(self, log: TrainingLog, *, start: int = 0) -> int:
        """Batch-ingest ``log.records[start:]``; returns epochs consumed."""
        if list(log.participant_ids) != self.participant_ids:
            raise ValueError(
                f"log participants {log.participant_ids} do not match "
                f"{self.participant_ids}"
            )
        for record in log.records[start:]:
            self.ingest(record)
        return log.n_epochs - start

    # ------------------------------------------------------------ internals

    def _evaluate_round(self, record: EpochRecord, present: np.ndarray) -> np.ndarray:
        t = self.n_epochs  # 0-based round index; fixes this round's rng
        valuer = CoalitionValuer(
            self.model, record, self.validation, profiler=self.profiler
        )
        grand = frozenset(int(i) for i in present)
        v_full = valuer.value(grand)
        row = np.zeros(self.n_participants)
        # Between-round truncation: a converged round moves the loss so
        # little that splitting its credit is noise — skip it wholesale.
        if abs(v_full) <= self.round_tolerance * max(abs(valuer.base_loss), _EPS):
            self.rounds_truncated += 1
            self.coalition_evaluations += valuer.evaluations
            return row
        with self.profiler.phase("gtg.eval_round"):
            means = self._sample_round(valuer, present, v_full, t)
        row[present] = means
        self.coalition_evaluations += valuer.evaluations
        return row

    def _sample_round(
        self,
        valuer: CoalitionValuer,
        present: np.ndarray,
        v_full: float,
        t: int,
    ) -> np.ndarray:
        rng = make_rng(derive_seed(self.seed, t))
        m = present.size
        index_of = {int(p): j for j, p in enumerate(present)}
        sums = np.zeros(m)
        mean = np.zeros(m)
        cutoff = self.truncation_tolerance * abs(v_full)
        streak = 0
        walks = 0
        for perm_idx in range(self.max_permutations):
            if perm_idx == 0:
                # Guided first walk: strongest contributors so far go
                # first, so the prefix reaches u_t(N) (and truncates)
                # as early as possible.
                totals = self.totals()
                order = sorted(
                    (int(i) for i in present), key=lambda i: (-totals[i], i)
                )
            else:
                order = [int(i) for i in present[rng.permutation(m)]]
            prefix: frozenset[int] = frozenset()
            prev = 0.0
            truncated = False
            for i in order:
                if not truncated and abs(v_full - prev) <= cutoff:
                    truncated = True
                    self.walks_truncated += 1
                if truncated:
                    continue  # marginal treated as zero past the cutoff
                prefix = prefix | {i}
                value = valuer.value(prefix)
                sums[index_of[i]] += value - prev
                prev = value
            walks += 1
            new_mean = sums / walks
            spread = float(np.max(np.abs(new_mean - mean)))
            scale = float(np.max(np.abs(new_mean)))
            mean = new_mean
            # Convergence criterion: two consecutive permutations that
            # barely move the running means end the round's sampling.
            if walks >= self.min_permutations and spread <= (
                self.convergence_tolerance * max(scale, _EPS)
            ):
                streak += 1
                if streak >= 2:
                    break
            else:
                streak = 0
        self.permutations_run += walks
        return mean

    def report(self):
        report = super().report()
        report.extra["gtg"] = {
            "seed": self.seed,
            "permutations_run": self.permutations_run,
            "coalition_evaluations": self.coalition_evaluations,
            "rounds_truncated": self.rounds_truncated,
            "walks_truncated": self.walks_truncated,
        }
        return report


@register_backend
class GTGShapleyBackend(EstimatorBackend):
    """Guided truncation Monte-Carlo Shapley over reconstructed models."""

    name = "gtg_shapley"
    kinds = ("hfl",)
    summary = "guided-truncation MC Shapley on reconstructed round models"
    option_defaults = {
        "seed": 0,
        "max_permutations": 16,
        "min_permutations": 2,
        "round_tolerance": 1e-4,
        "truncation_tolerance": 0.01,
        "convergence_tolerance": 0.05,
    }

    def streaming_hfl(self, ctx: HFLRunContext) -> StreamingGTGShapley:
        return StreamingGTGShapley(
            ctx.participant_ids,
            ctx.validation,
            ctx.model_factory,
            **self.options,
        )
