"""DPVS-style dynamic pruning: stop paying full price for low-impact parties.

DPVS-Shapley (arXiv:2410.15093) observes that most permutation-sampling
budget is spent re-measuring participants whose contribution is already
known to be negligible.  This backend applies the idea to the per-round
reconstruction game: participants whose running |total| has fallen below
a fraction of the current leader's are *pruned* — in every sampled
permutation they occupy a fixed, sorted prefix, so their coalition
prefixes repeat across permutations and the round's coalition cache
answers them for one model evaluation each, while the still-active
participants keep getting genuinely random positions (and fresh
marginals) in the suffix.

Pruning is dynamic with hysteresis: it starts only after
``warmup_rounds`` ingested epochs, a pruned participant is revived when
its running |total| climbs back above ``revive_above`` × leader, and at
least ``min_active`` participants always remain active.  Pruned
participants still receive per-round scores (their cached prefix
marginals), so totals stay comparable across backends — the point is
saved model evaluations, not frozen estimates; the savings are reported
in ``report().extra["dpvs"]``.

Determinism matches GTG: round ``t`` draws from
``make_rng(derive_seed(seed, t))``, so streaming and batch ingestion of
the same log agree bit-for-bit.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.core.backends import EstimatorBackend, HFLRunContext, register_backend
from repro.data.dataset import Dataset
from repro.estimators._coalitions import CoalitionValuer, check_update_rows, present_rows
from repro.hfl.log import EpochRecord, TrainingLog
from repro.nn.models import Classifier
from repro.serve.streaming import _StreamingBase
from repro.utils.rng import derive_seed, make_rng

_EPS = 1e-12


class StreamingDPVSEstimator(_StreamingBase):
    """Permutation-sampling Shapley with dynamically pruned participants."""

    method = "dpvs-pruning"

    def __init__(
        self,
        participant_ids: Sequence[int],
        validation: Dataset,
        model_factory: Callable[[], Classifier],
        *,
        seed: int = 0,
        permutations: int = 8,
        warmup_rounds: int = 2,
        prune_below: float = 0.05,
        revive_above: float = 0.15,
        min_active: int = 2,
    ) -> None:
        super().__init__(participant_ids)
        if permutations < 1:
            raise ValueError(f"permutations must be >= 1, got {permutations}")
        if not 0.0 <= prune_below <= revive_above:
            raise ValueError(
                "need 0 <= prune_below <= revive_above, got "
                f"{prune_below} / {revive_above}"
            )
        self.validation = validation
        self.model = model_factory()
        self.seed = int(seed)
        self.permutations = int(permutations)
        self.warmup_rounds = int(warmup_rounds)
        self.prune_below = float(prune_below)
        self.revive_above = float(revive_above)
        self.min_active = max(1, int(min_active))
        self._pruned: set[int] = set()  # row indices currently pruned
        self.coalition_evaluations = 0
        self.evaluations_saved = 0
        self.prune_events = 0

    @property
    def pruned_participants(self) -> list[int]:
        """Participant ids currently pruned, sorted."""
        return sorted(self.participant_ids[i] for i in self._pruned)

    def ingest(self, record: EpochRecord, *, memo_key: str | None = None) -> np.ndarray:
        del memo_key
        n = self.n_participants
        check_update_rows(record, n)
        with self.ledger.computing():
            present = present_rows(record)
            row = np.zeros(n)
            if present.size:
                row = self._evaluate_round(record, present)
        pushed = self._push(row)
        self._update_pruned()
        return pushed

    def ingest_log(self, log: TrainingLog, *, start: int = 0) -> int:
        """Batch-ingest ``log.records[start:]``; returns epochs consumed."""
        if list(log.participant_ids) != self.participant_ids:
            raise ValueError(
                f"log participants {log.participant_ids} do not match "
                f"{self.participant_ids}"
            )
        for record in log.records[start:]:
            self.ingest(record)
        return log.n_epochs - start

    # ------------------------------------------------------------ internals

    def _evaluate_round(self, record: EpochRecord, present: np.ndarray) -> np.ndarray:
        t = self.n_epochs
        rng = make_rng(derive_seed(self.seed, t))
        valuer = CoalitionValuer(
            self.model,
            record,
            self.validation,
            profiler=self.profiler,
            phase="dpvs.reconstruct",
        )
        # Pruned-but-present participants form a fixed sorted prefix of
        # every permutation: their prefix coalitions repeat, so each
        # costs one evaluation in the whole round instead of one per
        # permutation.
        prefix_rows = sorted(int(i) for i in present if i in self._pruned)
        active_rows = np.array(
            [int(i) for i in present if i not in self._pruned], dtype=int
        )
        index_of = {int(p): j for j, p in enumerate(present)}
        sums = np.zeros(present.size)
        with self.profiler.phase("dpvs.eval_round"):
            for _ in range(self.permutations):
                order = prefix_rows + [
                    int(i) for i in active_rows[rng.permutation(active_rows.size)]
                ]
                prefix: frozenset[int] = frozenset()
                prev = 0.0
                for i in order:
                    prefix = prefix | {i}
                    value = valuer.value(prefix)
                    sums[index_of[i]] += value - prev
                    prev = value
        row = np.zeros(self.n_participants)
        row[present] = sums / self.permutations
        self.coalition_evaluations += valuer.evaluations
        self.evaluations_saved += valuer.cache_hits
        return row

    def _update_pruned(self) -> None:
        """Re-draw the pruned set from running totals, with hysteresis."""
        if self.n_epochs < self.warmup_rounds:
            return
        totals = self.totals()
        scale = float(np.max(np.abs(totals)))
        if scale <= _EPS:
            return
        for i in range(self.n_participants):
            share = abs(totals[i]) / scale
            if i in self._pruned:
                if share >= self.revive_above:
                    self._pruned.discard(i)
            elif share < self.prune_below:
                self._pruned.add(i)
                self.prune_events += 1
        # Never prune the problem away: keep the strongest participants
        # active until at least ``min_active`` remain unpruned.
        while self.n_participants - len(self._pruned) < self.min_active:
            best = max(self._pruned, key=lambda i: (abs(totals[i]), -i))
            self._pruned.discard(best)

    def report(self):
        report = super().report()
        report.extra["dpvs"] = {
            "seed": self.seed,
            "pruned": self.pruned_participants,
            "prune_events": self.prune_events,
            "coalition_evaluations": self.coalition_evaluations,
            "evaluations_saved": self.evaluations_saved,
        }
        return report


@register_backend
class DPVSBackend(EstimatorBackend):
    """Permutation Shapley with dynamic pruning of low-impact parties."""

    name = "dpvs"
    kinds = ("hfl",)
    summary = "permutation-sampling Shapley, low-impact parties pruned"
    option_defaults = {
        "seed": 0,
        "permutations": 8,
        "warmup_rounds": 2,
        "prune_below": 0.05,
        "revive_above": 0.15,
        "min_active": 2,
    }

    def streaming_hfl(self, ctx: HFLRunContext) -> StreamingDPVSEstimator:
        return StreamingDPVSEstimator(
            ctx.participant_ids,
            ctx.validation,
            ctx.model_factory,
            **self.options,
        )
