"""Deterministic fault injection for the serving layer.

The resilience machinery of :mod:`repro.serve.resilience` is only worth
having if every behaviour — deadline 504s, load-shed 429s, breaker
trips, stale-marked degraded answers, publisher dead-letters, WAL
recovery — can be *provoked on demand and reproduced exactly*.  This
module is that provocation: wrappers that sit at the estimator and sink
boundaries and inject, on a seeded RNG,

* **latency spikes** — a configurable sleep before the wrapped call
  (the ``sleep`` function is injectable, so tests can fake time);
* **raised exceptions** — :class:`ChaosError` from inside the compute;
* **corrupted payloads** — NaN-poisoned contribution vectors, which the
  service's payload validation must catch and treat as a failure rather
  than cache or serve.

Decisions are drawn from ``np.random.default_rng(seed)`` in call order,
so a chaos scenario is a pure function of (seed, call sequence) — the
chaos test suite asserts breaker state *transitions*, not just
distributions.  Nothing in this module is imported by the production
path; it lives in the package (rather than under ``tests/``) so the CI
chaos job, the benchmarks and ``examples/resilient_leaderboard.py`` can
all drive the same harness.
"""

from __future__ import annotations

import time
from typing import Callable

import numpy as np


class ChaosError(RuntimeError):
    """The injected failure; distinct so tests never mask real bugs."""


class ChaosPolicy:
    """Seeded decisions: when to delay, fail, or corrupt.

    Probabilities are evaluated per call, in a fixed order (latency,
    then error, then corruption), each consuming one uniform draw —
    which keeps the decision sequence stable when probabilities change.
    ``arm()`` / ``disarm()`` toggle injection without disturbing the RNG
    stream, so a scenario can inject, heal, and re-inject mid-test.
    """

    def __init__(
        self,
        seed: int = 0,
        *,
        latency_prob: float = 0.0,
        latency_ms: float = 0.0,
        error_prob: float = 0.0,
        corrupt_prob: float = 0.0,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        for name, p in (
            ("latency_prob", latency_prob),
            ("error_prob", error_prob),
            ("corrupt_prob", corrupt_prob),
        ):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p}")
        self.latency_prob = latency_prob
        self.latency_ms = latency_ms
        self.error_prob = error_prob
        self.corrupt_prob = corrupt_prob
        self._sleep = sleep
        self._rng = np.random.default_rng(seed)
        self._armed = True
        self.injected = {"latency": 0, "error": 0, "corrupt": 0}

    def arm(self) -> None:
        self._armed = True

    def disarm(self) -> None:
        """Heal: stop injecting (the RNG stream keeps advancing)."""
        self._armed = False

    def before_call(self, what: str) -> None:
        """Maybe delay, maybe raise — called on entry to a wrapped method."""
        delay = self._rng.random() < self.latency_prob
        fail = self._rng.random() < self.error_prob
        if not self._armed:
            return
        if delay and self.latency_ms > 0:
            self.injected["latency"] += 1
            self._sleep(self.latency_ms / 1e3)
        if fail:
            self.injected["error"] += 1
            raise ChaosError(f"injected failure in {what}")

    def corrupt(self, value: np.ndarray) -> np.ndarray:
        """Maybe NaN-poison a result vector (copy; never mutates input)."""
        hit = self._rng.random() < self.corrupt_prob
        if not (self._armed and hit):
            return value
        self.injected["corrupt"] += 1
        poisoned = np.array(value, dtype=np.float64, copy=True)
        if poisoned.size:
            poisoned.flat[int(self._rng.integers(poisoned.size))] = np.nan
        return poisoned


class ChaosEstimator:
    """A streaming estimator with a :class:`ChaosPolicy` at every entry point.

    Wraps any ``_StreamingBase`` subclass; attribute access falls through
    to the wrapped estimator, while the methods the service's compute
    closures call (``ingest``, ``totals``, ``leaderboard``,
    ``current_weights``, ``report``) first give the policy a chance to
    delay or raise, and result vectors pass through ``corrupt``.  Install
    with :func:`inject_chaos`.
    """

    def __init__(self, inner, policy: ChaosPolicy) -> None:
        self._inner = inner
        self.policy = policy

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def ingest(self, record, **kwargs):
        self.policy.before_call("ingest")
        return self._inner.ingest(record, **kwargs)

    def totals(self):
        self.policy.before_call("totals")
        return self.policy.corrupt(self._inner.totals())

    def leaderboard(self, top=None):
        self.policy.before_call("leaderboard")
        totals = self.policy.corrupt(self._inner.totals())
        order = np.argsort(totals)[::-1]
        if top is not None:
            order = order[:top]
        return [(self._inner.participant_ids[i], float(totals[i])) for i in order]

    def current_weights(self, scheme: str = "rectified", temperature: float = 1.0):
        self.policy.before_call("current_weights")
        return self.policy.corrupt(
            self._inner.current_weights(scheme, temperature)
        )

    def report(self):
        self.policy.before_call("report")
        return self._inner.report()


def inject_chaos(service, run_id: str, policy: ChaosPolicy) -> ChaosEstimator:
    """Wrap a registered run's estimator in chaos; returns the wrapper.

    Takes the run's lock for the swap, so in-flight requests never see a
    half-installed wrapper.
    """
    run = service._run(run_id)
    with run.lock:
        wrapped = ChaosEstimator(run.estimator, policy)
        run.estimator = wrapped
    return wrapped


class FlakyProxy:
    """A sink/service proxy whose named methods fail the first ``failures`` times.

    The publisher-retry tests wrap an :class:`EvaluationService` in one of
    these: ``ingest`` raises :class:`ChaosError` for the first N calls,
    then recovers — transient sink failure, scripted.  Methods not listed
    pass straight through.
    """

    def __init__(self, inner, failures: int, *, methods: tuple = ("ingest",)) -> None:
        self._inner = inner
        self._budget = {name: failures for name in methods}
        self.calls = {name: 0 for name in methods}

    def __getattr__(self, name):
        target = getattr(self._inner, name)
        if name not in self._budget:
            return target

        def flaky(*args, **kwargs):
            self.calls[name] += 1
            if self._budget[name] > 0:
                self._budget[name] -= 1
                raise ChaosError(f"injected transient failure in {name}")
            return target(*args, **kwargs)

        return flaky
