"""Write-ahead log and crash recovery for the serving registry.

PR 2's `CheckpointManager` made *training* crash-safe; this module does
the same for *serving*.  A `repro serve` process accumulates state that
is expensive to lose — registered runs and the exact log prefix each one
has ingested — yet none of it was durable: a kill meant every client
re-registering from scratch.  The :class:`WriteAheadLog` records, before
the service acknowledges them, two kinds of facts:

* ``register`` — the ``POST /runs`` spec (kind, log path, dataset/seed,
  resolved run id): everything needed to rebuild the run's estimator;
* ``ingest`` — one record per ingested epoch carrying the run's
  incremental content digest *after* that epoch (the same
  :func:`repro.io.hash_arrays`-based :class:`~repro.serve.cache.RunDigest`
  the result cache keys on).

Each line is JSON stamped with a :func:`repro.io.json_checksum`, written
with ``flush + fsync`` so a SIGKILL can tear at most the final line.
:func:`replay` tolerates exactly that torn tail (dropped with a
warning); corruption *before* the tail raises :class:`WalCorruption` —
a mid-file flip means the history cannot be trusted.

:func:`recover` rebuilds an :class:`~repro.serve.service.EvaluationService`
from a WAL: it re-registers every spec, replays each run's saved ``.npz``
log **to the exact ingested epoch** recorded in the WAL, and verifies the
rebuilt digest against the recorded one epoch by epoch — so the recovered
service serves contributions bit-for-bit equal to an uninterrupted run of
the same prefix (``np.array_equal``; CI kills the server with SIGKILL
mid-ingest to prove it).  A digest mismatch means the log file changed
since the WAL was written and raises :class:`RecoveryError` rather than
silently serving different numbers.
"""

from __future__ import annotations

import json
import os
import threading
import warnings
from dataclasses import dataclass, field
from pathlib import Path

from repro.io import (
    TrainingLogIntegrityError,
    json_checksum,
    load_training_log,
    load_vfl_training_log,
)

REGISTER = "register"
INGEST = "ingest"
_KINDS = frozenset({REGISTER, INGEST})


class WalCorruption(RuntimeError):
    """The WAL has a bad record *before* its final line; history is suspect."""


class RecoveryError(RuntimeError):
    """The WAL replayed, but the world no longer matches it.

    Typically: a training-log file referenced by a ``register`` record is
    missing epochs the WAL says were ingested, or its content digest no
    longer matches the recorded one.  Recovery refuses rather than serve
    numbers that differ from what the pre-crash service acknowledged.
    """


@dataclass(frozen=True)
class WalEntry:
    """One validated WAL record."""

    seq: int
    kind: str
    payload: dict


@dataclass
class RecoveryReport:
    """What :func:`recover` rebuilt, and what it had to leave behind."""

    runs_restored: int = 0
    epochs_replayed: int = 0
    runs_skipped: list = field(default_factory=list)
    epochs_skipped: int = 0
    tail_dropped: bool = False

    def summary(self) -> str:
        line = (
            f"recovered {self.runs_restored} run(s), "
            f"{self.epochs_replayed} epoch(s) replayed"
        )
        if self.runs_skipped:
            line += f"; skipped runs: {', '.join(self.runs_skipped)}"
        if self.epochs_skipped:
            line += f"; {self.epochs_skipped} unreplayable epoch record(s)"
        if self.tail_dropped:
            line += "; torn tail record dropped"
        return line


class WriteAheadLog:
    """Append-only, fsync'd, checksummed record of registry mutations.

    One WAL file (``serve.wal`` inside ``directory``) serves one
    :class:`EvaluationService` process at a time.  Opening an existing
    file resumes its sequence numbers and truncates any torn tail, so
    append-after-recovery keeps the file replayable.  ``fsync=False``
    trades the per-record ``fsync`` for speed in benchmarks; the CLI
    always runs fsync'd.
    """

    FILENAME = "serve.wal"

    def __init__(self, directory: str | Path, *, fsync: bool = True) -> None:
        self.directory = Path(directory)
        self.fsync = fsync
        self.directory.mkdir(parents=True, exist_ok=True)
        entries, good_bytes, torn = self._scan()
        self._next_seq = (entries[-1].seq + 1) if entries else 1
        self.tail_dropped = torn
        if torn:
            warnings.warn(
                f"{self.path} ends in a torn record (crash mid-append); "
                "dropping the tail",
                UserWarning,
                stacklevel=2,
            )
            # Appending after a torn line would corrupt mid-file; cut it.
            with open(self.path, "rb+") as fh:
                fh.truncate(good_bytes)
        self._fh = open(self.path, "ab")
        # append() is called from many server threads at once (each HTTP
        # request is a thread; ingests lock per run, registrations not at
        # all) — seq allocation and the write+flush+fsync must be atomic
        # or replay() sees interleaved/out-of-order records as corruption.
        self._lock = threading.Lock()

    @property
    def path(self) -> Path:
        return self.directory / self.FILENAME

    # ------------------------------------------------------------ writing

    def append(self, kind: str, payload: dict) -> int:
        """Durably record one fact; returns its sequence number.

        Thread-safe: concurrent appends are serialised so sequence
        numbers are dense and lines never interleave.
        """
        if kind not in _KINDS:
            raise ValueError(f"kind must be one of {sorted(_KINDS)}, got {kind!r}")
        with self._lock:
            seq = self._next_seq
            record = {"seq": seq, "kind": kind, "payload": payload}
            record["checksum"] = json_checksum(
                {"seq": seq, "kind": kind, "payload": payload}
            )
            line = json.dumps(record, sort_keys=True) + "\n"
            self._fh.write(line.encode())
            self._fh.flush()
            if self.fsync:
                os.fsync(self._fh.fileno())
            self._next_seq += 1
            return seq

    def close(self) -> None:
        with self._lock:
            if not self._fh.closed:
                self._fh.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------ reading

    def replay(self) -> list[WalEntry]:
        """All validated entries, oldest first.

        A bad or truncated *final* line is the expected signature of a
        kill mid-append; it was dropped (with a :class:`UserWarning`) and
        truncated away when this handle was opened.  A bad line with
        valid records after it raises :class:`WalCorruption`.
        """
        entries, _, _ = self._scan()
        return entries

    def _scan(self) -> tuple[list[WalEntry], int, bool]:
        """(valid entries, byte length of the valid prefix, torn tail?)."""
        if not self.path.exists():
            return [], 0, False
        entries: list[WalEntry] = []
        good_bytes = 0
        raw_lines = self.path.read_bytes().split(b"\n")
        # A well-formed file ends in "\n", so the final split element is "".
        lines = raw_lines[:-1] if raw_lines and raw_lines[-1] == b"" else raw_lines
        for index, raw in enumerate(lines):
            entry = self._parse(raw, expected_seq=len(entries) + 1)
            if entry is None:
                if index == len(lines) - 1:
                    return entries, good_bytes, True
                raise WalCorruption(
                    f"{self.path} has a corrupt record at line {index + 1} "
                    "with valid records after it; refusing to replay"
                )
            entries.append(entry)
            good_bytes += len(raw) + 1  # + the newline
        return entries, good_bytes, False

    def _parse(self, raw: bytes, expected_seq: int) -> WalEntry | None:
        try:
            record = json.loads(raw)
        except (json.JSONDecodeError, UnicodeDecodeError):
            return None
        if not isinstance(record, dict):
            return None
        try:
            seq = int(record["seq"])
            kind = record["kind"]
            payload = record["payload"]
            checksum = record["checksum"]
        except (KeyError, TypeError, ValueError):
            return None
        if kind not in _KINDS or not isinstance(payload, dict):
            return None
        if checksum != json_checksum({"seq": seq, "kind": kind, "payload": payload}):
            return None
        if seq != expected_seq:
            return None
        return WalEntry(seq=seq, kind=kind, payload=payload)


def recover(service, wal: WriteAheadLog) -> RecoveryReport:
    """Rebuild ``service``'s registry from ``wal``; returns a report.

    The service must be fresh (no WAL attached yet — the caller attaches
    it *after* recovery so replayed ingests are not re-logged).  Runs
    whose log file has vanished are skipped and reported, not fatal:
    losing one file must not take down recovery of the rest.  Digest
    mismatches are fatal (:class:`RecoveryError`) — they mean the bytes
    behind an acknowledged prefix changed.
    """
    # Imported here: http imports service, wal must stay importable first.
    from repro.serve.http import hfl_validation_and_model

    if getattr(service, "wal", None) is not None:
        raise ValueError("recover() needs a service without an attached WAL")
    report = RecoveryReport(tail_dropped=wal.tail_dropped)
    # One wal.replay span covers the scan and every replayed record; it is
    # thread-local-active here, so the serve.ingest spans the replay loop
    # triggers all parent under it — recovery reads as a single trace.
    with service.obs.tracer.span("wal.replay", path=str(wal.path)) as replay_span:
        entries = wal.replay()
        replay_span.set_attribute("entries", len(entries))
        logs: dict[str, object] = {}
        for entry in entries:
            if entry.kind == REGISTER:
                spec = entry.payload
                run_id = spec.get("run_id")
                try:
                    if spec.get("kind") == "hfl":
                        log = load_training_log(spec["log_path"])
                        validation, model_factory = hfl_validation_and_model(
                            spec.get("dataset", "mnist"),
                            int(spec.get("seed", 0)),
                            spec.get("n_samples"),
                        )
                        service.register_hfl(
                            log.participant_ids,
                            validation,
                            model_factory,
                            run_id=run_id,
                            use_logged_weights=bool(
                                spec.get("use_logged_weights", False)
                            ),
                        )
                    else:
                        log = load_vfl_training_log(spec["log_path"])
                        service.register_vfl(
                            log.feature_blocks, log.active_parties, run_id=run_id
                        )
                except (FileNotFoundError, TrainingLogIntegrityError, KeyError) as exc:
                    report.runs_skipped.append(f"{run_id} ({exc})")
                    continue
                logs[run_id] = log
                report.runs_restored += 1
            else:  # INGEST
                run_id = entry.payload.get("run_id")
                log = logs.get(run_id)
                if log is None:
                    # Registered out-of-band (live publisher run) or its
                    # registration was skipped above — nothing to replay from.
                    report.epochs_skipped += 1
                    continue
                epoch_count = int(entry.payload["epoch"])
                if epoch_count > log.n_epochs:
                    raise RecoveryError(
                        f"WAL says run {run_id!r} ingested {epoch_count} epochs "
                        f"but its log file holds only {log.n_epochs}"
                    )
                record = log.records[epoch_count - 1]
                got = service.ingest(run_id, record, seq=epoch_count)
                if got != epoch_count:
                    raise RecoveryError(
                        f"replaying run {run_id!r} reached {got} epochs where the "
                        f"WAL expected {epoch_count}"
                    )
                rebuilt = service.run_digest(run_id)
                recorded = entry.payload.get("digest")
                if recorded is not None and rebuilt != recorded:
                    raise RecoveryError(
                        f"run {run_id!r} epoch {epoch_count}: rebuilt digest "
                        f"{rebuilt[:12]}… does not match the WAL's "
                        f"{recorded[:12]}… — the log file changed since the "
                        "crash; refusing to serve different numbers"
                    )
                report.epochs_replayed += 1
    return report
