"""Write-ahead log and crash recovery for the serving registry.

PR 2's `CheckpointManager` made *training* crash-safe; this module does
the same for *serving*.  A `repro serve` process accumulates state that
is expensive to lose — registered runs and the exact log prefix each one
has ingested — yet none of it was durable: a kill meant every client
re-registering from scratch.  The :class:`WriteAheadLog` records, before
the service acknowledges them, two kinds of facts:

* ``register`` — the ``POST /runs`` spec (kind, log path, dataset/seed,
  resolved run id): everything needed to rebuild the run's estimator;
* ``ingest`` — one record per ingested epoch carrying the run's
  incremental content digest *after* that epoch (the same
  :func:`repro.io.hash_arrays`-based :class:`~repro.serve.cache.RunDigest`
  the result cache keys on).

Each line is JSON stamped with a :func:`repro.io.json_checksum`, written
with ``flush + fsync`` so a SIGKILL can tear at most the final line.
:func:`replay` tolerates exactly that torn tail (dropped with a
warning); corruption *before* the tail raises :class:`WalCorruption` —
a mid-file flip means the history cannot be trusted.

:func:`recover` rebuilds an :class:`~repro.serve.service.EvaluationService`
from a WAL: it re-registers every spec, replays each run's saved ``.npz``
log **to the exact ingested epoch** recorded in the WAL, and verifies the
rebuilt digest against the recorded one epoch by epoch — so the recovered
service serves contributions bit-for-bit equal to an uninterrupted run of
the same prefix (``np.array_equal``; CI kills the server with SIGKILL
mid-ingest to prove it).  A digest mismatch means the log file changed
since the WAL was written and raises :class:`RecoveryError` rather than
silently serving different numbers.
"""

from __future__ import annotations

import json
import os
import threading
import warnings
from dataclasses import dataclass, field
from pathlib import Path

from repro.io import json_checksum

REGISTER = "register"
INGEST = "ingest"
_KINDS = frozenset({REGISTER, INGEST})


class WalCorruption(RuntimeError):
    """The WAL has a bad record *before* its final line; history is suspect."""


class RecoveryError(RuntimeError):
    """The WAL replayed, but the world no longer matches it.

    Typically: a training-log file referenced by a ``register`` record is
    missing epochs the WAL says were ingested, or its content digest no
    longer matches the recorded one.  Recovery refuses rather than serve
    numbers that differ from what the pre-crash service acknowledged.
    """


@dataclass(frozen=True)
class WalEntry:
    """One validated WAL record."""

    seq: int
    kind: str
    payload: dict

    def frame(self) -> dict:
        """The wire form of this entry: record dict *with* its checksum.

        ``GET /wal/stream`` responses and ``/control/adopt`` bodies carry
        frames so the receiving side re-verifies integrity end to end
        with :func:`validate_wal_record` — the checksum is a pure
        function of ``(seq, kind, payload)``, so rebuilding it here is
        byte-equivalent to what :meth:`WriteAheadLog.append` wrote.
        """
        return {
            "seq": self.seq,
            "kind": self.kind,
            "payload": self.payload,
            "checksum": json_checksum(
                {"seq": self.seq, "kind": self.kind, "payload": self.payload}
            ),
        }


def validate_wal_record(record: object, *, expected_seq: int | None = None) -> WalEntry | None:
    """Validate one parsed WAL record dict; ``None`` if it cannot be trusted.

    Shape, kind, and checksum are always enforced.  ``expected_seq`` adds
    the dense-sequence check a full-file scan needs; replication frames
    shipped as a per-run *subset* (the rebalance adopt path) legitimately
    have gaps, so they validate with ``expected_seq=None``.
    """
    if not isinstance(record, dict):
        return None
    try:
        seq = int(record["seq"])
        kind = record["kind"]
        payload = record["payload"]
        checksum = record["checksum"]
    except (KeyError, TypeError, ValueError):
        return None
    if kind not in _KINDS or not isinstance(payload, dict):
        return None
    if checksum != json_checksum({"seq": seq, "kind": kind, "payload": payload}):
        return None
    if expected_seq is not None and seq != expected_seq:
        return None
    return WalEntry(seq=seq, kind=kind, payload=payload)


def scan_wal(path: str | Path) -> tuple[list[WalEntry], int, bool]:
    """Scan a WAL file: (valid entries, bytes of valid prefix, torn tail?).

    Module-level (not a method) because *non-owning* readers need it too:
    the supervisor reads a dead primary's file during promotion catch-up
    and a source shard's file when shipping a run's WAL subset to its new
    owner — the file outlives the SIGKILLed process that wrote it.  A
    torn final line is tolerated (crash mid-append, or a concurrent
    appender mid-write); a bad line *before* the tail raises
    :class:`WalCorruption`.
    """
    path = Path(path)
    if not path.exists():
        return [], 0, False
    entries: list[WalEntry] = []
    good_bytes = 0
    raw_lines = path.read_bytes().split(b"\n")
    # A well-formed file ends in "\n", so the final split element is "".
    lines = raw_lines[:-1] if raw_lines and raw_lines[-1] == b"" else raw_lines
    for index, raw in enumerate(lines):
        try:
            record = json.loads(raw)
        except (json.JSONDecodeError, UnicodeDecodeError):
            record = None
        entry = validate_wal_record(record, expected_seq=len(entries) + 1)
        if entry is None:
            if index == len(lines) - 1:
                return entries, good_bytes, True
            raise WalCorruption(
                f"{path} has a corrupt record at line {index + 1} "
                "with valid records after it; refusing to replay"
            )
        entries.append(entry)
        good_bytes += len(raw) + 1  # + the newline
    return entries, good_bytes, False


@dataclass
class RecoveryReport:
    """What :func:`recover` rebuilt, and what it had to leave behind."""

    runs_restored: int = 0
    epochs_replayed: int = 0
    runs_skipped: list = field(default_factory=list)
    epochs_skipped: int = 0
    tail_dropped: bool = False

    def summary(self) -> str:
        line = (
            f"recovered {self.runs_restored} run(s), "
            f"{self.epochs_replayed} epoch(s) replayed"
        )
        if self.runs_skipped:
            line += f"; skipped runs: {', '.join(self.runs_skipped)}"
        if self.epochs_skipped:
            line += f"; {self.epochs_skipped} unreplayable epoch record(s)"
        if self.tail_dropped:
            line += "; torn tail record dropped"
        return line


class WriteAheadLog:
    """Append-only, fsync'd, checksummed record of registry mutations.

    One WAL file (``serve.wal`` inside ``directory``) serves one
    :class:`EvaluationService` process at a time.  Opening an existing
    file resumes its sequence numbers and truncates any torn tail, so
    append-after-recovery keeps the file replayable.  ``fsync=False``
    trades the per-record ``fsync`` for speed in benchmarks; the CLI
    always runs fsync'd.
    """

    FILENAME = "serve.wal"

    def __init__(self, directory: str | Path, *, fsync: bool = True) -> None:
        self.directory = Path(directory)
        self.fsync = fsync
        self.directory.mkdir(parents=True, exist_ok=True)
        entries, good_bytes, torn = self._scan()
        self._next_seq = (entries[-1].seq + 1) if entries else 1
        self.tail_dropped = torn
        if torn:
            warnings.warn(
                f"{self.path} ends in a torn record (crash mid-append); "
                "dropping the tail",
                UserWarning,
                stacklevel=2,
            )
            # Appending after a torn line would corrupt mid-file; cut it.
            with open(self.path, "rb+") as fh:
                fh.truncate(good_bytes)
        self._fh = open(self.path, "ab")
        # append() is called from many server threads at once (each HTTP
        # request is a thread; ingests lock per run, registrations not at
        # all) — seq allocation and the write+flush+fsync must be atomic
        # or replay() sees interleaved/out-of-order records as corruption.
        self._lock = threading.Lock()

    @property
    def path(self) -> Path:
        return self.directory / self.FILENAME

    @property
    def next_seq(self) -> int:
        """The sequence number the next :meth:`append` will get."""
        with self._lock:
            return self._next_seq

    # ------------------------------------------------------------ writing

    def append(self, kind: str, payload: dict) -> int:
        """Durably record one fact; returns its sequence number.

        Thread-safe: concurrent appends are serialised so sequence
        numbers are dense and lines never interleave.
        """
        if kind not in _KINDS:
            raise ValueError(f"kind must be one of {sorted(_KINDS)}, got {kind!r}")
        with self._lock:
            seq = self._next_seq
            record = {"seq": seq, "kind": kind, "payload": payload}
            record["checksum"] = json_checksum(
                {"seq": seq, "kind": kind, "payload": payload}
            )
            line = json.dumps(record, sort_keys=True) + "\n"
            self._fh.write(line.encode())
            self._fh.flush()
            if self.fsync:
                os.fsync(self._fh.fileno())
            self._next_seq += 1
            return seq

    def close(self) -> None:
        with self._lock:
            if not self._fh.closed:
                self._fh.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------ reading

    def replay(self) -> list[WalEntry]:
        """All validated entries, oldest first.

        A bad or truncated *final* line is the expected signature of a
        kill mid-append; it was dropped (with a :class:`UserWarning`) and
        truncated away when this handle was opened.  A bad line with
        valid records after it raises :class:`WalCorruption`.
        """
        entries, _, _ = self._scan()
        return entries

    def _scan(self) -> tuple[list[WalEntry], int, bool]:
        """(valid entries, byte length of the valid prefix, torn tail?)."""
        return scan_wal(self.path)

    def frames_from(self, from_seq: int, *, limit: int = 512) -> dict:
        """Validated frames with ``seq >= from_seq``, for ``GET /wal/stream``.

        Returns ``{"frames": [...], "next_seq": n, "end_seq": m}`` where
        ``next_seq`` is what the follower should ask for next and
        ``end_seq`` is the highest durable sequence in the file right now
        (0 when empty) — their difference is the follower's replication
        lag.  Re-reads the file rather than holding state: the append
        handle and lock stay untouched, so streaming never slows writes.
        A torn final line (a concurrent append caught mid-write) is
        simply not served yet.
        """
        if from_seq < 1:
            raise ValueError(f"from_seq must be >= 1, got {from_seq}")
        if limit < 1:
            raise ValueError(f"limit must be >= 1, got {limit}")
        entries, _, _ = scan_wal(self.path)
        end_seq = entries[-1].seq if entries else 0
        window = [e for e in entries if e.seq >= from_seq][:limit]
        next_seq = (window[-1].seq + 1) if window else max(from_seq, end_seq + 1)
        return {
            "frames": [e.frame() for e in window],
            "next_seq": next_seq,
            "end_seq": end_seq,
        }


def recover(service, wal: WriteAheadLog, *, applier=None) -> RecoveryReport:
    """Rebuild ``service``'s registry from ``wal``; returns a report.

    The service must be fresh (no WAL attached yet — the caller attaches
    it *after* recovery so replayed ingests are not re-logged).  Runs
    whose log file has vanished are skipped and reported, not fatal:
    losing one file must not take down recovery of the rest.  Digest
    mismatches are fatal (:class:`RecoveryError`) — they mean the bytes
    behind an acknowledged prefix changed.

    ``applier`` lets a cluster worker pass the
    :class:`~repro.serve.replication.WalApplier` it will keep using for
    streaming replication / adoption, so recovery warms the applier's
    run-spec cache — a restarted standby can then apply fresh ingest
    frames for runs it recovered locally.
    """
    # Imported here: replication imports this module; recover is the only
    # hop back, so the lazy import keeps both importable in either order.
    from repro.serve.replication import WalApplier

    if getattr(service, "wal", None) is not None:
        raise ValueError("recover() needs a service without an attached WAL")
    report = RecoveryReport(tail_dropped=wal.tail_dropped)
    # One wal.replay span covers the scan and every replayed record; it is
    # thread-local-active here, so the serve.ingest spans the replay loop
    # triggers all parent under it — recovery reads as a single trace.
    with service.obs.tracer.span("wal.replay", path=str(wal.path)) as replay_span:
        entries = wal.replay()
        replay_span.set_attribute("entries", len(entries))
        if applier is None:
            applier = WalApplier(service)
        for entry in entries:
            applier.apply(entry)
    report.runs_restored = applier.runs_restored
    report.epochs_replayed = applier.epochs_replayed
    report.runs_skipped = list(applier.runs_skipped)
    report.epochs_skipped = applier.epochs_skipped
    return report
