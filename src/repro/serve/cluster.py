"""Sharded multi-process serving: consistent-hash routing + WAL failover.

One :class:`~repro.serve.service.EvaluationService` process tops out at
its GIL: concurrent leaderboard queries and streaming ingests contend on
one interpreter no matter how many threads the pool holds.  This module
scales the serving layer *out* instead of up, stdlib-only:

* :class:`ClusterSupervisor` spawns N worker processes
  (``multiprocessing`` + the existing
  :class:`~repro.serve.http.EvaluationHTTPServer` in each), every worker
  owning a :class:`~repro.serve.ring.HashRing` shard of the run-id space
  and its *own* :class:`~repro.serve.wal.WriteAheadLog` directory.
* :class:`ClusterRouter` is a thin HTTP front: it maps ``run_id →
  shard`` on the ring and proxies the request, carrying the trace across
  the hop (:func:`repro.obs.trace.context_headers`) so one client
  request is one trace across two processes.  Cluster ``/healthz`` and
  ``/metricz`` aggregate every worker — the Prometheus view folds all
  per-worker registry snapshots into one via
  :meth:`~repro.obs.registry.MetricsRegistry.merge`, labelled
  ``worker="0" … worker="router"``.
* Failure is typed, never a bare 500.  A downed or unreachable shard
  answers 503 with ``Retry-After`` (the expected respawn time); a proxy
  read that overruns its budget answers 504; worker-side 429/503/504
  pass through untouched.  The router's per-shard
  :class:`~repro.serve.resilience.CircuitBreaker` stops it hammering a
  dead port between probes.
* The supervisor's monitor thread detects worker death
  (``Process.is_alive`` + ``/healthz`` probes through the same
  breakers), respawns the shard on its old port, and the replacement
  replays its WAL — :func:`repro.serve.wal.recover` guarantees the
  revived shard serves contributions bit-identical to an uninterrupted
  run of the same prefix.  ``tests/test_cluster_chaos.py`` SIGKILLs a
  worker mid-ingest to hold the cluster to exactly that.

Run it with ``python -m repro.cli serve --cluster 3 --router-port 8733``;
``benchmarks/bench_cluster.py`` measures the single-process-vs-sharded
throughput gap this module exists for.
"""

from __future__ import annotations

import dataclasses
import itertools
import json
import multiprocessing
import re
import signal
import socket
import tempfile
import threading
import time
from dataclasses import dataclass
from http.client import HTTPConnection, HTTPException
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Hashable, Mapping
from urllib.parse import parse_qs, urlparse

from repro.metrics.cost import Gauge, LatencyHistogram
from repro.obs import Observability
from repro.obs.registry import PROMETHEUS_CONTENT_TYPE, MetricsRegistry
from repro.obs.trace import context_headers
from repro.serve.http import (
    _RUN_ENDPOINTS,
    DEFAULT_ROBUSTNESS_FILE,
    ApiError,
    RawResponse,
    RequestTelemetry,
    load_robustness,
    read_json_body,
)
from repro.serve.resilience import Backoff, CircuitBreaker
from repro.serve.ring import HashRing
from repro.serve.wal import REGISTER, WriteAheadLog, scan_wal


class ShardUnavailable(RuntimeError):
    """A shard is down or unreachable; retry after ``retry_after_s``."""

    def __init__(self, shard, reason: str, retry_after_s: float) -> None:
        super().__init__(
            f"shard {shard} is unavailable ({reason}); "
            f"retry in {retry_after_s:.0f}s"
        )
        self.shard = shard
        self.retry_after_s = retry_after_s


class ShardTimeout(RuntimeError):
    """A proxied request to a live shard overran the router's budget."""

    def __init__(self, shard, timeout_s: float) -> None:
        super().__init__(
            f"shard {shard} did not answer within {timeout_s:.1f}s"
        )
        self.shard = shard
        self.timeout_s = timeout_s


# --------------------------------------------------------------------- workers


@dataclass(frozen=True)
class WorkerSpec:
    """Everything one shard worker needs; picklable for ``spawn``.

    A respawned replacement is started from the *same* spec — same port,
    same WAL directory — which is what makes failover transparent to the
    ring: the shard's identity is its spec, not its pid.
    """

    shard: int
    host: str
    port: int
    wal_dir: str
    cache_bytes: int = 64 * 1024 * 1024
    max_workers: int = 4
    query_deadline_ms: float | None = None
    admission_limit: int | None = None
    breaker_failures: int = 3
    breaker_reset_s: float = 30.0
    chaos_ingest_ms: float = 0.0
    trace: bool = False
    verbose: bool = False
    # Ring epoch the worker boots fenced at (see _check_ring_epoch).
    ring_epoch: int = 0
    # None → primary.  (host, port, wal_dir) of a primary → this worker
    # is that primary's warm standby: it tails the primary's WAL over
    # /wal/stream and applies every record to its own live service, so
    # promotion costs only the replication lag.  wal_dir is kept for the
    # final catch-up read of the (dead) primary's WAL *file*.
    follow: tuple[str, int, str] | None = None
    follow_poll_s: float = 0.05
    # Scenario-matrix verdict file served by GET /robustness (None →
    # the worker's default, BENCH_scenarios.json in the cwd).
    robustness_file: str | None = None


def _worker_main(spec: WorkerSpec) -> None:
    """Entry point of one shard process (top-level: ``spawn`` pickles it).

    Boot order matters: recover from the shard's WAL *before* attaching
    it (so replayed ingests are not re-logged), then serve.  SIGTERM is
    the supervisor's clean-shutdown signal; SIGKILL is what the chaos
    harness throws, and the WAL is the only thing that survives it.
    """
    import signal

    from repro.serve.http import EvaluationHTTPServer
    from repro.serve.replication import WalApplier, WalFollower, WorkerController
    from repro.serve.service import EvaluationService
    from repro.serve.wal import recover

    def _terminate(signum, frame):
        raise SystemExit(0)

    signal.signal(signal.SIGTERM, _terminate)
    obs = Observability(
        trace=spec.trace,
        # Disjoint id blocks per shard: merged trace exports from several
        # workers (and the router, which keeps the small default ids)
        # must never collide on span ids within one propagated trace.
        id_source=itertools.count((spec.shard + 1) * 2**48 + 1).__next__,
    )
    service = EvaluationService(
        cache_bytes=spec.cache_bytes,
        max_workers=spec.max_workers,
        query_deadline_ms=spec.query_deadline_ms,
        admission_limit=spec.admission_limit,
        breaker_failures=spec.breaker_failures,
        breaker_reset_s=spec.breaker_reset_s,
        obs=obs,
    )
    if spec.chaos_ingest_ms:
        # Chaos hook (mirrors repro.cli serve --chaos-ingest-ms): slow
        # each epoch ingest so a SIGKILL reliably lands mid-ingest.
        from repro.serve.service import EvaluationService as _ES

        _orig_ingest = _ES.ingest

        def _slow_ingest(self, run_id, record, *, seq=None):
            time.sleep(spec.chaos_ingest_ms / 1e3)
            return _orig_ingest(self, run_id, record, seq=seq)

        service.ingest = _slow_ingest.__get__(service, _ES)
    wal = WriteAheadLog(spec.wal_dir)
    # One applier per worker, shared by boot recovery, the streaming
    # follower (standbys) and /control/adopt (all roles — rebalance
    # ships runs to primaries too).  Recovery warms its run-spec cache;
    # once the WAL is attached, everything it applies is re-logged.
    applier = WalApplier(service)
    report = recover(service, wal, applier=applier)
    service.attach_wal(wal)
    if spec.verbose or report.runs_restored:
        print(f"[shard {spec.shard}] recovery: {report.summary()}", flush=True)
    server = EvaluationHTTPServer(
        (spec.host, spec.port),
        service,
        verbose=spec.verbose,
        robustness_file=spec.robustness_file,
    )
    server.ring_epoch = spec.ring_epoch
    follower = None
    if spec.follow is not None:
        primary_host, primary_port, primary_wal_dir = spec.follow
        follower = WalFollower(
            applier,
            primary_host,
            primary_port,
            primary_wal_dir=primary_wal_dir,
            # Resume from our own WAL length: every applied record was
            # re-logged, so this is a safe (at worst conservative) bound
            # on the primary sequence already absorbed.
            start_seq=wal.next_seq,
            poll_s=spec.follow_poll_s,
            registry=service.obs.registry,
        )
        follower.start()
    server.controller = WorkerController(server, service, applier, follower=follower)
    try:
        server.serve_forever()
    except (KeyboardInterrupt, SystemExit):
        pass
    finally:
        if follower is not None:
            follower.stop()
        server.server_close()
        service.close()
        wal.close()


def _free_port(host: str) -> int:
    """An OS-assigned free TCP port (bound briefly, then released)."""
    with socket.socket() as sock:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((host, 0))
        return sock.getsockname()[1]


def _http_get_json(
    host: str, port: int, path: str, timeout_s: float
) -> tuple[int, dict]:
    """One GET against a worker, JSON-decoded (probes and readiness)."""
    conn = HTTPConnection(host, port, timeout=timeout_s)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        body = response.read()
    finally:
        conn.close()
    return response.status, json.loads(body)


def _http_post_json(
    host: str, port: int, path: str, payload: dict, timeout_s: float
) -> tuple[int, dict]:
    """One JSON POST against a worker (the supervisor's control plane)."""
    conn = HTTPConnection(host, port, timeout=timeout_s)
    try:
        body = json.dumps(payload).encode()
        conn.request(
            "POST", path, body=body, headers={"Content-Type": "application/json"}
        )
        response = conn.getresponse()
        data = response.read()
    finally:
        conn.close()
    return response.status, json.loads(data)


# -------------------------------------------------------------------- topology


class StaticTopology:
    """A fixed routing table over already-running workers.

    The router only needs four things from its topology — the ring, an
    address per shard, a circuit breaker per shard, and a failure hint —
    so tests (and embeddings that manage worker processes themselves)
    can hand it this instead of a full :class:`ClusterSupervisor`.
    """

    def __init__(
        self,
        workers: Mapping[Hashable, tuple[str, int]],
        *,
        replicas: int = 64,
        breaker_failures: int = 2,
        breaker_reset_s: float = 1.0,
        retry_after_hint_s: float = 1.0,
    ) -> None:
        if not workers:
            raise ValueError("a topology needs at least one worker")
        self.ring = HashRing(workers, replicas=replicas)
        self._addresses = {
            shard: (str(host), int(port))
            for shard, (host, port) in workers.items()
        }
        self._breakers = {
            shard: CircuitBreaker(breaker_failures, breaker_reset_s)
            for shard in workers
        }
        self.retry_after_hint_s = retry_after_hint_s
        self.ring_epoch = 0

    def address(self, shard) -> tuple[str, int]:
        return self._addresses[shard]

    def breaker(self, shard) -> CircuitBreaker:
        return self._breakers[shard]

    def notify_failure(self, shard) -> None:
        """No supervisor behind this topology; nothing to wake."""

    def retry_after_s(self, shard) -> float:
        return self.retry_after_hint_s

    def dual_target(self, key: str):
        """No rebalance machinery here; writes never need a second copy."""
        return None

    def describe(self) -> dict:
        return {
            "replicas": self.ring.replicas,
            "supervised": False,
            "ring_epoch": self.ring_epoch,
            "shards": {
                str(shard): {
                    "address": list(self._addresses[shard]),
                    "breaker": self._breakers[shard].stats(),
                }
                for shard in sorted(self._addresses, key=str)
            },
        }


class ClusterSupervisor:
    """Owns N shard worker processes: spawn, probe, respawn, stop.

    The monitor thread wakes every ``probe_interval_s`` (or immediately,
    when the router reports a proxy failure through
    :meth:`notify_failure`) and walks the shards: a dead process is
    respawned from its spec — the replacement replays the shard's WAL,
    so the revived shard answers bit-identically for every acknowledged
    epoch; a live process that fails enough ``/healthz`` probes to open
    its breaker is presumed wedged, killed, and respawned the same way.
    The per-shard breakers are *shared* with the router: proxy failures
    and probe failures count against the same threshold, and a breaker
    that opens both stops the router hammering the port and triggers the
    monitor's replacement path.
    """

    def __init__(
        self,
        n_shards: int,
        *,
        wal_root: str | Path,
        host: str = "127.0.0.1",
        worker_ports: list[int] | None = None,
        replicas: int = 64,
        standby_replicas: int = 0,
        cache_bytes: int = 64 * 1024 * 1024,
        max_workers: int = 4,
        query_deadline_ms: float | None = None,
        admission_limit: int | None = None,
        breaker_failures: int = 3,
        breaker_reset_s: float = 30.0,
        chaos_ingest_ms: float = 0.0,
        trace: bool = False,
        probe_interval_s: float = 0.5,
        probe_timeout_s: float = 2.0,
        probe_failures: int = 2,
        probe_reset_s: float = 2.0,
        ready_timeout_s: float = 60.0,
        max_respawns: int = 20,
        retry_after_hint_s: float = 3.0,
        respawn_backoff_base_s: float = 0.5,
        respawn_backoff_cap_s: float = 30.0,
        backoff_stability_s: float = 5.0,
        backoff_seed: int = 0,
        follow_poll_s: float = 0.05,
        robustness_file: str | None = None,
        verbose: bool = False,
    ) -> None:
        if n_shards <= 0:
            raise ValueError(f"n_shards must be positive, got {n_shards}")
        if standby_replicas not in (0, 1):
            raise ValueError(
                f"standby_replicas must be 0 or 1, got {standby_replicas}"
            )
        if worker_ports is not None and len(worker_ports) != n_shards:
            raise ValueError(
                f"worker_ports has {len(worker_ports)} entries "
                f"for {n_shards} shards"
            )
        # spawn, not fork: the supervisor runs threads (monitor, router
        # handlers) and a forked child inheriting their locked locks
        # mid-operation can deadlock before it ever reaches exec.
        self._ctx = multiprocessing.get_context("spawn")
        self.ring = HashRing(range(n_shards), replicas=replicas)
        self.ring_epoch = 0
        self.standby_replicas = standby_replicas
        self.probe_interval_s = probe_interval_s
        self.probe_timeout_s = probe_timeout_s
        self.ready_timeout_s = ready_timeout_s
        self.max_respawns = max_respawns
        self.retry_after_hint_s = retry_after_hint_s
        self.follow_poll_s = follow_poll_s
        self.robustness_file = robustness_file
        self.verbose = verbose
        self._wal_root = Path(wal_root)
        self._host = host
        self._spec_defaults = dict(
            cache_bytes=cache_bytes,
            max_workers=max_workers,
            query_deadline_ms=query_deadline_ms,
            admission_limit=admission_limit,
            breaker_failures=breaker_failures,
            breaker_reset_s=breaker_reset_s,
            chaos_ingest_ms=chaos_ingest_ms,
            trace=trace,
            robustness_file=robustness_file,
            verbose=verbose,
        )
        self._probe_failures = probe_failures
        self._probe_reset_s = probe_reset_s
        self._backoff_base_s = respawn_backoff_base_s
        self._backoff_cap_s = respawn_backoff_cap_s
        self.backoff_stability_s = backoff_stability_s
        self._backoff_seed = backoff_seed
        self.specs: dict[int, WorkerSpec] = {}
        for shard in range(n_shards):
            port = (
                worker_ports[shard]
                if worker_ports is not None
                else _free_port(host)
            )
            self.specs[shard] = self._make_spec(
                shard, port, str(self._wal_root / f"shard-{shard}")
            )
        self._procs: dict[int, multiprocessing.process.BaseProcess] = {}
        self._breakers: dict[int, CircuitBreaker] = {}
        self._backoffs: dict[int, Backoff] = {}
        self._respawned_at: dict[int, float] = {}
        self.respawns: dict[int, int] = {}
        for shard in self.specs:
            self._init_shard_state(shard)
        # Standby bookkeeping: spec + proc per shard, and a generation
        # counter so each standby incarnation gets a fresh WAL directory
        # (a promoted standby keeps its own; its replacement must not
        # inherit it).
        self._standby_specs: dict[int, WorkerSpec] = {}
        self._standby_procs: dict[int, multiprocessing.process.BaseProcess] = {}
        self._standby_backoffs: dict[int, Backoff] = {}
        self._standby_generation: dict[int, int] = {}
        self._standby_spawned_at: dict[int, float] = {}
        self.promotions: dict[int, int] = {shard: 0 for shard in self.specs}
        # Online-rebalance state: one resize at a time; while one is in
        # flight, _pending_ring drives dual-writes (router asks
        # dual_target per key) and _rebalance is what /cluster reports.
        self._resize_lock = threading.Lock()
        self._pending_ring: HashRing | None = None
        self._rebalance: dict | None = None
        self._stop = threading.Event()
        self._wake = threading.Event()
        self._monitor: threading.Thread | None = None

    def _make_spec(
        self,
        shard: int,
        port: int,
        wal_dir: str,
        *,
        follow: tuple[str, int, str] | None = None,
    ) -> WorkerSpec:
        return WorkerSpec(
            shard=shard,
            host=self._host,
            port=port,
            wal_dir=wal_dir,
            ring_epoch=self.ring_epoch,
            follow=follow,
            follow_poll_s=self.follow_poll_s,
            **self._spec_defaults,
        )

    def _init_shard_state(self, shard: int) -> None:
        self._breakers[shard] = CircuitBreaker(
            self._probe_failures, self._probe_reset_s
        )
        self._backoffs[shard] = Backoff(
            self._backoff_base_s,
            self._backoff_cap_s,
            seed=self._backoff_seed + shard,
        )
        self.respawns[shard] = 0

    # ---------------------------------------------------------- lifecycle

    def start(self) -> "ClusterSupervisor":
        """Spawn every worker, wait for readiness, start the monitor."""
        for shard in self.specs:
            self._procs[shard] = self._spawn(shard)
        deadline = time.monotonic() + self.ready_timeout_s
        for shard in self.specs:
            self._wait_ready(shard, deadline)
        if self.standby_replicas:
            for shard in list(self.specs):
                self._spawn_standby(shard)
            deadline = time.monotonic() + self.ready_timeout_s
            for shard in list(self._standby_specs):
                self._wait_standby_ready(shard, deadline)
        self._monitor = threading.Thread(
            target=self._monitor_loop,
            daemon=True,
            name="repro-cluster-monitor",
        )
        self._monitor.start()
        return self

    def stop(self) -> None:
        """Terminate the monitor and every worker; idempotent."""
        self._stop.set()
        self._wake.set()
        if self._monitor is not None:
            self._monitor.join(timeout=10)
        procs = list(self._procs.values()) + list(self._standby_procs.values())
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
        for proc in procs:
            proc.join(timeout=10)
            if proc.is_alive():  # pragma: no cover - stuck-worker backstop
                proc.kill()
                proc.join(timeout=5)

    def __enter__(self) -> "ClusterSupervisor":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    def _spawn(self, shard: int):
        # Respawns inherit the *current* ring epoch, not the boot one —
        # a worker reborn mid-rebalance must come up already fenced.
        self.specs[shard] = dataclasses.replace(
            self.specs[shard], ring_epoch=self.ring_epoch
        )
        proc = self._ctx.Process(
            target=_worker_main,
            args=(self.specs[shard],),
            name=f"repro-shard-{shard}",
            daemon=True,
        )
        proc.start()
        return proc

    def _wait_ready(self, shard: int, deadline: float) -> None:
        spec = self.specs[shard]
        while True:
            proc = self._procs[shard]
            if not proc.is_alive() and proc.exitcode is not None:
                raise RuntimeError(
                    f"shard {shard} died during startup "
                    f"(exit code {proc.exitcode})"
                )
            if self._probe(shard):
                return
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"shard {shard} not ready on "
                    f"{spec.host}:{spec.port} within {self.ready_timeout_s}s"
                )
            time.sleep(0.05)

    # ----------------------------------------------------------- standbys

    def _spawn_standby(self, shard: int) -> None:
        """Start a fresh warm standby tailing ``shard``'s primary."""
        primary = self.specs[shard]
        generation = self._standby_generation.get(shard, 0) + 1
        self._standby_generation[shard] = generation
        spec = self._make_spec(
            shard,
            _free_port(self._host),
            str(self._wal_root / f"shard-{shard}-standby-g{generation}"),
            follow=(primary.host, primary.port, primary.wal_dir),
        )
        self._standby_specs[shard] = spec
        self._standby_spawned_at[shard] = time.monotonic()
        self._standby_backoffs.setdefault(
            shard,
            Backoff(
                self._backoff_base_s,
                self._backoff_cap_s,
                seed=self._backoff_seed + 10_000 + shard,
            ),
        )
        proc = self._ctx.Process(
            target=_worker_main,
            args=(spec,),
            name=f"repro-shard-{shard}-standby",
            daemon=True,
        )
        proc.start()
        self._standby_procs[shard] = proc

    def _wait_standby_ready(self, shard: int, deadline: float) -> None:
        spec = self._standby_specs[shard]
        while True:
            if self._probe_addr(spec.host, spec.port):
                return
            proc = self._standby_procs[shard]
            if not proc.is_alive() and proc.exitcode is not None:
                raise RuntimeError(
                    f"standby for shard {shard} died during startup "
                    f"(exit code {proc.exitcode})"
                )
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"standby for shard {shard} not ready on "
                    f"{spec.host}:{spec.port} within {self.ready_timeout_s}s"
                )
            time.sleep(0.05)

    def _try_promote(self, shard: int, *, reason: str) -> bool:
        """Promote ``shard``'s standby to primary; ``False`` → cold respawn.

        On success the standby's address *becomes* the shard's address
        (the router routes by spec, not pid), its final catch-up drains
        straight from the dead primary's WAL file, and a replacement
        standby is spawned behind the new primary.
        """
        spec = self._standby_specs.get(shard)
        proc = self._standby_procs.get(shard)
        if spec is None or proc is None or not proc.is_alive():
            return False
        old_primary = self.specs[shard]
        try:
            status, body = _http_post_json(
                spec.host,
                spec.port,
                "/control/promote",
                {"primary_wal_dir": old_primary.wal_dir},
                max(self.probe_timeout_s * 5, 10.0),
            )
        except (OSError, HTTPException, ValueError):
            return False
        if status != 200:
            if self.verbose:
                print(
                    f"[cluster] standby for shard {shard} refused promotion "
                    f"({status}: {body.get('error')}); falling back to respawn",
                    flush=True,
                )
            return False
        self.promotions[shard] += 1
        del self._standby_specs[shard]
        del self._standby_procs[shard]
        # The promoted worker sheds its follow role and is the shard now.
        self.specs[shard] = dataclasses.replace(
            spec, follow=None, ring_epoch=self.ring_epoch
        )
        self._procs[shard] = proc
        self._breakers[shard].record_success()
        self._backoffs[shard].reset()
        if self.verbose:
            print(
                f"[cluster] promoted standby to shard {shard} ({reason}; "
                f"caught up {body.get('drained', 0)} record(s) from the "
                "primary's WAL file)",
                flush=True,
            )
        if self.standby_replicas and not self._stop.is_set():
            # New warm standby behind the promoted primary; the monitor
            # confirms its readiness on later ticks.
            self._spawn_standby(shard)
        return True

    # ---------------------------------------------------------- monitoring

    def _probe_addr(self, host: str, port: int) -> bool:
        try:
            status, _ = _http_get_json(
                host, port, "/healthz", self.probe_timeout_s
            )
        except (OSError, HTTPException, ValueError):
            return False
        return status == 200

    def _probe(self, shard: int) -> bool:
        spec = self.specs[shard]
        return self._probe_addr(spec.host, spec.port)

    def _monitor_loop(self) -> None:
        while not self._stop.is_set():
            self._wake.wait(self.probe_interval_s)
            self._wake.clear()
            if self._stop.is_set():
                return
            for shard in list(self.specs):
                if self._stop.is_set():
                    return
                proc = self._procs.get(shard)
                if proc is None:
                    continue  # retired mid-iteration by a resize
                if not proc.is_alive():
                    reason = f"process exited ({proc.exitcode})"
                    if not self._try_promote(shard, reason=reason):
                        self._respawn(shard, reason=reason)
                    continue
                breaker = self._breakers[shard]
                if not breaker.allow():
                    continue  # open, not yet probe time: skip this tick
                if self._probe(shard):
                    breaker.record_success()
                    self._maybe_reset_backoff(shard)
                else:
                    breaker.record_failure()
                    if breaker.state == CircuitBreaker.OPEN:
                        # Alive but failing probes past the threshold:
                        # wedged.  Replace it like a death.
                        proc.kill()
                        proc.join(timeout=10)
                        reason = "unresponsive (breaker open)"
                        if not self._try_promote(shard, reason=reason):
                            self._respawn(shard, reason=reason)
            for shard in list(self._standby_specs):
                if self._stop.is_set():
                    return
                proc = self._standby_procs.get(shard)
                if proc is None:
                    continue
                backoff = self._standby_backoffs[shard]
                if proc.is_alive():
                    spawned_at = self._standby_spawned_at.get(shard, 0.0)
                    if (
                        backoff.attempts
                        and time.monotonic() - spawned_at
                        >= self.backoff_stability_s
                    ):
                        backoff.reset()
                elif backoff.ready():
                    backoff.record_failure()
                    if self.verbose:
                        print(
                            f"[cluster] respawning standby for shard "
                            f"{shard} (exit {proc.exitcode})",
                            flush=True,
                        )
                    self._spawn_standby(shard)

    def _maybe_reset_backoff(self, shard: int) -> None:
        backoff = self._backoffs[shard]
        if backoff.attempts == 0:
            return
        respawned_at = self._respawned_at.get(shard)
        if (
            respawned_at is None
            or time.monotonic() - respawned_at >= self.backoff_stability_s
        ):
            backoff.reset()

    def _respawn(self, shard: int, *, reason: str) -> None:
        if self._stop.is_set():
            return
        if self.respawns[shard] >= self.max_respawns:
            return  # crash loop: leave it down, the router serves 503s
        backoff = self._backoffs[shard]
        if not backoff.ready():
            return  # crash-looping: the armed delay gates this tick
        self.respawns[shard] += 1
        # Arm the delay before the *next* attempt now; a healthy worker
        # resets it after backoff_stability_s of good probes, so only a
        # true crash loop ever waits the exponential schedule out.
        backoff.record_failure()
        self._respawned_at[shard] = time.monotonic()
        if self.verbose:
            print(
                f"[cluster] respawning shard {shard} "
                f"({reason}; attempt {self.respawns[shard]})",
                flush=True,
            )
        self._procs[shard] = self._spawn(shard)
        try:
            self._wait_ready(shard, time.monotonic() + self.ready_timeout_s)
        except (RuntimeError, TimeoutError):
            # Died again before becoming ready; the next tick retries.
            self._breakers[shard].record_failure()
            return
        self._breakers[shard].record_success()

    # ------------------------------------------------- topology interface

    def address(self, shard) -> tuple[str, int]:
        spec = self.specs[shard]
        return (spec.host, spec.port)

    def breaker(self, shard) -> CircuitBreaker:
        return self._breakers[shard]

    def notify_failure(self, shard) -> None:
        """Router hint: a proxy to ``shard`` just failed — probe now."""
        self._wake.set()

    def retry_after_s(self, shard) -> float:
        return self.retry_after_hint_s

    def dual_target(self, key: str):
        """The shard a write must *also* land on during a rebalance.

        ``None`` outside a handoff window, or when the pending ring
        agrees with the live one for ``key``.  Computed live against the
        pending ring (not the precomputed move set) so runs *created
        during* the window are dual-written too — otherwise a run minted
        mid-rebalance could become unreachable after the epoch flip.
        """
        pending = self._pending_ring
        if pending is None:
            return None
        dest = pending.shard_for(key)
        if dest == self.ring.shard_for(key):
            return None
        return dest

    def describe(self) -> dict:
        shards = {}
        for shard, spec in self.specs.items():
            proc = self._procs.get(shard)
            entry = {
                "address": [spec.host, spec.port],
                "wal_dir": spec.wal_dir,
                "pid": proc.pid if proc is not None else None,
                "alive": proc.is_alive() if proc is not None else False,
                "breaker": self._breakers[shard].stats(),
                "respawns": self.respawns[shard],
                "respawn_backoff_s": round(
                    self._backoffs[shard].remaining_s(), 3
                ),
                "promotions": self.promotions.get(shard, 0),
            }
            standby_spec = self._standby_specs.get(shard)
            if standby_spec is not None:
                standby_proc = self._standby_procs.get(shard)
                entry["standby"] = {
                    "address": [standby_spec.host, standby_spec.port],
                    "wal_dir": standby_spec.wal_dir,
                    "pid": standby_proc.pid if standby_proc is not None else None,
                    "alive": (
                        standby_proc.is_alive()
                        if standby_proc is not None
                        else False
                    ),
                    "generation": self._standby_generation.get(shard, 0),
                }
            shards[str(shard)] = entry
        rebalance = self._rebalance
        return {
            "replicas": self.ring.replicas,
            "supervised": True,
            "ring_epoch": self.ring_epoch,
            "standby_replicas": self.standby_replicas,
            "rebalance": dict(rebalance) if rebalance is not None else None,
            "shards": shards,
        }

    # ------------------------------------------------------------ rebalance

    def resize(self, n_target: int) -> dict:
        """Online-resize the cluster to ``n_target`` shards; zero downtime.

        The protocol (one resize at a time; a concurrent call gets a
        typed 409):

        1. **Grow**: spawn the added shards (and their standbys) and
           wait until they answer ``/healthz`` — the live ring is
           untouched, so traffic is unaffected.
        2. **Plan**: collect every registered run id from the current
           owners' WAL *files* (death-proof: a SIGKILLed source's runs
           still move) and compute the exact move set with
           :meth:`HashRing.plan_resize`.
        3. **Dual-write window**: the router starts copying every
           accepted write whose key moves (computed live against the
           pending ring) to its future owner as well.
        4. **Migrate**: ship each moving run's WAL subset (register +
           ingests, checksummed frames) to its new owner via
           ``/control/adopt`` — idempotent and digest-verified, with
           retries riding out a worker death mid-migration.
        5. **Flip**: swap the live ring, bump ``ring_epoch``, broadcast
           it to every worker (stale-epoch writes now 409), close the
           dual-write window.
        6. **Shrink**: terminate shards no longer on the ring.
        """
        if n_target <= 0:
            raise ValueError(f"shard count must be positive, got {n_target}")
        if not self._resize_lock.acquire(blocking=False):
            raise ApiError(409, "a rebalance is already in progress")
        try:
            return self._resize_locked(n_target)
        finally:
            self._pending_ring = None
            self._rebalance = None
            self._resize_lock.release()

    def _resize_locked(self, n_target: int) -> dict:
        current = sorted(self.specs)
        n_current = len(current)
        if n_target == n_current:
            return {
                "ring_epoch": self.ring_epoch,
                "from": n_current,
                "to": n_target,
                "moved": 0,
                "runs_moved": [],
            }
        added = [s for s in range(n_target) if s not in self.specs]
        removed = [s for s in current if s >= n_target]
        self._rebalance = {
            "phase": "spawning",
            "from": n_current,
            "to": n_target,
            "moved": 0,
            "total": None,
        }
        for shard in added:
            self.specs[shard] = self._make_spec(
                shard,
                _free_port(self._host),
                str(self._wal_root / f"shard-{shard}"),
            )
            self._init_shard_state(shard)
            self.promotions.setdefault(shard, 0)
            self._procs[shard] = self._spawn(shard)
        deadline = time.monotonic() + self.ready_timeout_s
        for shard in added:
            self._wait_ready(shard, deadline)
        if self.standby_replicas:
            for shard in added:
                self._spawn_standby(shard)
        # Open the dual-write window *before* scanning for keys: a run
        # registered concurrently is then either in the scan (and gets
        # migrated) or was dual-written to its future owner already —
        # opening after the scan would leave a gap where it is neither.
        self._pending_ring = HashRing(
            range(n_target), replicas=self.ring.replicas
        )
        keys: list[str] = []
        for shard in current:
            entries, _, _ = scan_wal(
                Path(self.specs[shard].wal_dir) / WriteAheadLog.FILENAME
            )
            keys.extend(
                str(entry.payload["run_id"])
                for entry in entries
                if entry.kind == REGISTER and entry.payload.get("run_id")
            )
        plan = self.ring.plan_resize(range(n_target), keys)
        # Only ship runs whose *current ring owner* is the scan source —
        # a run that migrated in an earlier resize still sits in its old
        # owner's WAL file, but the ring no longer maps it there.
        self._rebalance.update(phase="migrating", total=len(plan.moves))
        try:
            for key in sorted(plan.moves):
                source, dest = plan.moves[key]
                self._migrate_run(key, source, dest)
                self._rebalance["moved"] += 1
            # Flip order matters: new ring first (reads route to owners
            # that now hold the data), then the epoch fence, and only
            # then the dual-write window closes — a write routed by the
            # old ring in flight during the flip either lands before the
            # fence (dual-written, so both owners have it) or answers a
            # typed 409 the router retries against the fresh ring.
            self.ring = plan.new_ring
            self.ring_epoch += 1
            self._broadcast_epoch()
        finally:
            self._pending_ring = None
        self._rebalance["phase"] = "retiring"
        for shard in removed:
            self._retire(shard)
        if self.verbose:
            print(
                f"[cluster] resized {n_current} -> {n_target} shards "
                f"(epoch {self.ring_epoch}, {len(plan.moves)} run(s) moved)",
                flush=True,
            )
        return {
            "ring_epoch": self.ring_epoch,
            "from": n_current,
            "to": n_target,
            "moved": len(plan.moves),
            "runs_moved": sorted(plan.moves),
        }

    def _migrate_run(self, run_id: str, source: int, dest: int) -> None:
        """Ship one run's WAL subset from ``source``'s file to ``dest``.

        Reads the *file*, not the process — a SIGKILLed source mid-
        rebalance doesn't lose the move; and retries the adopt POST
        while the monitor thread recovers whichever side died (the
        applier's idempotence makes re-shipping free).
        """
        deadline = time.monotonic() + self.ready_timeout_s
        attempt = 0
        last_error: str = "never attempted"
        while True:
            source_wal = Path(self.specs[source].wal_dir) / WriteAheadLog.FILENAME
            entries, _, _ = scan_wal(source_wal)
            frames = [
                entry.frame()
                for entry in entries
                if str(entry.payload.get("run_id")) == run_id
            ]
            dest_spec = self.specs[dest]
            try:
                status, body = _http_post_json(
                    dest_spec.host,
                    dest_spec.port,
                    "/control/adopt",
                    {"frames": frames},
                    self.ready_timeout_s,
                )
            except (OSError, HTTPException, ValueError) as exc:
                status, body = 0, {"error": f"{type(exc).__name__}: {exc}"}
            if status == 200:
                return
            if status == 409:
                # Digest divergence: retrying cannot fix it.
                raise RuntimeError(
                    f"shard {dest} rejected run {run_id!r}: {body.get('error')}"
                )
            last_error = f"{status}: {body.get('error')}"
            attempt += 1
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"could not ship run {run_id!r} from shard {source} to "
                    f"shard {dest} within {self.ready_timeout_s}s "
                    f"(last error {last_error})"
                )
            self._wake.set()  # nudge the monitor at whichever side died
            time.sleep(min(2.0, 0.2 * attempt))

    def _broadcast_epoch(self) -> None:
        for shard, spec in list(self.specs.items()):
            try:
                _http_post_json(
                    spec.host,
                    spec.port,
                    "/control/epoch",
                    {"ring_epoch": self.ring_epoch},
                    self.probe_timeout_s,
                )
            except (OSError, HTTPException, ValueError):
                # Unreachable now → it is either dead (a respawn inherits
                # the epoch through its spec) or about to be retired.
                pass

    def _retire(self, shard: int) -> None:
        """Stop a shard removed from the ring (its WAL dir is left on disk)."""
        standby = self._standby_procs.pop(shard, None)
        self._standby_specs.pop(shard, None)
        self._standby_backoffs.pop(shard, None)
        self._standby_spawned_at.pop(shard, None)
        proc = self._procs.pop(shard, None)
        self.specs.pop(shard, None)
        self._breakers.pop(shard, None)
        self._backoffs.pop(shard, None)
        self.respawns.pop(shard, None)
        self._respawned_at.pop(shard, None)
        for victim in (proc, standby):
            if victim is not None and victim.is_alive():
                victim.terminate()
        for victim in (proc, standby):
            if victim is not None:
                victim.join(timeout=10)
                if victim.is_alive():  # pragma: no cover - backstop
                    victim.kill()
                    victim.join(timeout=5)


# ---------------------------------------------------------------------- router


class _ProxyResult:
    """A worker response relayed verbatim: status, body, select headers."""

    __slots__ = ("status", "body", "content_type", "headers")

    def __init__(
        self, status: int, body: bytes, content_type: str, headers: dict
    ) -> None:
        self.status = status
        self.body = body
        self.content_type = content_type
        self.headers = headers


# Response headers the router relays from a worker: the resilience
# contract's retry hint, the 405 contract's method list, and the epoch
# a fencing 409 carries.
_RELAYED_HEADERS = ("Retry-After", "Allow", "X-Repro-Ring-Epoch")

# Auto-minted run ids (`{kind}-c{n}`): the seed scan after a router
# restart parses these out of the shards' /runs so the counter resumes
# past every id any previous router handed out.
_AUTO_ID_RE = re.compile(r"^(?:hfl|vfl)-c(\d+)$")


def _router_allowed_methods(parts: list[str]) -> frozenset[str] | None:
    if parts in (
        ["healthz"], ["metricz"], ["cluster"], ["statusz"], ["robustness"]
    ):
        return frozenset({"GET"})
    if parts == ["runs"]:
        return frozenset({"GET", "POST"})
    if len(parts) == 3 and parts[0] == "runs" and parts[2] in _RUN_ENDPOINTS:
        return frozenset({"GET"})
    if parts == ["cluster", "resize"]:
        return frozenset({"POST"})
    return None


class _RouterHandler(BaseHTTPRequestHandler):
    """Maps ``run_id → shard`` on the ring and proxies; aggregates the rest."""

    server_version = "repro-serve-router/1.0"
    protocol_version = "HTTP/1.1"

    @property
    def topology(self):
        return self.server.topology  # type: ignore[attr-defined]

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if self.server.verbose:  # type: ignore[attr-defined]
            super().log_message(format, *args)

    # ------------------------------------------------------------- plumbing

    def _send_body(self, payload, status: int, headers: dict) -> None:
        if isinstance(payload, _ProxyResult):
            body, content_type = payload.body, payload.content_type
            headers = {**payload.headers, **headers}
        elif isinstance(payload, RawResponse):
            body, content_type = payload.body, payload.content_type
        else:
            body = json.dumps(payload).encode()
            content_type = "application/json"
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in headers.items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _dispatch(self, handler) -> None:
        # Graceful drain: once begin_drain() fires, refuse new work with
        # the ladder's typed 503 + Retry-After (health checks still
        # answer, so orchestrators see the drain, not an outage) while
        # already-admitted requests run to completion below.
        if self.server.draining and urlparse(self.path).path != "/healthz":  # type: ignore[attr-defined]
            started = time.perf_counter()
            self._send_body(
                {"error": "router is draining; not accepting new requests"},
                503,
                {"Retry-After": str(max(1, int(self.server.drain_retry_after_s)))},  # type: ignore[attr-defined]
            )
            # A drain refusal carries Retry-After, so the SLO engine
            # books it against the shed budget, not availability.
            self.server.telemetry.observe(  # type: ignore[attr-defined]
                self.path, 503, time.perf_counter() - started, retry_after=True
            )
            return
        self.server.in_flight.inc()  # type: ignore[attr-defined]
        try:
            self._dispatch_admitted(handler)
        finally:
            self.server.in_flight.dec()  # type: ignore[attr-defined]

    def _dispatch_admitted(self, handler) -> None:
        started = time.perf_counter()
        headers: dict = {}
        obs = self.server.obs  # type: ignore[attr-defined]
        with obs.tracer.span(
            "router.request", http_method=self.command, path=self.path
        ) as span:
            try:
                payload, status = handler()
            except ApiError as exc:
                payload, status, headers = (
                    {"error": str(exc)},
                    exc.status,
                    exc.headers,
                )
            except ShardUnavailable as exc:
                payload = {
                    "error": str(exc),
                    "shard": str(exc.shard),
                    "retry_after_s": exc.retry_after_s,
                }
                status = 503
                headers = {"Retry-After": str(max(1, int(exc.retry_after_s)))}
                obs.registry.counter(
                    "repro_router_proxy_errors_total",
                    help="proxy attempts ending in a typed failure",
                    labels={"kind": "unavailable"},
                ).inc()
            except ShardTimeout as exc:
                payload = {
                    "error": str(exc),
                    "shard": str(exc.shard),
                    "timeout_s": exc.timeout_s,
                }
                status = 504
                obs.registry.counter(
                    "repro_router_proxy_errors_total",
                    help="proxy attempts ending in a typed failure",
                    labels={"kind": "timeout"},
                ).inc()
            except KeyError as exc:
                payload = {"error": str(exc.args[0] if exc.args else exc)}
                status = 404
            except ValueError as exc:
                payload, status = {"error": str(exc)}, 400
            except Exception as exc:  # pragma: no cover - last-resort guard
                payload, status = {"error": f"internal error: {exc}"}, 500
            if isinstance(payload, _ProxyResult):
                status = payload.status
            span.set_attribute("status", status)
            if status >= 400:
                span.end(status="error")
            trace_id = span.trace_id if span.context is not None else None
        self._send_body(payload, status, headers)
        elapsed = time.perf_counter() - started
        self.server.request_latency.record(elapsed)  # type: ignore[attr-defined]
        # The router judges the traffic *it* answered: a relayed worker
        # refusal (Retry-After in the proxied headers) is a shed here too.
        retry_after = "Retry-After" in headers or (
            isinstance(payload, _ProxyResult)
            and "Retry-After" in payload.headers
        )
        self.server.telemetry.observe(  # type: ignore[attr-defined]
            self.path,
            status,
            elapsed,
            retry_after=retry_after,
            trace_id=trace_id,
        )

    def _method_not_allowed(self, parts: list[str], method: str):
        allowed = _router_allowed_methods(parts)
        if allowed is None:
            raise ApiError(404, f"no such endpoint: {method} /{'/'.join(parts)}")
        raise ApiError(
            405,
            f"{method} is not supported here; allowed: "
            f"{', '.join(sorted(allowed))}",
            headers={"Allow": ", ".join(sorted(allowed))},
        )

    # ------------------------------------------------------------- proxying

    def _proxy_raw(
        self,
        shard,
        method: str,
        path: str,
        body: bytes | None = None,
        extra_headers: dict | None = None,
    ) -> _ProxyResult:
        """One request to ``shard``, through its breaker, typed on failure.

        Failure mapping — the router-side half of the ladder:

        * breaker open → :class:`ShardUnavailable` (503) with no network
          attempt at all;
        * connection refused / reset / protocol garbage →
          ``record_failure`` + :class:`ShardUnavailable` (503);
        * read overrunning ``proxy_timeout_s`` → ``record_failure`` +
          :class:`ShardTimeout` (504).

        Whatever status a *reachable* worker answers — including its own
        429/503/504 — relays verbatim: the worker's refusals are typed
        already, and re-wrapping them would lose the Retry-After math.
        """
        topology = self.topology
        breaker = topology.breaker(shard)
        if not breaker.allow():
            raise ShardUnavailable(
                shard, "circuit breaker open", topology.retry_after_s(shard)
            )
        host, port = topology.address(shard)
        headers = dict(
            context_headers(self.server.obs.tracer.current_context())  # type: ignore[attr-defined]
        )
        if body is not None:
            headers["Content-Type"] = "application/json"
        if extra_headers:
            headers.update(extra_headers)
        timeout_s = self.server.proxy_timeout_s  # type: ignore[attr-defined]
        conn = HTTPConnection(host, port, timeout=timeout_s)
        try:
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            data = response.read()
        except TimeoutError:
            breaker.record_failure()
            topology.notify_failure(shard)
            raise ShardTimeout(shard, timeout_s) from None
        except (OSError, HTTPException) as exc:
            breaker.record_failure()
            topology.notify_failure(shard)
            raise ShardUnavailable(
                shard,
                f"{type(exc).__name__}: {exc}",
                topology.retry_after_s(shard),
            ) from None
        finally:
            conn.close()
        breaker.record_success()
        relayed = {
            name: response.headers[name]
            for name in _RELAYED_HEADERS
            if response.headers.get(name) is not None
        }
        return _ProxyResult(
            response.status,
            data,
            response.headers.get("Content-Type", "application/json"),
            relayed,
        )

    def _proxy_json(self, shard, path: str) -> dict:
        """GET ``path`` on ``shard`` and decode; worker errors re-raise typed."""
        result = self._proxy_raw(shard, "GET", path)
        payload = json.loads(result.body)
        if result.status >= 400:
            raise ApiError(
                result.status,
                payload.get("error", f"shard {shard} answered {result.status}"),
                headers=result.headers,
            )
        return payload

    def _sorted_shards(self) -> list:
        return sorted(self.topology.ring.shards, key=str)

    # --------------------------------------------------------------- routes

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        self._dispatch(self._route_get)

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        self._dispatch(self._route_post)

    def do_PUT(self) -> None:  # noqa: N802 - stdlib naming
        self._dispatch(self._route_other("PUT"))

    def do_DELETE(self) -> None:  # noqa: N802 - stdlib naming
        self._dispatch(self._route_other("DELETE"))

    def do_PATCH(self) -> None:  # noqa: N802 - stdlib naming
        self._dispatch(self._route_other("PATCH"))

    def _route_other(self, method: str):
        parts = [p for p in urlparse(self.path).path.split("/") if p]

        def route():
            self._method_not_allowed(parts, method)

        return route

    def _route_get(self):
        url = urlparse(self.path)
        parts = [p for p in url.path.split("/") if p]
        query = parse_qs(url.query)
        if parts == ["healthz"]:
            return self._aggregate_health(), 200
        if parts == ["statusz"]:
            return self._aggregate_statusz(), 200
        if parts == ["robustness"]:
            return load_robustness(self.server.robustness_file), 200  # type: ignore[attr-defined]
        if parts == ["metricz"]:
            fmt = query.get("format", ["json"])[0]
            if fmt == "prometheus":
                return self._merged_prometheus(), 200
            if fmt != "json":
                raise ApiError(
                    400, f"format must be 'json' or 'prometheus', got {fmt!r}"
                )
            return self._aggregate_metrics(), 200
        if parts == ["cluster"]:
            info = self.topology.describe()
            key = query.get("key", [None])[0]
            if key is not None:
                info["key"] = key
                info["shard"] = str(self.topology.ring.shard_for(key))
            return info, 200
        if parts == ["runs"]:
            return self._aggregate_runs(), 200
        if len(parts) == 3 and parts[0] == "runs" and parts[2] in _RUN_ENDPOINTS:
            shard = self.topology.ring.shard_for(parts[1])
            result = self._proxy_raw(shard, "GET", self.path)
            return result, result.status
        raise ApiError(404, f"no such endpoint: GET {url.path}")

    def _route_post(self):
        parts = [p for p in urlparse(self.path).path.split("/") if p]
        if parts == ["cluster", "resize"]:
            return self._route_resize(), 200
        if parts != ["runs"]:
            self._method_not_allowed(parts, "POST")
        spec = read_json_body(self)
        # The ring routes on run_id, so one must exist *before* the
        # worker is chosen: the router mints ids the worker would have.
        run_id = spec.get("run_id")
        minted = run_id is None or run_id == ""
        if minted:
            kind = spec.get("kind")
            if kind not in ("hfl", "vfl"):
                raise ApiError(400, "kind must be 'hfl' or 'vfl'")
            run_id = f"{kind}-c{self.server.next_auto_id()}"  # type: ignore[attr-defined]
            spec["run_id"] = run_id
        for attempt in range(3):
            result = self._proxy_write("/runs", spec)
            if (
                result.status == 409
                and "X-Repro-Ring-Epoch" in result.headers
                and attempt == 0
            ):
                # The worker is fenced at a newer ring epoch than the one
                # this write was stamped with: a rebalance flipped the
                # ring mid-flight.  Re-resolve against the (now fresh)
                # ring and retry once — the fence exists exactly so this
                # race is a retry, not a misplaced write.
                continue
            if (
                minted
                and result.status == 400
                and b"already registered" in result.body
            ):
                # A previous router (or a raced sibling) already handed
                # this id out; mint the next one and retry.  Bounded:
                # the seed scan makes collisions a one-off, not a walk.
                run_id = f"{spec['kind']}-c{self.server.next_auto_id()}"  # type: ignore[attr-defined]
                spec["run_id"] = run_id
                continue
            break
        return result, result.status

    def _proxy_write(self, path: str, spec: dict) -> _ProxyResult:
        """One routed write: epoch-stamped, dual-written during rebalance."""
        topology = self.topology
        run_id = str(spec["run_id"])
        shard = topology.ring.shard_for(run_id)
        epoch_stamp = {
            "X-Repro-Ring-Epoch": str(getattr(topology, "ring_epoch", 0))
        }
        body = json.dumps(spec).encode()
        result = self._proxy_raw(
            shard, "POST", path, body=body, extra_headers=epoch_stamp
        )
        if result.status < 400:
            dual = topology.dual_target(run_id)
            if dual is not None and dual != shard:
                # Handoff window: the key's future owner gets a copy so
                # the epoch flip never strands an accepted write.  A
                # failed copy is counted, not fatal — the migration pass
                # re-ships the run's WAL subset anyway.
                try:
                    self._proxy_raw(
                        dual, "POST", path, body=body, extra_headers=epoch_stamp
                    )
                except (ShardUnavailable, ShardTimeout):
                    self.server.obs.registry.counter(  # type: ignore[attr-defined]
                        "repro_router_dual_write_failures_total",
                        help="rebalance dual-writes that could not reach "
                        "the future owner",
                    ).inc()
        return result

    def _route_resize(self) -> dict:
        body = read_json_body(self)
        shards = body.get("shards")
        if not isinstance(shards, int) or isinstance(shards, bool) or shards <= 0:
            raise ApiError(400, "body must carry a positive integer 'shards'")
        resize = getattr(self.topology, "resize", None)
        if resize is None:
            raise ApiError(
                400, "this topology is static and cannot be resized"
            )
        return resize(shards)

    # --------------------------------------------------------- aggregation

    def _aggregate_health(self) -> dict:
        shards: dict = {}
        down: list[str] = []
        status = "ok"
        for shard in self._sorted_shards():
            try:
                payload = self._proxy_json(shard, "/healthz")
            except (ShardUnavailable, ShardTimeout) as exc:
                shards[str(shard)] = {"status": "down", "error": str(exc)}
                down.append(str(shard))
                status = "degraded"
                continue
            shards[str(shard)] = payload
            if payload.get("status") != "ok":
                status = "degraded"
        return {
            "status": status,
            "workers": len(shards),
            "down": down,
            "shards": shards,
        }

    def _aggregate_runs(self) -> dict:
        collected: list[tuple[object, dict]] = []
        unavailable: list[dict] = []
        for shard in self._sorted_shards():
            try:
                payload = self._proxy_json(shard, "/runs")
            except (ShardUnavailable, ShardTimeout) as exc:
                unavailable.append({"shard": str(shard), "error": str(exc)})
                continue
            for run in payload.get("runs", []):
                run["shard"] = str(shard)
                collected.append((shard, run))
        # A rebalance leaves the moved run's WAL (and registry entry) on
        # its old owner too; the ring decides which copy is canonical.
        # Runs registered out-of-band (no ring owner among the queried
        # shards) stay visible as long as no owned copy shadows them.
        owned: dict = {}
        extras: list[dict] = []
        for shard, run in collected:
            run_id = run.get("run_id")
            if run_id is not None and str(
                self.topology.ring.shard_for(str(run_id))
            ) == str(shard):
                owned[run_id] = run
            else:
                extras.append(run)
        runs = list(owned.values()) + [
            run for run in extras if run.get("run_id") not in owned
        ]
        return {"runs": runs, "unavailable": unavailable}

    def _aggregate_statusz(self) -> dict:
        """Fleet ``/statusz``: the router's own verdicts plus every worker's.

        The router's SLO engine judges end-to-end traffic (what clients
        actually experienced, sheds and proxy failures included); each
        worker's payload rides along under ``"workers"`` so one scrape
        shows which shard is burning.  Down shards are reported, not
        fatal — a status check during failover still answers.
        """
        payload = self.server.telemetry.status()  # type: ignore[attr-defined]
        workers: dict = {}
        down: list[str] = []
        for shard in self._sorted_shards():
            try:
                workers[str(shard)] = self._proxy_json(shard, "/statusz")
            except (ShardUnavailable, ShardTimeout, ApiError) as exc:
                workers[str(shard)] = {"status": "down", "error": str(exc)}
                down.append(str(shard))
        # A down shard does not flip the verdict by itself: the router's
        # own SLO engine already books every failed proxy as a bad
        # request, so sustained damage burns availability the honest way.
        payload.update(
            {
                "workers": workers,
                "shards_down": down,
                "topology": self.topology.describe(),
            }
        )
        return payload

    def _aggregate_metrics(self) -> dict:
        workers: dict = {}
        for shard in self._sorted_shards():
            try:
                workers[str(shard)] = self._proxy_json(shard, "/metricz")
            except (ShardUnavailable, ShardTimeout) as exc:
                workers[str(shard)] = {"status": "down", "error": str(exc)}
        return {
            "router": {
                "latency": {
                    "http": self.server.request_latency.summary()  # type: ignore[attr-defined]
                },
            },
            "workers": workers,
            "topology": self.topology.describe(),
        }

    def _merged_prometheus(self) -> RawResponse:
        """One Prometheus page for the whole cluster.

        Every worker's registry snapshot folds into a fresh registry via
        :meth:`~repro.obs.registry.MetricsRegistry.merge` under a
        ``worker="<shard>"`` label; the router's own registry merges
        under ``worker="router"``.  Unreachable workers are counted, not
        fatal — a scrape during failover still renders.
        """
        merged = MetricsRegistry()
        merged.merge(
            self.server.obs.registry.snapshot(),  # type: ignore[attr-defined]
            labels={"worker": "router"},
        )
        shards = self._sorted_shards()
        down = 0
        for shard in shards:
            try:
                payload = self._proxy_json(shard, "/metricz?format=snapshot")
            except (ShardUnavailable, ShardTimeout):
                down += 1
                continue
            merged.merge(payload["snapshot"], labels={"worker": str(shard)})
        merged.gauge(
            "repro_cluster_shards", help="shards on the hash ring"
        ).set(len(shards))
        merged.gauge(
            "repro_cluster_shards_down",
            help="shards unreachable at scrape time",
        ).set(down)
        return RawResponse(
            merged.render_prometheus(), PROMETHEUS_CONTENT_TYPE
        )


class ClusterRouter(ThreadingHTTPServer):
    """The cluster's front door: one port, N shard workers behind it."""

    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        topology,
        *,
        obs: Observability | None = None,
        proxy_timeout_s: float = 30.0,
        slos=None,
        robustness_file: str | None = None,
        verbose: bool = False,
    ) -> None:
        super().__init__(address, _RouterHandler)
        self.topology = topology
        self.obs = obs if obs is not None else Observability()
        self.proxy_timeout_s = proxy_timeout_s
        self.verbose = verbose
        # The router runs its own SLO engine over end-to-end traffic —
        # what clients experienced, proxy failures and sheds included —
        # independent of each worker's view; GET /statusz merges both.
        self.telemetry = RequestTelemetry(self.obs.registry, slos=slos)
        self.slo_tracker = self.telemetry.slo_tracker
        self.robustness_file = robustness_file or DEFAULT_ROBUSTNESS_FILE
        self.request_latency = LatencyHistogram()
        self.obs.registry.register(
            "repro_router_request_latency_seconds",
            self.request_latency,
            help="router wall time, routing through response write",
            exist_ok=True,
        )
        self.in_flight = Gauge()
        self.obs.registry.register(
            "repro_router_requests_in_flight",
            self.in_flight,
            help="requests admitted and not yet answered",
            exist_ok=True,
        )
        self.drain_retry_after_s = 5.0
        self._draining = threading.Event()
        self._auto_lock = threading.Lock()
        self._auto_seeded = False
        self._auto_ids = itertools.count(1)

    # -- collision-safe run-id minting ---------------------------------

    def next_auto_id(self) -> int:
        """Mint the next ``{kind}-cN`` counter value.

        The counter is seeded lazily from the shards' ``/runs`` listings
        so a router restarted over a populated cluster does not re-mint
        ``hfl-c1``.  Seeding failures fall back to 1 — the handler's
        ``already registered`` retry loop then walks past collisions.
        """
        if not self._auto_seeded:
            self._seed_auto_ids()
        return next(self._auto_ids)

    def _seed_auto_ids(self) -> None:
        with self._auto_lock:
            if self._auto_seeded:
                return
            highest = 0
            for shard in self.topology.ring.shards:
                try:
                    host, port = self.topology.address(shard)
                    status, payload = _http_get_json(
                        host, port, "/runs", self.proxy_timeout_s
                    )
                except (OSError, HTTPException, ValueError):
                    continue
                if status != 200:
                    continue
                for run in payload.get("runs", []):
                    match = _AUTO_ID_RE.match(str(run.get("run_id", "")))
                    if match:
                        highest = max(highest, int(match.group(1)))
            self._auto_ids = itertools.count(highest + 1)
            self._auto_seeded = True

    # -- graceful drain ------------------------------------------------

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    def begin_drain(self) -> None:
        """Stop admitting requests; in-flight ones keep running."""
        self._draining.set()

    def await_drained(self, timeout_s: float) -> bool:
        """Wait for in-flight requests to finish; True when they did."""
        deadline = time.monotonic() + timeout_s
        while self.in_flight.value > 0:
            if time.monotonic() >= deadline:
                return False
            time.sleep(0.02)
        return True

    @property
    def port(self) -> int:
        return self.server_address[1]

    def serve_background(self) -> threading.Thread:
        """Serve on a daemon thread (tests / in-process embedding)."""
        thread = threading.Thread(target=self.serve_forever, daemon=True)
        thread.start()
        return thread


def serve_cluster(
    host: str = "127.0.0.1",
    router_port: int = 8733,
    n_shards: int = 3,
    *,
    wal_root: str | None = None,
    standby_replicas: int = 0,
    drain_deadline_s: float = 10.0,
    cache_bytes: int = 64 * 1024 * 1024,
    max_workers: int = 4,
    query_deadline_ms: float | None = None,
    admission_limit: int | None = None,
    chaos_ingest_ms: float = 0.0,
    trace: bool = False,
    robustness_file: str | None = None,
    verbose: bool = True,
) -> int:
    """Run a sharded cluster until interrupted; ``repro serve --cluster N``.

    Without ``wal_root`` the WALs live in a fresh temporary directory
    (printed) — failover still replays, but a *cluster* restart starts
    empty.  Point ``--wal-dir`` somewhere durable for that.

    SIGINT/SIGTERM drain rather than drop: the router answers new
    requests 503 + ``Retry-After``, in-flight ones run to completion (up
    to ``drain_deadline_s``), then the workers stop.
    """
    if wal_root is None:
        wal_root = tempfile.mkdtemp(prefix="repro-cluster-wal-")
        print(f"cluster WALs (temporary): {wal_root}")
    supervisor = ClusterSupervisor(
        n_shards,
        wal_root=wal_root,
        host=host,
        standby_replicas=standby_replicas,
        cache_bytes=cache_bytes,
        max_workers=max_workers,
        query_deadline_ms=query_deadline_ms,
        admission_limit=admission_limit,
        chaos_ingest_ms=chaos_ingest_ms,
        trace=trace,
        robustness_file=robustness_file,
        verbose=verbose,
    )
    supervisor.start()
    router = ClusterRouter(
        (host, router_port),
        supervisor,
        obs=Observability(trace=trace),
        robustness_file=robustness_file,
        verbose=verbose,
    )
    print(
        f"repro-serve cluster: router on http://{host}:{router.port}, "
        f"{n_shards} shard worker(s)"
        + (f", {standby_replicas} standby per shard" if standby_replicas else "")
    )
    for shard, spec in sorted(supervisor.specs.items()):
        print(f"  shard {shard}: http://{spec.host}:{spec.port} "
              f"(wal: {spec.wal_dir})")
    print("endpoints: /healthz /statusz /robustness "
          "/metricz[?format=prometheus] /cluster[?key=] "
          "POST /cluster/resize /runs /runs/{id}/contributions "
          "/runs/{id}/leaderboard /runs/{id}/weights /runs/{id}/profile")

    draining = threading.Event()

    def _drain(signum, frame) -> None:
        if draining.is_set():
            return
        draining.set()

        def _finish() -> None:
            print(
                f"\ndraining: refusing new requests, waiting up to "
                f"{drain_deadline_s:.0f}s for in-flight work"
            )
            router.begin_drain()
            if not router.await_drained(drain_deadline_s):
                print("drain deadline passed with requests still in "
                      "flight; stopping anyway")
            # shutdown() must run off the main thread: it blocks until
            # serve_forever (below, on the main thread) exits its loop.
            router.shutdown()

        threading.Thread(target=_finish, daemon=True).start()

    previous: dict[int, object] = {}
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            previous[signum] = signal.signal(signum, _drain)
        except ValueError:
            pass  # not the main thread (embedded use); Ctrl-C still works
    try:
        router.serve_forever()
        if draining.is_set():
            print("drained; shutting down cluster")
    except KeyboardInterrupt:
        print("\nshutting down cluster")
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
        router.server_close()
        supervisor.stop()
    return 0
