"""Sharded multi-process serving: consistent-hash routing + WAL failover.

One :class:`~repro.serve.service.EvaluationService` process tops out at
its GIL: concurrent leaderboard queries and streaming ingests contend on
one interpreter no matter how many threads the pool holds.  This module
scales the serving layer *out* instead of up, stdlib-only:

* :class:`ClusterSupervisor` spawns N worker processes
  (``multiprocessing`` + the existing
  :class:`~repro.serve.http.EvaluationHTTPServer` in each), every worker
  owning a :class:`~repro.serve.ring.HashRing` shard of the run-id space
  and its *own* :class:`~repro.serve.wal.WriteAheadLog` directory.
* :class:`ClusterRouter` is a thin HTTP front: it maps ``run_id →
  shard`` on the ring and proxies the request, carrying the trace across
  the hop (:func:`repro.obs.trace.context_headers`) so one client
  request is one trace across two processes.  Cluster ``/healthz`` and
  ``/metricz`` aggregate every worker — the Prometheus view folds all
  per-worker registry snapshots into one via
  :meth:`~repro.obs.registry.MetricsRegistry.merge`, labelled
  ``worker="0" … worker="router"``.
* Failure is typed, never a bare 500.  A downed or unreachable shard
  answers 503 with ``Retry-After`` (the expected respawn time); a proxy
  read that overruns its budget answers 504; worker-side 429/503/504
  pass through untouched.  The router's per-shard
  :class:`~repro.serve.resilience.CircuitBreaker` stops it hammering a
  dead port between probes.
* The supervisor's monitor thread detects worker death
  (``Process.is_alive`` + ``/healthz`` probes through the same
  breakers), respawns the shard on its old port, and the replacement
  replays its WAL — :func:`repro.serve.wal.recover` guarantees the
  revived shard serves contributions bit-identical to an uninterrupted
  run of the same prefix.  ``tests/test_cluster_chaos.py`` SIGKILLs a
  worker mid-ingest to hold the cluster to exactly that.

Run it with ``python -m repro.cli serve --cluster 3 --router-port 8733``;
``benchmarks/bench_cluster.py`` measures the single-process-vs-sharded
throughput gap this module exists for.
"""

from __future__ import annotations

import itertools
import json
import multiprocessing
import socket
import tempfile
import threading
import time
from dataclasses import dataclass
from http.client import HTTPConnection, HTTPException
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Hashable, Mapping
from urllib.parse import parse_qs, urlparse

from repro.metrics.cost import LatencyHistogram
from repro.obs import Observability
from repro.obs.registry import PROMETHEUS_CONTENT_TYPE, MetricsRegistry
from repro.obs.trace import context_headers
from repro.serve.http import _RUN_ENDPOINTS, ApiError, RawResponse, read_json_body
from repro.serve.resilience import CircuitBreaker
from repro.serve.ring import HashRing


class ShardUnavailable(RuntimeError):
    """A shard is down or unreachable; retry after ``retry_after_s``."""

    def __init__(self, shard, reason: str, retry_after_s: float) -> None:
        super().__init__(
            f"shard {shard} is unavailable ({reason}); "
            f"retry in {retry_after_s:.0f}s"
        )
        self.shard = shard
        self.retry_after_s = retry_after_s


class ShardTimeout(RuntimeError):
    """A proxied request to a live shard overran the router's budget."""

    def __init__(self, shard, timeout_s: float) -> None:
        super().__init__(
            f"shard {shard} did not answer within {timeout_s:.1f}s"
        )
        self.shard = shard
        self.timeout_s = timeout_s


# --------------------------------------------------------------------- workers


@dataclass(frozen=True)
class WorkerSpec:
    """Everything one shard worker needs; picklable for ``spawn``.

    A respawned replacement is started from the *same* spec — same port,
    same WAL directory — which is what makes failover transparent to the
    ring: the shard's identity is its spec, not its pid.
    """

    shard: int
    host: str
    port: int
    wal_dir: str
    cache_bytes: int = 64 * 1024 * 1024
    max_workers: int = 4
    query_deadline_ms: float | None = None
    admission_limit: int | None = None
    breaker_failures: int = 3
    breaker_reset_s: float = 30.0
    chaos_ingest_ms: float = 0.0
    trace: bool = False
    verbose: bool = False


def _worker_main(spec: WorkerSpec) -> None:
    """Entry point of one shard process (top-level: ``spawn`` pickles it).

    Boot order matters: recover from the shard's WAL *before* attaching
    it (so replayed ingests are not re-logged), then serve.  SIGTERM is
    the supervisor's clean-shutdown signal; SIGKILL is what the chaos
    harness throws, and the WAL is the only thing that survives it.
    """
    import signal

    from repro.serve.http import EvaluationHTTPServer
    from repro.serve.service import EvaluationService
    from repro.serve.wal import WriteAheadLog, recover

    def _terminate(signum, frame):
        raise SystemExit(0)

    signal.signal(signal.SIGTERM, _terminate)
    obs = Observability(
        trace=spec.trace,
        # Disjoint id blocks per shard: merged trace exports from several
        # workers (and the router, which keeps the small default ids)
        # must never collide on span ids within one propagated trace.
        id_source=itertools.count((spec.shard + 1) * 2**48 + 1).__next__,
    )
    service = EvaluationService(
        cache_bytes=spec.cache_bytes,
        max_workers=spec.max_workers,
        query_deadline_ms=spec.query_deadline_ms,
        admission_limit=spec.admission_limit,
        breaker_failures=spec.breaker_failures,
        breaker_reset_s=spec.breaker_reset_s,
        obs=obs,
    )
    if spec.chaos_ingest_ms:
        # Chaos hook (mirrors repro.cli serve --chaos-ingest-ms): slow
        # each epoch ingest so a SIGKILL reliably lands mid-ingest.
        from repro.serve.service import EvaluationService as _ES

        _orig_ingest = _ES.ingest

        def _slow_ingest(self, run_id, record, *, seq=None):
            time.sleep(spec.chaos_ingest_ms / 1e3)
            return _orig_ingest(self, run_id, record, seq=seq)

        service.ingest = _slow_ingest.__get__(service, _ES)
    wal = WriteAheadLog(spec.wal_dir)
    report = recover(service, wal)
    service.attach_wal(wal)
    if spec.verbose or report.runs_restored:
        print(f"[shard {spec.shard}] recovery: {report.summary()}", flush=True)
    server = EvaluationHTTPServer(
        (spec.host, spec.port), service, verbose=spec.verbose
    )
    try:
        server.serve_forever()
    except (KeyboardInterrupt, SystemExit):
        pass
    finally:
        server.server_close()
        service.close()
        wal.close()


def _free_port(host: str) -> int:
    """An OS-assigned free TCP port (bound briefly, then released)."""
    with socket.socket() as sock:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((host, 0))
        return sock.getsockname()[1]


def _http_get_json(
    host: str, port: int, path: str, timeout_s: float
) -> tuple[int, dict]:
    """One GET against a worker, JSON-decoded (probes and readiness)."""
    conn = HTTPConnection(host, port, timeout=timeout_s)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        body = response.read()
    finally:
        conn.close()
    return response.status, json.loads(body)


# -------------------------------------------------------------------- topology


class StaticTopology:
    """A fixed routing table over already-running workers.

    The router only needs four things from its topology — the ring, an
    address per shard, a circuit breaker per shard, and a failure hint —
    so tests (and embeddings that manage worker processes themselves)
    can hand it this instead of a full :class:`ClusterSupervisor`.
    """

    def __init__(
        self,
        workers: Mapping[Hashable, tuple[str, int]],
        *,
        replicas: int = 64,
        breaker_failures: int = 2,
        breaker_reset_s: float = 1.0,
        retry_after_hint_s: float = 1.0,
    ) -> None:
        if not workers:
            raise ValueError("a topology needs at least one worker")
        self.ring = HashRing(workers, replicas=replicas)
        self._addresses = {
            shard: (str(host), int(port))
            for shard, (host, port) in workers.items()
        }
        self._breakers = {
            shard: CircuitBreaker(breaker_failures, breaker_reset_s)
            for shard in workers
        }
        self.retry_after_hint_s = retry_after_hint_s

    def address(self, shard) -> tuple[str, int]:
        return self._addresses[shard]

    def breaker(self, shard) -> CircuitBreaker:
        return self._breakers[shard]

    def notify_failure(self, shard) -> None:
        """No supervisor behind this topology; nothing to wake."""

    def retry_after_s(self, shard) -> float:
        return self.retry_after_hint_s

    def describe(self) -> dict:
        return {
            "replicas": self.ring.replicas,
            "supervised": False,
            "shards": {
                str(shard): {
                    "address": list(self._addresses[shard]),
                    "breaker": self._breakers[shard].stats(),
                }
                for shard in sorted(self._addresses, key=str)
            },
        }


class ClusterSupervisor:
    """Owns N shard worker processes: spawn, probe, respawn, stop.

    The monitor thread wakes every ``probe_interval_s`` (or immediately,
    when the router reports a proxy failure through
    :meth:`notify_failure`) and walks the shards: a dead process is
    respawned from its spec — the replacement replays the shard's WAL,
    so the revived shard answers bit-identically for every acknowledged
    epoch; a live process that fails enough ``/healthz`` probes to open
    its breaker is presumed wedged, killed, and respawned the same way.
    The per-shard breakers are *shared* with the router: proxy failures
    and probe failures count against the same threshold, and a breaker
    that opens both stops the router hammering the port and triggers the
    monitor's replacement path.
    """

    def __init__(
        self,
        n_shards: int,
        *,
        wal_root: str | Path,
        host: str = "127.0.0.1",
        worker_ports: list[int] | None = None,
        replicas: int = 64,
        cache_bytes: int = 64 * 1024 * 1024,
        max_workers: int = 4,
        query_deadline_ms: float | None = None,
        admission_limit: int | None = None,
        breaker_failures: int = 3,
        breaker_reset_s: float = 30.0,
        chaos_ingest_ms: float = 0.0,
        trace: bool = False,
        probe_interval_s: float = 0.5,
        probe_timeout_s: float = 2.0,
        probe_failures: int = 2,
        probe_reset_s: float = 2.0,
        ready_timeout_s: float = 60.0,
        max_respawns: int = 20,
        retry_after_hint_s: float = 3.0,
        verbose: bool = False,
    ) -> None:
        if n_shards <= 0:
            raise ValueError(f"n_shards must be positive, got {n_shards}")
        if worker_ports is not None and len(worker_ports) != n_shards:
            raise ValueError(
                f"worker_ports has {len(worker_ports)} entries "
                f"for {n_shards} shards"
            )
        # spawn, not fork: the supervisor runs threads (monitor, router
        # handlers) and a forked child inheriting their locked locks
        # mid-operation can deadlock before it ever reaches exec.
        self._ctx = multiprocessing.get_context("spawn")
        self.ring = HashRing(range(n_shards), replicas=replicas)
        self.probe_interval_s = probe_interval_s
        self.probe_timeout_s = probe_timeout_s
        self.ready_timeout_s = ready_timeout_s
        self.max_respawns = max_respawns
        self.retry_after_hint_s = retry_after_hint_s
        self.verbose = verbose
        wal_root = Path(wal_root)
        self.specs: dict[int, WorkerSpec] = {}
        for shard in range(n_shards):
            port = (
                worker_ports[shard]
                if worker_ports is not None
                else _free_port(host)
            )
            self.specs[shard] = WorkerSpec(
                shard=shard,
                host=host,
                port=port,
                wal_dir=str(wal_root / f"shard-{shard}"),
                cache_bytes=cache_bytes,
                max_workers=max_workers,
                query_deadline_ms=query_deadline_ms,
                admission_limit=admission_limit,
                breaker_failures=breaker_failures,
                breaker_reset_s=breaker_reset_s,
                chaos_ingest_ms=chaos_ingest_ms,
                trace=trace,
                verbose=verbose,
            )
        self._procs: dict[int, multiprocessing.process.BaseProcess] = {}
        self._breakers = {
            shard: CircuitBreaker(probe_failures, probe_reset_s)
            for shard in self.specs
        }
        self.respawns = {shard: 0 for shard in self.specs}
        self._stop = threading.Event()
        self._wake = threading.Event()
        self._monitor: threading.Thread | None = None

    # ---------------------------------------------------------- lifecycle

    def start(self) -> "ClusterSupervisor":
        """Spawn every worker, wait for readiness, start the monitor."""
        for shard in self.specs:
            self._procs[shard] = self._spawn(shard)
        deadline = time.monotonic() + self.ready_timeout_s
        for shard in self.specs:
            self._wait_ready(shard, deadline)
        self._monitor = threading.Thread(
            target=self._monitor_loop,
            daemon=True,
            name="repro-cluster-monitor",
        )
        self._monitor.start()
        return self

    def stop(self) -> None:
        """Terminate the monitor and every worker; idempotent."""
        self._stop.set()
        self._wake.set()
        if self._monitor is not None:
            self._monitor.join(timeout=10)
        for proc in self._procs.values():
            if proc.is_alive():
                proc.terminate()
        for proc in self._procs.values():
            proc.join(timeout=10)
            if proc.is_alive():  # pragma: no cover - stuck-worker backstop
                proc.kill()
                proc.join(timeout=5)

    def __enter__(self) -> "ClusterSupervisor":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    def _spawn(self, shard: int):
        proc = self._ctx.Process(
            target=_worker_main,
            args=(self.specs[shard],),
            name=f"repro-shard-{shard}",
            daemon=True,
        )
        proc.start()
        return proc

    def _wait_ready(self, shard: int, deadline: float) -> None:
        spec = self.specs[shard]
        while True:
            proc = self._procs[shard]
            if not proc.is_alive() and proc.exitcode is not None:
                raise RuntimeError(
                    f"shard {shard} died during startup "
                    f"(exit code {proc.exitcode})"
                )
            if self._probe(shard):
                return
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"shard {shard} not ready on "
                    f"{spec.host}:{spec.port} within {self.ready_timeout_s}s"
                )
            time.sleep(0.05)

    # ---------------------------------------------------------- monitoring

    def _probe(self, shard: int) -> bool:
        spec = self.specs[shard]
        try:
            status, _ = _http_get_json(
                spec.host, spec.port, "/healthz", self.probe_timeout_s
            )
        except (OSError, HTTPException, ValueError):
            return False
        return status == 200

    def _monitor_loop(self) -> None:
        while not self._stop.is_set():
            self._wake.wait(self.probe_interval_s)
            self._wake.clear()
            if self._stop.is_set():
                return
            for shard in list(self.specs):
                if self._stop.is_set():
                    return
                proc = self._procs[shard]
                if not proc.is_alive():
                    self._respawn(
                        shard, reason=f"process exited ({proc.exitcode})"
                    )
                    continue
                breaker = self._breakers[shard]
                if not breaker.allow():
                    continue  # open, not yet probe time: skip this tick
                if self._probe(shard):
                    breaker.record_success()
                else:
                    breaker.record_failure()
                    if breaker.state == CircuitBreaker.OPEN:
                        # Alive but failing probes past the threshold:
                        # wedged.  Replace it like a death.
                        proc.kill()
                        proc.join(timeout=10)
                        self._respawn(
                            shard, reason="unresponsive (breaker open)"
                        )

    def _respawn(self, shard: int, *, reason: str) -> None:
        if self._stop.is_set():
            return
        if self.respawns[shard] >= self.max_respawns:
            return  # crash loop: leave it down, the router serves 503s
        self.respawns[shard] += 1
        if self.verbose:
            print(
                f"[cluster] respawning shard {shard} "
                f"({reason}; attempt {self.respawns[shard]})",
                flush=True,
            )
        self._procs[shard] = self._spawn(shard)
        try:
            self._wait_ready(shard, time.monotonic() + self.ready_timeout_s)
        except (RuntimeError, TimeoutError):
            # Died again before becoming ready; the next tick retries.
            self._breakers[shard].record_failure()
            return
        self._breakers[shard].record_success()

    # ------------------------------------------------- topology interface

    def address(self, shard) -> tuple[str, int]:
        spec = self.specs[shard]
        return (spec.host, spec.port)

    def breaker(self, shard) -> CircuitBreaker:
        return self._breakers[shard]

    def notify_failure(self, shard) -> None:
        """Router hint: a proxy to ``shard`` just failed — probe now."""
        self._wake.set()

    def retry_after_s(self, shard) -> float:
        return self.retry_after_hint_s

    def describe(self) -> dict:
        shards = {}
        for shard, spec in self.specs.items():
            proc = self._procs.get(shard)
            shards[str(shard)] = {
                "address": [spec.host, spec.port],
                "wal_dir": spec.wal_dir,
                "pid": proc.pid if proc is not None else None,
                "alive": proc.is_alive() if proc is not None else False,
                "breaker": self._breakers[shard].stats(),
                "respawns": self.respawns[shard],
            }
        return {
            "replicas": self.ring.replicas,
            "supervised": True,
            "shards": shards,
        }


# ---------------------------------------------------------------------- router


class _ProxyResult:
    """A worker response relayed verbatim: status, body, select headers."""

    __slots__ = ("status", "body", "content_type", "headers")

    def __init__(
        self, status: int, body: bytes, content_type: str, headers: dict
    ) -> None:
        self.status = status
        self.body = body
        self.content_type = content_type
        self.headers = headers


# Response headers the router relays from a worker: the resilience
# contract's retry hint and the 405 contract's method list.
_RELAYED_HEADERS = ("Retry-After", "Allow")


def _router_allowed_methods(parts: list[str]) -> frozenset[str] | None:
    if parts in (["healthz"], ["metricz"], ["cluster"]):
        return frozenset({"GET"})
    if parts == ["runs"]:
        return frozenset({"GET", "POST"})
    if len(parts) == 3 and parts[0] == "runs" and parts[2] in _RUN_ENDPOINTS:
        return frozenset({"GET"})
    return None


class _RouterHandler(BaseHTTPRequestHandler):
    """Maps ``run_id → shard`` on the ring and proxies; aggregates the rest."""

    server_version = "repro-serve-router/1.0"
    protocol_version = "HTTP/1.1"

    @property
    def topology(self):
        return self.server.topology  # type: ignore[attr-defined]

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if self.server.verbose:  # type: ignore[attr-defined]
            super().log_message(format, *args)

    # ------------------------------------------------------------- plumbing

    def _send_body(self, payload, status: int, headers: dict) -> None:
        if isinstance(payload, _ProxyResult):
            body, content_type = payload.body, payload.content_type
            headers = {**payload.headers, **headers}
        elif isinstance(payload, RawResponse):
            body, content_type = payload.body, payload.content_type
        else:
            body = json.dumps(payload).encode()
            content_type = "application/json"
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in headers.items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _dispatch(self, handler) -> None:
        started = time.perf_counter()
        headers: dict = {}
        obs = self.server.obs  # type: ignore[attr-defined]
        with obs.tracer.span(
            "router.request", http_method=self.command, path=self.path
        ) as span:
            try:
                payload, status = handler()
            except ApiError as exc:
                payload, status, headers = (
                    {"error": str(exc)},
                    exc.status,
                    exc.headers,
                )
            except ShardUnavailable as exc:
                payload = {
                    "error": str(exc),
                    "shard": str(exc.shard),
                    "retry_after_s": exc.retry_after_s,
                }
                status = 503
                headers = {"Retry-After": str(max(1, int(exc.retry_after_s)))}
                obs.registry.counter(
                    "repro_router_proxy_errors_total",
                    help="proxy attempts ending in a typed failure",
                    labels={"kind": "unavailable"},
                ).inc()
            except ShardTimeout as exc:
                payload = {
                    "error": str(exc),
                    "shard": str(exc.shard),
                    "timeout_s": exc.timeout_s,
                }
                status = 504
                obs.registry.counter(
                    "repro_router_proxy_errors_total",
                    help="proxy attempts ending in a typed failure",
                    labels={"kind": "timeout"},
                ).inc()
            except KeyError as exc:
                payload = {"error": str(exc.args[0] if exc.args else exc)}
                status = 404
            except ValueError as exc:
                payload, status = {"error": str(exc)}, 400
            except Exception as exc:  # pragma: no cover - last-resort guard
                payload, status = {"error": f"internal error: {exc}"}, 500
            if isinstance(payload, _ProxyResult):
                status = payload.status
            span.set_attribute("status", status)
            if status >= 400:
                span.end(status="error")
        self._send_body(payload, status, headers)
        self.server.request_latency.record(  # type: ignore[attr-defined]
            time.perf_counter() - started
        )

    def _method_not_allowed(self, parts: list[str], method: str):
        allowed = _router_allowed_methods(parts)
        if allowed is None:
            raise ApiError(404, f"no such endpoint: {method} /{'/'.join(parts)}")
        raise ApiError(
            405,
            f"{method} is not supported here; allowed: "
            f"{', '.join(sorted(allowed))}",
            headers={"Allow": ", ".join(sorted(allowed))},
        )

    # ------------------------------------------------------------- proxying

    def _proxy_raw(
        self,
        shard,
        method: str,
        path: str,
        body: bytes | None = None,
    ) -> _ProxyResult:
        """One request to ``shard``, through its breaker, typed on failure.

        Failure mapping — the router-side half of the ladder:

        * breaker open → :class:`ShardUnavailable` (503) with no network
          attempt at all;
        * connection refused / reset / protocol garbage →
          ``record_failure`` + :class:`ShardUnavailable` (503);
        * read overrunning ``proxy_timeout_s`` → ``record_failure`` +
          :class:`ShardTimeout` (504).

        Whatever status a *reachable* worker answers — including its own
        429/503/504 — relays verbatim: the worker's refusals are typed
        already, and re-wrapping them would lose the Retry-After math.
        """
        topology = self.topology
        breaker = topology.breaker(shard)
        if not breaker.allow():
            raise ShardUnavailable(
                shard, "circuit breaker open", topology.retry_after_s(shard)
            )
        host, port = topology.address(shard)
        headers = dict(
            context_headers(self.server.obs.tracer.current_context())  # type: ignore[attr-defined]
        )
        if body is not None:
            headers["Content-Type"] = "application/json"
        timeout_s = self.server.proxy_timeout_s  # type: ignore[attr-defined]
        conn = HTTPConnection(host, port, timeout=timeout_s)
        try:
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            data = response.read()
        except TimeoutError:
            breaker.record_failure()
            topology.notify_failure(shard)
            raise ShardTimeout(shard, timeout_s) from None
        except (OSError, HTTPException) as exc:
            breaker.record_failure()
            topology.notify_failure(shard)
            raise ShardUnavailable(
                shard,
                f"{type(exc).__name__}: {exc}",
                topology.retry_after_s(shard),
            ) from None
        finally:
            conn.close()
        breaker.record_success()
        relayed = {
            name: response.headers[name]
            for name in _RELAYED_HEADERS
            if response.headers.get(name) is not None
        }
        return _ProxyResult(
            response.status,
            data,
            response.headers.get("Content-Type", "application/json"),
            relayed,
        )

    def _proxy_json(self, shard, path: str) -> dict:
        """GET ``path`` on ``shard`` and decode; worker errors re-raise typed."""
        result = self._proxy_raw(shard, "GET", path)
        payload = json.loads(result.body)
        if result.status >= 400:
            raise ApiError(
                result.status,
                payload.get("error", f"shard {shard} answered {result.status}"),
                headers=result.headers,
            )
        return payload

    def _sorted_shards(self) -> list:
        return sorted(self.topology.ring.shards, key=str)

    # --------------------------------------------------------------- routes

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        self._dispatch(self._route_get)

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        self._dispatch(self._route_post)

    def do_PUT(self) -> None:  # noqa: N802 - stdlib naming
        self._dispatch(self._route_other("PUT"))

    def do_DELETE(self) -> None:  # noqa: N802 - stdlib naming
        self._dispatch(self._route_other("DELETE"))

    def do_PATCH(self) -> None:  # noqa: N802 - stdlib naming
        self._dispatch(self._route_other("PATCH"))

    def _route_other(self, method: str):
        parts = [p for p in urlparse(self.path).path.split("/") if p]

        def route():
            self._method_not_allowed(parts, method)

        return route

    def _route_get(self):
        url = urlparse(self.path)
        parts = [p for p in url.path.split("/") if p]
        query = parse_qs(url.query)
        if parts == ["healthz"]:
            return self._aggregate_health(), 200
        if parts == ["metricz"]:
            fmt = query.get("format", ["json"])[0]
            if fmt == "prometheus":
                return self._merged_prometheus(), 200
            if fmt != "json":
                raise ApiError(
                    400, f"format must be 'json' or 'prometheus', got {fmt!r}"
                )
            return self._aggregate_metrics(), 200
        if parts == ["cluster"]:
            info = self.topology.describe()
            key = query.get("key", [None])[0]
            if key is not None:
                info["key"] = key
                info["shard"] = str(self.topology.ring.shard_for(key))
            return info, 200
        if parts == ["runs"]:
            return self._aggregate_runs(), 200
        if len(parts) == 3 and parts[0] == "runs" and parts[2] in _RUN_ENDPOINTS:
            shard = self.topology.ring.shard_for(parts[1])
            result = self._proxy_raw(shard, "GET", self.path)
            return result, result.status
        raise ApiError(404, f"no such endpoint: GET {url.path}")

    def _route_post(self):
        parts = [p for p in urlparse(self.path).path.split("/") if p]
        if parts != ["runs"]:
            self._method_not_allowed(parts, "POST")
        spec = read_json_body(self)
        # The ring routes on run_id, so one must exist *before* the
        # worker is chosen: the router mints ids the worker would have.
        run_id = spec.get("run_id")
        if not run_id:
            kind = spec.get("kind")
            if kind not in ("hfl", "vfl"):
                raise ApiError(400, "kind must be 'hfl' or 'vfl'")
            run_id = f"{kind}-c{self.server.next_auto_id()}"  # type: ignore[attr-defined]
            spec["run_id"] = run_id
        shard = self.topology.ring.shard_for(str(run_id))
        result = self._proxy_raw(
            shard, "POST", "/runs", body=json.dumps(spec).encode()
        )
        return result, result.status

    # --------------------------------------------------------- aggregation

    def _aggregate_health(self) -> dict:
        shards: dict = {}
        down: list[str] = []
        status = "ok"
        for shard in self._sorted_shards():
            try:
                payload = self._proxy_json(shard, "/healthz")
            except (ShardUnavailable, ShardTimeout) as exc:
                shards[str(shard)] = {"status": "down", "error": str(exc)}
                down.append(str(shard))
                status = "degraded"
                continue
            shards[str(shard)] = payload
            if payload.get("status") != "ok":
                status = "degraded"
        return {
            "status": status,
            "workers": len(shards),
            "down": down,
            "shards": shards,
        }

    def _aggregate_runs(self) -> dict:
        runs: list[dict] = []
        unavailable: list[dict] = []
        for shard in self._sorted_shards():
            try:
                payload = self._proxy_json(shard, "/runs")
            except (ShardUnavailable, ShardTimeout) as exc:
                unavailable.append({"shard": str(shard), "error": str(exc)})
                continue
            for run in payload.get("runs", []):
                run["shard"] = str(shard)
                runs.append(run)
        return {"runs": runs, "unavailable": unavailable}

    def _aggregate_metrics(self) -> dict:
        workers: dict = {}
        for shard in self._sorted_shards():
            try:
                workers[str(shard)] = self._proxy_json(shard, "/metricz")
            except (ShardUnavailable, ShardTimeout) as exc:
                workers[str(shard)] = {"status": "down", "error": str(exc)}
        return {
            "router": {
                "latency": {
                    "http": self.server.request_latency.summary()  # type: ignore[attr-defined]
                },
            },
            "workers": workers,
            "topology": self.topology.describe(),
        }

    def _merged_prometheus(self) -> RawResponse:
        """One Prometheus page for the whole cluster.

        Every worker's registry snapshot folds into a fresh registry via
        :meth:`~repro.obs.registry.MetricsRegistry.merge` under a
        ``worker="<shard>"`` label; the router's own registry merges
        under ``worker="router"``.  Unreachable workers are counted, not
        fatal — a scrape during failover still renders.
        """
        merged = MetricsRegistry()
        merged.merge(
            self.server.obs.registry.snapshot(),  # type: ignore[attr-defined]
            labels={"worker": "router"},
        )
        shards = self._sorted_shards()
        down = 0
        for shard in shards:
            try:
                payload = self._proxy_json(shard, "/metricz?format=snapshot")
            except (ShardUnavailable, ShardTimeout):
                down += 1
                continue
            merged.merge(payload["snapshot"], labels={"worker": str(shard)})
        merged.gauge(
            "repro_cluster_shards", help="shards on the hash ring"
        ).set(len(shards))
        merged.gauge(
            "repro_cluster_shards_down",
            help="shards unreachable at scrape time",
        ).set(down)
        return RawResponse(
            merged.render_prometheus(), PROMETHEUS_CONTENT_TYPE
        )


class ClusterRouter(ThreadingHTTPServer):
    """The cluster's front door: one port, N shard workers behind it."""

    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        topology,
        *,
        obs: Observability | None = None,
        proxy_timeout_s: float = 30.0,
        verbose: bool = False,
    ) -> None:
        super().__init__(address, _RouterHandler)
        self.topology = topology
        self.obs = obs if obs is not None else Observability()
        self.proxy_timeout_s = proxy_timeout_s
        self.verbose = verbose
        self.request_latency = LatencyHistogram()
        self.obs.registry.register(
            "repro_router_request_latency_seconds",
            self.request_latency,
            help="router wall time, routing through response write",
            exist_ok=True,
        )
        self._auto_ids = itertools.count(1)

    def next_auto_id(self) -> int:
        return next(self._auto_ids)

    @property
    def port(self) -> int:
        return self.server_address[1]

    def serve_background(self) -> threading.Thread:
        """Serve on a daemon thread (tests / in-process embedding)."""
        thread = threading.Thread(target=self.serve_forever, daemon=True)
        thread.start()
        return thread


def serve_cluster(
    host: str = "127.0.0.1",
    router_port: int = 8733,
    n_shards: int = 3,
    *,
    wal_root: str | None = None,
    cache_bytes: int = 64 * 1024 * 1024,
    max_workers: int = 4,
    query_deadline_ms: float | None = None,
    admission_limit: int | None = None,
    chaos_ingest_ms: float = 0.0,
    trace: bool = False,
    verbose: bool = True,
) -> int:
    """Run a sharded cluster until interrupted; ``repro serve --cluster N``.

    Without ``wal_root`` the WALs live in a fresh temporary directory
    (printed) — failover still replays, but a *cluster* restart starts
    empty.  Point ``--wal-dir`` somewhere durable for that.
    """
    if wal_root is None:
        wal_root = tempfile.mkdtemp(prefix="repro-cluster-wal-")
        print(f"cluster WALs (temporary): {wal_root}")
    supervisor = ClusterSupervisor(
        n_shards,
        wal_root=wal_root,
        host=host,
        cache_bytes=cache_bytes,
        max_workers=max_workers,
        query_deadline_ms=query_deadline_ms,
        admission_limit=admission_limit,
        chaos_ingest_ms=chaos_ingest_ms,
        trace=trace,
        verbose=verbose,
    )
    supervisor.start()
    router = ClusterRouter(
        (host, router_port),
        supervisor,
        obs=Observability(trace=trace),
        verbose=verbose,
    )
    print(
        f"repro-serve cluster: router on http://{host}:{router.port}, "
        f"{n_shards} shard worker(s)"
    )
    for shard, spec in sorted(supervisor.specs.items()):
        print(f"  shard {shard}: http://{spec.host}:{spec.port} "
              f"(wal: {spec.wal_dir})")
    print("endpoints: /healthz /metricz[?format=prometheus] /cluster[?key=] "
          "/runs /runs/{id}/contributions /runs/{id}/leaderboard "
          "/runs/{id}/weights /runs/{id}/profile")
    try:
        router.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down cluster")
    finally:
        router.server_close()
        supervisor.stop()
    return 0
