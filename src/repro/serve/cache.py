"""Content-addressed result cache with an LRU byte budget.

Every query answer the service hands out is a pure function of *content*:
the training-log prefix ingested so far (hashed with the same array scheme
as the checksums :mod:`repro.io` embeds in ``.npz`` files), the validation
set and model architecture, the estimator configuration, and the query
parameters.  Keying the cache on those digests — never on run ids — means
two runs registered from the same saved log share every cached answer and
every memoised validation gradient, and a re-registration after a server
restart is warm from the first query.

The cache is a plain LRU over a byte budget: small (a few MB) because the
cached values are per-party score vectors and JSON payloads, not
gradients.  Hit/miss/eviction counters feed ``/metricz``.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Any, Callable, Iterator, MutableMapping

import numpy as np

from repro.hfl.log import EpochRecord
from repro.io import hash_arrays
from repro.metrics.cost import nbytes
from repro.vfl.log import VFLEpochRecord


def payload_nbytes(value: Any) -> int:
    """Byte cost charged against the budget for one cached value."""
    try:
        return max(nbytes(value), 1)
    except TypeError:
        # Unsized objects (reports, futures) are charged a flat guess; the
        # budget is about bounding memory, not accounting it to the byte.
        return 1024


class RunDigest:
    """Incremental content identity of a training-log prefix.

    Seeded with the run's static fingerprint (estimator kind and options,
    validation-set and model-architecture hashes) and updated with every
    ingested epoch record — using :func:`repro.io.hash_arrays`, the exact
    scheme behind the checksums embedded in saved ``.npz`` logs.  After
    ingesting a full log the digest is therefore a deterministic function
    of the same bytes :func:`repro.io.training_log_checksum` hashes, so
    identical logs collapse onto identical cache keys.
    """

    def __init__(self, *seed_parts: str) -> None:
        self._digest = hashlib.sha256()
        for part in seed_parts:
            self._digest.update(part.encode())
            self._digest.update(b"\x00")
        self._epochs = 0

    @property
    def epochs(self) -> int:
        return self._epochs

    def update_hfl(self, record: EpochRecord) -> str:
        """Absorb one HFL epoch record; returns the new hex state."""
        hash_arrays(
            self._digest,
            {
                "theta_before": record.theta_before,
                "local_updates": record.local_updates,
                "weights": record.weights,
                "participation": record.participation_mask().astype(np.uint8),
            },
        )
        self._digest.update(repr((record.epoch, record.lr)).encode())
        self._epochs += 1
        return self.hexdigest()

    def update_vfl(self, record: VFLEpochRecord) -> str:
        """Absorb one VFL epoch record; returns the new hex state."""
        hash_arrays(
            self._digest,
            {
                "theta_before": record.theta_before,
                "train_gradient": record.train_gradient,
                "val_gradient": record.val_gradient,
                "weights": record.weights,
                "participation": record.participation_mask().astype(np.uint8),
            },
        )
        self._digest.update(repr((record.epoch, record.lr)).encode())
        self._epochs += 1
        return self.hexdigest()

    def hexdigest(self) -> str:
        return self._digest.copy().hexdigest()

    def fork(self) -> "RunDigest":
        """An independent copy of the current digest state.

        The service ingests *atomically*: it absorbs the record into a
        fork, feeds the estimator, and only then commits the fork as the
        run's digest — so a failed (or chaos-injected) ingest leaves the
        run's content identity untouched and cache keys never point at
        state the estimator does not hold.
        """
        copy = RunDigest()
        copy._digest = self._digest.copy()
        copy._epochs = self._epochs
        return copy


def fingerprint_arrays(**arrays: np.ndarray) -> str:
    """SHA-256 fingerprint of named arrays (validation sets, blocks)."""
    digest = hashlib.sha256()
    hash_arrays(digest, {k: np.asarray(v) for k, v in arrays.items()})
    return digest.hexdigest()


class ResultCache:
    """Thread-safe LRU cache bounded by a byte budget.

    ``get``/``put`` are the raw interface; :meth:`get_or_compute` is the
    read-through form the service uses; :meth:`memo` adapts a key prefix
    into the ``MutableMapping`` interface
    :func:`repro.core.valgrad.epoch_validation_gradient` expects.

    A value larger than the whole budget is never admitted (it would only
    evict everything and then miss anyway); the ``rejected`` counter
    records those.
    """

    def __init__(self, max_bytes: int = 64 * 1024 * 1024) -> None:
        if max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        self.max_bytes = int(max_bytes)
        self._entries: OrderedDict[Any, tuple[Any, int]] = OrderedDict()
        self._bytes = 0
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.rejected = 0

    def get(self, key) -> Any | None:
        """The cached value, marked most-recently-used — or ``None``."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry[0]

    def put(self, key, value, size: int | None = None) -> None:
        """Insert (or refresh) ``key``, evicting LRU entries past the budget."""
        size = payload_nbytes(value) if size is None else int(size)
        with self._lock:
            if size > self.max_bytes:
                self.rejected += 1
                return
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= old[1]
            self._entries[key] = (value, size)
            self._bytes += size
            while self._bytes > self.max_bytes:
                _, (_, evicted_size) = self._entries.popitem(last=False)
                self._bytes -= evicted_size
                self.evictions += 1

    def get_or_compute(self, key, compute: Callable[[], Any]) -> Any:
        """Read-through lookup: one miss computes and caches the value.

        The compute runs outside the cache lock — concurrent misses on the
        same key may compute twice (both arrive at the same value, since
        keys are content hashes), but a slow computation never blocks
        unrelated hits.
        """
        value = self.get(key)
        if value is None:
            value = compute()
            self.put(key, value)
        return value

    def __contains__(self, key) -> bool:
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def current_bytes(self) -> int:
        with self._lock:
            return self._bytes

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._bytes = 0

    def register_metrics(self, registry, *, prefix: str = "repro_serve_cache") -> None:
        """Expose this cache on a :class:`repro.obs.registry.MetricsRegistry`.

        Lookup outcomes become one labelled counter family
        (``{prefix}_events_total{event=...}``: hits, misses, evictions,
        rejections) read at scrape time — no extra work on the lookup
        path — plus byte/entry gauges.  ``exist_ok``: re-registering
        after a cache swap replaces the callbacks.
        """
        for event in ("hits", "misses", "evictions", "rejected"):
            registry.register(
                f"{prefix}_events_total",
                (lambda e=event: getattr(self, e)),
                kind="counter",
                help="Result-cache lookup outcomes by event type",
                labels={"event": event},
                exist_ok=True,
            )
        registry.register(
            f"{prefix}_bytes",
            lambda: self.current_bytes,
            kind="gauge",
            help="Bytes currently held by the result cache",
            exist_ok=True,
        )
        registry.register(
            f"{prefix}_entries",
            lambda: len(self),
            kind="gauge",
            help="Entries currently held by the result cache",
            exist_ok=True,
        )

    def stats(self) -> dict[str, int]:
        """Counters for ``/metricz``; ``lookups = hits + misses`` always."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "bytes": self._bytes,
                "max_bytes": self.max_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "lookups": self.hits + self.misses,
                "evictions": self.evictions,
                "rejected": self.rejected,
            }

    def memo(self, prefix: str) -> "CacheMemo":
        """A ``MutableMapping`` view of this cache under a key namespace."""
        return CacheMemo(self, prefix)


class CacheMemo(MutableMapping):
    """Mapping adapter: ``memo[k]`` ⇄ ``cache[(prefix, k)]``.

    Plugs a :class:`ResultCache` into memo-taking helpers like
    :func:`repro.core.valgrad.validation_gradients`, so validation
    gradients share the budget — and the eviction policy — with query
    results.  Deletion and iteration are unsupported (an LRU cache is not
    an inventory); ``len`` reports the whole cache.
    """

    def __init__(self, cache: ResultCache, prefix: str) -> None:
        self.cache = cache
        self.prefix = prefix

    def __getitem__(self, key):
        value = self.cache.get((self.prefix, key))
        if value is None:
            raise KeyError(key)
        return value

    def get(self, key, default=None):
        value = self.cache.get((self.prefix, key))
        return default if value is None else value

    def __setitem__(self, key, value) -> None:
        self.cache.put((self.prefix, key), value)

    def __delitem__(self, key) -> None:
        raise TypeError("cache-backed memos do not support deletion")

    def __iter__(self) -> Iterator:
        raise TypeError("cache-backed memos are not iterable")

    def __len__(self) -> int:
        return len(self.cache)
