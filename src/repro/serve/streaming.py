"""Incremental DIG-FL estimators: one epoch in, contributions out.

The paper's per-epoch decomposition (Lemma 3, Eq. 13–15) makes the
whole-process contribution a plain sum of per-epoch terms, so evaluation
does not have to be a batch job: ingesting epoch ``τ+1`` costs exactly one
validation gradient and ``n`` dot products (Algorithm 2's per-epoch step),
never a re-read of epochs ``1..τ``.  These estimators are that loop turned
inside out — and they are *bit-for-bit* the batch estimators:

* every per-epoch row is computed through the same expressions, in the
  same order, as :func:`repro.core.digfl_hfl.estimate_hfl_resource_saving`
  / :func:`repro.core.digfl_vfl.estimate_vfl_first_order` (shared helper
  :mod:`repro.core.valgrad` for the validation gradients, shared branch
  structure for participation masks and quarantined parties);
* :meth:`report` rebuilds totals via
  :func:`repro.core.contribution.from_per_epoch` on the stacked matrix, so
  even the float summation order matches the batch path.

Running state is O(n + p): the per-epoch score rows (``n`` floats each, no
gradients), the latest Eq. 17–18 reweight vector, and one transient
``p``-vector per ingest for the validation gradient.  Thread safety is the
caller's job — :class:`repro.serve.service.EvaluationService` holds a
per-run lock around every ingest and query.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.core.contribution import ContributionReport, from_per_epoch
from repro.core.reweight import rectified_weights, softmax_weights
from repro.core.valgrad import GradientMemo, epoch_validation_gradient
from repro.data.dataset import Dataset
from repro.hfl.log import EpochRecord, TrainingLog
from repro.metrics.cost import CostLedger
from repro.nn.models import Classifier
from repro.obs.profile import NULL_PROFILER
from repro.vfl.log import VFLEpochRecord, VFLTrainingLog


class _StreamingBase:
    """Shared bookkeeping: per-epoch rows, totals, running reweight vector."""

    method: str

    def __init__(self, participant_ids: Sequence[int]) -> None:
        self.participant_ids = list(participant_ids)
        self.ledger = CostLedger()
        self._rows: list[np.ndarray] = []
        self._weights: list[np.ndarray] = []
        # Phase timers around the ingest hot path (valgrad, dot products).
        # The service swaps in the run's profiler at registration; the
        # default records nothing.
        self.profiler = NULL_PROFILER

    @property
    def n_participants(self) -> int:
        return len(self.participant_ids)

    @property
    def n_epochs(self) -> int:
        return len(self._rows)

    def per_epoch(self) -> np.ndarray:
        """The (τ, n) per-epoch contribution matrix ingested so far."""
        if not self._rows:
            return np.empty((0, self.n_participants))
        return np.vstack(self._rows)

    def totals(self) -> np.ndarray:
        """Whole-process contributions (Eq. 15) over the ingested prefix.

        Summed column-wise over the stacked matrix — the identical
        reduction :func:`from_per_epoch` performs — so totals never drift
        from what a batch re-estimate of the same prefix would report.
        """
        return self.per_epoch().sum(axis=0)

    def report(self) -> ContributionReport:
        """A :class:`ContributionReport` bit-for-bit equal to the batch one."""
        if not self._rows:
            raise ValueError("no epochs ingested yet")
        return from_per_epoch(
            self.method, self.participant_ids, self.per_epoch(), ledger=self.ledger
        )

    def leaderboard(self, top: int | None = None) -> list[tuple[int, float]]:
        """(participant, total) pairs, best first; mid-training queryable."""
        totals = self.totals()
        order = np.argsort(totals)[::-1]
        if top is not None:
            order = order[:top]
        return [(self.participant_ids[i], float(totals[i])) for i in order]

    def current_weights(self, scheme: str = "rectified", temperature: float = 1.0) -> np.ndarray:
        """Eq. 17–18 aggregation weights from the latest ingested epoch.

        Exactly what the reweight mechanism would apply next round: the
        latest per-epoch contributions pushed through the rectified
        projection (or the softmax ablation).
        """
        if not self._rows:
            raise ValueError("no epochs ingested yet")
        if scheme == "rectified":
            return rectified_weights(self._rows[-1])
        if scheme == "softmax":
            return softmax_weights(self._rows[-1], temperature)
        raise ValueError(f"scheme must be 'rectified' or 'softmax', got {scheme!r}")

    def weight_history(self) -> np.ndarray:
        """(τ, n) matrix of the Eq. 17 weights after each ingested epoch."""
        if not self._weights:
            return np.empty((0, self.n_participants))
        return np.vstack(self._weights)

    def _push(self, row: np.ndarray) -> np.ndarray:
        self._rows.append(row)
        self._weights.append(rectified_weights(row))
        return row


class StreamingHFLEstimator(_StreamingBase):
    """Algorithm 2 (Eq. 16), one :class:`EpochRecord` at a time.

    Construction mirrors :func:`estimate_hfl_resource_saving`'s signature;
    ``ingest`` accepts the records in log order and returns the epoch's
    per-epoch contribution row.  ``memo``/``memo_key`` plug into the
    content-addressed gradient memo of :mod:`repro.serve.cache`.
    """

    method = "digfl-resource-saving"

    def __init__(
        self,
        participant_ids: Sequence[int],
        validation: Dataset,
        model_factory: Callable[[], Classifier],
        *,
        use_logged_weights: bool = False,
        val_grad_memo: GradientMemo | None = None,
    ) -> None:
        super().__init__(participant_ids)
        self.validation = validation
        self.model = model_factory()
        self.use_logged_weights = use_logged_weights
        self.val_grad_memo = val_grad_memo

    def ingest(self, record: EpochRecord, *, memo_key: str | None = None) -> np.ndarray:
        """Consume one epoch: one validation gradient, ``n`` dot products."""
        n = self.n_participants
        if record.local_updates.shape[0] != n:
            raise ValueError(
                f"record carries {record.local_updates.shape[0]} update rows, "
                f"expected {n}"
            )
        with self.ledger.computing():
            with self.profiler.phase("estimator.valgrad"):
                val_grad = epoch_validation_gradient(
                    self.model,
                    record.theta_before,
                    self.validation,
                    memo=self.val_grad_memo,
                    key=memo_key,
                    epoch=self.n_epochs,
                )
            # The branch structure below is estimate_hfl_resource_saving's,
            # verbatim — the bit-for-bit equivalence contract.
            with self.profiler.phase("estimator.dot_products"):
                raw = record.local_updates @ val_grad
                if self.use_logged_weights:
                    row = record.weights * raw
                elif record.participation is None:
                    row = raw / n
                else:
                    mask = record.participation
                    arrived = int(mask.sum())
                    if arrived == 0:
                        row = np.zeros(n)
                    else:
                        row = np.where(mask, raw, 0.0) / arrived
        return self._push(row)

    def ingest_log(self, log: TrainingLog, *, start: int = 0) -> int:
        """Batch-ingest ``log.records[start:]``; returns epochs consumed."""
        if list(log.participant_ids) != self.participant_ids:
            raise ValueError(
                f"log participants {log.participant_ids} do not match "
                f"{self.participant_ids}"
            )
        for record in log.records[start:]:
            self.ingest(record)
        return log.n_epochs - start


class StreamingVFLEstimator(_StreamingBase):
    """Eq. 27, one :class:`VFLEpochRecord` at a time.

    Needs no validation set or model: the VFL log already carries both
    gradient factors of every per-epoch term.
    """

    method = "digfl-vfl"

    def __init__(
        self,
        feature_blocks: Sequence[np.ndarray],
        active_parties: Sequence[int],
    ) -> None:
        super().__init__(active_parties)
        self.feature_blocks = [np.asarray(b) for b in feature_blocks]

    def ingest(self, record: VFLEpochRecord, *, memo_key: str | None = None) -> np.ndarray:
        """Consume one epoch: one scalar product per participating party."""
        del memo_key  # Eq. 27 reads the record only; nothing to memoise
        with self.ledger.computing(), self.profiler.phase("estimator.dot_products"):
            row = np.zeros(self.n_participants)
            for col, party in enumerate(self.participant_ids):
                if not record.participated(party):
                    continue  # the row entry stays 0 for the missed round
                block = self.feature_blocks[party]
                row[col] = record.lr * float(
                    record.val_gradient[block] @ record.train_gradient[block]
                )
        return self._push(row)

    def ingest_log(self, log: VFLTrainingLog, *, start: int = 0) -> int:
        """Batch-ingest ``log.records[start:]``; returns epochs consumed."""
        if list(log.active_parties) != self.participant_ids:
            raise ValueError(
                f"log parties {log.active_parties} do not match "
                f"{self.participant_ids}"
            )
        for record in log.records[start:]:
            self.ingest(record)
        return log.n_epochs - start
