"""In-process contribution evaluation service.

One :class:`EvaluationService` owns a registry of *runs* (streaming
estimator + incremental content digest + lock + circuit breaker), a
shared :class:`~repro.serve.cache.ResultCache`, a request thread pool
behind a bounded admission queue, and latency histograms.  Producers
push epochs in — either batched from a saved log or live from the
:mod:`repro.runtime` engine through a :class:`ContributionPublisher` —
and any number of consumer threads query contributions, leaderboards and
Eq. 17 reweight vectors mid-training.

Concurrency model, in one paragraph: the registry is guarded by one lock;
each run is guarded by its own re-entrant lock, held for the duration of
every ingest *and* every query touching that run's estimator, so a query
always observes a whole number of epochs.  Query answers are cached
content-addressed (log-prefix digest + query parameters); the cache is
itself thread-safe, so hits never take the run lock's slow path twice.
Validation gradients are memoised through the same cache under the
epoch's digest snapshot, which is what makes repeated and concurrent
queries cheap (see ``benchmarks/bench_serve.py``).

Resilience model (:mod:`repro.serve.resilience`), in a second paragraph:
every query may carry a :class:`~repro.serve.resilience.Deadline`
(``query_deadline_ms``), checked cooperatively at safe points and at the
``Future`` boundary of :meth:`query`; a bounded admission queue sheds
load with :class:`~repro.serve.resilience.ServiceOverloaded` instead of
queueing without bound; each run has a circuit breaker that, after
consecutive estimator failures or timeouts, stops recomputing and serves
the run's *last good* answer marked ``"stale": true`` — because
contribution scores are volatile across reruns, a consistent stale
answer beats an error and beats a nervous recompute.  Computed payloads
are validated (finite numbers only) so chaos-corrupted results are
treated as failures, never cached.  :meth:`close` is idempotent, and
every public method fails fast with
:class:`~repro.serve.resilience.ServiceClosed` afterwards.  An attached
:class:`~repro.serve.wal.WriteAheadLog` makes registrations and ingested
prefixes durable for ``repro serve --recover``.
"""

from __future__ import annotations

import itertools
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeout
from typing import TYPE_CHECKING, Callable, Sequence

import numpy as np

from repro.core.backends import HFLRunContext, VFLRunContext, get_backend
from repro.core.contribution import ContributionReport
from repro.data.dataset import Dataset
from repro.hfl.log import EpochRecord, TrainingLog
from repro.metrics.cost import LatencyHistogram
from repro.nn.models import Classifier
from repro.obs import Observability
from repro.obs.profile import NULL_PROFILER
from repro.serve.cache import ResultCache, RunDigest, fingerprint_arrays
from repro.serve.resilience import (
    AdmissionQueue,
    CircuitBreaker,
    CircuitOpen,
    Deadline,
    DeadlineExceeded,
    QueryFailed,
    RetryPolicy,
    ServiceClosed,
    ServiceOverloaded,
    retry_after_seconds,
)
from repro.serve.streaming import _StreamingBase
from repro.vfl.log import VFLEpochRecord, VFLTrainingLog

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.serve.wal import WriteAheadLog

_VAL_GRAD_PREFIX = "valgrad"
# Errors that mean "the caller asked wrong", not "the estimator is sick":
# they pass through untouched and never count against a breaker.
_CALLER_ERRORS = (ValueError, KeyError, TypeError)


class _Run:
    """One registered run: estimator, digest, lock, breaker, last-good answers."""

    def __init__(
        self,
        run_id: str,
        kind: str,
        estimator: _StreamingBase,
        digest: RunDigest,
        breaker: CircuitBreaker,
        estimator_name: str = "digfl",
    ) -> None:
        self.run_id = run_id
        self.kind = kind
        self.estimator = estimator
        self.estimator_name = estimator_name
        self.digest = digest
        self.lock = threading.RLock()
        self.breaker = breaker
        self.profiler = NULL_PROFILER  # the service swaps in the run's own
        # (query name, params) -> the last successfully computed payload,
        # served stale-marked while the breaker refuses fresh computes.
        self.last_good: dict[tuple[str, str], dict] = {}

    def summary(self) -> dict:
        with self.lock:
            return {
                "run_id": self.run_id,
                "kind": self.kind,
                "estimator": self.estimator_name,
                "epochs": self.estimator.n_epochs,
                "participants": list(self.estimator.participant_ids),
                "breaker": self.breaker.state,
            }


class EvaluationService:
    """Caching, concurrent, failure-isolating query service.

    ``cache_bytes`` bounds the shared result/gradient cache;
    ``max_workers`` sizes the pool behind :meth:`query`/:meth:`submit`;
    ``query_deadline_ms`` is the default per-request deadline (None: no
    deadline); ``admission_limit`` bounds admitted-but-unfinished pool
    requests (None: unbounded — the library default; ``repro serve``
    sets it); ``breaker_failures``/``breaker_reset_s`` parameterise the
    per-run circuit breakers; ``wal`` makes registry mutations durable.
    All public methods are thread-safe.
    """

    def __init__(
        self,
        *,
        cache_bytes: int = 64 * 1024 * 1024,
        max_workers: int = 4,
        query_deadline_ms: float | None = None,
        admission_limit: int | None = None,
        breaker_failures: int = 3,
        breaker_reset_s: float = 30.0,
        wal: "WriteAheadLog | None" = None,
        obs: Observability | None = None,
    ) -> None:
        self.cache = ResultCache(cache_bytes)
        self.ingest_latency = LatencyHistogram()
        self.query_latency = LatencyHistogram()
        self.query_deadline_ms = query_deadline_ms
        self.admission = AdmissionQueue(admission_limit)
        self.breaker_failures = breaker_failures
        self.breaker_reset_s = breaker_reset_s
        self.wal = wal
        # The default bundle keeps tracing off (no per-request spans) but
        # metrics and per-run profiling on — they cost nothing on the warm
        # query path (scrape-time callbacks / phase timers inside
        # millisecond ingests; benchmarks/bench_obs.py holds the line).
        self.obs = obs if obs is not None else Observability()
        # Tracing posture is fixed at construction; the cached flag keeps
        # the disabled query() fast path to a single attribute read.
        self._trace_off = not self.obs.tracer.enabled
        self._runs: dict[str, _Run] = {}
        self._registry_lock = threading.Lock()
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-serve"
        )
        self._auto_ids = itertools.count(1)
        self._started_at = time.perf_counter()
        self._closed = False
        self._close_lock = threading.Lock()
        self._register_metrics()

    def _register_metrics(self) -> None:
        """Absorb the service's instruments into the obs metrics registry."""
        reg = self.obs.registry
        reg.register(
            "repro_serve_ingest_latency_seconds",
            self.ingest_latency,
            help="EvaluationService.ingest wall time per epoch record",
            exist_ok=True,
        )
        reg.register(
            "repro_serve_query_latency_seconds",
            self.query_latency,
            help="EvaluationService query wall time per request",
            exist_ok=True,
        )
        self.cache.register_metrics(reg)
        reg.register(
            "repro_serve_admission_depth",
            self.admission.depth,
            help="Admitted-but-unfinished requests",
            exist_ok=True,
        )
        reg.register(
            "repro_serve_admission_in_flight",
            self.admission.in_flight,
            help="Requests currently executing on the pool",
            exist_ok=True,
        )
        reg.register(
            "repro_serve_admission_shed_total",
            lambda: self.admission.shed,
            kind="counter",
            help="Requests refused by the bounded admission queue",
            exist_ok=True,
        )
        reg.register(
            "repro_serve_runs",
            lambda: len(self._runs),
            kind="gauge",
            help="Registered runs",
            exist_ok=True,
        )
        reg.register(
            "repro_serve_uptime_seconds",
            lambda: time.perf_counter() - self._started_at,
            kind="gauge",
            help="Seconds since the service was constructed",
            exist_ok=True,
        )
        # New first-class counters: breaker transitions (fed by the
        # breakers' on_open hook) and publisher dead letters.
        self.breaker_opens_total = reg.counter(
            "repro_serve_breaker_opens_total",
            help="Circuit-breaker closed/half-open to open transitions",
        )
        self.dlq_total = reg.counter(
            "repro_serve_publish_dlq_total",
            help="Epoch records dead-lettered by contribution publishers",
        )

    @property
    def closed(self) -> bool:
        return self._closed

    def _ensure_open(self) -> None:
        if self._closed:
            raise ServiceClosed()

    # --------------------------------------------------------- registration

    def register_hfl(
        self,
        participant_ids: Sequence[int],
        validation: Dataset,
        model_factory: Callable[[], Classifier],
        *,
        run_id: str | None = None,
        use_logged_weights: bool = False,
        estimator: str = "digfl",
        estimator_options: dict | None = None,
    ) -> str:
        """Register an (initially empty) HFL run; returns its id.

        ``estimator`` names a registered backend
        (:func:`repro.core.backends.get_backend`); ``estimator_options``
        parameterise it.  The run's content digest is seeded with the
        validation-set hash, the model architecture and the backend's
        digest token (name + options), so cached answers are shared
        exactly between runs that would compute identical numbers — and
        never across backends.  Validation gradients are memoised in a
        namespace keyed on the validation set and model architecture
        *only*, so every backend and option combination over the same
        data shares them.
        """
        backend = get_backend(estimator, **(estimator_options or {}))
        backend.require("hfl")
        probe = model_factory()
        val_fingerprint = fingerprint_arrays(X=validation.X, y=validation.y)
        architecture = f"{type(probe).__name__}:{probe.num_parameters()}"
        seed = RunDigest(
            "hfl",
            backend.digest_token(),
            f"use_logged_weights={use_logged_weights}",
            val_fingerprint,
            architecture,
        )
        ctx = HFLRunContext(
            participant_ids,
            validation,
            model_factory,
            use_logged_weights=use_logged_weights,
            val_grad_memo=self.cache.memo(
                f"{_VAL_GRAD_PREFIX}:{val_fingerprint}:{architecture}"
            ),
        )
        return self._register(
            run_id, "hfl", backend.streaming_hfl(ctx), seed, backend.name
        )

    def register_vfl(
        self,
        feature_blocks: Sequence[np.ndarray],
        active_parties: Sequence[int],
        *,
        run_id: str | None = None,
        estimator: str = "digfl",
        estimator_options: dict | None = None,
    ) -> str:
        """Register an (initially empty) VFL run; returns its id."""
        backend = get_backend(estimator, **(estimator_options or {}))
        backend.require("vfl")
        seed = RunDigest(
            "vfl",
            backend.digest_token(),
            fingerprint_arrays(
                **{f"block_{i}": np.asarray(b) for i, b in enumerate(feature_blocks)}
            ),
            repr(list(active_parties)),
        )
        ctx = VFLRunContext(feature_blocks, active_parties)
        return self._register(
            run_id, "vfl", backend.streaming_vfl(ctx), seed, backend.name
        )

    def register_hfl_log(self, log: TrainingLog, validation, model_factory, **kwargs) -> str:
        """Register an HFL run and ingest a complete log in one call."""
        run_id = self.register_hfl(
            log.participant_ids, validation, model_factory, **kwargs
        )
        self.ingest_log(run_id, log)
        return run_id

    def register_vfl_log(self, log: VFLTrainingLog, *, run_id: str | None = None, **kwargs) -> str:
        """Register a VFL run and ingest a complete log in one call."""
        run_id = self.register_vfl(
            log.feature_blocks, log.active_parties, run_id=run_id, **kwargs
        )
        self.ingest_log(run_id, log)
        return run_id

    def _register(
        self,
        run_id: str | None,
        kind: str,
        estimator: _StreamingBase,
        digest: RunDigest,
        estimator_name: str = "digfl",
    ) -> str:
        self._ensure_open()
        breaker = CircuitBreaker(
            self.breaker_failures,
            self.breaker_reset_s,
            on_open=self.breaker_opens_total.inc,
        )
        with self._registry_lock:
            if run_id is None:
                run_id = f"{kind}-{next(self._auto_ids)}"
            if run_id in self._runs:
                raise ValueError(f"run id {run_id!r} already registered")
            run = _Run(run_id, kind, estimator, digest, breaker, estimator_name)
            # Hand the estimator this run's phase profiler so its hot-path
            # timers (valgrad, dot products) aggregate under the run id.
            run.profiler = self.obs.profiles.for_run(run_id)
            estimator.profiler = run.profiler
            self._runs[run_id] = run
        return run_id

    def record_registration(self, spec: dict) -> None:
        """Durably log a spec-level registration (``POST /runs``) to the WAL.

        The HTTP layer calls this *after* registering and *before*
        ingesting, so the WAL's order (register, then that run's ingests)
        is exactly the replay order recovery needs.  No WAL, no-op.
        """
        if self.wal is not None:
            from repro.serve import wal as _wal

            with self.obs.tracer.span("wal.append", kind=_wal.REGISTER):
                self.wal.append(_wal.REGISTER, dict(spec))

    def attach_wal(self, wal: "WriteAheadLog") -> None:
        """Start logging registry mutations to ``wal`` (post-recovery hook)."""
        if self.wal is not None and self.wal is not wal:
            raise ValueError("service already has a WAL attached")
        self.wal = wal

    def runs(self) -> list[dict]:
        """Summaries of every registered run."""
        self._ensure_open()
        with self._registry_lock:
            runs = list(self._runs.values())
        return [run.summary() for run in runs]

    def has_run(self, run_id: str) -> bool:
        """Is ``run_id`` registered?  (Idempotent-apply guard for replication.)"""
        with self._registry_lock:
            return run_id in self._runs

    def _run(self, run_id: str) -> _Run:
        with self._registry_lock:
            run = self._runs.get(run_id)
        if run is None:
            raise KeyError(f"unknown run id {run_id!r}")
        return run

    def run_digest(self, run_id: str) -> str:
        """The hex content digest of a run's ingested prefix (WAL recovery)."""
        run = self._run(run_id)
        with run.lock:
            return run.digest.hexdigest()

    # ------------------------------------------------------------ ingestion

    def ingest(
        self,
        run_id: str,
        record: EpochRecord | VFLEpochRecord,
        *,
        seq: int | None = None,
    ) -> int:
        """Feed one epoch record; returns the epoch count after ingestion.

        ``seq`` makes the call *idempotent*: it names the epoch count the
        record would bring the run to, and a record the run has already
        absorbed (``n_epochs >= seq``) is skipped — which is what lets
        the retrying :class:`ContributionPublisher` re-send after a
        transient failure without double-ingesting.  Ingestion is atomic:
        the digest is advanced on a fork and committed only after the
        estimator accepts the record, so a failed ingest changes nothing.
        """
        self._ensure_open()
        run = self._run(run_id)
        started = time.perf_counter()
        tracer = self.obs.tracer
        with tracer.span("serve.ingest", run_id=run_id, seq=seq) as span, run.lock:
            if seq is not None:
                if seq != run.estimator.n_epochs + 1:
                    if run.estimator.n_epochs >= seq:
                        span.set_attribute("replayed", True)
                        return run.estimator.n_epochs  # idempotent replay
                    raise ValueError(
                        f"out-of-order ingest: run {run_id!r} holds "
                        f"{run.estimator.n_epochs} epochs, got seq {seq}"
                    )
            with run.profiler.phase("cache.digest"):
                candidate = run.digest.fork()
                if run.kind == "hfl":
                    candidate.update_hfl(record)
                    # The gradient memo key is the *model state*, not the
                    # run digest: ∇loss^v(θ) depends only on θ (the memo
                    # namespace already pins the validation set and
                    # architecture), so runs that differ in backend or
                    # options — or replay the same log — share gradients.
                    memo_key = fingerprint_arrays(theta=record.theta_before)
                else:
                    memo_key = candidate.update_vfl(record)
            run.estimator.ingest(record, memo_key=memo_key)
            run.digest = candidate
            epochs = run.estimator.n_epochs
            span.set_attribute("epochs", epochs)
            if self.wal is not None:
                from repro.serve import wal as _wal

                with tracer.span("wal.append", kind=_wal.INGEST), run.profiler.phase(
                    "wal.fsync"
                ):
                    self.wal.append(
                        _wal.INGEST,
                        {
                            "run_id": run_id,
                            "epoch": epochs,
                            "digest": candidate.hexdigest(),
                        },
                    )
        self.ingest_latency.record(time.perf_counter() - started)
        self.obs.logger.debug(
            "serve.ingest", run_id=run_id, epochs=epochs, seq=seq
        )
        return epochs

    def ingest_log(
        self,
        run_id: str,
        log: TrainingLog | VFLTrainingLog,
        *,
        deadline: Deadline | None = None,
    ) -> int:
        """Batched ingestion of every not-yet-seen record of ``log``.

        Idempotent for a growing log: records before the run's current
        epoch count are assumed already ingested and skipped, so a
        producer can re-push the whole log each round.  The cooperative
        ``deadline`` is checked between records; expiry surfaces the
        epochs ingested so far as partial progress, and a retry resumes
        where the deadline cut in.
        """
        self._ensure_open()
        run = self._run(run_id)
        with run.lock:
            start = run.estimator.n_epochs
            for record in log.records[start:]:
                if deadline is not None:
                    deadline.check(epochs_ingested=run.estimator.n_epochs)
                self.ingest(run_id, record)
            return run.estimator.n_epochs

    def publisher(self, run_id: str, **kwargs) -> "ContributionPublisher":
        """A live-publishing hook for :meth:`repro.runtime.FederatedRuntime.run_hfl`.

        Keyword arguments parameterise the publisher's retry policy
        (``max_retries``, ``base_delay_s``, ``max_delay_s``, ``seed``,
        ``sleep``).
        """
        return ContributionPublisher(self, run_id, **kwargs)

    # -------------------------------------------------------------- queries

    def _cached_query(
        self,
        run: _Run,
        name: str,
        params: str,
        compute,
        deadline: Deadline | None,
    ):
        """Serve from cache; else compute under the breaker's protection.

        The key is the digest of the ingested prefix — content, not run
        id — so identical runs and repeated queries share one entry.
        Cached payloads are therefore run-agnostic; the requesting run's
        id (and staleness) is stamped on per request.  Failure ladder on
        a miss: breaker open → last good answer, ``"stale": true`` (none
        recorded → :class:`CircuitOpen`); compute raises or returns
        non-finite numbers → breaker failure, then the same stale
        fallback (none → :class:`QueryFailed`); compute overruns the
        deadline → the fresh value is still cached (the *next* caller
        gets it warm), the breaker counts a timeout, and
        :class:`DeadlineExceeded` surfaces with partial progress.
        """
        self._ensure_open()
        if deadline is not None:
            deadline.check()
        tracer = self.obs.tracer
        started = time.perf_counter()
        with run.lock:
            if run.estimator.n_epochs == 0:
                raise ValueError(f"run {run.run_id!r} has no epochs ingested yet")
            epochs = run.estimator.n_epochs
            key = ("query", run.digest.hexdigest(), name, params)
            # Parented by the worker's thread-local serve.compute span, so
            # the request trace shows where the time went: cache lookup vs
            # guarded estimator compute.
            with tracer.span("serve.cache", query=name) as cache_span:
                value = self.cache.get(key)
                cache_span.set_attribute("hit", value is not None)
            if value is None:
                with tracer.span("serve.estimator", query=name, epochs=epochs):
                    value = self._compute_guarded(
                        run, name, params, key, compute, deadline, epochs
                    )
        self.query_latency.record(time.perf_counter() - started)
        return self._stamp(run, value)

    @staticmethod
    def _stamp(run: _Run, value: dict) -> dict:
        """Stamp a run-agnostic cached payload with the requesting run's id."""
        return {
            "run_id": run.run_id,
            "estimator": run.estimator_name,
            "stale": value.get("_stale", False),
            **{k: v for k, v in value.items() if k != "_stale"},
        }

    def _compute_guarded(
        self, run: _Run, name: str, params: str, key, compute, deadline, epochs
    ) -> dict:
        """The cache-miss path: breaker, payload validation, stale fallback."""
        if not run.breaker.allow():
            return self._stale_or_raise(
                run, name, params,
                CircuitOpen(
                    f"breaker for run {run.run_id!r} is open and no previous "
                    f"answer for {name!r} is available"
                ),
            )
        try:
            value = compute()
            self._validate_payload(name, value)
        except _CALLER_ERRORS:
            # The caller's mistake, not the estimator's health: no success
            # or failure recorded — but a held half-open probe slot must be
            # released, or the breaker would stay probing forever.
            run.breaker.cancel_probe()
            raise
        except DeadlineExceeded:
            run.breaker.record_failure()
            raise
        except Exception as exc:
            run.breaker.record_failure()
            return self._stale_or_raise(
                run, name, params,
                QueryFailed(
                    f"{name} query failed for run {run.run_id!r}: "
                    f"{type(exc).__name__}: {exc}"
                ),
                cause=exc,
            )
        run.breaker.record_success()
        self.cache.put(key, value)
        run.last_good[(name, params)] = value
        if deadline is not None and deadline.expired():
            # Too late for this caller, but the work is banked: the value
            # is cached and last-good, so the retry is a warm hit.
            run.breaker.record_failure()
            raise deadline.exceeded(epochs=epochs, computed=True)
        return value

    def _stale_or_raise(self, run: _Run, name: str, params: str, error, *, cause=None):
        stale = run.last_good.get((name, params))
        if stale is None:
            raise error from cause
        return {**stale, "_stale": True}

    @staticmethod
    def _validate_payload(name: str, value: dict) -> None:
        """Refuse non-finite numbers — a corrupted payload must never be cached."""
        numbers = []
        for field in ("totals", "weights"):
            numbers.extend(value.get(field, ()))
        numbers.extend(
            row["contribution"] for row in value.get("leaderboard", ())
        )
        if not np.all(np.isfinite(numbers)):
            raise QueryFailed(
                f"{name} produced non-finite values (corrupted payload)"
            )

    def report(self, run_id: str, *, deadline: Deadline | None = None) -> ContributionReport:
        """The full :class:`ContributionReport` (uncached: callers mutate it)."""
        self._ensure_open()
        run = self._run(run_id)
        if deadline is not None:
            deadline.check()
        started = time.perf_counter()
        with run.lock:
            if run.estimator.n_epochs == 0:
                raise ValueError(f"run {run_id!r} has no epochs ingested yet")
            report = run.estimator.report()
        self.query_latency.record(time.perf_counter() - started)
        return report

    def contributions(self, run_id: str, *, deadline: Deadline | None = None) -> dict:
        """Totals (and per-epoch shape metadata) as a JSON-ready dict."""
        run = self._run(run_id)

        def compute() -> dict:
            estimator = run.estimator
            return {
                "method": estimator.method,
                "epochs": estimator.n_epochs,
                "participant_ids": list(estimator.participant_ids),
                "totals": [float(v) for v in estimator.totals()],
            }

        return self._cached_query(run, "contributions", "", compute, deadline)

    def leaderboard(
        self, run_id: str, *, top: int | None = None, deadline: Deadline | None = None
    ) -> dict:
        """Ranked (participant, contribution) rows, best first."""
        run = self._run(run_id)

        def compute() -> dict:
            rows = run.estimator.leaderboard(top)
            return {
                "epochs": run.estimator.n_epochs,
                "leaderboard": [
                    {"rank": i + 1, "participant": pid, "contribution": total}
                    for i, (pid, total) in enumerate(rows)
                ],
            }

        return self._cached_query(run, "leaderboard", f"top={top}", compute, deadline)

    def weights(
        self, run_id: str, *, scheme: str = "rectified", deadline: Deadline | None = None
    ) -> dict:
        """The Eq. 17–18 reweight vector after the latest ingested epoch."""
        run = self._run(run_id)

        def compute() -> dict:
            vector = run.estimator.current_weights(scheme)
            return {
                "epochs": run.estimator.n_epochs,
                "scheme": scheme,
                "participant_ids": list(run.estimator.participant_ids),
                "weights": [float(w) for w in vector],
            }

        return self._cached_query(run, "weights", f"scheme={scheme}", compute, deadline)

    def query(self, method: str, /, *args, **kwargs):
        """The HTTP request path: admit, pool-execute, bound by the deadline.

        Admission is checked *before* the pool sees the request: a full
        queue sheds immediately with
        :class:`~repro.serve.resilience.ServiceOverloaded` (HTTP 429)
        whose ``retry_after_s`` comes from the query-latency p95 and the
        current depth.  The per-request
        :class:`~repro.serve.resilience.Deadline` is threaded into the
        compute *and* enforced at the ``Future`` boundary, so a request
        stuck behind a wedged worker still answers 504 on time.

        Warm cache hits skip the pool round-trip entirely: a non-blocking
        probe of the run lock answers them inline (a held lock — compute
        in progress — falls through to the pool path, so the caller is
        never stalled past its deadline).  The per-request deadline is
        only started on a miss; a hit pays nothing for resilience.
        """
        self._ensure_open()
        allowed = {"contributions", "leaderboard", "weights"}
        if method not in allowed:
            raise ValueError(f"method must be one of {sorted(allowed)}, got {method!r}")
        if self._trace_off:
            # Warm path stays span-free: one attribute read is the entire
            # cost of disabled tracing (the bench_obs.py contract).
            return self._admit_and_run(method, args, kwargs, None)
        tracer = self.obs.tracer
        with tracer.span(
            "serve.query", method=method, run_id=args[0] if args else None
        ) as root:
            return self._admit_and_run(method, args, kwargs, root)

    def _admit_and_run(self, method: str, args: tuple, kwargs: dict, root):
        """The admission → warm-peek → pool → deadline ladder behind query().

        ``root`` is the request's ``serve.query`` span (or ``None`` when
        tracing is off); admission, cache outcome and the pool-side
        compute hang off it as children/events, and the worker thread
        parents its spans explicitly on the root's context — the handle
        that survives the hop onto the pool thread.
        """
        if root is None:
            tracer = None
            admitted_now = self.admission.try_acquire()
        else:
            tracer = self.obs.tracer
            with tracer.span("serve.admission", parent=root) as admission_span:
                admitted_now = self.admission.try_acquire()
                admission_span.set_attribute("admitted", admitted_now)
        if not admitted_now:
            raise ServiceOverloaded(
                self.admission.depth.value,
                self.admission.limit,
                self._retry_after_s(),
            )
        try:
            warm = self._warm_peek(method, args, kwargs)
        except BaseException:
            self.admission.release()
            raise
        if warm is not None:
            self.admission.release()
            if root is not None:
                root.set_attribute("cache", "warm_hit")
            return warm
        deadline = Deadline.start(self.query_deadline_ms)
        ctx = root.context if root is not None else None

        def admitted():
            self.admission.enter()
            try:
                if ctx is None:
                    return getattr(self, method)(*args, deadline=deadline, **kwargs)
                # Explicit parenting: the pool thread has no thread-local
                # ancestry, so the compute span adopts the request's
                # context handle and the trace stays one tree.
                with tracer.span("serve.compute", parent=ctx, method=method):
                    return getattr(self, method)(*args, deadline=deadline, **kwargs)
            finally:
                self.admission.exit()
                self.admission.release()

        try:
            future = self._pool.submit(admitted)
        except RuntimeError:
            self.admission.release()
            raise ServiceClosed() from None
        timeout = deadline.remaining_s() if deadline is not None else None
        if root is None:
            try:
                return future.result(timeout=timeout)
            except FutureTimeout:
                raise deadline.exceeded(stage="future boundary") from None
        with tracer.span("serve.response", parent=root) as response_span:
            try:
                result = future.result(timeout=timeout)
            except FutureTimeout:
                raise deadline.exceeded(stage="future boundary") from None
            response_span.set_attribute("stale", result.get("stale", False))
            return result

    # Cache-key param strings per query method; must mirror the params
    # each method hands to _cached_query.
    _QUERY_PARAMS = {
        "contributions": lambda kwargs: "",
        "leaderboard": lambda kwargs: f"top={kwargs.get('top')}",
        "weights": lambda kwargs: f"scheme={kwargs.get('scheme', 'rectified')}",
    }

    def _warm_peek(self, method: str, args: tuple, kwargs: dict):
        """Answer a warm cache hit inline, or ``None`` for the pool path.

        Strictly non-blocking: an unknown run, a held run lock (a compute
        is in progress), unexpected call shapes, or a cache miss all fall
        through to the pool path, which owns every slow or error case.
        """
        if len(args) != 1 or "deadline" in kwargs:
            return None
        with self._registry_lock:
            run = self._runs.get(args[0])
        if run is None:
            return None
        params = self._QUERY_PARAMS[method](kwargs)
        if not run.lock.acquire(blocking=False):
            return None
        try:
            if run.estimator.n_epochs == 0:
                return None
            started = time.perf_counter()
            value = self.cache.get(
                ("query", run.digest.hexdigest(), method, params)
            )
        finally:
            run.lock.release()
        if value is None:
            return None
        self.query_latency.record(time.perf_counter() - started)
        return self._stamp(run, value)

    def _retry_after_s(self) -> float:
        return retry_after_seconds(
            self.query_latency.percentile(0.95), self.admission.depth.value
        )

    def submit(self, method: str, /, *args, **kwargs) -> Future:
        """Thread-pool request handling: run a query method asynchronously.

        ``service.submit("leaderboard", run_id, top=3)`` returns a
        :class:`~concurrent.futures.Future` resolving to the same payload
        the synchronous call would; bulk consumers use it to overlap
        independent queries.  (The HTTP layer goes through :meth:`query`,
        which adds admission control and the deadline boundary.)
        """
        self._ensure_open()
        allowed = {"contributions", "leaderboard", "weights", "report", "ingest_log"}
        if method not in allowed:
            raise ValueError(f"method must be one of {sorted(allowed)}, got {method!r}")
        return self._pool.submit(getattr(self, method), *args, **kwargs)

    # ------------------------------------------------------------ metrics

    def health(self) -> dict:
        """The ``/healthz`` payload: ok / degraded / closed, plus why.

        ``degraded`` means at least one run's breaker is not closed —
        its queries are being answered from last-good state, stale-marked.
        """
        if self._closed:
            return {"status": "closed", "runs": 0, "degraded_runs": []}
        with self._registry_lock:
            runs = list(self._runs.values())
        degraded = [
            run.run_id
            for run in runs
            if run.breaker.state != CircuitBreaker.CLOSED
        ]
        return {
            "status": "degraded" if degraded else "ok",
            "runs": len(runs),
            "degraded_runs": degraded,
        }

    def stats(self) -> dict:
        """Everything ``/metricz`` serves: cache, latency, load, breakers."""
        with self._registry_lock:
            runs = list(self._runs.values())
        breakers = {
            run.run_id: run.breaker.stats()
            for run in runs
            if run.breaker.opens or run.breaker.state != CircuitBreaker.CLOSED
        }
        return {
            "uptime_seconds": time.perf_counter() - self._started_at,
            "runs": len(runs),
            "closed": self._closed,
            "cache": self.cache.stats(),
            "admission": self.admission.stats(),
            "breakers": breakers,
            "latency": {
                "ingest": self.ingest_latency.summary(),
                "query": self.query_latency.summary(),
            },
            "obs": self.obs.stats(),
        }

    def profile(self, run_id: str) -> dict:
        """Per-run phase-timer report (``GET /runs/{id}/profile``).

        Rows come from the run's :class:`repro.obs.profile.Profiler`
        (valgrad, dot products, digest, WAL fsync); empty when the
        service was built with profiling disabled.
        """
        self._ensure_open()
        run = self._run(run_id)
        return {
            "run_id": run_id,
            "epochs": run.estimator.n_epochs,
            "enabled": self.obs.profiles.enabled,
            "phases": self.obs.profiles.report(run_id),
        }

    def close(self) -> None:
        """Shut down: idempotent, and everything after it fails fast.

        The closed flag flips *before* the pool drains, so requests
        arriving mid-shutdown get :class:`ServiceClosed` (HTTP 503)
        instead of queueing behind a dying pool — and a publisher that
        outlives the service dead-letters immediately instead of
        retrying into the void.
        """
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        self._pool.shutdown(wait=True)
        if self.wal is not None:
            self.wal.close()

    def __enter__(self) -> "EvaluationService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class ContributionPublisher:
    """Engine-side sink: pushes each finished round into a service run.

    Matches the ``publisher`` hook of
    :meth:`repro.runtime.engine.FederatedRuntime.run_hfl` /
    :meth:`~repro.runtime.engine.FederatedRuntime.run_vfl`: the engine
    calls :meth:`publish` after appending each epoch record and emits a
    ``contrib_updated`` event carrying the returned detail — so the event
    log shows the leaderboard evolving while training runs, and any other
    thread can query the same service concurrently.

    Publishing is resilient so the *engine* never has to be: transient
    sink failures are retried with decorrelated-jitter backoff
    (:class:`~repro.serve.resilience.RetryPolicy`), each publish is
    sequence-numbered so a retry after a half-completed attempt cannot
    double-ingest the epoch, and a record that exhausts its retries (or
    hits a closed service, which is permanent) becomes a *dead letter*:
    recorded on :attr:`dead_letters`, returned as a
    ``{"dead_letter": True}`` detail, and logged by the engine as a
    ``publish_dlq`` event — training continues regardless.
    """

    def __init__(
        self,
        service: EvaluationService,
        run_id: str,
        *,
        max_retries: int = 4,
        base_delay_s: float = 0.05,
        max_delay_s: float = 2.0,
        seed: int = 0,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.service = service
        self.run_id = run_id
        self.retry = RetryPolicy(
            max_retries,
            base_delay_s=base_delay_s,
            max_delay_s=max_delay_s,
            seed=seed,
        )
        self._sleep = sleep
        self._published = service._run(run_id).estimator.n_epochs
        self._poisoned = False
        self.retries = 0
        self.dead_letters: list[dict] = []

    def publish(self, record: EpochRecord | VFLEpochRecord) -> dict:
        """Ingest one live epoch; returns event detail for the runtime log.

        Never raises: when the *ingest itself* is unrecoverable the
        detail is a dead letter and the epoch is not served.  A dead
        letter also *poisons the stream* — later records are
        dead-lettered without an attempt, because ingesting them would
        splice a hole into the served prefix and silently change the
        contribution numbers.  The training log still holds every record,
        so one ``ingest_log`` replay after the sink heals backfills the
        whole gap.

        An ingest that *landed* whose follow-up leaderboard query then
        exhausted its retries is different: the epoch **is** being
        served, there is no gap, so the detail reports the publish as
        successful but ``detail_degraded`` (no leader fields) and the
        stream is not poisoned.
        """
        seq = self._published + 1
        if self._poisoned:
            return self._dead_letter(
                record, seq, 0,
                RuntimeError(
                    "an earlier epoch was dead-lettered; refusing to publish "
                    "past the gap (backfill with ingest_log)"
                ),
            )
        attempts = 0
        delays = self.retry.delays()
        while True:
            attempts += 1
            try:
                return self._attempt(record, seq)
            except ServiceClosed as exc:
                return self._resolve_failure(record, seq, attempts, exc)
            except Exception as exc:
                try:
                    delay = next(delays)
                except StopIteration:
                    return self._resolve_failure(record, seq, attempts, exc)
                self.retries += 1
                self._sleep(delay)

    def _attempt(self, record, seq: int) -> dict:
        epochs = self.service.ingest(self.run_id, record, seq=seq)
        self._published = epochs
        leader = self.service.leaderboard(self.run_id, top=1)["leaderboard"][0]
        return {
            "run_id": self.run_id,
            "epochs": epochs,
            "leader": leader["participant"],
            "leader_contribution": leader["contribution"],
        }

    def _resolve_failure(self, record, seq: int, attempts: int, exc: Exception) -> dict:
        """Out of retries (or the service closed): dead-letter or degrade.

        ``self._published`` only advances once :meth:`EvaluationService.ingest`
        returns, so ``_published >= seq`` means this record's epoch is in
        the served prefix and only the leaderboard detail failed — report
        it published-but-degraded rather than punching a phantom gap.
        """
        if self._published >= seq:
            return {
                "run_id": self.run_id,
                "epochs": self._published,
                "detail_degraded": True,
                "attempts": attempts,
                "error": f"{type(exc).__name__}: {exc}",
            }
        return self._dead_letter(record, seq, attempts, exc)

    def _dead_letter(self, record, seq: int, attempts: int, exc: Exception) -> dict:
        self._poisoned = True
        detail = {
            "run_id": self.run_id,
            "dead_letter": True,
            "seq": seq,
            "epoch": getattr(record, "epoch", None),
            "attempts": attempts,
            "error": f"{type(exc).__name__}: {exc}",
        }
        self.dead_letters.append(detail)
        self.service.dlq_total.inc()
        self.service.obs.logger.error(
            "publish.dead_letter", run_id=self.run_id, seq=seq, error=detail["error"]
        )
        return detail
