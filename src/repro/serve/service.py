"""In-process contribution evaluation service.

One :class:`EvaluationService` owns a registry of *runs* (streaming
estimator + incremental content digest + lock), a shared
:class:`~repro.serve.cache.ResultCache`, a request thread pool, and
latency histograms.  Producers push epochs in — either batched from a
saved log or live from the :mod:`repro.runtime` engine through a
:class:`ContributionPublisher` — and any number of consumer threads query
contributions, leaderboards and Eq. 17 reweight vectors mid-training.

Concurrency model, in one paragraph: the registry is guarded by one lock;
each run is guarded by its own re-entrant lock, held for the duration of
every ingest *and* every query touching that run's estimator, so a query
always observes a whole number of epochs.  Query answers are cached
content-addressed (log-prefix digest + query parameters); the cache is
itself thread-safe, so hits never take the run lock's slow path twice.
Validation gradients are memoised through the same cache under the
epoch's digest snapshot, which is what makes repeated and concurrent
queries cheap (see ``benchmarks/bench_serve.py``).
"""

from __future__ import annotations

import itertools
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Callable, Sequence

import numpy as np

from repro.core.contribution import ContributionReport
from repro.data.dataset import Dataset
from repro.hfl.log import EpochRecord, TrainingLog
from repro.metrics.cost import LatencyHistogram
from repro.nn.models import Classifier
from repro.serve.cache import ResultCache, RunDigest, fingerprint_arrays
from repro.serve.streaming import (
    StreamingHFLEstimator,
    StreamingVFLEstimator,
    _StreamingBase,
)
from repro.vfl.log import VFLEpochRecord, VFLTrainingLog

_VAL_GRAD_PREFIX = "valgrad"


class _Run:
    """One registered training run: estimator, digest, lock, metadata."""

    def __init__(
        self, run_id: str, kind: str, estimator: _StreamingBase, digest: RunDigest
    ) -> None:
        self.run_id = run_id
        self.kind = kind
        self.estimator = estimator
        self.digest = digest
        self.lock = threading.RLock()

    def summary(self) -> dict:
        with self.lock:
            return {
                "run_id": self.run_id,
                "kind": self.kind,
                "epochs": self.estimator.n_epochs,
                "participants": list(self.estimator.participant_ids),
            }


class EvaluationService:
    """Caching, concurrent query service over streaming DIG-FL estimators.

    ``cache_bytes`` bounds the shared result/gradient cache;
    ``max_workers`` sizes the pool behind :meth:`submit` (synchronous
    callers can ignore it).  All public methods are thread-safe.
    """

    def __init__(self, *, cache_bytes: int = 64 * 1024 * 1024, max_workers: int = 4) -> None:
        self.cache = ResultCache(cache_bytes)
        self.ingest_latency = LatencyHistogram()
        self.query_latency = LatencyHistogram()
        self._runs: dict[str, _Run] = {}
        self._registry_lock = threading.Lock()
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-serve"
        )
        self._auto_ids = itertools.count(1)
        self._started_at = time.perf_counter()

    # --------------------------------------------------------- registration

    def register_hfl(
        self,
        participant_ids: Sequence[int],
        validation: Dataset,
        model_factory: Callable[[], Classifier],
        *,
        run_id: str | None = None,
        use_logged_weights: bool = False,
    ) -> str:
        """Register an (initially empty) HFL run; returns its id.

        The run's content digest is seeded with the validation-set hash,
        the model architecture and the estimator options, so cached
        answers are shared exactly between runs that would compute
        identical numbers.
        """
        probe = model_factory()
        seed = RunDigest(
            "hfl",
            f"use_logged_weights={use_logged_weights}",
            fingerprint_arrays(X=validation.X, y=validation.y),
            f"{type(probe).__name__}:{probe.num_parameters()}",
        )
        estimator = StreamingHFLEstimator(
            participant_ids,
            validation,
            model_factory,
            use_logged_weights=use_logged_weights,
            val_grad_memo=self.cache.memo(_VAL_GRAD_PREFIX),
        )
        return self._register(run_id, "hfl", estimator, seed)

    def register_vfl(
        self,
        feature_blocks: Sequence[np.ndarray],
        active_parties: Sequence[int],
        *,
        run_id: str | None = None,
    ) -> str:
        """Register an (initially empty) VFL run; returns its id."""
        seed = RunDigest(
            "vfl",
            fingerprint_arrays(
                **{f"block_{i}": np.asarray(b) for i, b in enumerate(feature_blocks)}
            ),
            repr(list(active_parties)),
        )
        estimator = StreamingVFLEstimator(feature_blocks, active_parties)
        return self._register(run_id, "vfl", estimator, seed)

    def register_hfl_log(self, log: TrainingLog, validation, model_factory, **kwargs) -> str:
        """Register an HFL run and ingest a complete log in one call."""
        run_id = self.register_hfl(
            log.participant_ids, validation, model_factory, **kwargs
        )
        self.ingest_log(run_id, log)
        return run_id

    def register_vfl_log(self, log: VFLTrainingLog, *, run_id: str | None = None) -> str:
        """Register a VFL run and ingest a complete log in one call."""
        run_id = self.register_vfl(
            log.feature_blocks, log.active_parties, run_id=run_id
        )
        self.ingest_log(run_id, log)
        return run_id

    def _register(
        self, run_id: str | None, kind: str, estimator: _StreamingBase, digest: RunDigest
    ) -> str:
        with self._registry_lock:
            if run_id is None:
                run_id = f"{kind}-{next(self._auto_ids)}"
            if run_id in self._runs:
                raise ValueError(f"run id {run_id!r} already registered")
            self._runs[run_id] = _Run(run_id, kind, estimator, digest)
        return run_id

    def runs(self) -> list[dict]:
        """Summaries of every registered run."""
        with self._registry_lock:
            runs = list(self._runs.values())
        return [run.summary() for run in runs]

    def _run(self, run_id: str) -> _Run:
        with self._registry_lock:
            run = self._runs.get(run_id)
        if run is None:
            raise KeyError(f"unknown run id {run_id!r}")
        return run

    # ------------------------------------------------------------ ingestion

    def ingest(self, run_id: str, record: EpochRecord | VFLEpochRecord) -> int:
        """Feed one epoch record; returns the epoch count after ingestion."""
        run = self._run(run_id)
        started = time.perf_counter()
        with run.lock:
            if run.kind == "hfl":
                memo_key = run.digest.update_hfl(record)
            else:
                memo_key = run.digest.update_vfl(record)
            run.estimator.ingest(record, memo_key=memo_key)
            epochs = run.estimator.n_epochs
        self.ingest_latency.record(time.perf_counter() - started)
        return epochs

    def ingest_log(self, run_id: str, log: TrainingLog | VFLTrainingLog) -> int:
        """Batched ingestion of every not-yet-seen record of ``log``.

        Idempotent for a growing log: records before the run's current
        epoch count are assumed already ingested and skipped, so a
        producer can re-push the whole log each round.
        """
        run = self._run(run_id)
        with run.lock:
            start = run.estimator.n_epochs
            for record in log.records[start:]:
                self.ingest(run_id, record)
            return run.estimator.n_epochs

    def publisher(self, run_id: str) -> "ContributionPublisher":
        """A live-publishing hook for :meth:`repro.runtime.FederatedRuntime.run_hfl`."""
        return ContributionPublisher(self, run_id)

    # -------------------------------------------------------------- queries

    def _cached_query(self, run: _Run, name: str, params: str, compute):
        """Run ``compute`` under the run lock unless the cache already knows.

        The key is the digest of the ingested prefix — content, not run
        id — so identical runs and repeated queries share one entry.
        Cached payloads are therefore run-agnostic; the requesting run's
        id is stamped on per request.
        """
        started = time.perf_counter()
        with run.lock:
            if run.estimator.n_epochs == 0:
                raise ValueError(f"run {run.run_id!r} has no epochs ingested yet")
            key = ("query", run.digest.hexdigest(), name, params)
            value = self.cache.get_or_compute(key, compute)
        self.query_latency.record(time.perf_counter() - started)
        return {"run_id": run.run_id, **value}

    def report(self, run_id: str) -> ContributionReport:
        """The full :class:`ContributionReport` (uncached: callers mutate it)."""
        run = self._run(run_id)
        started = time.perf_counter()
        with run.lock:
            if run.estimator.n_epochs == 0:
                raise ValueError(f"run {run_id!r} has no epochs ingested yet")
            report = run.estimator.report()
        self.query_latency.record(time.perf_counter() - started)
        return report

    def contributions(self, run_id: str) -> dict:
        """Totals (and per-epoch shape metadata) as a JSON-ready dict."""
        run = self._run(run_id)

        def compute() -> dict:
            estimator = run.estimator
            return {
                "method": estimator.method,
                "epochs": estimator.n_epochs,
                "participant_ids": list(estimator.participant_ids),
                "totals": [float(v) for v in estimator.totals()],
            }

        return self._cached_query(run, "contributions", "", compute)

    def leaderboard(self, run_id: str, *, top: int | None = None) -> dict:
        """Ranked (participant, contribution) rows, best first."""
        run = self._run(run_id)

        def compute() -> dict:
            rows = run.estimator.leaderboard(top)
            return {
                "epochs": run.estimator.n_epochs,
                "leaderboard": [
                    {"rank": i + 1, "participant": pid, "contribution": total}
                    for i, (pid, total) in enumerate(rows)
                ],
            }

        return self._cached_query(run, "leaderboard", f"top={top}", compute)

    def weights(self, run_id: str, *, scheme: str = "rectified") -> dict:
        """The Eq. 17–18 reweight vector after the latest ingested epoch."""
        run = self._run(run_id)

        def compute() -> dict:
            vector = run.estimator.current_weights(scheme)
            return {
                "epochs": run.estimator.n_epochs,
                "scheme": scheme,
                "participant_ids": list(run.estimator.participant_ids),
                "weights": [float(w) for w in vector],
            }

        return self._cached_query(run, "weights", f"scheme={scheme}", compute)

    def submit(self, method: str, /, *args, **kwargs) -> Future:
        """Thread-pool request handling: run a query method asynchronously.

        ``service.submit("leaderboard", run_id, top=3)`` returns a
        :class:`~concurrent.futures.Future` resolving to the same payload
        the synchronous call would; the HTTP layer and bulk consumers use
        it to overlap independent queries.
        """
        allowed = {"contributions", "leaderboard", "weights", "report", "ingest_log"}
        if method not in allowed:
            raise ValueError(f"method must be one of {sorted(allowed)}, got {method!r}")
        return self._pool.submit(getattr(self, method), *args, **kwargs)

    # ------------------------------------------------------------ metrics

    def stats(self) -> dict:
        """Everything ``/metricz`` serves: cache, latency, run inventory."""
        return {
            "uptime_seconds": time.perf_counter() - self._started_at,
            "runs": len(self._runs),
            "cache": self.cache.stats(),
            "latency": {
                "ingest": self.ingest_latency.summary(),
                "query": self.query_latency.summary(),
            },
        }

    def close(self) -> None:
        """Shut the request pool down (idempotent)."""
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "EvaluationService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class ContributionPublisher:
    """Engine-side sink: pushes each finished round into a service run.

    Matches the ``publisher`` hook of
    :meth:`repro.runtime.engine.FederatedRuntime.run_hfl` /
    :meth:`~repro.runtime.engine.FederatedRuntime.run_vfl`: the engine
    calls :meth:`publish` after appending each epoch record and emits a
    ``contrib_updated`` event carrying the returned detail — so the event
    log shows the leaderboard evolving while training runs, and any other
    thread can query the same service concurrently.
    """

    def __init__(self, service: EvaluationService, run_id: str) -> None:
        self.service = service
        self.run_id = run_id

    def publish(self, record: EpochRecord | VFLEpochRecord) -> dict:
        """Ingest one live epoch; returns event detail for the runtime log."""
        epochs = self.service.ingest(self.run_id, record)
        leader = self.service.leaderboard(self.run_id, top=1)["leaderboard"][0]
        return {
            "run_id": self.run_id,
            "epochs": epochs,
            "leader": leader["participant"],
            "leader_contribution": leader["contribution"],
        }
