"""Resilience primitives for the serving layer: fail *soft*, never fall over.

The ROADMAP's serving story is heavy traffic against estimators whose
answers are expensive to recompute and — per the Shapley-volatility
literature — *more* useful served stale-but-consistent than recomputed
under duress.  This module is the toolbox :mod:`repro.serve.service`
wires through the whole query path:

* :class:`Deadline` — a per-request time budget, enforced cooperatively
  (compute closures call :meth:`Deadline.check` at safe points) and at
  the ``Future`` boundary; expiry raises :class:`DeadlineExceeded`
  carrying partial-progress info, which the HTTP layer maps to 504.
* :class:`AdmissionQueue` — a bounded admission counter in front of the
  service thread pool with depth / in-flight gauges; a full queue sheds
  load with :class:`ServiceOverloaded` (HTTP 429 + ``Retry-After``
  derived from the latency histogram's p95) instead of queueing
  unboundedly.
* :class:`CircuitBreaker` — the classic closed → open → half-open state
  machine, one per run: after ``failure_threshold`` consecutive
  failures/timeouts the breaker opens and the service serves the last
  good cached answer marked ``"stale": true`` (degraded mode) instead of
  recomputing; after ``reset_s`` one half-open probe is let through.
* :class:`RetryPolicy` — exponential backoff with *decorrelated jitter*
  (seeded, so tests are deterministic) for the publisher's
  retry-then-dead-letter loop.
* the typed error family (:class:`ServiceClosed`,
  :class:`ServiceOverloaded`, :class:`DeadlineExceeded`,
  :class:`QueryFailed`, :class:`CircuitOpen`) that gives every failure
  mode a distinct HTTP status — nothing resilience-related ever surfaces
  as a bare 500.

Everything here is stdlib + numpy, allocation-light on the happy path
(``benchmarks/bench_resilience.py`` pins the warm-cache overhead at
<5%), and driven deterministically by the chaos harness
(:mod:`repro.serve.chaos`) in the test suite.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from repro.metrics.cost import Gauge


class ServiceClosed(RuntimeError):
    """The service was shut down; queries and ingests must fail fast.

    The HTTP layer maps this to 503 — a closed service is a deploy or
    shutdown in progress, not a client error.
    """

    def __init__(self, message: str = "evaluation service is closed") -> None:
        super().__init__(message)


class ServiceOverloaded(RuntimeError):
    """The admission queue is full; retry after ``retry_after_s`` seconds."""

    def __init__(self, depth: int, limit: int, retry_after_s: float) -> None:
        super().__init__(
            f"admission queue is full ({depth}/{limit} requests in flight); "
            f"retry in {retry_after_s:.2f}s"
        )
        self.depth = depth
        self.limit = limit
        self.retry_after_s = retry_after_s


class DeadlineExceeded(RuntimeError):
    """A request overran its deadline; ``progress`` says how far it got."""

    def __init__(
        self, budget_ms: float, elapsed_ms: float, progress: dict | None = None
    ) -> None:
        super().__init__(
            f"deadline of {budget_ms:.0f}ms exceeded after {elapsed_ms:.0f}ms"
        )
        self.budget_ms = budget_ms
        self.elapsed_ms = elapsed_ms
        self.progress = dict(progress or {})


class QueryFailed(RuntimeError):
    """The estimator failed and no stale answer was available to serve.

    Wraps the underlying compute error so the HTTP layer can answer 503
    (temporarily unavailable, retryable) rather than a bare 500.
    """


class CircuitOpen(QueryFailed):
    """The run's breaker is open and there is no last-good answer to serve."""


class Deadline:
    """A cooperative per-request time budget.

    Compute closures call :meth:`check` at safe points (between epochs,
    around estimator calls); the ``Future`` boundary uses
    :meth:`remaining_s`.  ``Deadline.start(None)`` returns ``None`` so
    the no-deadline hot path pays nothing.
    """

    __slots__ = ("budget_s", "_started")

    def __init__(self, budget_ms: float) -> None:
        if budget_ms <= 0:
            raise ValueError(f"deadline must be positive, got {budget_ms}ms")
        self.budget_s = budget_ms / 1e3
        self._started = time.monotonic()

    @classmethod
    def start(cls, budget_ms: float | None) -> "Deadline | None":
        return None if budget_ms is None else cls(budget_ms)

    @property
    def elapsed_s(self) -> float:
        return time.monotonic() - self._started

    def remaining_s(self) -> float:
        """Seconds left (never negative; 0.0 means expired)."""
        return max(0.0, self.budget_s - self.elapsed_s)

    def expired(self) -> bool:
        return self.elapsed_s >= self.budget_s

    def check(self, **progress) -> None:
        """Raise :class:`DeadlineExceeded` (with progress) once overrun."""
        elapsed = self.elapsed_s
        if elapsed >= self.budget_s:
            raise DeadlineExceeded(self.budget_s * 1e3, elapsed * 1e3, progress)

    def exceeded(self, **progress) -> DeadlineExceeded:
        """The error to raise at the ``Future`` boundary on timeout."""
        return DeadlineExceeded(self.budget_s * 1e3, self.elapsed_s * 1e3, progress)


class AdmissionQueue:
    """Bounded admission in front of the service pool, with gauges.

    ``try_acquire`` admits a request (or refuses, returning ``False``)
    and bumps the ``depth`` gauge — admitted-but-unfinished requests,
    queued *or* running.  Workers bracket their actual execution with
    :meth:`enter` / :meth:`exit` for the ``in_flight`` gauge, and every
    request ends with :meth:`release`.  ``limit=None`` disables shedding
    (the gauges still count), which is the library default — bounding is
    an operator decision (``repro serve --max-queue``).
    """

    def __init__(self, limit: int | None = None) -> None:
        if limit is not None and limit <= 0:
            raise ValueError(f"admission limit must be positive, got {limit}")
        self.limit = limit
        self.depth = Gauge()
        self.in_flight = Gauge()
        self.shed = 0
        self._lock = threading.Lock()

    def try_acquire(self) -> bool:
        """Admit one request; ``False`` (and a ``shed`` count) when full."""
        with self._lock:
            if self.limit is not None and self.depth.value >= self.limit:
                self.shed += 1
                return False
            self.depth.inc()
            return True

    def release(self) -> None:
        self.depth.dec()

    def enter(self) -> None:
        self.in_flight.inc()

    def exit(self) -> None:
        self.in_flight.dec()

    def stats(self) -> dict:
        return {
            "limit": self.limit,
            "depth": self.depth.value,
            "peak_depth": self.depth.peak,
            "in_flight": self.in_flight.value,
            "peak_in_flight": self.in_flight.peak,
            "shed": self.shed,
        }


class CircuitBreaker:
    """Closed → open → half-open failure isolation for one run.

    ``failure_threshold`` *consecutive* failures (exceptions or
    deadline timeouts) open the breaker; while open, :meth:`allow`
    refuses compute (the service serves its last good answer, stale-
    marked) until ``reset_s`` has passed, after which exactly one
    half-open probe is admitted — success closes the breaker, failure
    re-opens it and re-arms the timer.  ``clock`` is injectable so the
    chaos tests drive transitions deterministically.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(
        self,
        failure_threshold: int = 3,
        reset_s: float = 30.0,
        *,
        clock=time.monotonic,
        on_open=None,
    ) -> None:
        if failure_threshold <= 0:
            raise ValueError(
                f"failure_threshold must be positive, got {failure_threshold}"
            )
        if reset_s < 0:
            raise ValueError(f"reset_s must be non-negative, got {reset_s}")
        self.failure_threshold = failure_threshold
        self.reset_s = reset_s
        self._clock = clock
        self._state = self.CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probing = False
        self._lock = threading.Lock()
        self.opens = 0  # lifetime count, for /metricz
        # Called once per closed/half-open -> open transition (the service
        # feeds a repro.obs breaker-transition counter through this).  It
        # runs under the breaker lock, so it must only touch leaf state —
        # a Counter.inc qualifies; anything re-entering the breaker does
        # not.
        self._on_open = on_open

    @property
    def state(self) -> str:
        with self._lock:
            return self._probe_aware_state()

    def _probe_aware_state(self) -> str:
        if self._state == self.OPEN and (
            self._clock() - self._opened_at >= self.reset_s
        ):
            return self.HALF_OPEN
        return self._state

    def allow(self) -> bool:
        """May a compute run now?  (Open refuses; half-open admits one.)"""
        # Fast path: a closed breaker is one unlocked read on the hot path.
        if self._state == self.CLOSED:
            return True
        with self._lock:
            state = self._probe_aware_state()
            if state == self.CLOSED:
                return True
            if state == self.HALF_OPEN and not self._probing:
                self._state = self.HALF_OPEN
                self._probing = True
                return True
            return False

    def record_success(self) -> None:
        with self._lock:
            self._state = self.CLOSED
            self._failures = 0
            self._probing = False

    def cancel_probe(self) -> None:
        """Release a held half-open probe slot without recording an outcome.

        Used when the admitted probe died of a *caller* error (bad
        arguments reaching the estimator): that says nothing about the
        estimator's health, so neither success nor failure is recorded —
        but the slot must be freed, or a half-open breaker would refuse
        every future compute forever.  No-op when no probe is held.
        """
        with self._lock:
            self._probing = False

    def record_failure(self) -> None:
        with self._lock:
            self._failures += 1
            if self._state == self.HALF_OPEN or (
                self._state == self.CLOSED
                and self._failures >= self.failure_threshold
            ):
                self._trip()
            elif self._state == self.OPEN:
                # A straggling failure while already open re-arms the timer.
                self._trip()

    def _trip(self) -> None:
        if self._state != self.OPEN:
            self.opens += 1
            if self._on_open is not None:
                self._on_open()
        self._state = self.OPEN
        self._opened_at = self._clock()
        self._probing = False

    def stats(self) -> dict:
        with self._lock:
            return {
                "state": self._probe_aware_state(),
                "consecutive_failures": self._failures,
                "opens": self.opens,
            }


class RetryPolicy:
    """Exponential backoff with decorrelated jitter, seeded.

    ``delays()`` yields at most ``max_retries`` sleep durations:
    ``d_{k+1} = min(cap, U(base, 3·d_k))`` — the AWS "decorrelated
    jitter" recurrence, which spreads retry storms without the lockstep
    of plain exponential backoff.  The RNG is seeded so the publisher's
    retry schedule (and every chaos test above it) is reproducible.
    """

    def __init__(
        self,
        max_retries: int = 4,
        *,
        base_delay_s: float = 0.05,
        max_delay_s: float = 2.0,
        seed: int = 0,
    ) -> None:
        if max_retries < 0:
            raise ValueError(f"max_retries must be non-negative, got {max_retries}")
        if base_delay_s <= 0 or max_delay_s < base_delay_s:
            raise ValueError(
                f"need 0 < base_delay_s <= max_delay_s, got "
                f"{base_delay_s} / {max_delay_s}"
            )
        self.max_retries = max_retries
        self.base_delay_s = base_delay_s
        self.max_delay_s = max_delay_s
        self._rng = np.random.default_rng(seed)

    def delays(self):
        """Yield the back-off sleeps for one publish attempt sequence."""
        delay = self.base_delay_s
        for _ in range(self.max_retries):
            delay = min(
                self.max_delay_s,
                float(self._rng.uniform(self.base_delay_s, delay * 3.0)),
            )
            yield delay


class Backoff:
    """Capped exponential backoff gate for respawn/crash loops, seeded.

    The cluster supervisor keeps one per shard: every spawn attempt calls
    :meth:`record_failure`, which arms a not-before deadline of
    ``min(cap, base · 2^(attempts-1))`` scaled by uniform jitter in
    ``[0.5, 1.5)`` (seeded, so chaos tests see one schedule).  Until that
    deadline :meth:`ready` answers ``False`` and the monitor loop skips
    the respawn instead of hot-spinning on a shard that dies on boot.
    The first attempt is always immediate — a fresh ``Backoff`` (or one
    just :meth:`reset` after a stability window of healthy probes) has no
    deadline armed, so a one-off crash still fails over at probe speed.

    ``clock`` is injectable for deterministic tests; ``remaining_s`` is
    what ``GET /cluster`` surfaces as ``respawn_backoff_s``.
    """

    def __init__(
        self,
        base_s: float = 0.5,
        cap_s: float = 30.0,
        *,
        seed: int = 0,
        clock=time.monotonic,
    ) -> None:
        if base_s <= 0 or cap_s < base_s:
            raise ValueError(f"need 0 < base_s <= cap_s, got {base_s} / {cap_s}")
        self.base_s = base_s
        self.cap_s = cap_s
        self.attempts = 0
        self._clock = clock
        self._rng = np.random.default_rng(seed)
        self._not_before = float("-inf")
        self._lock = threading.Lock()

    def ready(self) -> bool:
        """May the next spawn attempt proceed now?"""
        with self._lock:
            return self._clock() >= self._not_before

    def remaining_s(self) -> float:
        """Seconds until the next attempt is admitted (0.0 when ready)."""
        with self._lock:
            return max(0.0, self._not_before - self._clock())

    def record_failure(self) -> float:
        """Count one spawn attempt and arm the delay before the next.

        Returns the armed delay in seconds (0 < delay <= 1.5·cap).
        """
        with self._lock:
            self.attempts += 1
            delay = min(self.cap_s, self.base_s * 2.0 ** (self.attempts - 1))
            delay *= float(self._rng.uniform(0.5, 1.5))
            self._not_before = self._clock() + delay
            return delay

    def reset(self) -> None:
        """The shard proved stable; the next failure starts over at base."""
        with self._lock:
            self.attempts = 0
            self._not_before = float("-inf")


def retry_after_seconds(p95_s: float, depth: int) -> float:
    """A ``Retry-After`` hint from the latency histogram's p95.

    The queue ahead of a shed request is ``depth`` deep; at p95 service
    time per entry, ``p95 · (depth + 1)`` is a conservative drain
    estimate.  Floored at 1s (sub-second Retry-After just invites an
    immediate retry storm) and rounded up to whole seconds, as the
    HTTP header requires.
    """
    import math

    return float(max(1, math.ceil(p95_s * (depth + 1))))
