"""Streaming contribution evaluation: estimators, cache, service, HTTP API.

The batch DIG-FL estimators re-read the whole training log and recompute
every validation gradient per call; at serving scale that cost — not the
estimation math — is the bottleneck.  This package exploits the paper's
per-epoch additivity (Lemma 3, Eq. 13–15) to make contributions
*incrementally* computable and cheaply *queryable*:

* :mod:`~repro.serve.streaming` — :class:`StreamingHFLEstimator` /
  :class:`StreamingVFLEstimator` consume one epoch record at a time,
  bit-for-bit equal to the batch estimators on any prefix; these are the
  default ``digfl`` backend of the :mod:`repro.estimators` registry, and
  ``POST /runs`` accepts any registered backend via its ``estimator:``
  field (``gtg_shapley``, ``dpvs``, ...), folding the backend name and
  options into the run's cache digest;
* :mod:`~repro.serve.cache` — :class:`ResultCache`, a content-addressed
  LRU keyed on the same SHA-256 array hashes :mod:`repro.io` embeds in
  saved logs;
* :mod:`~repro.serve.service` — :class:`EvaluationService`, the
  thread-safe in-process registry the :mod:`repro.runtime` engine
  publishes live epochs into (``contrib_updated`` events);
* :mod:`~repro.serve.http` — a stdlib ``ThreadingHTTPServer`` JSON API
  (``repro serve --port``);
* :mod:`~repro.serve.resilience` — deadlines, admission control /
  load shedding, per-run circuit breakers serving stale-but-consistent
  answers, and the typed error family behind 429/503/504;
* :mod:`~repro.serve.wal` — an fsync'd, checksummed write-ahead log and
  :func:`~repro.serve.wal.recover`, which rebuilds the registry after a
  crash to the exact ingested epoch (``repro serve --wal-dir --recover``);
* :mod:`~repro.serve.chaos` — seeded fault injection (latency spikes,
  raised errors, corrupted payloads) that proves every degraded-mode
  behaviour deterministically;
* :mod:`~repro.serve.ring` — :class:`HashRing`, consistent hashing of
  run ids onto shards with minimal movement under membership change;
* :mod:`~repro.serve.cluster` — sharded multi-process serving
  (``repro serve --cluster N``): a :class:`ClusterSupervisor` of worker
  processes, each owning one ring shard and its own WAL, behind a
  :class:`ClusterRouter` that proxies by run id, aggregates
  ``/healthz``/``/metricz``, and on worker death respawns the shard and
  replays its WAL for bit-identical answers;
* :mod:`~repro.serve.replication` — warm standby workers that tail
  their primary's WAL over ``GET /wal/stream`` (:class:`WalFollower` /
  :class:`WalApplier`) so failover is catch-up-the-lag instead of
  replay-the-world, plus the ``/control/*`` plane the supervisor uses
  for promotion and for shipping WAL subsets during an online
  ``POST /cluster/resize`` rebalance.
"""

from repro.serve.cache import CacheMemo, ResultCache, RunDigest, fingerprint_arrays
from repro.serve.chaos import ChaosError, ChaosPolicy, FlakyProxy, inject_chaos
from repro.serve.cluster import (
    ClusterRouter,
    ClusterSupervisor,
    ShardTimeout,
    ShardUnavailable,
    StaticTopology,
    WorkerSpec,
    serve_cluster,
)
from repro.serve.http import EvaluationHTTPServer, register_from_spec, serve
from repro.serve.replication import (
    ReplicationError,
    WalApplier,
    WalFollower,
    WorkerController,
)
from repro.serve.resilience import (
    AdmissionQueue,
    Backoff,
    CircuitBreaker,
    CircuitOpen,
    Deadline,
    DeadlineExceeded,
    QueryFailed,
    RetryPolicy,
    ServiceClosed,
    ServiceOverloaded,
)
from repro.serve.ring import HashRing, ResizePlan
from repro.serve.service import ContributionPublisher, EvaluationService
from repro.serve.streaming import StreamingHFLEstimator, StreamingVFLEstimator
from repro.serve.wal import (
    RecoveryReport,
    WriteAheadLog,
    recover,
    scan_wal,
    validate_wal_record,
)

__all__ = [
    "AdmissionQueue",
    "Backoff",
    "CacheMemo",
    "ChaosError",
    "ChaosPolicy",
    "CircuitBreaker",
    "CircuitOpen",
    "ClusterRouter",
    "ClusterSupervisor",
    "ContributionPublisher",
    "Deadline",
    "DeadlineExceeded",
    "EvaluationHTTPServer",
    "EvaluationService",
    "FlakyProxy",
    "HashRing",
    "QueryFailed",
    "RecoveryReport",
    "ReplicationError",
    "ResizePlan",
    "ResultCache",
    "RetryPolicy",
    "RunDigest",
    "ServiceClosed",
    "ServiceOverloaded",
    "ShardTimeout",
    "ShardUnavailable",
    "StaticTopology",
    "StreamingHFLEstimator",
    "StreamingVFLEstimator",
    "WalApplier",
    "WalFollower",
    "WorkerController",
    "WorkerSpec",
    "WriteAheadLog",
    "fingerprint_arrays",
    "inject_chaos",
    "recover",
    "register_from_spec",
    "scan_wal",
    "serve",
    "serve_cluster",
    "validate_wal_record",
]
