"""Streaming contribution evaluation: estimators, cache, service, HTTP API.

The batch DIG-FL estimators re-read the whole training log and recompute
every validation gradient per call; at serving scale that cost — not the
estimation math — is the bottleneck.  This package exploits the paper's
per-epoch additivity (Lemma 3, Eq. 13–15) to make contributions
*incrementally* computable and cheaply *queryable*:

* :mod:`~repro.serve.streaming` — :class:`StreamingHFLEstimator` /
  :class:`StreamingVFLEstimator` consume one epoch record at a time,
  bit-for-bit equal to the batch estimators on any prefix;
* :mod:`~repro.serve.cache` — :class:`ResultCache`, a content-addressed
  LRU keyed on the same SHA-256 array hashes :mod:`repro.io` embeds in
  saved logs;
* :mod:`~repro.serve.service` — :class:`EvaluationService`, the
  thread-safe in-process registry the :mod:`repro.runtime` engine
  publishes live epochs into (``contrib_updated`` events);
* :mod:`~repro.serve.http` — a stdlib ``ThreadingHTTPServer`` JSON API
  (``repro serve --port``).
"""

from repro.serve.cache import CacheMemo, ResultCache, RunDigest, fingerprint_arrays
from repro.serve.http import EvaluationHTTPServer, register_from_spec, serve
from repro.serve.service import ContributionPublisher, EvaluationService
from repro.serve.streaming import StreamingHFLEstimator, StreamingVFLEstimator

__all__ = [
    "CacheMemo",
    "ContributionPublisher",
    "EvaluationHTTPServer",
    "EvaluationService",
    "ResultCache",
    "RunDigest",
    "StreamingHFLEstimator",
    "StreamingVFLEstimator",
    "fingerprint_arrays",
    "register_from_spec",
    "serve",
]
