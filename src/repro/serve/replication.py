"""Warm standby replication for cluster shards: WAL shipping + promotion.

PR 6's failover story was respawn-then-replay: a SIGKILLed shard is dark
for the whole WAL replay.  This module closes that window.  Every shard
can run a *standby* worker that continuously tails its primary's
write-ahead log over HTTP (``GET /wal/stream?from_seq=``, checksummed
frames) and applies each record to its own live
:class:`~repro.serve.service.EvaluationService` — so at the moment the
primary dies the standby already holds (almost) the whole registry, and
promotion costs only "catch up the lag", not "replay the world".

Three pieces, layered on the WAL's existing validation:

* :class:`WalApplier` — applies one validated
  :class:`~repro.serve.wal.WalEntry` to a service, *idempotently* (an
  already-registered run or already-absorbed epoch is skipped, so frames
  may be re-delivered freely) and with the same digest verification
  :func:`repro.serve.wal.recover` does — a standby that disagrees
  bit-for-bit with its primary refuses rather than diverge silently.
  ``recover()`` itself now runs on this applier, so boot-time replay,
  streamed replication, and rebalance adoption share one code path.
* :class:`WalFollower` — the standby-side tailing thread.  Polls the
  primary, re-verifies every frame's checksum, applies it, and exports
  ``repro_replica_lag_records`` / ``repro_replica_applied_seq`` gauges
  through the worker's ``/metricz``.  Because the standby's service has
  its *own* WAL attached, every applied record is re-logged locally —
  the standby is itself crash-recoverable and, once promoted, a valid
  replication source.  On :meth:`promote` the follower stops, then
  drains any unshipped tail directly from the dead primary's WAL *file*
  (which survives SIGKILL; same host/filesystem), making the handoff
  gapless: the promoted standby serves contributions ``np.array_equal``
  to the batch estimate of everything the primary ever acknowledged.
* :class:`WorkerController` — the supervisor→worker control plane behind
  ``POST /control/{status,epoch,promote,adopt}``: promotion, ring-epoch
  fencing updates, and ``adopt`` (apply a shipped per-run WAL subset),
  which is what online rebalance uses to move a run between shards.

The supervisor side (standby spawning, death detection, the promote/
respawn decision, and the rebalance orchestration built on ``adopt``)
lives in :mod:`repro.serve.cluster`.
"""

from __future__ import annotations

import json
import threading
from http.client import HTTPConnection, HTTPException
from pathlib import Path

from repro.io import TrainingLogIntegrityError, load_training_log, load_vfl_training_log
from repro.serve.http import ApiError, hfl_validation_and_model
from repro.serve.wal import (
    INGEST,
    REGISTER,
    RecoveryError,
    WalCorruption,
    WalEntry,
    WriteAheadLog,
    scan_wal,
    validate_wal_record,
)

LAG_GAUGE = "repro_replica_lag_records"
APPLIED_GAUGE = "repro_replica_applied_seq"
FRAMES_COUNTER = "repro_replica_frames_total"


class ReplicationError(RuntimeError):
    """WAL shipping failed in a way retrying cannot fix (bad frame, gap)."""


class WalApplier:
    """Idempotently applies WAL entries to a live service.

    One instance per worker process, shared by boot recovery, the
    standby follower, and the ``/control/adopt`` path — all three may
    deliver the *same* fact more than once (a refetched frame after a
    standby restart, a dual-written ingest landing after the adopted
    subset already carried it), so every application is a no-op when the
    service already holds the fact:

    * a ``register`` for a run the service knows keeps the run and only
      refreshes the cached training log;
    * an ``ingest`` whose epoch the run has already absorbed is skipped
      (the service's seq-idempotent ingest path).

    When the service has a WAL attached (every cluster worker does),
    applied facts are re-logged locally by the service itself — which is
    exactly what makes a standby crash-recoverable and promotable into a
    replication source.  Digest verification mirrors ``recover()``:
    a mismatch raises :class:`~repro.serve.wal.RecoveryError` because it
    means the replica would serve different numbers than the primary
    acknowledged.
    """

    def __init__(self, service) -> None:
        self.service = service
        self.runs_restored = 0
        self.epochs_replayed = 0
        self.runs_skipped: list[str] = []
        self.epochs_skipped = 0
        # run_id -> (register spec, loaded training log); the log gives
        # ingest application its epoch records without re-reading the
        # .npz per epoch.
        self._logs: dict = {}
        # Serialises follower-thread streaming against /control/adopt
        # requests arriving on server threads.
        self._lock = threading.Lock()

    def apply(self, entry: WalEntry) -> None:
        """Apply one validated entry; raises on divergence, never on replay."""
        with self._lock:
            if entry.kind == REGISTER:
                self._apply_register(entry.payload)
            else:
                self._apply_ingest(entry.payload)

    # ------------------------------------------------------------ internals

    def _load_log(self, spec: dict):
        if spec.get("kind") == "hfl":
            return load_training_log(spec["log_path"])
        return load_vfl_training_log(spec["log_path"])

    def _apply_register(self, spec: dict) -> None:
        run_id = spec.get("run_id")
        already = run_id is not None and self.service.has_run(run_id)
        if already and run_id in self._logs:
            return  # redelivered frame, nothing new
        try:
            log = self._load_log(spec)
            if not already:
                if spec.get("kind") == "hfl":
                    validation, model_factory = hfl_validation_and_model(
                        spec.get("dataset", "mnist"),
                        int(spec.get("seed", 0)),
                        spec.get("n_samples"),
                    )
                    self.service.register_hfl(
                        log.participant_ids,
                        validation,
                        model_factory,
                        run_id=run_id,
                        use_logged_weights=bool(
                            spec.get("use_logged_weights", False)
                        ),
                        estimator=spec.get("estimator", "digfl"),
                        estimator_options=spec.get("estimator_options"),
                    )
                else:
                    self.service.register_vfl(
                        log.feature_blocks,
                        log.active_parties,
                        run_id=run_id,
                        estimator=spec.get("estimator", "digfl"),
                        estimator_options=spec.get("estimator_options"),
                    )
        except (
            FileNotFoundError,
            TrainingLogIntegrityError,
            KeyError,
            ValueError,
        ) as exc:
            # Losing one run's log file — or a WAL spec naming an
            # estimator backend this process doesn't register — must not
            # take down recovery (or replication) of everything else;
            # its ingests will be counted under epochs_skipped.
            self.runs_skipped.append(f"{run_id} ({exc})")
            return
        if not already:
            # Re-log the registration locally (no-op without a WAL), so
            # this worker's own WAL replays in the order recovery needs.
            self.service.record_registration(dict(spec))
            self.runs_restored += 1
        self._logs[run_id] = (dict(spec), log)

    def _apply_ingest(self, payload: dict) -> None:
        run_id = payload.get("run_id")
        cached = self._logs.get(run_id)
        if cached is None:
            # Registered out-of-band (live publisher run) or its
            # registration was skipped above — nothing to replay from.
            self.epochs_skipped += 1
            return
        spec, log = cached
        epoch_count = int(payload["epoch"])
        if epoch_count > log.n_epochs:
            # The producer may have re-saved a longer log since we
            # loaded it (live pipelines append); reload once before
            # declaring the WAL and the file out of sync.
            try:
                log = self._load_log(spec)
                self._logs[run_id] = (spec, log)
            except (FileNotFoundError, TrainingLogIntegrityError, KeyError):
                pass
            if epoch_count > log.n_epochs:
                raise RecoveryError(
                    f"WAL says run {run_id!r} ingested {epoch_count} epochs "
                    f"but its log file holds only {log.n_epochs}"
                )
        record = log.records[epoch_count - 1]
        got = self.service.ingest(run_id, record, seq=epoch_count)
        if got > epoch_count:
            return  # redelivered frame for an epoch long absorbed
        if got != epoch_count:
            raise RecoveryError(
                f"replaying run {run_id!r} reached {got} epochs where the "
                f"WAL expected {epoch_count}"
            )
        rebuilt = self.service.run_digest(run_id)
        recorded = payload.get("digest")
        if recorded is not None and rebuilt != recorded:
            raise RecoveryError(
                f"run {run_id!r} epoch {epoch_count}: rebuilt digest "
                f"{rebuilt[:12]}… does not match the WAL's "
                f"{recorded[:12]}… — the log file changed since the "
                "crash; refusing to serve different numbers"
            )
        self.epochs_replayed += 1


class WalFollower:
    """Tails a primary's WAL over HTTP and applies every frame locally.

    ``next_seq`` counts *primary* sequence numbers.  On a standby
    restart it resumes from the standby's own WAL length — a
    conservative lower bound (a skipped run produces primary entries
    with no local counterpart), so some frames may be refetched; the
    applier's idempotence makes that free.  A primary that stops
    answering is *not* an error here: the supervisor decides between
    promotion and respawn, and the follower just keeps polling (after a
    respawn the reborn primary replays its WAL file and serves the same
    stream).  An invalid frame or digest divergence IS fatal — the
    follower parks the error and :meth:`promote` refuses, which makes
    the supervisor fall back to cold respawn rather than promote a
    replica that disagrees with the primary.
    """

    def __init__(
        self,
        applier: WalApplier,
        primary_host: str,
        primary_port: int,
        *,
        primary_wal_dir: str | Path | None = None,
        start_seq: int = 1,
        poll_s: float = 0.05,
        timeout_s: float = 5.0,
        batch: int = 512,
        registry=None,
    ) -> None:
        self.applier = applier
        self.primary_host = primary_host
        self.primary_port = primary_port
        self.primary_wal_dir = (
            Path(primary_wal_dir) if primary_wal_dir is not None else None
        )
        self.next_seq = max(1, int(start_seq))
        self.end_seq = 0  # highest primary seq observed
        self.poll_s = poll_s
        self.timeout_s = timeout_s
        self.batch = batch
        self.error: Exception | None = None
        self.promoted = False
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._registry = registry
        if registry is not None:
            self._lag = registry.gauge(
                LAG_GAUGE,
                help="WAL records the primary has durably logged that this "
                "standby has not yet applied",
            )
            self._applied = registry.gauge(
                APPLIED_GAUGE,
                help="highest primary WAL sequence applied by this standby",
            )
            self._frames = registry.counter(
                FRAMES_COUNTER,
                help="WAL frames fetched and applied from the primary",
            )
            self._applied.set(self.next_seq - 1)
        else:
            self._lag = self._applied = self._frames = None

    # ------------------------------------------------------------- lifecycle

    def start(self) -> None:
        self._thread = threading.Thread(
            target=self._loop, name="wal-follower", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=self.timeout_s + 1.0)

    @property
    def lag(self) -> int:
        return max(0, self.end_seq - (self.next_seq - 1))

    def stats(self) -> dict:
        return {
            "applied_seq": self.next_seq - 1,
            "primary_end_seq": self.end_seq,
            "lag_records": self.lag,
            "promoted": self.promoted,
            "error": str(self.error) if self.error is not None else None,
        }

    # ------------------------------------------------------------- streaming

    def _fetch(self) -> dict:
        conn = HTTPConnection(
            self.primary_host, self.primary_port, timeout=self.timeout_s
        )
        try:
            conn.request(
                "GET", f"/wal/stream?from_seq={self.next_seq}&limit={self.batch}"
            )
            response = conn.getresponse()
            body = response.read()
            if response.status != 200:
                raise HTTPException(
                    f"/wal/stream answered {response.status}: {body[:200]!r}"
                )
            payload = json.loads(body)
            if not isinstance(payload, dict):
                raise ValueError("wal stream payload is not an object")
            return payload
        finally:
            conn.close()

    def _apply_frames(self, payload: dict) -> bool:
        frames = payload.get("frames") or []
        for frame in frames:
            entry = validate_wal_record(frame, expected_seq=self.next_seq)
            if entry is None:
                raise ReplicationError(
                    f"primary {self.primary_host}:{self.primary_port} served "
                    f"an invalid frame where seq {self.next_seq} was expected"
                )
            self.applier.apply(entry)
            self.next_seq += 1
            if self._frames is not None:
                self._frames.inc()
        self.end_seq = max(self.end_seq, int(payload.get("end_seq", 0)))
        if self._lag is not None:
            self._lag.set(self.lag)
            self._applied.set(self.next_seq - 1)
        return bool(frames)

    def _loop(self) -> None:
        while not self._stop.is_set():
            try:
                payload = self._fetch()
            except (OSError, HTTPException, ValueError):
                # Primary unreachable or mid-restart: supervisor's
                # problem, not ours; keep polling.
                self._stop.wait(self.poll_s)
                continue
            try:
                advanced = self._apply_frames(payload)
            except Exception as exc:  # divergence is fatal to following
                self.error = exc
                return
            if not advanced:
                self._stop.wait(self.poll_s)

    # ------------------------------------------------------------- promotion

    def promote(self, primary_wal_dir: str | Path | None = None) -> dict:
        """Stop following and catch up the tail; returns promotion stats.

        The final unshipped records are read straight from the (dead)
        primary's WAL *file* — fsync'd before every acknowledgement, so
        it survives SIGKILL and a torn final line is exactly the one
        record the primary never acknowledged.  Idempotent: a second
        call returns the first call's result.
        """
        if self.promoted:
            return self.stats() | {"drained": 0}
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=self.timeout_s + 1.0)
        if self.error is not None:
            raise ReplicationError(
                f"refusing to promote a diverged standby: {self.error}"
            ) from self.error
        wal_dir = Path(primary_wal_dir) if primary_wal_dir else self.primary_wal_dir
        drained = 0
        if wal_dir is not None:
            drained = self._drain_from_file(wal_dir / WriteAheadLog.FILENAME)
        self.promoted = True
        if self._registry is not None:
            # A primary has no replication lag; drop the standby gauges
            # so the merged cluster /metricz doesn't show a frozen lag.
            self._registry.unregister(LAG_GAUGE)
            self._registry.unregister(APPLIED_GAUGE)
        return self.stats() | {"drained": drained}

    def _drain_from_file(self, path: Path) -> int:
        entries, _, _ = scan_wal(path)
        drained = 0
        for entry in entries:
            if entry.seq < self.next_seq:
                continue
            if entry.seq != self.next_seq:
                raise ReplicationError(
                    f"gap in {path}: expected seq {self.next_seq}, "
                    f"found {entry.seq}"
                )
            self.applier.apply(entry)
            self.next_seq += 1
            drained += 1
        self.end_seq = max(self.end_seq, self.next_seq - 1)
        return drained


class WorkerController:
    """The supervisor→worker control plane behind ``POST /control/{verb}``.

    Installed on every cluster worker's HTTP server (primaries get it
    too — ``adopt`` and ``epoch`` apply to them; ``promote`` answers a
    typed 409).  Errors surface through :class:`ApiError`, keeping the
    no-bare-500 property across the control plane.
    """

    def __init__(self, server, service, applier: WalApplier, follower=None):
        self.server = server
        self.service = service
        self.applier = applier
        self.follower = follower

    @property
    def role(self) -> str:
        if self.follower is not None and not self.follower.promoted:
            return "standby"
        return "primary"

    def handle(self, verb: str, body: dict) -> dict:
        if verb == "status":
            return {
                "role": self.role,
                "ring_epoch": self.server.ring_epoch,
                "replication": (
                    self.follower.stats() if self.follower is not None else None
                ),
            }
        if verb == "epoch":
            return self._set_epoch(body)
        if verb == "promote":
            return self._promote(body)
        if verb == "adopt":
            return self._adopt(body)
        raise ApiError(404, f"no such control verb: {verb!r}")

    def _set_epoch(self, body: dict) -> dict:
        try:
            epoch = int(body["ring_epoch"])
        except (KeyError, TypeError, ValueError):
            raise ApiError(400, "body must carry an integer ring_epoch") from None
        current = self.server.ring_epoch or 0
        # Epochs only advance; a lagging supervisor retry must not
        # un-fence a worker.
        self.server.ring_epoch = max(current, epoch)
        return {"ring_epoch": self.server.ring_epoch}

    def _promote(self, body: dict) -> dict:
        if self.follower is None:
            raise ApiError(409, "this worker is a primary; nothing to promote")
        try:
            stats = self.follower.promote(body.get("primary_wal_dir"))
        except (ReplicationError, RecoveryError, WalCorruption) as exc:
            raise ApiError(503, f"promotion failed: {exc}") from None
        return {"promoted": True} | stats

    def _adopt(self, body: dict) -> dict:
        frames = body.get("frames")
        if not isinstance(frames, list):
            raise ApiError(400, "body must carry a frames list")
        adopted = 0
        runs: set = set()
        for index, frame in enumerate(frames):
            # A shipped per-run subset has seq gaps by construction, so
            # checksum/shape only — no dense-sequence check.
            entry = validate_wal_record(frame)
            if entry is None:
                raise ApiError(
                    400, f"frame {index} failed checksum validation"
                )
            try:
                self.applier.apply(entry)
            except RecoveryError as exc:
                raise ApiError(409, f"adopt rejected: {exc}") from None
            adopted += 1
            run_id = entry.payload.get("run_id")
            if run_id:
                runs.add(str(run_id))
        return {"adopted": adopted, "runs": sorted(runs)}
