"""Consistent-hash ring: run ids → shards, stable under membership change.

The cluster router must answer "which worker owns run X" without a
coordination service, and the answer must barely move when a shard is
added or removed — every moved run means a WAL replay on its new owner.
A consistent-hash ring gives both properties: each shard contributes
``replicas`` virtual nodes at pseudo-random positions on a 64-bit circle
(SHA-256 of ``"{type}:{shard}#{replica}"`` — type-qualified so ``0`` and
``"0"`` are different shards with disjoint positions), and a key belongs
to the first virtual node clockwise of the key's own hash.

Two guarantees the property tests (``tests/test_cluster_ring.py``) pin:

* **Minimal movement.**  Removing a shard only moves the keys that shard
  owned (everything else keeps its owner, exactly); adding a shard only
  moves keys *to* the new shard.
* **Bounded spread.**  With enough virtual nodes (the default 64 per
  shard) key ownership is balanced within a modest factor of fair share.

Thread-safe: the router reads ``shard_for`` on every request while a
rebalance may add/remove shards; all three take one small lock.
"""

from __future__ import annotations

import bisect
import hashlib
import threading
from dataclasses import dataclass, field
from typing import Hashable, Iterable, Sequence


@dataclass(frozen=True)
class ResizePlan:
    """The exact key-movement set for a ring membership change.

    ``moves`` maps each key whose owner changes to ``(source, dest)``;
    everything not in it stays put — the minimal-movement ring invariants
    make that an *exact* statement, which is what lets the supervisor's
    online rebalance ship only the moving runs' WAL subsets.  ``new_ring``
    is the post-resize ring, built but not yet live: the caller dual-
    writes against it during migration and flips to it (bumping the ring
    epoch) only once every move has landed.
    """

    old_shards: frozenset
    new_shards: frozenset
    added: frozenset
    removed: frozenset
    moves: dict = field(default_factory=dict)
    new_ring: "HashRing" = None

    @property
    def empty(self) -> bool:
        return not self.moves and not self.added and not self.removed


class HashRing:
    """Consistent hashing over an arbitrary set of hashable shard ids."""

    def __init__(self, shards: Iterable[Hashable] = (), *, replicas: int = 64) -> None:
        if replicas <= 0:
            raise ValueError(f"replicas must be positive, got {replicas}")
        self.replicas = replicas
        self._lock = threading.Lock()
        self._shards: set = set()
        self._hashes: list[int] = []
        self._owners: list = []  # parallel to _hashes
        for shard in shards:
            self.add(shard)

    @staticmethod
    def _hash(data: str) -> int:
        """First 8 bytes of SHA-256 as an unsigned int — the circle position."""
        return int.from_bytes(hashlib.sha256(data.encode()).digest()[:8], "big")

    # ----------------------------------------------------------- membership

    def add(self, shard: Hashable) -> None:
        """Place ``shard``'s virtual nodes on the ring."""
        with self._lock:
            if shard in self._shards:
                raise ValueError(f"shard {shard!r} is already on the ring")
            self._shards.add(shard)
            for replica in range(self.replicas):
                # Type-qualified so distinct shards with equal string
                # forms (0 vs "0") never share ring positions — str()
                # alone would collide their virtual nodes and make
                # ownership at the tied positions insertion-ordered.
                position = self._hash(
                    f"{type(shard).__name__}:{shard}#{replica}"
                )
                index = bisect.bisect(self._hashes, position)
                self._hashes.insert(index, position)
                self._owners.insert(index, shard)

    def remove(self, shard: Hashable) -> None:
        """Take ``shard`` off the ring; its keys fall to their successors."""
        with self._lock:
            if shard not in self._shards:
                raise KeyError(f"shard {shard!r} is not on the ring")
            self._shards.discard(shard)
            kept = [
                (position, owner)
                for position, owner in zip(self._hashes, self._owners)
                if owner != shard
            ]
            self._hashes = [position for position, _ in kept]
            self._owners = [owner for _, owner in kept]

    @property
    def shards(self) -> frozenset:
        with self._lock:
            return frozenset(self._shards)

    def __len__(self) -> int:
        with self._lock:
            return len(self._shards)

    def __contains__(self, shard: Hashable) -> bool:
        with self._lock:
            return shard in self._shards

    # -------------------------------------------------------------- lookup

    def shard_for(self, key: str) -> Hashable:
        """The shard owning ``key``: first virtual node clockwise of its hash."""
        with self._lock:
            if not self._hashes:
                raise ValueError("cannot route on an empty ring")
            index = bisect.bisect(self._hashes, self._hash(key))
            if index == len(self._hashes):  # wrap past 2^64 - 1
                index = 0
            return self._owners[index]

    def spread(self, keys: Sequence[str]) -> dict:
        """Ownership counts over ``keys`` — the balance diagnostic.

        ``GET /cluster`` serves this for the registered run ids, and the
        property tests bound ``max(spread) / fair_share`` with it.
        """
        counts: dict = {shard: 0 for shard in self.shards}
        for key in keys:
            counts[self.shard_for(key)] += 1
        return counts

    # ------------------------------------------------------------- resize

    def plan_resize(
        self, new_shards: Iterable[Hashable], keys: Sequence[str]
    ) -> ResizePlan:
        """Plan the move set for changing membership to ``new_shards``.

        Builds the would-be ring and diffs ownership of every key in
        ``keys`` (dense duplicates collapse; order is preserved).  This
        ring is left untouched — the caller migrates per ``plan.moves``
        and then adopts ``plan.new_ring`` atomically.  The exact ring
        invariants bound the plan: pure addition moves keys only *onto*
        added shards, pure removal moves only the removed shards' keys
        (``tests/test_cluster_ring.py`` pins both over Hypothesis).
        """
        old = self.shards
        new = frozenset(new_shards)
        if not new:
            raise ValueError("cannot resize to an empty ring")
        new_ring = HashRing(sorted(new, key=str), replicas=self.replicas)
        moves: dict = {}
        for key in dict.fromkeys(keys):
            source = self.shard_for(key)
            dest = new_ring.shard_for(key)
            if source != dest:
                moves[key] = (source, dest)
        return ResizePlan(
            old_shards=old,
            new_shards=new,
            added=new - old,
            removed=old - new,
            moves=moves,
            new_ring=new_ring,
        )
