"""Stdlib-only HTTP JSON API over :class:`~repro.serve.service.EvaluationService`.

Endpoints::

    GET  /healthz                      liveness: ok / degraded / closed
    GET  /statusz                      SLO verdicts, burn rates, exemplars
    GET  /robustness                   latest scenario-matrix verdicts
    GET  /metricz                      latency, cache, admission, breakers
    GET  /metricz?format=prometheus    the same registry, Prometheus text
    GET  /runs                         registered runs
    POST /runs                         register a saved training log
    GET  /runs/{id}/contributions      whole-process totals (Eq. 15)
    GET  /runs/{id}/leaderboard?top=k  ranked parties, best first
    GET  /runs/{id}/weights?scheme=s   Eq. 17-18 reweight vector
    GET  /runs/{id}/profile            per-run phase timers (repro.obs)
    GET  /wal/stream?from_seq=n        checksummed WAL frames (replication)
    POST /control/{verb}               supervisor plane: status / epoch /
                                       promote / adopt (cluster workers)

``POST /runs`` body (JSON)::

    {"kind": "hfl", "log_path": "run.npz", "dataset": "mnist",
     "seed": 0, "n_samples": 1200, "run_id": "optional",
     "use_logged_weights": false,
     "estimator": "digfl", "estimator_options": {}}
    {"kind": "vfl", "log_path": "run.npz", "run_id": "optional"}

``estimator`` picks the contribution backend (default ``digfl``; see
:mod:`repro.estimators`); an unknown name is a typed 400 listing the
registered backends, and a backend that cannot evaluate the log's kind
(``gtg_shapley`` on a VFL log) is a 400 too.  The answering backend is
echoed in the 201 body and in every query payload.

A VFL log is self-contained (it embeds both gradient factors of Eq. 27).
An HFL log needs the server-side validation set and model architecture,
which are rebuilt from the dataset spec with the *same* derived seeds the
CLI / workload builders use — so a log saved by ``repro.cli audit-hfl
--save-log`` can be registered by (dataset, seed) alone.  The validation
split is drawn before any corruption, so corruption parameters are not
needed.

Every failure mode carries a distinct status — nothing resilience-related
is ever a bare 500:

* 429 + ``Retry-After`` — the admission queue shed the request
  (:class:`~repro.serve.resilience.ServiceOverloaded`); the header is
  computed from the query-latency p95 and the current queue depth.
* 504 — the request overran its deadline
  (:class:`~repro.serve.resilience.DeadlineExceeded`); the body carries
  the budget, the elapsed time, and any partial-progress counters.
* 503 — the service is closed
  (:class:`~repro.serve.resilience.ServiceClosed`) or the estimator
  failed with no stale answer to fall back on
  (:class:`~repro.serve.resilience.QueryFailed` /
  :class:`~repro.serve.resilience.CircuitOpen`).
* 411 — ``POST /runs`` without a ``Content-Length``; 413 — one above
  ``MAX_BODY_BYTES``; 400 — malformed JSON bodies.
* 405 + ``Allow`` — a known path asked with the wrong method.

The server is a :class:`ThreadingHTTPServer`: each request gets a thread,
the service's admission queue, per-run locks and thread-safe cache do the
rest.  Run it with ``python -m repro.cli serve --port 8733``; add
``--wal-dir``/``--recover`` for a crash-recoverable registry.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from repro.data import HFL_DATASETS, build_hfl_federation
from repro.io import load_training_log, load_vfl_training_log
from repro.metrics.cost import LatencyHistogram
from repro.obs.registry import PROMETHEUS_CONTENT_TYPE
from repro.obs.slo import SloTracker, shed_from_response
from repro.obs.trace import context_from_headers
from repro.nn import make_hfl_model
from repro.serve.resilience import (
    DeadlineExceeded,
    QueryFailed,
    ServiceClosed,
    ServiceOverloaded,
)
from repro.serve.service import EvaluationService
from repro.utils.rng import derive_seed

_DEFAULT_N_SAMPLES = 1200
# POST /runs bodies are small JSON specs; anything bigger is a mistake
# (or a memory-exhaustion attempt) and is refused before being read.
MAX_BODY_BYTES = 1024 * 1024

_RUN_ENDPOINTS = frozenset({"contributions", "leaderboard", "weights", "profile"})
_CONTROL_VERBS = frozenset({"status", "epoch", "promote", "adopt"})
# Default robustness-matrix file (written by benchmarks/bench_scenarios.py
# or `repro scenario matrix --save`), served by GET /robustness.
DEFAULT_ROBUSTNESS_FILE = "BENCH_scenarios.json"


def normalize_route(path: str) -> str:
    """Collapse a request path onto its endpoint *template*.

    This is the RED-metrics cardinality bound: run ids, unknown paths and
    query strings must never become label values, or a load test
    registering a thousand runs mints a thousand series.  Every possible
    input maps onto one of a fixed, small set of templates —
    ``/runs/{id}/leaderboard``, ``/control/promote``, ... — with
    everything unrecognised pooled under ``/other``.
    """
    parts = [p for p in urlparse(path).path.split("/") if p]
    if not parts:
        return "/"
    if parts[0] in (
        "healthz", "metricz", "runs", "statusz", "robustness", "cluster"
    ) and len(parts) == 1:
        return f"/{parts[0]}"
    if parts == ["wal", "stream"]:
        return "/wal/stream"
    if parts == ["cluster", "resize"]:
        return "/cluster/resize"
    if len(parts) == 3 and parts[0] == "runs" and parts[2] in _RUN_ENDPOINTS:
        return "/runs/{id}/" + parts[2]
    if len(parts) == 2 and parts[0] == "control" and parts[1] in _CONTROL_VERBS:
        return "/control/" + parts[1]
    return "/other"


def load_robustness(path) -> dict:
    """The ``GET /robustness`` payload: the saved matrix verdicts, fresh.

    Re-read per request so a re-run of the scenario matrix is queryable
    immediately.  A missing or unreadable file is a typed 404 (the
    matrix simply has not been produced yet), never a bare 500.
    """
    from pathlib import Path

    file = Path(path)
    try:
        payload = json.loads(file.read_text())
    except FileNotFoundError:
        raise ApiError(
            404,
            f"no robustness matrix at {str(file)!r}; run "
            "benchmarks/bench_scenarios.py (or `repro scenario matrix "
            "--save`) to produce one",
        ) from None
    except (OSError, ValueError) as exc:
        raise ApiError(
            404, f"robustness matrix at {str(file)!r} is unreadable: {exc}"
        ) from None
    if not isinstance(payload, dict):
        raise ApiError(
            404, f"robustness matrix at {str(file)!r} is not a JSON object"
        )
    payload = dict(payload)
    payload["file"] = str(file)
    return payload


class RequestTelemetry:
    """SLO tracking + per-endpoint RED series for one HTTP frontend.

    Composed by both the worker server and the cluster router (each front
    door judges the traffic *it* answered): every finished request is
    classified against the SLOs and recorded into request/error/duration
    series labelled by endpoint *template* — the route normalizer bounds
    cardinality, so a thousand run ids still cost one series — with the
    request's trace id captured as a duration-bucket exemplar when
    tracing is armed.
    """

    def __init__(self, registry, *, slos=None, clock=time.monotonic) -> None:
        self.registry = registry
        self.slo_tracker = SloTracker(slos, clock=clock)
        self.red_histograms: dict[str, LatencyHistogram] = {}

    def observe(
        self,
        path: str,
        status: int,
        seconds: float,
        *,
        retry_after: bool = False,
        trace_id: str | None = None,
    ) -> None:
        """Feed one finished request into the SLO tracker and RED series."""
        endpoint = normalize_route(path)
        shed = shed_from_response(status, retry_after=retry_after)
        self.slo_tracker.observe(status=status, latency_s=seconds, shed=shed)
        self.registry.counter(
            "repro_http_requests_total",
            help="requests by endpoint template and status code (RED rate)",
            labels={"endpoint": endpoint, "code": str(status)},
        ).inc()
        if shed:
            self.registry.counter(
                "repro_http_shed_total",
                help="requests deliberately refused (429/503+Retry-After)",
                labels={"endpoint": endpoint},
            ).inc()
        elif status >= 500:
            self.registry.counter(
                "repro_http_errors_total",
                help="non-shed 5xx responses by endpoint template (RED errors)",
                labels={"endpoint": endpoint},
            ).inc()
        histogram = self.red_histograms.get(endpoint)
        if histogram is None:
            # get-or-create is idempotent, so a racing sibling lands on
            # the same instrument; the local index is just a fast path.
            histogram = self.registry.histogram(
                "repro_http_request_duration_seconds",
                help="request duration by endpoint template (RED duration)",
                labels={"endpoint": endpoint},
            )
            self.red_histograms[endpoint] = histogram
        histogram.record(seconds, trace_id=trace_id)

    def endpoints(self) -> dict:
        """Per-endpoint latency summaries plus the slowest exemplar each."""
        out = {}
        for endpoint in sorted(self.red_histograms):
            histogram = self.red_histograms[endpoint]
            summary = histogram.summary()
            summary["slowest"] = histogram.slowest_exemplar()
            out[endpoint] = summary
        return out

    def status(self) -> dict:
        """The common ``/statusz`` core: verdicts + per-endpoint tails."""
        report = self.slo_tracker.evaluate()
        return {
            "status": "burning" if report.burning else "ok",
            "slo": report.to_dict(),
            "endpoints": self.endpoints(),
        }


class RawResponse:
    """A non-JSON handler result: raw body bytes plus a content type.

    Routes return this instead of a payload dict when the wire format is
    not JSON — the Prometheus text exposition of ``/metricz`` is the one
    current case.
    """

    __slots__ = ("body", "content_type")

    def __init__(self, body: str, content_type: str) -> None:
        self.body = body.encode()
        self.content_type = content_type


class ApiError(Exception):
    """An error with an HTTP status (and optional extra response headers)."""

    def __init__(
        self, status: int, message: str, *, headers: dict | None = None
    ) -> None:
        super().__init__(message)
        self.status = status
        self.headers = headers or {}


def hfl_validation_and_model(dataset: str, seed: int, n_samples: int | None = None):
    """Rebuild the (validation set, model factory) pair of a workload.

    Mirrors the seed derivation of
    :func:`repro.experiments.workloads.build_hfl_workload`:
    ``derive_seed(seed, 1)`` makes the data, ``derive_seed(seed, 2)``
    splits it (validation first, so party counts and corruption do not
    matter), ``derive_seed(seed, 3)`` seeds the model.
    """
    if dataset not in HFL_DATASETS:
        raise ApiError(400, f"{dataset!r} is not an HFL dataset")
    info = HFL_DATASETS[dataset]
    data = info.make(
        n_samples=n_samples or _DEFAULT_N_SAMPLES, seed=derive_seed(seed, 1)
    )
    federation = build_hfl_federation(data, 1, seed=derive_seed(seed, 2))

    def model_factory():
        return make_hfl_model(dataset, seed=derive_seed(seed, 3))

    return federation.validation, model_factory


def register_from_spec(service: EvaluationService, spec: dict) -> dict:
    """Handle a ``POST /runs`` body: load the log, register, ingest.

    Registration, WAL recording and ingestion happen in that order, so
    an attached :class:`~repro.serve.wal.WriteAheadLog` sees the
    ``register`` record before any of the run's ``ingest`` records —
    exactly the replay order :func:`repro.serve.wal.recover` needs when
    the process is killed mid-ingest.
    """
    kind = spec.get("kind")
    if kind not in ("hfl", "vfl"):
        raise ApiError(400, "kind must be 'hfl' or 'vfl'")
    log_path = spec.get("log_path")
    if not log_path:
        raise ApiError(400, "log_path is required")
    estimator, estimator_options = _resolve_estimator(spec, kind)
    requested = estimator
    run_id = spec.get("run_id")
    try:
        if kind == "hfl":
            log = load_training_log(log_path)
            if estimator == "auto":
                estimator = _auto_estimator(
                    kind, len(log.participant_ids), estimator_options
                )
            validation, model_factory = hfl_validation_and_model(
                spec.get("dataset", "mnist"),
                int(spec.get("seed", 0)),
                spec.get("n_samples"),
            )
            run_id = service.register_hfl(
                log.participant_ids,
                validation,
                model_factory,
                run_id=run_id,
                use_logged_weights=bool(spec.get("use_logged_weights", False)),
                estimator=estimator,
                estimator_options=estimator_options,
            )
            service.record_registration(
                {
                    "kind": "hfl",
                    "log_path": str(log_path),
                    "run_id": run_id,
                    "dataset": spec.get("dataset", "mnist"),
                    "seed": int(spec.get("seed", 0)),
                    "n_samples": spec.get("n_samples"),
                    "use_logged_weights": bool(
                        spec.get("use_logged_weights", False)
                    ),
                    "estimator": estimator,
                    "estimator_options": estimator_options,
                }
            )
        else:
            log = load_vfl_training_log(log_path)
            if estimator == "auto":
                estimator = _auto_estimator(
                    kind, len(log.feature_blocks), estimator_options
                )
            run_id = service.register_vfl(
                log.feature_blocks,
                log.active_parties,
                run_id=run_id,
                estimator=estimator,
                estimator_options=estimator_options,
            )
            service.record_registration(
                {
                    "kind": "vfl",
                    "log_path": str(log_path),
                    "run_id": run_id,
                    "estimator": estimator,
                    "estimator_options": estimator_options,
                }
            )
        service.ingest_log(run_id, log)
    except ApiError:
        raise
    except FileNotFoundError:
        raise ApiError(400, f"no training log at {log_path!r}") from None
    except (ValueError, KeyError) as exc:
        raise ApiError(400, str(exc)) from None
    summary = {
        "run_id": run_id,
        "kind": kind,
        "estimator": estimator,
        "epochs": log.n_epochs,
    }
    if requested == "auto":
        # The 201 echoes the *concretely chosen* backend (and that it was
        # auto-selected); queries report it too via the run summary.
        summary["estimator_requested"] = "auto"
    return summary


def _resolve_estimator(spec: dict, kind: str) -> tuple[str, dict]:
    """Validate the spec's estimator choice *before* touching the log.

    Typed refusals, never a bare 500: an unknown backend name answers
    400 listing every registered backend, an unknown option or a
    kind-unsupporting backend answers 400 with the constructor's
    message.  ``"auto"`` passes through unresolved — the crossover
    policy needs the log's party count, so :func:`register_from_spec`
    resolves it (via :func:`repro.core.backends.choose_backend`) right
    after loading the log.
    """
    from repro.core.backends import UnknownBackendError, backend_names, get_backend

    name = spec.get("estimator", "digfl")
    if not isinstance(name, str):
        raise ApiError(400, f"estimator must be a string, got {name!r}")
    options = spec.get("estimator_options") or {}
    if not isinstance(options, dict):
        raise ApiError(
            400, f"estimator_options must be a JSON object, got {options!r}"
        )
    if name == "auto":
        return name, options
    try:
        backend = get_backend(name, **options)
        backend.require(kind)
    except UnknownBackendError:
        raise ApiError(
            400,
            f"unknown estimator {name!r}; registered backends: "
            f"{', '.join(backend_names())}",
        ) from None
    except (TypeError, ValueError) as exc:
        raise ApiError(400, str(exc)) from None
    return backend.name, options


def _auto_estimator(kind: str, n_parties: int, options: dict) -> str:
    """Resolve ``"estimator": "auto"`` to a concrete, validated backend.

    :func:`repro.core.backends.choose_backend` applies the measured
    gtg↔dpvs crossover from ``BENCH_estimators.json`` (falling back to
    ``digfl``); the chosen backend is then constructed with the spec's
    options and checked against the log kind, so an option the chosen
    backend does not take is a typed 400 — and the WAL records the
    concrete name, keeping replay deterministic even if the benchmark
    file changes later.
    """
    from repro.core.backends import choose_backend, get_backend

    chosen = choose_backend(n_parties, kind)
    try:
        get_backend(chosen, **options).require(kind)
    except (TypeError, ValueError) as exc:
        raise ApiError(
            400, f"auto-selected estimator {chosen!r}: {exc}"
        ) from None
    return chosen


def read_json_body(handler) -> dict:
    """The ``POST`` body ladder: 411 / 400 / 413 before reading, then JSON.

    Shared by the worker handler and the cluster router, so both speak
    the same typed refusals: 411 without a ``Content-Length``, 400 for a
    malformed one or a non-object body, 413 above ``MAX_BODY_BYTES``.
    """
    length_header = handler.headers.get("Content-Length")
    if length_header is None:
        raise ApiError(411, f"POST {handler.path} requires a Content-Length header")
    try:
        length = int(length_header)
    except ValueError:
        raise ApiError(400, f"bad Content-Length: {length_header!r}") from None
    if length > MAX_BODY_BYTES:
        raise ApiError(
            413,
            f"request body of {length} bytes exceeds the "
            f"{MAX_BODY_BYTES}-byte limit",
        )
    try:
        spec = json.loads(handler.rfile.read(length) or b"{}")
    except json.JSONDecodeError as exc:
        raise ApiError(400, f"request body is not JSON: {exc}") from None
    if not isinstance(spec, dict):
        raise ApiError(400, "request body must be a JSON object")
    return spec


def _allowed_methods(parts: list[str]) -> frozenset[str] | None:
    """The methods a path supports, or ``None`` for an unknown path."""
    if parts in (
        ["healthz"],
        ["metricz"],
        ["statusz"],
        ["robustness"],
        ["wal", "stream"],
    ):
        return frozenset({"GET"})
    if parts == ["runs"]:
        return frozenset({"GET", "POST"})
    if len(parts) == 3 and parts[0] == "runs" and parts[2] in _RUN_ENDPOINTS:
        return frozenset({"GET"})
    if len(parts) == 2 and parts[0] == "control":
        return frozenset({"POST"})
    return None


class _Handler(BaseHTTPRequestHandler):
    """Routes requests onto the server's :class:`EvaluationService`."""

    server_version = "repro-serve/1.0"
    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> EvaluationService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if self.server.verbose:  # type: ignore[attr-defined]
            super().log_message(format, *args)

    # ------------------------------------------------------------- plumbing

    def _send_body(
        self,
        payload: "dict | RawResponse",
        status: int = 200,
        headers: dict | None = None,
    ) -> None:
        if isinstance(payload, RawResponse):
            body, content_type = payload.body, payload.content_type
        else:
            body, content_type = json.dumps(payload).encode(), "application/json"
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _dispatch(self, handler) -> None:
        started = time.perf_counter()
        headers: dict = {}
        tracer = self.service.obs.tracer
        # A cluster router (or any instrumented client) propagates its
        # trace through X-Repro-Trace-Id / X-Repro-Parent-Span, so the
        # worker-side request span joins the caller's trace instead of
        # rooting its own — one client request, one trace, two processes.
        with tracer.span(
            "http.request",
            parent=context_from_headers(self.headers),
            http_method=self.command,
            path=self.path,
        ) as span:
            try:
                payload, status = handler()
            except ApiError as exc:
                payload, status, headers = {"error": str(exc)}, exc.status, exc.headers
            except ServiceOverloaded as exc:
                payload = {"error": str(exc), "retry_after_s": exc.retry_after_s}
                status = 429
                headers = {"Retry-After": str(int(exc.retry_after_s))}
            except DeadlineExceeded as exc:
                payload = {
                    "error": str(exc),
                    "budget_ms": exc.budget_ms,
                    "elapsed_ms": exc.elapsed_ms,
                    "progress": exc.progress,
                }
                status = 504
            except ServiceClosed as exc:
                payload, status = {"error": str(exc)}, 503
            except QueryFailed as exc:  # includes CircuitOpen
                payload, status = {"error": str(exc)}, 503
            except KeyError as exc:
                payload, status = {"error": str(exc.args[0] if exc.args else exc)}, 404
            except ValueError as exc:
                payload, status = {"error": str(exc)}, 400
            except Exception as exc:  # pragma: no cover - last-resort guard
                payload, status = {"error": f"internal error: {exc}"}, 500
            span.set_attribute("status", status)
            if status >= 400:
                span.end(status="error")
            trace_id = span.trace_id if span.context is not None else None
        self._send_body(payload, status, headers)
        elapsed = time.perf_counter() - started
        self.server.request_latency.record(elapsed)  # type: ignore[attr-defined]
        self.server.observe_request(  # type: ignore[attr-defined]
            self.path,
            status,
            elapsed,
            retry_after="Retry-After" in headers,
            trace_id=trace_id,
        )
        logger = self.service.obs.logger
        if logger.enabled:
            logger.log(
                "http.request",
                level="warning" if status >= 400 else "info",
                http_method=self.command,
                path=self.path,
                status=status,
            )

    def _method_not_allowed(self, parts: list[str], method: str):
        allowed = _allowed_methods(parts)
        if allowed is None:
            raise ApiError(404, f"no such endpoint: {method} /{'/'.join(parts)}")
        raise ApiError(
            405,
            f"{method} is not supported here; allowed: "
            f"{', '.join(sorted(allowed))}",
            headers={"Allow": ", ".join(sorted(allowed))},
        )

    # --------------------------------------------------------------- routes

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        self._dispatch(self._route_get)

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        self._dispatch(self._route_post)

    def do_PUT(self) -> None:  # noqa: N802 - stdlib naming
        self._dispatch(self._route_other("PUT"))

    def do_DELETE(self) -> None:  # noqa: N802 - stdlib naming
        self._dispatch(self._route_other("DELETE"))

    def do_PATCH(self) -> None:  # noqa: N802 - stdlib naming
        self._dispatch(self._route_other("PATCH"))

    def _route_other(self, method: str):
        parts = [p for p in urlparse(self.path).path.split("/") if p]

        def route():
            self._method_not_allowed(parts, method)

        return route

    def _route_get(self) -> tuple[dict, int]:
        url = urlparse(self.path)
        parts = [p for p in url.path.split("/") if p]
        query = parse_qs(url.query)
        if parts == ["healthz"]:
            return self.service.health(), 200
        if parts == ["statusz"]:
            return self.server.statusz(), 200  # type: ignore[attr-defined]
        if parts == ["robustness"]:
            return load_robustness(self.server.robustness_file), 200  # type: ignore[attr-defined]
        if parts == ["metricz"]:
            fmt = query.get("format", ["json"])[0]
            if fmt == "prometheus":
                return (
                    RawResponse(
                        self.service.obs.registry.render_prometheus(),
                        PROMETHEUS_CONTENT_TYPE,
                    ),
                    200,
                )
            if fmt == "snapshot":
                # The raw registry snapshot, for cluster aggregation: a
                # router scrapes every worker's snapshot and folds them
                # into one registry via MetricsRegistry.merge().
                return {"snapshot": self.service.obs.registry.snapshot()}, 200
            if fmt != "json":
                raise ApiError(
                    400,
                    "format must be 'json', 'prometheus' or 'snapshot', "
                    f"got {fmt!r}",
                )
            stats = self.service.stats()
            stats["latency"]["http"] = self.server.request_latency.summary()  # type: ignore[attr-defined]
            return stats, 200
        if parts == ["runs"]:
            return {"runs": self.service.runs()}, 200
        if len(parts) == 3 and parts[0] == "runs":
            run_id, endpoint = parts[1], parts[2]
            if endpoint == "contributions":
                return self.service.query("contributions", run_id), 200
            if endpoint == "leaderboard":
                top = query.get("top", [None])[0]
                return (
                    self.service.query(
                        "leaderboard", run_id, top=int(top) if top is not None else None
                    ),
                    200,
                )
            if endpoint == "weights":
                scheme = query.get("scheme", ["rectified"])[0]
                return self.service.query("weights", run_id, scheme=scheme), 200
            if endpoint == "profile":
                return self.service.profile(run_id), 200
        if parts == ["wal", "stream"]:
            wal = getattr(self.service, "wal", None)
            if wal is None:
                raise ApiError(
                    404, "no write-ahead log is attached to this worker"
                )
            from_seq = int(query.get("from_seq", ["1"])[0])
            limit = int(query.get("limit", ["512"])[0])
            return wal.frames_from(from_seq, limit=limit), 200
        raise ApiError(404, f"no such endpoint: GET {url.path}")

    def _route_post(self) -> tuple[dict, int]:
        url = urlparse(self.path)
        parts = [p for p in url.path.split("/") if p]
        if len(parts) == 2 and parts[0] == "control":
            controller = getattr(self.server, "controller", None)
            if controller is None:
                raise ApiError(404, "this server has no cluster controller")
            return controller.handle(parts[1], read_json_body(self)), 200
        if parts != ["runs"]:
            self._method_not_allowed(parts, "POST")
        self._check_ring_epoch()
        return register_from_spec(self.service, read_json_body(self)), 201

    def _check_ring_epoch(self) -> None:
        """Fence stale-epoch writes during an online rebalance.

        The cluster router stamps proxied writes with the ring epoch it
        routed by (``X-Repro-Ring-Epoch``); a worker that has been told a
        newer epoch answers a typed 409 carrying its own epoch, which the
        router uses to re-route against the refreshed ring instead of
        landing the write on a shard that no longer owns the key.  Both
        sides are opt-in: a standalone server (``server.ring_epoch is
        None``) or an unstamped client skips the check entirely.
        """
        fence = getattr(self.server, "ring_epoch", None)
        header = self.headers.get("X-Repro-Ring-Epoch")
        if fence is None or header is None:
            return
        try:
            claimed = int(header)
        except ValueError:
            raise ApiError(
                400, f"bad X-Repro-Ring-Epoch header: {header!r}"
            ) from None
        if claimed < fence:
            raise ApiError(
                409,
                f"stale ring epoch {claimed}: this worker is fenced at "
                f"epoch {fence}",
                headers={"X-Repro-Ring-Epoch": str(fence)},
            )


class EvaluationHTTPServer(ThreadingHTTPServer):
    """Threaded HTTP server bound to one :class:`EvaluationService`."""

    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        service: EvaluationService | None = None,
        *,
        verbose: bool = False,
        slos: tuple | list | None = None,
        robustness_file: str | None = None,
    ) -> None:
        super().__init__(address, _Handler)
        self.service = service if service is not None else EvaluationService()
        self.request_latency = LatencyHistogram()
        self.verbose = verbose
        # Cluster plumbing, both off for a standalone server: the worker
        # bootstrap installs a WorkerController (POST /control/*) and the
        # current ring epoch (stale-write fencing); see serve/replication.
        self.controller = None
        self.ring_epoch: int | None = None
        # The SLO engine + RED series: every finished request is
        # classified good/bad per objective; GET /statusz serves verdicts.
        self.telemetry = RequestTelemetry(self.service.obs.registry, slos=slos)
        self.slo_tracker = self.telemetry.slo_tracker
        self.robustness_file = robustness_file or DEFAULT_ROBUSTNESS_FILE
        # exist_ok: a service outliving one HTTP frontend (tests, restarts)
        # re-registers the fresh histogram over the dead one's.
        self.service.obs.registry.register(
            "repro_http_request_latency_seconds",
            self.request_latency,
            help="HTTP request wall time, routing through response write",
            exist_ok=True,
        )

    def observe_request(
        self,
        path: str,
        status: int,
        seconds: float,
        *,
        retry_after: bool = False,
        trace_id: str | None = None,
    ) -> None:
        """One finished request into the SLO tracker and RED series."""
        self.telemetry.observe(
            path, status, seconds, retry_after=retry_after, trace_id=trace_id
        )

    def statusz(self) -> dict:
        """The ``GET /statusz`` payload: verdicts, not raw series.

        SLO burn rates and budgets, per-endpoint latency summaries with
        the slowest exemplar (a trace id to pull up first), breaker
        states, and — on a standby — replication lag.
        """
        payload = self.telemetry.status()
        stats = self.service.stats()
        follower = getattr(self.controller, "follower", None)
        payload.update(
            {
                "health": self.service.health()["status"],
                "breakers": stats["breakers"],
                "replication": (
                    follower.stats() if follower is not None else None
                ),
                "uptime_seconds": stats["uptime_seconds"],
                "ring_epoch": self.ring_epoch,
            }
        )
        return payload

    @property
    def port(self) -> int:
        return self.server_address[1]

    def serve_background(self) -> threading.Thread:
        """Serve on a daemon thread (tests / in-process embedding)."""
        thread = threading.Thread(target=self.serve_forever, daemon=True)
        thread.start()
        return thread


def serve(
    host: str = "127.0.0.1",
    port: int = 8733,
    *,
    service: EvaluationService | None = None,
    verbose: bool = True,
    robustness_file: str | None = None,
) -> int:
    """Run the server until interrupted; the ``repro serve`` entry point."""
    server = EvaluationHTTPServer(
        (host, port), service, verbose=verbose, robustness_file=robustness_file
    )
    print(f"repro-serve listening on http://{host}:{server.port}")
    print("endpoints: /healthz /statusz /robustness "
          "/metricz[?format=prometheus] /runs "
          "/runs/{id}/contributions /runs/{id}/leaderboard /runs/{id}/weights "
          "/runs/{id}/profile")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        server.server_close()
        server.service.close()
    return 0
