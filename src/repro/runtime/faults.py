"""Fault model: dropouts, stragglers and crash-then-retry.

A :class:`FaultPlan` declares the failure statistics of a federation; the
:class:`FaultInjector` turns it into a deterministic per-(round, party)
:class:`TaskFate` — the sampled outcome of one local-training task.  All
draws are seeded through :func:`repro.utils.rng.derive_seed`, so a plan
replays identically across runs and executors, and changing one party's
fate never perturbs another's (the property the leave-one-out baselines
rely on elsewhere in the repo).

Fate of one attempt sequence:

1. With probability ``dropout_rate`` the party skips the round outright
   (device offline — it never downloads the model).
2. Otherwise each attempt crashes with probability ``crash_rate``; after a
   crash the party retries with exponential backoff
   (``backoff_ms · 2^(attempt-1)``) until ``max_retries`` is exhausted,
   at which point it gives up for the round.
3. A surviving attempt takes ``base_ms`` of compute plus an
   exponentially-distributed straggler delay of mean ``straggler_ms``.

Whether a late arrival still counts is the *scheduler's* decision (round
deadline), not the injector's — the injector only reports timings.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import derive_seed

MS = 1e-3  # plan fields are milliseconds; simulated time runs in seconds


@dataclass(frozen=True)
class Outage:
    """A scripted, deterministic absence: one party dark for a round span.

    Unlike the statistical ``dropout_rate``, an outage names *which* party
    goes dark and *when* — the scenario suite's "modality dropout" knob,
    where a VFL party's feature block disappears mid-training.  Rounds in
    ``[start_round, end_round]`` (inclusive; ``end_round=None`` means "for
    the rest of the run") drop the party without consuming any rng draws,
    so adding an outage never perturbs the other parties' sampled fates.
    Round numbers follow whatever the scheduler dispatches — the engine
    passes the trainers' 1-indexed epoch numbers.
    """

    party: int
    start_round: int
    end_round: int | None = None

    def __post_init__(self) -> None:
        if self.party < 0:
            raise ValueError(f"party must be non-negative, got {self.party}")
        if self.start_round < 0:
            raise ValueError(
                f"start_round must be non-negative, got {self.start_round}"
            )
        if self.end_round is not None and self.end_round < self.start_round:
            raise ValueError(
                f"end_round {self.end_round} precedes start_round {self.start_round}"
            )

    def covers(self, round: int, party: int) -> bool:
        return (
            party == self.party
            and round >= self.start_round
            and (self.end_round is None or round <= self.end_round)
        )


@dataclass(frozen=True)
class FaultPlan:
    """Statistical description of a federation's failure behaviour.

    The default plan is fault-free: every task completes after ``base_ms``
    of simulated compute.  ``NULL_PLAN.is_null()`` is how the engine knows
    it can promise bit-for-bit equivalence with the synchronous trainers.
    ``outages`` adds *scripted* absences on top of the statistical knobs.
    """

    dropout_rate: float = 0.0
    straggler_ms: float = 0.0
    crash_rate: float = 0.0
    max_retries: int = 3
    backoff_ms: float = 50.0
    base_ms: float = 1.0
    seed: int = 0
    outages: tuple[Outage, ...] = ()

    def __post_init__(self) -> None:
        for name in ("dropout_rate", "crash_rate"):
            value = getattr(self, name)
            if not 0.0 <= value < 1.0:
                raise ValueError(f"{name} must be in [0, 1), got {value}")
        for name in ("straggler_ms", "backoff_ms", "base_ms"):
            if getattr(self, name) < 0.0:
                raise ValueError(f"{name} must be non-negative")
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be non-negative, got {self.max_retries}")
        object.__setattr__(self, "outages", tuple(self.outages))
        for outage in self.outages:
            if not isinstance(outage, Outage):
                raise TypeError(f"outages must hold Outage instances, got {outage!r}")

    def is_null(self) -> bool:
        """True when no fault can ever fire (pure timing simulation)."""
        return (
            self.dropout_rate == 0.0
            and self.straggler_ms == 0.0
            and self.crash_rate == 0.0
            and not self.outages
        )

    def in_outage(self, round: int, party: int) -> bool:
        """True when a scripted outage covers ``(round, party)``."""
        return any(outage.covers(round, party) for outage in self.outages)


NULL_PLAN = FaultPlan()


@dataclass(frozen=True)
class TaskFate:
    """Sampled outcome of one (round, party) local-training task.

    ``duration_s`` is simulated seconds from dispatch to upload, including
    crashed attempts and backoff; it is meaningless when ``dropped``.
    """

    dropped: bool
    gave_up: bool  # dropped because retries were exhausted, not offline
    attempts: int  # total attempts made (≥ 1 unless offline-dropped)
    crashes: int  # failed attempts among them
    duration_s: float

    @property
    def completes(self) -> bool:
        return not self.dropped


class FaultInjector:
    """Deterministic sampler of :class:`TaskFate` from a :class:`FaultPlan`."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan

    def _rng(self, round: int, party: int) -> np.random.Generator:
        return np.random.default_rng(derive_seed(self.plan.seed, round, party))

    def fate(self, round: int, party: int) -> TaskFate:
        """The fate of ``party``'s task in ``round`` (stable across calls)."""
        plan = self.plan
        # Scripted outages fire before any statistical draw — they consume
        # no rng state, so scripting one party never changes another's fate.
        if plan.outages and plan.in_outage(round, party):
            return TaskFate(
                dropped=True, gave_up=False, attempts=0, crashes=0, duration_s=0.0
            )
        if plan.is_null():
            return TaskFate(
                dropped=False,
                gave_up=False,
                attempts=1,
                crashes=0,
                duration_s=plan.base_ms * MS,
            )
        rng = self._rng(round, party)
        # Draw order is part of the format: dropout, then per-attempt
        # crash coins, then one straggler delay.  Keep it fixed.
        if plan.dropout_rate > 0.0 and rng.random() < plan.dropout_rate:
            return TaskFate(
                dropped=True, gave_up=False, attempts=0, crashes=0, duration_s=0.0
            )
        duration = 0.0
        crashes = 0
        while crashes <= plan.max_retries:
            duration += plan.base_ms * MS
            if plan.crash_rate > 0.0 and rng.random() < plan.crash_rate:
                crashes += 1
                if crashes > plan.max_retries:
                    return TaskFate(
                        dropped=True,
                        gave_up=True,
                        attempts=crashes,
                        crashes=crashes,
                        duration_s=duration,
                    )
                duration += plan.backoff_ms * MS * 2 ** (crashes - 1)
                continue
            break
        if plan.straggler_ms > 0.0:
            duration += rng.exponential(plan.straggler_ms * MS)
        return TaskFate(
            dropped=False,
            gave_up=False,
            attempts=crashes + 1,
            crashes=crashes,
            duration_s=duration,
        )
