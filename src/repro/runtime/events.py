"""Structured event log of one federated run.

Every scheduling decision — task dispatched, completed, timed out past the
round deadline, dropped out, crashed and retried — is recorded as an
:class:`Event` with its simulated timestamp.  The log answers the questions
the synchronous trainers cannot: which parties made each round, how long
rounds took, how much work the deadline discarded.  It also feeds
:class:`repro.metrics.cost.CostLedger` with the bytes actually shipped,
so cost accounting under faults only charges updates that arrived.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.metrics.cost import CostLedger

# Event kinds, in rough lifecycle order.
ROUND_BEGIN = "round_begin"
ROUND_END = "round_end"
DISPATCH = "dispatch"
COMPLETE = "complete"
TIMEOUT = "timeout"
DROPOUT = "dropout"
CRASH = "crash"
RETRY = "retry"
# An update arrived but was excluded by the pre-aggregation screening pass
# of repro.robust (detail carries the rule and its numbers).
QUARANTINE = "quarantine"
# The round's epoch record was published into a live contribution service
# (repro.serve); detail carries the run id and the current leaderboard head.
CONTRIB_UPDATED = "contrib_updated"
# Publishing the round exhausted its retries (or the service was closed)
# and the record was dead-lettered; detail carries the publisher's dead
# letter (sequence number, attempts, final error).  Training continues.
PUBLISH_DLQ = "publish_dlq"

EVENT_KINDS = frozenset(
    {
        ROUND_BEGIN,
        ROUND_END,
        DISPATCH,
        COMPLETE,
        TIMEOUT,
        DROPOUT,
        CRASH,
        RETRY,
        QUARANTINE,
        CONTRIB_UPDATED,
        PUBLISH_DLQ,
    }
)


@dataclass(frozen=True)
class Event:
    """One timestamped runtime occurrence.

    ``party`` is ``None`` for round-level events; ``detail`` carries
    kind-specific extras (attempt counts, payload bytes, deadlines).
    """

    kind: str
    sim_time: float
    round: int
    party: int | None = None
    detail: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ValueError(f"unknown event kind {self.kind!r}")


@dataclass
class EventLog:
    """Append-only record of everything the scheduler did.

    ``sink`` is an optional tap called with every event as it is recorded
    — the runtime wires a structured JSON logger through it (see
    :class:`repro.obs.log.JsonLogger`), so scheduling decisions land in
    the same correlated log stream as serve requests.  ``None`` (the
    default) costs nothing.
    """

    events: list[Event] = field(default_factory=list)
    sink: Callable[[Event], None] | None = None

    def record(
        self,
        kind: str,
        sim_time: float,
        round: int,
        party: int | None = None,
        **detail,
    ) -> Event:
        """Append an event and return it."""
        event = Event(
            kind=kind, sim_time=sim_time, round=round, party=party, detail=detail
        )
        self.events.append(event)
        if self.sink is not None:
            self.sink(event)
        return event

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self.events)

    def of_kind(self, kind: str) -> list[Event]:
        """All events of one kind, in order."""
        if kind not in EVENT_KINDS:
            raise ValueError(f"unknown event kind {kind!r}")
        return [e for e in self.events if e.kind == kind]

    def for_round(self, round: int) -> list[Event]:
        """All events of one round, in order."""
        return [e for e in self.events if e.round == round]

    @property
    def n_rounds(self) -> int:
        return len(self.of_kind(ROUND_END))

    def round_duration(self, round: int) -> float:
        """Simulated seconds between a round's begin and end events."""
        begin = [e for e in self.events if e.kind == ROUND_BEGIN and e.round == round]
        end = [e for e in self.events if e.kind == ROUND_END and e.round == round]
        if not begin or not end:
            raise KeyError(f"round {round} is not complete in this log")
        return end[0].sim_time - begin[0].sim_time

    @property
    def sim_seconds(self) -> float:
        """Total simulated wall-clock of the run."""
        if not self.events:
            return 0.0
        return max(e.sim_time for e in self.events) - min(
            e.sim_time for e in self.events
        )

    def charge_comm(self, ledger: CostLedger, bytes_per_update: int) -> None:
        """Record on ``ledger`` the bytes of every update that arrived.

        Each dispatched party downloaded the global model and each
        completed task uploaded its update; dropped or timed-out parties
        cost download bandwidth but ship nothing back — exactly the
        asymmetry the synchronous trainers cannot express.
        """
        downloads = len(self.of_kind(DISPATCH))
        uploads = len(self.of_kind(COMPLETE))
        ledger.record_bytes("server->participant", downloads * bytes_per_update)
        ledger.record_bytes("participant->server", uploads * bytes_per_update)

    def summary(self) -> dict[str, float]:
        """Aggregate counters for dashboards and bench tables."""
        counts = Counter(e.kind for e in self.events)
        return {
            "rounds": float(self.n_rounds),
            "dispatched": float(counts[DISPATCH]),
            "completed": float(counts[COMPLETE]),
            "timeouts": float(counts[TIMEOUT]),
            "dropouts": float(counts[DROPOUT]),
            "crashes": float(counts[CRASH]),
            "retries": float(counts[RETRY]),
            "quarantines": float(counts[QUARANTINE]),
            "contrib_updates": float(counts[CONTRIB_UPDATED]),
            "publish_dead_letters": float(counts[PUBLISH_DLQ]),
            "sim_seconds": self.sim_seconds,
        }
