"""Round scheduler: dispatch, deadlines and partial aggregation.

One :meth:`Scheduler.run_round` call plays out a full federated round on
the simulated clock: every party's task is dispatched at the round start,
its fate (delay / dropout / crash-retry) is sampled from the fault
injector, and whichever tasks would finish by the round deadline are
actually evaluated on the executor.  Tasks that miss the deadline are
*never evaluated* — the server would have discarded their result anyway —
so fault-heavy simulations get cheaper, not just more realistic.

The server then aggregates whatever arrived: :class:`RoundOutcome` hands
the engine the results in dispatch order plus the participation mask that
ends up in the training log.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping, Sequence

from repro.runtime import events as ev
from repro.runtime.clock import SimulatedClock
from repro.runtime.events import EventLog
from repro.runtime.executor import Executor, SerialExecutor
from repro.runtime.faults import NULL_PLAN, FaultInjector, TaskFate


@dataclass(frozen=True)
class PartyOutcome:
    """What happened to one party's task in one round."""

    party: int
    status: str  # "completed" | "dropout" | "crashed" | "timeout"
    fate: TaskFate
    dispatched_at: float
    finished_at: float | None  # sim time the result arrived (None if it didn't)
    result: Any = None

    @property
    def arrived(self) -> bool:
        return self.status == "completed"


@dataclass(frozen=True)
class RoundOutcome:
    """All party outcomes of one round, in dispatch order."""

    round: int
    started_at: float
    ended_at: float
    outcomes: tuple[PartyOutcome, ...]

    @property
    def arrived(self) -> list[PartyOutcome]:
        return [o for o in self.outcomes if o.arrived]

    @property
    def arrived_parties(self) -> list[int]:
        return [o.party for o in self.outcomes if o.arrived]

    @property
    def duration_s(self) -> float:
        return self.ended_at - self.started_at

    def result_of(self, party: int) -> Any:
        for outcome in self.outcomes:
            if outcome.party == party:
                return outcome.result
        raise KeyError(f"party {party} was not scheduled this round")


class Scheduler:
    """Simulated-time dispatcher of per-round party tasks.

    Parameters
    ----------
    executor:
        Where arrived tasks are numerically evaluated.
    injector:
        Fault sampler; defaults to the fault-free plan.
    round_deadline_ms:
        Server-side aggregation deadline per round.  ``None`` means the
        server waits for every non-dropped party (classic synchronous
        FedSGD); with a deadline, late updates are discarded and the
        round closes at the deadline.
    clock, event_log:
        Injectable for tests; fresh instances by default.
    """

    def __init__(
        self,
        executor: Executor | None = None,
        injector: FaultInjector | None = None,
        *,
        round_deadline_ms: float | None = None,
        clock: SimulatedClock | None = None,
        event_log: EventLog | None = None,
    ) -> None:
        if round_deadline_ms is not None and round_deadline_ms <= 0.0:
            raise ValueError(
                f"round_deadline_ms must be positive, got {round_deadline_ms}"
            )
        self.executor = executor if executor is not None else SerialExecutor()
        self.injector = injector if injector is not None else FaultInjector(NULL_PLAN)
        self.round_deadline_s = (
            None if round_deadline_ms is None else round_deadline_ms * 1e-3
        )
        self.clock = clock if clock is not None else SimulatedClock()
        # NOTE: an empty EventLog is falsy (len == 0), so `or` would drop it.
        self.event_log = event_log if event_log is not None else EventLog()

    def run_round(
        self,
        round: int,
        tasks: Mapping[int, Callable[[], Any]] | Sequence[tuple[int, Callable[[], Any]]],
    ) -> RoundOutcome:
        """Play one round: sample fates, evaluate survivors, close the round.

        ``tasks`` maps party id → zero-argument callable producing that
        party's update.  Iteration order fixes dispatch (and therefore
        aggregation) order.
        """
        items = list(tasks.items()) if isinstance(tasks, Mapping) else list(tasks)
        if not items:
            raise ValueError("a round needs at least one party task")
        log = self.event_log
        t0 = self.clock.now
        deadline = None if self.round_deadline_s is None else t0 + self.round_deadline_s
        log.record(ev.ROUND_BEGIN, t0, round, deadline_s=self.round_deadline_s)

        pending: list[tuple[PartyOutcome, Callable[[], Any]]] = []
        outcomes: list[PartyOutcome] = []
        for party, task in items:
            fate = self.injector.fate(round, party)
            if fate.dropped and not fate.gave_up:
                # Offline party: never downloads the model, detected at dispatch.
                log.record(ev.DROPOUT, t0, round, party)
                outcomes.append(
                    PartyOutcome(party, "dropout", fate, t0, finished_at=None)
                )
                continue
            log.record(ev.DISPATCH, t0, round, party)
            for attempt in range(1, fate.crashes + 1):
                log.record(ev.CRASH, t0, round, party, attempt=attempt)
                if fate.gave_up and attempt == fate.crashes:
                    break
                log.record(ev.RETRY, t0, round, party, attempt=attempt)
            if fate.dropped:  # retries exhausted
                outcomes.append(
                    PartyOutcome(party, "crashed", fate, t0, finished_at=None)
                )
                continue
            finish = t0 + fate.duration_s
            if deadline is not None and finish > deadline:
                log.record(
                    ev.TIMEOUT, deadline, round, party, would_finish_at=finish
                )
                outcomes.append(
                    PartyOutcome(party, "timeout", fate, t0, finished_at=None)
                )
                continue
            outcomes.append(
                PartyOutcome(party, "completed", fate, t0, finished_at=finish)
            )
            pending.append((outcomes[-1], task))

        # Evaluate the survivors (in dispatch order) and attach results.
        results = self.executor.run_all([task for _, task in pending])
        by_party = {outcome.party: outcome for outcome, _ in pending}
        for (outcome, _), result in zip(pending, results):
            patched = PartyOutcome(
                party=outcome.party,
                status=outcome.status,
                fate=outcome.fate,
                dispatched_at=outcome.dispatched_at,
                finished_at=outcome.finished_at,
                result=result,
            )
            by_party[outcome.party] = patched
            log.record(
                ev.COMPLETE, outcome.finished_at, round, outcome.party,
                duration_s=outcome.fate.duration_s,
            )
        outcomes = [by_party.get(o.party, o) for o in outcomes]

        # The round ends when the last counted update arrives — or at the
        # deadline, if the server had to give up on anyone.
        arrivals = [o.finished_at for o in outcomes if o.finished_at is not None]
        missed = any(o.status in ("timeout",) for o in outcomes)
        if deadline is not None and missed:
            t_end = deadline
        elif arrivals:
            t_end = max(arrivals)
        else:
            t_end = deadline if deadline is not None else t0
        self.clock.advance_to(t_end)
        log.record(ev.ROUND_END, t_end, round, arrived=len(arrivals))
        return RoundOutcome(
            round=round, started_at=t0, ended_at=t_end, outcomes=tuple(outcomes)
        )
