"""Executors: where party tasks actually run.

The scheduler decides *which* tasks run and *when* they (simulatedly)
finish; the executor decides *how* the numeric work is evaluated.  Two
implementations:

* :class:`SerialExecutor` — runs tasks one by one in submission order on
  the calling thread.  Fully deterministic; the equivalence guarantee
  (serial + no faults ≡ synchronous trainers, bit for bit) is proved
  against this executor.
* :class:`PoolExecutor` — a ``concurrent.futures`` thread pool for real
  parallel local updates.  Results are gathered back *in submission
  order*, so aggregation still sums in a fixed order and stays
  reproducible; only wall-clock changes with worker count.

Threads (not processes) are the default because the numeric kernels
bottom out in NumPy BLAS calls that release the GIL, and tasks close over
live model/dataset objects that are costly to pickle.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Protocol, Sequence

from repro.utils.validation import check_positive_int


class Executor(Protocol):
    """Evaluates a batch of thunks, returning results in submission order."""

    @property
    def workers(self) -> int: ...

    def run_all(self, tasks: Sequence[Callable[[], Any]]) -> list[Any]: ...

    def shutdown(self) -> None: ...


class SerialExecutor:
    """In-order, same-thread execution — the deterministic reference."""

    workers = 1

    def run_all(self, tasks: Sequence[Callable[[], Any]]) -> list[Any]:
        return [task() for task in tasks]

    def shutdown(self) -> None:  # nothing to release
        return None

    def __enter__(self) -> "SerialExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()


class PoolExecutor:
    """Thread-pool execution of party tasks within a round."""

    def __init__(self, workers: int) -> None:
        self._workers = check_positive_int(workers, "workers")
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-runtime"
        )

    @property
    def workers(self) -> int:
        return self._workers

    def run_all(self, tasks: Sequence[Callable[[], Any]]) -> list[Any]:
        # Submission order == result order, whatever order threads finish in.
        futures = [self._pool.submit(task) for task in tasks]
        return [future.result() for future in futures]

    def shutdown(self) -> None:
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "PoolExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()


def make_executor(kind: str, workers: int = 1) -> Executor:
    """Build an executor by name (``"serial"`` or ``"threads"``)."""
    if kind == "serial":
        if workers != 1:
            raise ValueError("the serial executor is single-worker by definition")
        return SerialExecutor()
    if kind == "threads":
        return PoolExecutor(workers)
    raise ValueError(f"unknown executor kind {kind!r} (use 'serial' or 'threads')")
