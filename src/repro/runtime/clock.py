"""Simulated time for the federated runtime.

The runtime does not sleep: stragglers, backoff and round deadlines are
modelled on a :class:`SimulatedClock` that only moves forward when the
scheduler advances it.  This keeps fault-injection runs deterministic and
fast — a 30-second straggler costs zero wall-clock — while the event log
still carries realistic per-round timings for :mod:`repro.metrics.cost`.
"""

from __future__ import annotations


class SimulatedClock:
    """Monotonically advancing virtual clock (seconds as floats).

    Example::

        clock = SimulatedClock()
        clock.advance(0.25)
        clock.now  # 0.25
    """

    def __init__(self, start: float = 0.0) -> None:
        if start < 0.0:
            raise ValueError(f"start must be non-negative, got {start}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Move the clock forward by ``seconds``; returns the new time."""
        if seconds < 0.0:
            raise ValueError(f"cannot advance by negative time ({seconds})")
        self._now += float(seconds)
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Move the clock forward to ``timestamp`` (no-op if already past)."""
        if timestamp > self._now:
            self._now = float(timestamp)
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SimulatedClock(now={self._now:.6f})"
