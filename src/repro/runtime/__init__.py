"""Asynchronous federated execution engine with fault injection.

The synchronous trainers in :mod:`repro.hfl` / :mod:`repro.vfl` assume
every participant responds instantly and never fails.  This subsystem
runs the *same* protocols on an event-driven engine with a simulated
clock, so the reproduction can exercise the conditions DIG-FL targets:
stragglers, round dropouts, crash-then-retry, and servers that aggregate
whatever arrived by a deadline.

Layers, bottom-up:

* :mod:`repro.runtime.clock` — :class:`SimulatedClock`, virtual time.
* :mod:`repro.runtime.events` — :class:`EventLog` of dispatch / complete /
  timeout / dropout / crash / retry events, feeding cost accounting.
* :mod:`repro.runtime.faults` — :class:`FaultPlan` statistics sampled into
  deterministic per-(round, party) :class:`TaskFate` values.
* :mod:`repro.runtime.executor` — :class:`SerialExecutor` (deterministic
  reference) and :class:`PoolExecutor` (thread-pool parallelism).
* :mod:`repro.runtime.scheduler` — :class:`Scheduler`, one round at a
  time: dispatch, deadline, partial aggregation.
* :mod:`repro.runtime.engine` — :class:`FederatedRuntime` driving the
  existing HFL/VFL trainers; with the serial executor and no faults its
  logs match the synchronous trainers bit for bit.

Quickstart::

    from repro.runtime import FaultPlan, FederatedRuntime, RuntimeConfig

    runtime = FederatedRuntime(RuntimeConfig(
        executor="threads", workers=4,
        faults=FaultPlan(dropout_rate=0.2, straggler_ms=30.0, seed=0),
        round_deadline_ms=80.0,
    ))
    result = runtime.run_hfl(trainer, fed.locals, fed.validation)
    print(runtime.event_log.summary())
"""

from repro.runtime.clock import SimulatedClock
from repro.runtime.engine import ContributionSink, FederatedRuntime, RuntimeConfig
from repro.runtime.events import Event, EventLog
from repro.runtime.executor import (
    Executor,
    PoolExecutor,
    SerialExecutor,
    make_executor,
)
from repro.runtime.faults import NULL_PLAN, FaultInjector, FaultPlan, Outage, TaskFate
from repro.runtime.scheduler import PartyOutcome, RoundOutcome, Scheduler

__all__ = [
    "ContributionSink",
    "Event",
    "EventLog",
    "Executor",
    "FaultInjector",
    "FaultPlan",
    "FederatedRuntime",
    "NULL_PLAN",
    "Outage",
    "PartyOutcome",
    "PoolExecutor",
    "RoundOutcome",
    "RuntimeConfig",
    "Scheduler",
    "SerialExecutor",
    "SimulatedClock",
    "TaskFate",
    "make_executor",
]
