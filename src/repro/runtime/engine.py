"""The federated runtime: existing trainers on an event-driven engine.

:class:`FederatedRuntime` re-plays the exact protocols of
:class:`repro.hfl.trainer.HFLTrainer` and :class:`repro.vfl.trainer.VFLTrainer`
but dispatches every party's per-round work through a
:class:`~repro.runtime.scheduler.Scheduler` — which brings a simulated
clock, pluggable executors (serial or thread-pool), fault injection and
deadline-based partial aggregation to the same training logs the DIG-FL
estimators already consume.

Two guarantees, both covered by tests:

* **Deterministic equivalence** — with the serial executor, the null fault
  plan and no deadline, ``run_hfl``/``run_vfl`` produce the *same log, bit
  for bit* (same ``θ_t``, same ``δ_{t,i}``, same weights) as calling the
  synchronous trainers directly.  The engine computes every float through
  the same expressions in the same order; it only adds bookkeeping.
* **Honest partial participation** — when faults or deadlines remove a
  party from round ``t``, its update row is zero, the aggregation weights
  are renormalised over the arrivals, and the round's participation mask
  is recorded on the :class:`~repro.hfl.log.EpochRecord` so the
  estimators can zero that party's per-epoch contribution.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Protocol, Sequence

import numpy as np

from repro.data.dataset import Dataset
from repro.hfl.log import EpochRecord, TrainingLog
from repro.hfl.trainer import (
    HFLResult,
    HFLTrainer,
    Reweighter,
    masked_weights,
    resolve_coalition,
)
from repro.metrics.cost import FLOAT64_BYTES, CostLedger
from repro.obs import Observability
from repro.obs.trace import NULL_SPAN
from repro.runtime import events as ev
from repro.runtime.events import EventLog
from repro.runtime.executor import Executor, make_executor
from repro.runtime.faults import NULL_PLAN, FaultInjector, FaultPlan
from repro.runtime.scheduler import RoundOutcome, Scheduler
from repro.vfl.log import VFLEpochRecord, VFLTrainingLog
from repro.vfl.trainer import VFLResult, VFLReweighter, VFLTrainer

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.robust.aggregators import Aggregator
    from repro.robust.checkpoint import CheckpointManager
    from repro.robust.screening import UpdateScreener


class ContributionSink(Protocol):
    """Anything the engine can publish finished epoch records into.

    :class:`repro.serve.service.ContributionPublisher` is the shipped
    implementation — it streams each record into a live
    :class:`~repro.serve.service.EvaluationService` run, so contributions
    and leaderboards are queryable *while* training runs.  ``publish``
    returns a detail dict which the engine attaches to the round's
    ``contrib_updated`` event (keeping the dependency pointing from serve
    to runtime, never back).
    """

    def publish(self, record) -> dict: ...


@dataclass(frozen=True)
class RuntimeConfig:
    """How a federation executes: executor, faults, deadline.

    The default config (serial executor, null fault plan, no deadline) is
    the deterministic-equivalence regime.
    """

    executor: str = "serial"  # "serial" | "threads"
    workers: int = 1
    faults: FaultPlan = field(default_factory=FaultPlan)
    round_deadline_ms: float | None = None

    def make_executor(self) -> Executor:
        return make_executor(self.executor, self.workers)

    def is_deterministic_equivalent(self) -> bool:
        """True when the engine promises bit-for-bit sync-trainer logs."""
        return self.faults.is_null() and self.round_deadline_ms is None


class _ModelReplicas:
    """Per-thread model replicas so pool workers never share parameters.

    Replica parameters are overwritten with ``θ_{t-1}`` before every local
    update, so replication is invisible to the numbers — it only removes
    the data race on the shared model object.
    """

    def __init__(self, factory) -> None:
        self._factory = factory
        self._local = threading.local()

    def get(self):
        model = getattr(self._local, "model", None)
        if model is None:
            model = self._factory()
            self._local.model = model
        return model


class FederatedRuntime:
    """Executes HFL / VFL federations on the event-driven scheduler."""

    def __init__(
        self,
        config: RuntimeConfig | None = None,
        *,
        event_log: EventLog | None = None,
        obs: Observability | None = None,
    ) -> None:
        self.config = config if config is not None else RuntimeConfig()
        # An empty EventLog is falsy (len == 0) — `or` would discard it.
        self.event_log = event_log if event_log is not None else EventLog()
        # Tracing/metrics are pure bookkeeping on top of the protocols:
        # the bit-for-bit equivalence guarantee is unaffected by obs
        # because spans and counters never touch the training numbers.
        self.obs = obs if obs is not None else Observability()
        self.quarantines_total = self.obs.registry.counter(
            "repro_runtime_quarantines_total",
            help="Updates excluded by the pre-aggregation screening pass",
        )
        if self.obs.logger.enabled and self.event_log.sink is None:
            event_logger = self.obs.logger.bind(source="runtime")
            self.event_log.sink = lambda e: event_logger.log(
                f"runtime.{e.kind}",
                round=e.round,
                party=e.party,
                sim_time=e.sim_time,
                detail=e.detail,
            )

    def _scheduler(self, executor: Executor) -> Scheduler:
        return Scheduler(
            executor,
            FaultInjector(self.config.faults),
            round_deadline_ms=self.config.round_deadline_ms,
            event_log=self.event_log,
        )

    # ------------------------------------------------------------------ HFL

    def run_hfl(
        self,
        trainer: HFLTrainer,
        locals_: Sequence[Dataset],
        validation: Dataset | None = None,
        *,
        participants: Sequence[int] | None = None,
        reweighter: Reweighter | None = None,
        init_theta: np.ndarray | None = None,
        ledger: CostLedger | None = None,
        track_validation: bool = False,
        weight_by_samples: bool = False,
        aggregator: "Aggregator | None" = None,
        screener: "UpdateScreener | None" = None,
        checkpoint: "CheckpointManager | None" = None,
        resume: bool = False,
        publisher: ContributionSink | None = None,
    ) -> HFLResult:
        """FedSGD/FedAvg on the engine; signature mirrors ``HFLTrainer.train``.

        The robust arguments behave exactly as on the synchronous trainer;
        additionally every quarantine incident is emitted as a
        ``quarantine`` event on the runtime's event log, and screening
        composes with the fault plane (an update must both *arrive* and
        *survive screening* to enter ``G_t``).  Resuming restarts the
        simulated clock at zero, but fault fates are keyed on (round,
        party), so the resumed training log is bit-for-bit the
        uninterrupted one.

        ``publisher`` streams every finished round's :class:`EpochRecord`
        into a live contribution service (see :class:`ContributionSink`),
        emitting one ``contrib_updated`` event per round.  Publication is
        read-only bookkeeping — it never changes the training numbers.
        """
        participants = resolve_coalition(locals_, participants)
        if (track_validation or reweighter is not None) and validation is None:
            raise ValueError("validation dataset required for tracking / reweighting")
        if resume and checkpoint is None:
            raise ValueError("resume=True requires a checkpoint manager")

        model = trainer.model_factory()
        if init_theta is not None:
            model.set_flat(init_theta)
        p = model.num_parameters()
        k = len(participants)
        log = TrainingLog(participant_ids=participants)
        start_epoch = 1
        if resume:
            prior = checkpoint.resume()
            if prior is not None:
                if list(prior.participant_ids) != list(participants):
                    raise ValueError(
                        f"checkpoint trained participants {prior.participant_ids}, "
                        f"cannot resume with {participants}"
                    )
                log = prior
                model.set_flat(log.final_theta)
                start_epoch = log.n_epochs + 1
                if screener is not None:
                    screener.warm_start(log)
        replicas = _ModelReplicas(trainer.model_factory)
        executor = self.config.make_executor()
        scheduler = self._scheduler(executor)
        tracer = self.obs.tracer
        # Spans are opened/closed manually (not `with`) so the hot loop
        # keeps its shape; ends are idempotent, and the except arm closes
        # whatever round was in flight with status="error".
        run_span = tracer.span(
            "engine.run", kind="hfl", participants=k, epochs=trainer.epochs
        )
        round_span = NULL_SPAN
        try:
            for epoch in range(start_epoch, trainer.epochs + 1):
                round_span = tracer.span(
                    "engine.round", parent=run_span, epoch=epoch, kind="hfl"
                )
                round_ctx = round_span.context
                lr = trainer.lr_schedule.lr_at(epoch)
                theta_before = model.get_flat()

                def make_task(i: int, ctx=round_ctx):
                    def task():
                        # Explicit parent: pool workers have no thread-local
                        # ancestry, the context handle keeps one trace tree.
                        with tracer.span(
                            "engine.task", parent=ctx, epoch=epoch, party=i
                        ):
                            worker_model = replicas.get()
                            worker_model.set_flat(theta_before)
                            return trainer.local_update(
                                worker_model, theta_before, locals_[i], lr, epoch, i
                            )

                    return task

                outcome = scheduler.run_round(
                    epoch, [(i, make_task(i)) for i in participants]
                )
                mask = np.array([o.arrived for o in outcome.outcomes], dtype=bool)
                local_updates = np.zeros((k, p), dtype=np.float64)
                for row, o in enumerate(outcome.outcomes):
                    if o.arrived:
                        local_updates[row] = o.result
                if ledger is not None:
                    self._charge_round(ledger, outcome, p)

                if screener is not None:
                    mask = self._screen_round(
                        screener, epoch, participants, local_updates, mask,
                        sim_time=outcome.ended_at,
                    )
                    local_updates[~mask] = 0.0

                if reweighter is not None:
                    weights = np.asarray(
                        reweighter.weights(
                            model, theta_before, local_updates, lr, epoch
                        ),
                        dtype=np.float64,
                    )
                    if weights.shape != (k,):
                        raise ValueError(
                            f"reweighter returned shape {weights.shape}, "
                            f"expected ({k},)"
                        )
                    if not mask.all():
                        weights = masked_weights(mask, weights)
                elif weight_by_samples:
                    sizes = np.array(
                        [len(locals_[i]) for i in participants], dtype=float
                    )
                    weights = masked_weights(mask, sizes)
                else:
                    arrived = int(mask.sum())
                    weights = (
                        mask / arrived if arrived else np.zeros(k, dtype=np.float64)
                    )

                applied = None
                if aggregator is None:
                    global_update = weights @ local_updates
                else:
                    global_update = aggregator.aggregate(
                        local_updates, weights, mask
                    )
                    if not aggregator.linear:
                        applied = global_update
                model.set_flat(theta_before - global_update)

                val_loss = val_acc = float("nan")
                if track_validation:
                    val_loss = model.loss(validation.X, validation.y).item()
                    val_acc = model.accuracy(validation.X, validation.y)

                log.records.append(
                    EpochRecord(
                        epoch=epoch,
                        lr=lr,
                        theta_before=theta_before,
                        local_updates=local_updates,
                        weights=weights,
                        val_loss=val_loss,
                        val_accuracy=val_acc,
                        participation=None if mask.all() else mask,
                        applied_update=applied,
                    )
                )
                if checkpoint is not None:
                    checkpoint.save(log)
                if publisher is not None:
                    self._publish_round(publisher, log.records[-1], outcome)
                round_span.set_attribute("arrived", int(mask.sum()))
                round_span.end()
        except BaseException:
            round_span.end(status="error")
            run_span.end(status="error")
            raise
        finally:
            executor.shutdown()
            run_span.end()
        return HFLResult(model=model, log=log)

    # ------------------------------------------------------------------ VFL

    def run_vfl(
        self,
        trainer: VFLTrainer,
        train: Dataset,
        validation: Dataset,
        *,
        parties: Sequence[int] | None = None,
        reweighter: VFLReweighter | None = None,
        ledger: CostLedger | None = None,
        track_losses: bool = False,
        screener: "UpdateScreener | None" = None,
        checkpoint: "CheckpointManager | None" = None,
        resume: bool = False,
        publisher: ContributionSink | None = None,
    ) -> VFLResult:
        """Vertical training on the engine; mirrors ``VFLTrainer.train``.

        A party that misses round ``t``'s deadline simply does not apply
        its block update that round (its weight is zeroed).  Because a
        frozen block leaves that party's local outputs unchanged, the
        coordinator's cached values stay exact — dropping an update is the
        *whole* effect of the fault, which is why this path can share the
        plaintext trainer's single full-gradient evaluation.

        ``screener`` runs the :mod:`repro.robust` screening pass over the
        per-party gradient blocks of the parties that arrived (cosine rule
        disabled across disjoint blocks); quarantined parties are treated
        exactly like deadline misses and each incident is emitted as a
        ``quarantine`` event.  ``checkpoint`` / ``resume`` / ``publisher``
        behave as on :meth:`run_hfl`.
        """
        if resume and checkpoint is None:
            raise ValueError("resume=True requires a checkpoint manager")
        if parties is None:
            parties = list(range(trainer.n_parties))
        else:
            parties = sorted(set(parties))
        bad = [i for i in parties if not 0 <= i < trainer.n_parties]
        if bad:
            raise ValueError(f"unknown party indices {bad}")
        if not parties:
            raise ValueError("coalition must contain at least one party")

        model = trainer.model
        d = model.n_coefficients(train.X)
        all_blocks = np.concatenate(trainer.feature_blocks)
        if len(all_blocks) != d or all_blocks.max() >= d:
            raise ValueError(
                f"party blocks cover {len(all_blocks)} coefficients but the "
                f"model has {d}; multiclass blocks must be expanded with "
                "expand_feature_blocks"
            )
        theta = np.zeros(d)
        active_mask = np.zeros(d, dtype=bool)
        for i in parties:
            active_mask[trainer.feature_blocks[i]] = True

        log = VFLTrainingLog(
            feature_blocks=list(trainer.feature_blocks),
            active_parties=list(parties),
        )
        m = len(train)
        start_epoch = 1
        if resume:
            prior = checkpoint.resume()
            if prior is not None:
                if list(prior.active_parties) != list(parties):
                    raise ValueError(
                        f"checkpoint trained parties {prior.active_parties}, "
                        f"cannot resume with {parties}"
                    )
                log = prior
                theta = log.final_theta
                start_epoch = log.n_epochs + 1
                if screener is not None:
                    screener.warm_start(log)
        executor = self.config.make_executor()
        scheduler = self._scheduler(executor)
        tracer = self.obs.tracer
        run_span = tracer.span(
            "engine.run", kind="vfl", participants=len(parties), epochs=trainer.epochs
        )
        round_span = NULL_SPAN
        try:
            for epoch in range(start_epoch, trainer.epochs + 1):
                round_span = tracer.span(
                    "engine.round", parent=run_span, epoch=epoch, kind="vfl"
                )
                round_ctx = round_span.context
                lr = trainer.lr_schedule.lr_at(epoch)
                grad = model.gradient(theta, train.X, train.y)
                grad = np.where(active_mask, grad, 0.0)
                val_grad = model.gradient(theta, validation.X, validation.y)
                val_grad = np.where(active_mask, val_grad, 0.0)

                def make_task(i: int, ctx=round_ctx):
                    block = trainer.feature_blocks[i]

                    def task():
                        # The party's round work: pick up its gradient block
                        # (in the deployed protocol it computes this from
                        # the coordinator's residual).
                        with tracer.span(
                            "engine.task", parent=ctx, epoch=epoch, party=i
                        ):
                            return grad[block].copy()

                    return task

                outcome = scheduler.run_round(
                    epoch, [(i, make_task(i)) for i in parties]
                )
                arrived = set(outcome.arrived_parties)
                if screener is not None:
                    arrival_mask = np.array(
                        [i in arrived for i in parties], dtype=bool
                    )
                    blocks = [grad[trainer.feature_blocks[i]] for i in parties]
                    verdict = self._screen_round(
                        screener, epoch, parties, blocks, arrival_mask,
                        sim_time=outcome.ended_at, homogeneous=False,
                    )
                    survived = {i for i, ok in zip(parties, verdict) if ok}
                    for i in arrived - survived:
                        # Freeze the quarantined block: zero its recorded
                        # gradient so reconstructed θ never multiplies a
                        # non-finite value by its zero weight.
                        grad[trainer.feature_blocks[i]] = 0.0
                    arrived = survived
                if ledger is not None:
                    for o in outcome.outcomes:
                        if o.status == "dropout":
                            continue  # never uploaded its local result
                        ledger.record_bytes(
                            "party->coordinator", m * FLOAT64_BYTES
                        )
                        if o.arrived:
                            ledger.record_bytes(
                                "coordinator->party",
                                len(trainer.feature_blocks[o.party])
                                * FLOAT64_BYTES,
                            )

                weights = np.ones(trainer.n_parties)
                if reweighter is not None:
                    weights = np.asarray(
                        reweighter.weights(
                            theta, grad, val_grad, lr, epoch, parties
                        ),
                        dtype=np.float64,
                    )
                    if weights.shape != (trainer.n_parties,):
                        raise ValueError(
                            f"reweighter returned shape {weights.shape}, "
                            f"expected ({trainer.n_parties},)"
                        )
                full = len(arrived) == len(parties)
                participation = None
                if not full:
                    participation = np.zeros(trainer.n_parties, dtype=bool)
                    participation[list(arrived)] = True
                    weights = np.where(participation, weights, 0.0)

                train_loss = val_loss = float("nan")
                if track_losses:
                    train_loss = model.loss(theta, train.X, train.y)
                    val_loss = model.loss(theta, validation.X, validation.y)

                log.records.append(
                    VFLEpochRecord(
                        epoch=epoch,
                        lr=lr,
                        theta_before=theta.copy(),
                        train_gradient=grad,
                        val_gradient=val_grad,
                        weights=weights,
                        train_loss=train_loss,
                        val_loss=val_loss,
                        participation=participation,
                    )
                )

                update = np.zeros(d)
                for i in parties:
                    if i not in arrived:
                        continue
                    block = trainer.feature_blocks[i]
                    update[block] = weights[i] * outcome.result_of(i)
                theta = theta - lr * update
                if checkpoint is not None:
                    checkpoint.save(log)
                if publisher is not None:
                    self._publish_round(publisher, log.records[-1], outcome)
                round_span.set_attribute("arrived", len(arrived))
                round_span.end()
        except BaseException:
            round_span.end(status="error")
            run_span.end(status="error")
            raise
        finally:
            executor.shutdown()
            run_span.end()
        return VFLResult(theta=theta, log=log, model=model)

    # ------------------------------------------------------------- plumbing

    def _publish_round(
        self, publisher: ContributionSink, record, outcome: RoundOutcome
    ) -> None:
        """Push one finished round into the sink; emit ``contrib_updated``.

        Publication must never take down training: a sink that raises (a
        retrying :class:`~repro.serve.service.ContributionPublisher`
        never does — it returns a ``{"dead_letter": True}`` detail after
        exhausting its backoff schedule, but arbitrary sinks may) is
        recorded as a ``publish_dlq`` event and the round goes on.
        """
        try:
            detail = publisher.publish(record)
        except Exception as exc:
            self.event_log.record(
                ev.PUBLISH_DLQ,
                outcome.ended_at,
                record.epoch,
                error=f"{type(exc).__name__}: {exc}",
            )
            return
        detail = detail if isinstance(detail, dict) else {}
        kind = ev.PUBLISH_DLQ if detail.get("dead_letter") else ev.CONTRIB_UPDATED
        self.event_log.record(kind, outcome.ended_at, record.epoch, **detail)

    def _screen_round(
        self,
        screener: "UpdateScreener",
        round: int,
        party_ids: Sequence[int],
        updates,
        mask: np.ndarray,
        *,
        sim_time: float,
        homogeneous: bool = True,
    ) -> np.ndarray:
        """Run the screening pass, emitting one ``quarantine`` event per incident."""
        before = len(screener.ledger)
        verdict = screener.screen(
            round, party_ids, updates, mask, homogeneous=homogeneous
        )
        for incident in screener.ledger.incidents[before:]:
            self.quarantines_total.inc()
            self.event_log.record(
                ev.QUARANTINE,
                sim_time,
                round,
                incident.party,
                rule=incident.rule,
                **incident.detail,
            )
        return verdict

    def _charge_round(
        self, ledger: CostLedger, outcome: RoundOutcome, p: int
    ) -> None:
        """Bytes for one HFL round: downloads for dispatched, uploads for arrived."""
        dispatched = sum(1 for o in outcome.outcomes if o.status != "dropout")
        arrived = len(outcome.arrived_parties)
        ledger.record_bytes("server->participant", dispatched * p * FLOAT64_BYTES)
        ledger.record_bytes("participant->server", arrived * p * FLOAT64_BYTES)
