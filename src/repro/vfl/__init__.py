"""Vertical federated learning: plaintext simulator + encrypted protocol."""

from repro.vfl.encrypted import (
    EncryptedParty,
    EncryptedVFLResult,
    EncryptedVFLSession,
    TrustedThirdParty,
    build_encrypted_session,
)
from repro.vfl.log import VFLEpochRecord, VFLTrainingLog
from repro.vfl.trainer import VFLResult, VFLReweighter, VFLTrainer

__all__ = [
    "EncryptedParty",
    "EncryptedVFLResult",
    "EncryptedVFLSession",
    "TrustedThirdParty",
    "VFLEpochRecord",
    "VFLResult",
    "VFLReweighter",
    "VFLTrainer",
    "VFLTrainingLog",
    "build_encrypted_session",
]
