"""VFL training-log records.

For vertical FL the "training log" is the sequence of full-model gradients
``∇loss(θ_{t-1})`` (block-partitioned across parties) plus the validation
gradients ``∇loss^v(θ_{t-1})`` the parties jointly compute (Algorithm 3,
line 4).  DIG-FL's VFL estimator (Eq. 27) needs nothing else.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class VFLEpochRecord:
    """State of one VFL training round.

    ``participation`` is the per-round arrival mask over *all* parties
    written by :mod:`repro.runtime`: ``participation[party]`` is False when
    that party's block update missed the round (its weight was zeroed, its
    block stayed frozen).  ``None`` — the synchronous trainer's value —
    means every coalition party applied its update.
    """

    epoch: int  # 1-indexed
    lr: float
    theta_before: np.ndarray  # full coefficient vector θ_{t-1}
    train_gradient: np.ndarray  # ∇loss(θ_{t-1}), no learning rate applied
    val_gradient: np.ndarray  # ∇loss^v(θ_{t-1})
    weights: np.ndarray  # per-party aggregation weights applied
    train_loss: float = float("nan")
    val_loss: float = float("nan")
    participation: np.ndarray | None = None  # (n_parties,) bool; None = all

    def participated(self, party: int) -> bool:
        """Did ``party`` apply its block update this round?"""
        if self.participation is None:
            return True
        return bool(self.participation[party])

    def participation_mask(self) -> np.ndarray:
        """The arrival mask over all parties (all-True when ``None``)."""
        if self.participation is None:
            return np.ones(len(self.weights), dtype=bool)
        return np.asarray(self.participation, dtype=bool)


@dataclass
class VFLTrainingLog:
    """Full history for one vertical training run."""

    feature_blocks: list[np.ndarray]  # party -> coefficient indices
    active_parties: list[int]
    records: list[VFLEpochRecord] = field(default_factory=list)

    @property
    def n_parties(self) -> int:
        return len(self.feature_blocks)

    @property
    def n_epochs(self) -> int:
        return len(self.records)

    @property
    def final_theta(self) -> np.ndarray:
        if not self.records:
            raise ValueError("log has no records")
        last = self.records[-1]
        update = np.zeros_like(last.theta_before)
        for party, block in enumerate(self.feature_blocks):
            update[block] = last.weights[party] * last.train_gradient[block]
        return last.theta_before - last.lr * update

    def val_loss_curve(self) -> np.ndarray:
        return np.array([r.val_loss for r in self.records])

    def participation_matrix(self) -> np.ndarray:
        """(τ, n_parties) boolean matrix of who applied each round.

        Mirrors :meth:`repro.hfl.log.TrainingLog.participation_matrix`;
        holes come from runtime faults or :mod:`repro.robust` quarantine.
        """
        return np.stack([r.participation_mask() for r in self.records])
