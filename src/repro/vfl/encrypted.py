"""Encrypted vertical FL — the paper's Sec. IV-B running example, end to end.

Implements Algorithm 3 with real Paillier ciphertexts:

1. the trusted third-party creates a key pair and distributes the public key;
2. the label holder encrypts its residual share ``[[u_1 - y]]`` and the
   ciphertext chain accumulates every party's local result ``u_i``;
3. the aggregated ``[[d]]`` is broadcast;
4. every party computes its encrypted gradient block
   ``[[∂loss/∂θ_i]] = (2/m) Σ_j [[d_j]]·x_i[j]``, adds a random mask
   ``M_i`` and ships it to the third-party;
5. the third-party decrypts and returns the masked gradient; the party
   strips the mask and applies the update.

The same exchange runs a second time per epoch on the validation set, after
which each party computes its own DIG-FL per-epoch contribution
``φ̂_{t,i} = α_t ⟨∇loss^v, ∇loss⟩`` restricted to its block (Eq. 27) —
using only values it already holds, which is why the estimator adds no
privacy exposure.

Vertical *logistic* regression replaces the residual by its degree-1 Taylor
approximation ``σ(z) ≈ 0.25·z + 0.5`` (Hardy et al., the construction the
paper's framework [3], [34] builds on) because Paillier cannot evaluate a
sigmoid homomorphically.

For experiments at benchmark scale use :class:`repro.vfl.trainer.VFLTrainer`
— it computes the identical numbers in plaintext.  The equivalence is
asserted by the integration tests.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

import numpy as np

from repro.crypto.masking import MaskGenerator
from repro.crypto.paillier import EncryptedNumber, PrivateKey, PublicKey, generate_keypair
from repro.metrics.cost import CostLedger
from repro.nn.optim import LRSchedule
from repro.utils.rng import make_rng
from repro.utils.validation import check_positive_int


@dataclass
class TrustedThirdParty:
    """Key authority: generates the pair, decrypts masked gradients only."""

    public_key: PublicKey
    _private_key: PrivateKey

    @classmethod
    def create(cls, key_bits: int = 1024, seed: int | None = None) -> "TrustedThirdParty":
        pub, priv = generate_keypair(key_bits, seed)
        return cls(public_key=pub, _private_key=priv)

    def decrypt_vector(self, ciphers: list[EncryptedNumber]) -> np.ndarray:
        return np.array([self._private_key.decrypt(c) for c in ciphers])


class EncryptedParty:
    """One VFL participant: a feature block, a coefficient block, maybe labels."""

    def __init__(
        self,
        party_id: int,
        X: np.ndarray,
        public_key: PublicKey,
        *,
        y: np.ndarray | None = None,
        seed=None,
    ) -> None:
        self.party_id = party_id
        self.X = np.asarray(X, dtype=np.float64)
        self.y = None if y is None else np.asarray(y, dtype=np.float64)
        self.theta = np.zeros(self.X.shape[1])
        self.public_key = public_key
        self._crypto_rng = random.Random(hash((party_id, 0xD16F1)) & 0xFFFFFFFF)
        self._masks = MaskGenerator(scale=10.0, seed=make_rng(seed))
        # Plaintext gradient blocks retained locally for DIG-FL (own data only).
        self.last_train_grad: np.ndarray | None = None
        self.last_val_grad: np.ndarray | None = None

    @property
    def is_label_holder(self) -> bool:
        return self.y is not None

    def local_output(self, X: np.ndarray | None = None) -> np.ndarray:
        """``u_i = X_i θ_i`` — the party's share of the linear predictor."""
        data = self.X if X is None else X
        return data @ self.theta

    def start_residual_chain(
        self, residual_bias: np.ndarray, X: np.ndarray | None = None
    ) -> list[EncryptedNumber]:
        """Label holder: encrypt ``u_1·scale + bias`` per sample.

        ``residual_bias`` folds in the label term (``-y`` for linear
        regression, ``0.5 - y`` for the Taylor logistic residual).
        """
        if not self.is_label_holder:
            raise RuntimeError("only the label holder starts the residual chain")
        u = self.local_output(X)
        return [
            self.public_key.encrypt(float(v), rng=self._crypto_rng)
            for v in u + residual_bias
        ]

    def add_to_chain(
        self, chain: list[EncryptedNumber], X: np.ndarray | None = None
    ) -> list[EncryptedNumber]:
        """Homomorphically add this party's ``u_i`` into the running sum."""
        u = self.local_output(X)
        return [c + float(v) for c, v in zip(chain, u)]

    def encrypted_gradient(
        self,
        d_cipher: list[EncryptedNumber],
        epoch: int,
        tag: str,
        *,
        X: np.ndarray | None = None,
        scale: float,
    ) -> list[EncryptedNumber]:
        """Step 4: ``[[g_k]] = scale · Σ_j [[d_j]]·x[j,k]``, plus mask."""
        data = self.X if X is None else X
        m, width = data.shape
        if len(d_cipher) != m:
            raise ValueError(f"residual has {len(d_cipher)} entries, data has {m} rows")
        mask = self._masks.mask_for(epoch, f"{tag}/{self.party_id}", width)
        out: list[EncryptedNumber] = []
        for k in range(width):
            acc = d_cipher[0] * float(data[0, k])
            for j in range(1, m):
                acc = acc + d_cipher[j] * float(data[j, k])
            out.append(acc * scale + float(mask[k]))
        return out

    def unmask(self, epoch: int, tag: str, masked: np.ndarray) -> np.ndarray:
        return self._masks.unmask(epoch, f"{tag}/{self.party_id}", masked)

    def apply_update(self, lr: float, grad_block: np.ndarray) -> None:
        self.theta = self.theta - lr * grad_block


@dataclass
class EncryptedVFLResult:
    """Outcome of an encrypted training run."""

    theta_blocks: list[np.ndarray]
    contributions: np.ndarray  # DIG-FL Shapley estimates, one per party
    per_epoch_contributions: np.ndarray  # (τ, n)
    weights: np.ndarray | None = None  # (τ, n) Eq. 31 weights when reweighting
    ledger: CostLedger = field(default_factory=CostLedger)

    @property
    def theta(self) -> np.ndarray:
        return np.concatenate(self.theta_blocks)


class EncryptedVFLSession:
    """Drives Algorithm 3 across n parties and a trusted third-party.

    ``task`` is ``"regression"`` (exact) or ``"binary"`` (Taylor logistic).
    Party 0 must hold the labels.
    """

    def __init__(
        self,
        task: str,
        parties: list[EncryptedParty],
        ttp: TrustedThirdParty,
        lr_schedule: LRSchedule,
        epochs: int,
    ) -> None:
        if task not in ("regression", "binary"):
            raise ValueError(f"task must be 'regression' or 'binary', got {task!r}")
        if not parties or not parties[0].is_label_holder:
            raise ValueError("party 0 must hold the labels")
        self.task = task
        self.parties = parties
        self.ttp = ttp
        self.lr_schedule = lr_schedule
        self.epochs = check_positive_int(epochs, "epochs")

    def _residual_bias(self, y: np.ndarray) -> np.ndarray:
        """Label term folded into the start of the residual chain.

        Linear regression: the chain carries ``Σu - y`` and the gradient is
        ``(2/m) Xᵀ·chain``.  Taylor logistic: the chain carries
        ``Σu + (0.5-y)/0.25`` so that ``(0.25/m) Xᵀ·chain`` equals
        ``(1/m) Xᵀ(0.25·Σu + 0.5 - y)``.
        """
        if self.task == "regression":
            return -y
        return (0.5 - y) / 0.25

    def _exchange(
        self,
        epoch: int,
        tag: str,
        y: np.ndarray,
        ledger: CostLedger,
        X_blocks: list[np.ndarray] | None = None,
    ) -> list[np.ndarray]:
        """One full 5-step gradient exchange; returns plaintext blocks.

        ``X_blocks`` overrides each party's matrix (used for the validation
        pass).  Each party ends up with *only its own* gradient block.
        """
        n_rows = len(y)
        bias = self._residual_bias(y)

        def data_of(party: EncryptedParty) -> np.ndarray | None:
            return None if X_blocks is None else X_blocks[party.party_id]

        # Steps 2-3: residual chain.
        chain = self.parties[0].start_residual_chain(bias, data_of(self.parties[0]))
        ledger.record_message("party->party", chain)
        for party in self.parties[1:]:
            chain = party.add_to_chain(chain, data_of(party))
            ledger.record_message("party->party", chain)
        grad_scale = (2.0 / n_rows) if self.task == "regression" else (0.25 / n_rows)

        # Steps 4-5: masked encrypted gradients through the third-party.
        blocks: list[np.ndarray] = []
        for party in self.parties:
            enc_grad = party.encrypted_gradient(
                chain, epoch, tag, X=data_of(party), scale=grad_scale
            )
            ledger.record_message("party->ttp", enc_grad)
            masked = self.ttp.decrypt_vector(enc_grad)
            ledger.record_message("ttp->party", masked)
            blocks.append(party.unmask(epoch, tag, masked))
        return blocks

    def train(
        self,
        y_train: np.ndarray,
        y_val: np.ndarray,
        X_val_blocks: list[np.ndarray],
        *,
        reweight: bool = False,
    ) -> EncryptedVFLResult:
        """Run Algorithm 3 for ``epochs`` rounds with DIG-FL evaluation.

        With ``reweight`` the trusted third-party turns the per-epoch
        contributions the parties report into Eq. 31 weights (rectified,
        scaled so uniform contributions reproduce plain descent) and
        broadcasts them; each party scales its own gradient block before
        updating — the encrypted deployment of the Sec. IV-D mechanism.
        """
        ledger = CostLedger()
        n = len(self.parties)
        per_epoch = np.zeros((self.epochs, n))
        applied_weights = np.ones((self.epochs, n))
        with ledger.computing():
            for epoch in range(1, self.epochs + 1):
                lr = self.lr_schedule.lr_at(epoch)
                train_blocks = self._exchange(epoch, "train", y_train, ledger)
                val_blocks = self._exchange(
                    epoch, "val", y_val, ledger, X_blocks=X_val_blocks
                )
                # Each party computes its own contribution from values it
                # already holds (Eq. 27) and reports the scalar.
                for i, party in enumerate(self.parties):
                    party.last_train_grad = train_blocks[i]
                    party.last_val_grad = val_blocks[i]
                    per_epoch[epoch - 1, i] = lr * float(
                        np.dot(val_blocks[i], train_blocks[i])
                    )
                    ledger.record_message("party->ttp", per_epoch[epoch - 1, i])
                weights = np.ones(n)
                if reweight:
                    clipped = np.maximum(per_epoch[epoch - 1], 0.0)
                    total = clipped.sum()
                    if total > 1e-12:
                        weights = clipped / total * n
                    ledger.record_message("ttp->party", weights)
                applied_weights[epoch - 1] = weights
                for i, party in enumerate(self.parties):
                    party.apply_update(lr, weights[i] * train_blocks[i])
        return EncryptedVFLResult(
            theta_blocks=[p.theta.copy() for p in self.parties],
            contributions=per_epoch.sum(axis=0),
            per_epoch_contributions=per_epoch,
            weights=applied_weights,
            ledger=ledger,
        )


def build_encrypted_session(
    task: str,
    X_blocks: list[np.ndarray],
    y: np.ndarray,
    lr_schedule: LRSchedule,
    epochs: int,
    *,
    key_bits: int = 256,
    seed: int | None = None,
) -> EncryptedVFLSession:
    """Wire up parties + third-party for the given vertical split.

    ``key_bits`` defaults to 256 for test speed; the paper uses 1024.
    """
    ttp = TrustedThirdParty.create(key_bits, seed)
    parties = [
        EncryptedParty(
            i,
            block,
            ttp.public_key,
            y=y if i == 0 else None,
            seed=None if seed is None else seed + i,
        )
        for i, block in enumerate(X_blocks)
    ]
    return EncryptedVFLSession(task, parties, ttp, lr_schedule, epochs)
