"""Plaintext VFL trainer (the simulation fast path).

Trains a vertically partitioned linear/logistic regression by full-batch
gradient descent.  The encrypted protocol in :mod:`repro.vfl.encrypted`
computes byte-for-byte the same numbers through Paillier; benchmarks use
this plaintext path because the exact-Shapley baselines retrain the model
``2^n`` times.

Coalitions follow the paper's removal semantics (Sec. II-C2): the model is
initialised to **zero**, and removing party ``z`` means its block is never
updated, so its local output stays identically zero and the remaining
parties train exactly the model they would have trained alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Protocol, Sequence

import numpy as np

from repro.data.dataset import Dataset
from repro.metrics.cost import FLOAT64_BYTES, CostLedger
from repro.models.linear import make_vfl_model
from repro.nn.optim import LRSchedule
from repro.obs.trace import NULL_TRACER, Tracer
from repro.utils.validation import check_positive_int
from repro.vfl.log import VFLEpochRecord, VFLTrainingLog

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (robust -> io -> log)
    from repro.robust.checkpoint import CheckpointManager
    from repro.robust.screening import UpdateScreener


class VFLReweighter(Protocol):
    """Hook returning per-party weights for the tuned gradient of Eq. 31."""

    def weights(
        self,
        theta_before: np.ndarray,
        train_gradient: np.ndarray,
        val_gradient: np.ndarray,
        lr: float,
        epoch: int,
        active_parties: Sequence[int],
    ) -> np.ndarray: ...


@dataclass
class VFLResult:
    """Outcome of one vertical training run."""

    theta: np.ndarray
    log: VFLTrainingLog
    model: object  # LinearRegressionModel | LogisticRegressionModel


class VFLTrainer:
    """Vertical FL over one tabular dataset split into feature blocks."""

    def __init__(
        self,
        task: str,
        feature_blocks: Sequence[np.ndarray],
        epochs: int,
        lr_schedule: LRSchedule,
        *,
        n_classes: int = 0,
    ) -> None:
        """``feature_blocks`` index the flat coefficient vector.

        For ``multiclass`` pass ``n_classes`` and expand per-party feature
        blocks with :func:`repro.models.expand_feature_blocks` first.
        """
        self.model = make_vfl_model(task, n_classes=n_classes)
        self.feature_blocks = [np.asarray(b) for b in feature_blocks]
        self.epochs = check_positive_int(epochs, "epochs")
        self.lr_schedule = lr_schedule
        self._check_blocks()

    def _check_blocks(self) -> None:
        all_cols = np.concatenate(self.feature_blocks) if self.feature_blocks else np.array([])
        if len(np.unique(all_cols)) != len(all_cols):
            raise ValueError("feature blocks must be disjoint")
        for i, block in enumerate(self.feature_blocks):
            if len(block) == 0:
                raise ValueError(f"party {i} owns no features")

    @property
    def n_parties(self) -> int:
        return len(self.feature_blocks)

    def party_mask(self, parties: Sequence[int]) -> np.ndarray:
        """Boolean coefficient mask covering the given parties' blocks."""
        mask = np.zeros(int(max(b.max() for b in self.feature_blocks)) + 1, dtype=bool)
        for i in parties:
            mask[self.feature_blocks[i]] = True
        return mask

    def train(
        self,
        train: Dataset,
        validation: Dataset,
        *,
        parties: Sequence[int] | None = None,
        reweighter: VFLReweighter | None = None,
        ledger: CostLedger | None = None,
        track_losses: bool = False,
        screener: "UpdateScreener | None" = None,
        checkpoint: "CheckpointManager | None" = None,
        resume: bool = False,
        tracer: Tracer | None = None,
    ) -> VFLResult:
        """Gradient-descent training restricted to a coalition of parties.

        The recorded ``train_gradient``/``val_gradient`` are the *full*
        vectors with excluded parties' blocks zeroed — matching the
        ``diag(v_z)`` masking of Lemma 2.

        ``screener`` runs the :mod:`repro.robust` screening pass on each
        party's gradient block before the block update is applied (the
        non-finite and norm rules; the cosine rule is meaningless across
        disjoint feature blocks and is disabled).  A quarantined party's
        block stays frozen that round, its weight is zeroed and it is
        marked absent in the round's participation mask — exactly the
        dropout semantics Eq. 27 already handles.  ``checkpoint`` /
        ``resume`` persist the log per round and continue from the last
        complete round, as in :meth:`repro.hfl.trainer.HFLTrainer.train`.
        ``tracer`` emits one ``trainer.epoch`` span per round (defaults to
        the shared no-op tracer).
        """
        if resume and checkpoint is None:
            raise ValueError("resume=True requires a checkpoint manager")
        if parties is None:
            parties = list(range(self.n_parties))
        else:
            parties = sorted(set(parties))
        bad = [i for i in parties if not 0 <= i < self.n_parties]
        if bad:
            raise ValueError(f"unknown party indices {bad}")
        if not parties:
            raise ValueError("coalition must contain at least one party")

        d = self.model.n_coefficients(train.X)
        all_blocks = np.concatenate(self.feature_blocks)
        if len(all_blocks) != d or all_blocks.max() >= d:
            raise ValueError(
                f"party blocks cover {len(all_blocks)} coefficients but the "
                f"model has {d}; multiclass blocks must be expanded with "
                "expand_feature_blocks"
            )
        theta = np.zeros(d)  # θ_0 = 0, required by the removal argument
        active_mask = np.zeros(d, dtype=bool)
        for i in parties:
            active_mask[self.feature_blocks[i]] = True

        log = VFLTrainingLog(
            feature_blocks=list(self.feature_blocks), active_parties=list(parties)
        )
        m = len(train)
        start_epoch = 1
        if resume:
            prior = checkpoint.resume()
            if prior is not None:
                if list(prior.active_parties) != list(parties):
                    raise ValueError(
                        f"checkpoint trained parties {prior.active_parties}, "
                        f"cannot resume with {parties}"
                    )
                log = prior
                theta = log.final_theta
                start_epoch = log.n_epochs + 1
                if screener is not None:
                    screener.warm_start(log)

        tracer = tracer if tracer is not None else NULL_TRACER
        for epoch in range(start_epoch, self.epochs + 1):
            # Manual begin/end keeps the loop body untouched; a NULL_SPAN
            # costs nothing when no tracer was passed.
            epoch_span = tracer.span("trainer.epoch", epoch=epoch, kind="vfl")
            lr = self.lr_schedule.lr_at(epoch)
            grad = self.model.gradient(theta, train.X, train.y)
            grad = np.where(active_mask, grad, 0.0)
            val_grad = self.model.gradient(theta, validation.X, validation.y)
            val_grad = np.where(active_mask, val_grad, 0.0)

            quarantined: list[int] = []
            if screener is not None:
                blocks = [grad[self.feature_blocks[i]] for i in parties]
                verdict = screener.screen(
                    epoch, parties, blocks, homogeneous=False
                )
                quarantined = [i for i, ok in zip(parties, verdict) if not ok]

            if ledger is not None:
                # Per round each party ships its local result u_i (m values)
                # and receives its gradient block back.
                for i in parties:
                    ledger.record_bytes("party->coordinator", m * FLOAT64_BYTES)
                    ledger.record_bytes(
                        "coordinator->party", len(self.feature_blocks[i]) * FLOAT64_BYTES
                    )

            weights = np.ones(self.n_parties)
            if reweighter is not None:
                weights = np.asarray(
                    reweighter.weights(theta, grad, val_grad, lr, epoch, parties),
                    dtype=np.float64,
                )
                if weights.shape != (self.n_parties,):
                    raise ValueError(
                        f"reweighter returned shape {weights.shape}, "
                        f"expected ({self.n_parties},)"
                    )

            participation = None
            if quarantined:
                # Frozen blocks ship nothing: zero the recorded gradient
                # block and the weight, and mark the party absent so the
                # estimators give it zero contribution this round.
                participation = np.zeros(self.n_parties, dtype=bool)
                participation[list(parties)] = True
                for i in quarantined:
                    participation[i] = False
                    weights[i] = 0.0
                    grad[self.feature_blocks[i]] = 0.0

            train_loss = val_loss = float("nan")
            if track_losses:
                train_loss = self.model.loss(theta, train.X, train.y)
                val_loss = self.model.loss(theta, validation.X, validation.y)

            log.records.append(
                VFLEpochRecord(
                    epoch=epoch,
                    lr=lr,
                    theta_before=theta.copy(),
                    train_gradient=grad,
                    val_gradient=val_grad,
                    weights=weights,
                    train_loss=train_loss,
                    val_loss=val_loss,
                    participation=participation,
                )
            )

            update = np.zeros(d)
            for i in parties:
                block = self.feature_blocks[i]
                update[block] = weights[i] * grad[block]
            theta = theta - lr * update
            if checkpoint is not None:
                checkpoint.save(log)
            epoch_span.end()

        return VFLResult(theta=theta, log=log, model=self.model)
