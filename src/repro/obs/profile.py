"""Phase timers for the hot paths: where did this run spend its time?

The paper's efficiency claim (§VI: evaluation in less than one training
epoch) lives or dies in a handful of inner loops — the per-epoch
validation gradient, the HVP of the interactive estimator, the ``n`` dot
products of Algorithm 2's streaming step, the content-digest update, the
WAL ``fsync`` — and, for the sampling backends of
:mod:`repro.estimators`, the coalition-model reconstructions
(``gtg.reconstruct`` / ``dpvs.reconstruct``) and the per-round
permutation walks (``gtg.eval_round`` / ``dpvs.eval_round``).
A :class:`Profiler` wraps each of those in a named
*phase* and aggregates (calls, total, max) per name; a
:class:`ProfileRegistry` keeps one profiler per run, which is what
``GET /runs/{id}/profile`` and ``repro profile`` report.

Phases are context managers costing two ``perf_counter`` calls and one
locked dict update — invisible against a millisecond ingest, which is
why profiling defaults *on* in the serving layer (the <5% budget is
pinned by ``benchmarks/bench_obs.py``).  A disabled profiler hands out a
shared no-op phase and records nothing.
"""

from __future__ import annotations

import threading
import time
from typing import Callable


class _Phase:
    """One timed window; feeds its duration back on exit."""

    __slots__ = ("_profiler", "_name", "_started")

    def __init__(self, profiler: "Profiler", name: str) -> None:
        self._profiler = profiler
        self._name = name
        self._started = 0.0

    def __enter__(self) -> "_Phase":
        self._started = self._profiler._clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._profiler.add(self._name, self._profiler._clock() - self._started)
        return False


class _NullPhase:
    """The shared do-nothing phase of a disabled profiler."""

    __slots__ = ()

    def __enter__(self) -> "_NullPhase":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NULL_PHASE = _NullPhase()


class Profiler:
    """Aggregates (calls, total seconds, max seconds) per phase name."""

    def __init__(
        self,
        *,
        enabled: bool = True,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.enabled = enabled
        self._clock = clock
        self._phases: dict[str, list] = {}  # name -> [calls, total_s, max_s]
        self._lock = threading.Lock()

    def phase(self, name: str):
        """A context manager timing one occurrence of ``name``."""
        if not self.enabled:
            return NULL_PHASE
        return _Phase(self, name)

    def add(self, name: str, seconds: float) -> None:
        """Record one occurrence explicitly (callers that time themselves)."""
        if not self.enabled:
            return
        if seconds < 0:
            raise ValueError(f"phase duration must be non-negative, got {seconds}")
        with self._lock:
            stats = self._phases.get(name)
            if stats is None:
                self._phases[name] = [1, seconds, seconds]
            else:
                stats[0] += 1
                stats[1] += seconds
                if seconds > stats[2]:
                    stats[2] = seconds

    def report(self) -> list[dict]:
        """Per-phase rows, largest total first; ``share`` sums to 1.0."""
        with self._lock:
            phases = {name: list(stats) for name, stats in self._phases.items()}
        grand_total = sum(stats[1] for stats in phases.values())
        rows = [
            {
                "phase": name,
                "calls": calls,
                "total_s": total,
                "mean_s": total / calls if calls else 0.0,
                "max_s": max_s,
                "share": total / grand_total if grand_total else 0.0,
            }
            for name, (calls, total, max_s) in phases.items()
        ]
        rows.sort(key=lambda row: (-row["total_s"], row["phase"]))
        return rows

    def table(self) -> str:
        """The aligned text table ``repro profile`` prints."""
        rows = self.report()
        if not rows:
            return "no phases recorded"
        width = max(len("phase"), max(len(row["phase"]) for row in rows))
        header = (
            f"{'phase':<{width}}  {'calls':>7}  {'total':>10}  "
            f"{'mean':>10}  {'max':>10}  {'share':>6}"
        )
        lines = [header]
        for row in rows:
            lines.append(
                f"{row['phase']:<{width}}  {row['calls']:>7}  "
                f"{row['total_s'] * 1e3:>8.2f}ms  {row['mean_s'] * 1e3:>8.3f}ms  "
                f"{row['max_s'] * 1e3:>8.3f}ms  {row['share']:>5.1%}"
            )
        return "\n".join(lines)

    def clear(self) -> None:
        with self._lock:
            self._phases.clear()


# Shared disabled profiler: stateless by construction (add() returns
# before touching the dict), so it is safe as a library-wide default.
NULL_PROFILER = Profiler(enabled=False)


class ProfileRegistry:
    """One :class:`Profiler` per run id; the ``/runs/{id}/profile`` source.

    A disabled registry hands out :data:`NULL_PROFILER` for every key, so
    attaching profilers to estimators stays unconditional in the service
    while costing nothing when profiling is off.
    """

    def __init__(self, *, enabled: bool = True) -> None:
        self.enabled = enabled
        self._profilers: dict[str, Profiler] = {}
        self._lock = threading.Lock()

    def for_run(self, run_id: str) -> Profiler:
        """Get or create the profiler aggregating ``run_id``'s phases."""
        if not self.enabled:
            return NULL_PROFILER
        with self._lock:
            profiler = self._profilers.get(run_id)
            if profiler is None:
                profiler = self._profilers[run_id] = Profiler()
            return profiler

    def keys(self) -> list[str]:
        with self._lock:
            return sorted(self._profilers)

    def report(self, run_id: str) -> list[dict]:
        """``run_id``'s phase rows (empty when nothing was recorded)."""
        with self._lock:
            profiler = self._profilers.get(run_id)
        return profiler.report() if profiler is not None else []
