"""Label-aware metrics registry with a Prometheus text renderer.

Instrumentation in this repo predates the registry — the serving layer
already owns :class:`~repro.metrics.cost.LatencyHistogram` and
:class:`~repro.metrics.cost.Gauge` instances, and counters live as plain
ints on caches, admission queues and breakers.  The registry does not
replace them: existing instruments are *absorbed* with
:meth:`MetricsRegistry.register` (either the object itself or a
zero-argument callback read at scrape time), new monotone counts get
:class:`Counter`, and everything comes out of two sinks:

* :meth:`MetricsRegistry.snapshot` — a point-in-time dict; histogram
  series go through the single-lock
  :meth:`~repro.metrics.cost.LatencyHistogram.snapshot`, so each
  instrument's numbers are internally consistent (count·mean == total).
* :meth:`MetricsRegistry.render_prometheus` — the Prometheus text
  exposition format (``# HELP`` / ``# TYPE``, cumulative ``_bucket``
  series with ``le`` labels, ``_sum`` / ``_count``), which is what
  ``GET /metricz?format=prometheus`` serves.  The JSON ``/metricz``
  payload is untouched — the renderer is an additional view, not a
  replacement.

Series are keyed ``(name, labels)``; :meth:`counter` / :meth:`gauge` /
:meth:`histogram` are get-or-create, so concurrent callers share one
instrument per key.
"""

from __future__ import annotations

import math
import re
import threading

from repro.metrics.cost import Gauge, LatencyHistogram

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class Counter:
    """A thread-safe monotone counter (the Prometheus ``counter`` type)."""

    __slots__ = ("_value", "_lock")

    def __init__(self, value: int = 0) -> None:
        if value < 0:
            raise ValueError(f"counter cannot start negative, got {value}")
        self._value = int(value)
        self._lock = threading.Lock()

    def inc(self, n: int = 1) -> int:
        """Add ``n`` (must be non-negative); returns the new value."""
        if n < 0:
            raise ValueError(f"counters only go up, got increment {n}")
        with self._lock:
            self._value += int(n)
            return self._value

    @property
    def value(self) -> int:
        # Lock-free read: int rebinding is atomic under the GIL (the same
        # justification as Gauge.value).
        return self._value


class _MergedScalar:
    """A float accumulator behind merged counter/gauge series.

    :meth:`MetricsRegistry.merge` cannot reuse :class:`Counter` /
    :class:`~repro.metrics.cost.Gauge` for absorbed snapshots — those
    are integer instruments, and a merged gauge (uptime seconds, cache
    fill ratios) is a float.  ``add`` is additive so merging two worker
    snapshots under the same label set sums them, exactly like
    Prometheus federation would.
    """

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def add(self, v: float) -> None:
        self.value += float(v)


class _Series:
    """One (labels → instrument) family member."""

    __slots__ = ("labels", "instrument", "callback")

    def __init__(self, labels: tuple, instrument, callback) -> None:
        self.labels = labels
        self.instrument = instrument
        self.callback = callback

    def read(self):
        if self.callback is not None:
            return float(self.callback())
        if isinstance(self.instrument, LatencyHistogram):
            return self.instrument.snapshot()
        return float(self.instrument.value)


class _Family:
    """All series sharing one metric name (and therefore one type)."""

    __slots__ = ("name", "kind", "help", "series")

    def __init__(self, name: str, kind: str, help: str) -> None:
        self.name = name
        self.kind = kind
        self.help = help
        self.series: dict[tuple, _Series] = {}


def _label_key(labels: dict | None) -> tuple:
    return tuple(sorted((labels or {}).items()))


class MetricsRegistry:
    """Named, labelled instruments behind one consistent scrape surface."""

    _KINDS = frozenset({"counter", "gauge", "histogram"})

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: dict[str, _Family] = {}

    # ------------------------------------------------------------- creation

    def counter(
        self, name: str, *, help: str = "", labels: dict | None = None
    ) -> Counter:
        """Get or create the :class:`Counter` at ``(name, labels)``."""
        return self._get_or_create(
            name, "counter", help, labels, factory=Counter
        )

    def gauge(
        self, name: str, *, help: str = "", labels: dict | None = None
    ) -> Gauge:
        """Get or create the :class:`~repro.metrics.cost.Gauge` at the key."""
        return self._get_or_create(name, "gauge", help, labels, factory=Gauge)

    def histogram(
        self,
        name: str,
        *,
        help: str = "",
        labels: dict | None = None,
        bounds: tuple | None = None,
    ) -> LatencyHistogram:
        """Get or create the latency histogram at ``(name, labels)``."""
        factory = (
            LatencyHistogram
            if bounds is None
            else (lambda: LatencyHistogram(bounds))
        )
        return self._get_or_create(name, "histogram", help, labels, factory=factory)

    def register(
        self,
        name: str,
        instrument,
        *,
        kind: str | None = None,
        help: str = "",
        labels: dict | None = None,
        exist_ok: bool = False,
    ):
        """Absorb an existing instrument (or a scrape-time callback).

        ``instrument`` may be a :class:`Counter`, a
        :class:`~repro.metrics.cost.Gauge`, a
        :class:`~repro.metrics.cost.LatencyHistogram` (kind inferred), or
        any zero-argument callable returning a number (``kind`` required:
        ``"counter"`` or ``"gauge"``).  Registering an occupied key raises
        unless ``exist_ok=True``, which replaces the series — the idiom
        for components that may be re-attached to a live service.
        """
        callback = None
        if isinstance(instrument, Counter):
            inferred = "counter"
        elif isinstance(instrument, Gauge):
            inferred = "gauge"
        elif isinstance(instrument, LatencyHistogram):
            inferred = "histogram"
        elif callable(instrument):
            if kind is None:
                raise ValueError(
                    "callback instruments need an explicit kind= "
                    "('counter' or 'gauge')"
                )
            if kind == "histogram":
                raise ValueError("callback instruments cannot be histograms")
            callback = instrument
            inferred = kind
        else:
            raise TypeError(
                f"cannot register instrument of type {type(instrument).__name__}"
            )
        if kind is not None and kind != inferred:
            raise ValueError(
                f"instrument is a {inferred} but kind={kind!r} was requested"
            )
        family = self._family(name, inferred, help)
        key = _label_key(labels)
        self._check_labels(key)
        with self._lock:
            existing = family.series.get(key)
            if existing is not None:
                if existing.instrument is instrument and callback is None:
                    return instrument
                if not exist_ok:
                    raise ValueError(
                        f"metric {name!r} with labels {dict(key)} is already "
                        "registered (pass exist_ok=True to replace)"
                    )
            family.series[key] = _Series(key, instrument, callback)
        return instrument

    def unregister(self, name: str, *, labels: dict | None = None) -> bool:
        """Drop one series (and its family once empty); ``False`` if absent.

        The idiom for instruments whose *meaning* ends with a lifecycle
        transition — a standby's replication-lag gauge, say, stops being
        a fact the moment the worker is promoted to primary, and a
        frozen last value in ``/metricz`` would read as live lag.
        """
        key = _label_key(labels)
        with self._lock:
            family = self._families.get(name)
            if family is None or key not in family.series:
                return False
            del family.series[key]
            if not family.series:
                del self._families[name]
            return True

    def _get_or_create(self, name, kind, help, labels, *, factory):
        family = self._family(name, kind, help)
        key = _label_key(labels)
        self._check_labels(key)
        with self._lock:
            series = family.series.get(key)
            if series is None:
                series = _Series(key, factory(), None)
                family.series[key] = series
            elif series.callback is not None:
                raise ValueError(
                    f"metric {name!r} {dict(key)} is a callback series"
                )
            return series.instrument

    def _family(self, name: str, kind: str, help: str) -> _Family:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        if kind not in self._KINDS:
            raise ValueError(
                f"kind must be one of {sorted(self._KINDS)}, got {kind!r}"
            )
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = _Family(name, kind, help)
                self._families[name] = family
            elif family.kind != kind:
                raise ValueError(
                    f"metric {name!r} is a {family.kind}, not a {kind}"
                )
            if help and not family.help:
                family.help = help
            return family

    @staticmethod
    def _check_labels(key: tuple) -> None:
        for label, _ in key:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")

    # -------------------------------------------------------------- merging

    def merge(self, snapshot: dict, *, labels: dict | None = None) -> "MetricsRegistry":
        """Absorb a :meth:`snapshot` dict (possibly from another process).

        This is the cluster-aggregation primitive: a router scrapes each
        worker's ``/metricz?format=snapshot`` (the JSON form of
        :meth:`snapshot`, which survives the wire — tuples come back as
        lists) and merges every worker into one registry, stamping
        ``labels`` (e.g. ``{"worker": "2"}``) onto each absorbed series
        so per-worker streams stay distinguishable in the Prometheus
        rendering.  Merging is *additive*: two snapshots landing on the
        same ``(name, labels)`` key sum counters/gauges and bucket-add
        histograms.  A key already occupied by a live (non-merged)
        instrument refuses — merged and live series must not silently
        mix.  Returns ``self`` so merges chain.
        """
        extra = dict(labels or {})
        self._check_labels(_label_key(extra))
        for name in sorted(snapshot):
            family_snap = snapshot[name]
            kind = family_snap["type"]
            family = self._family(name, kind, family_snap.get("help", ""))
            for series_snap in family_snap["series"]:
                key = _label_key({**dict(series_snap.get("labels") or {}), **extra})
                self._check_labels(key)
                value = series_snap["value"]
                if kind == "histogram":
                    self._merge_histogram(family, key, value)
                else:
                    self._merge_scalar(family, key, float(value))
        return self

    def _merge_scalar(self, family: _Family, key: tuple, value: float) -> None:
        with self._lock:
            series = family.series.get(key)
            if series is None:
                series = _Series(key, _MergedScalar(), None)
                family.series[key] = series
            elif not isinstance(series.instrument, _MergedScalar):
                raise ValueError(
                    f"metric {family.name!r} {dict(key)} is a live instrument; "
                    "refusing to merge a snapshot over it"
                )
            series.instrument.add(value)

    def _merge_histogram(self, family: _Family, key: tuple, snap: dict) -> None:
        bounds = tuple(float(b) for b in snap["bounds"])
        with self._lock:
            series = family.series.get(key)
            if series is None:
                series = _Series(key, LatencyHistogram(bounds), None)
                family.series[key] = series
            elif series.callback is not None or not isinstance(
                series.instrument, LatencyHistogram
            ):
                raise ValueError(
                    f"metric {family.name!r} {dict(key)} is not a histogram "
                    "series; refusing to merge a snapshot over it"
                )
        series.instrument.merge_snapshot(snap)

    # -------------------------------------------------------------- reading

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._families)

    def snapshot(self) -> dict:
        """Point-in-time values of every series, keyed by metric name.

        Histogram values are the raw per-instrument
        :meth:`~repro.metrics.cost.LatencyHistogram.snapshot` dicts, so
        each series is internally consistent; counters and gauges are
        floats.  Consistency is per-instrument — a registry-wide scrape
        is not a transaction across independent components.
        """
        out: dict[str, dict] = {}
        for name, family, series_list in self._iter_series():
            out[name] = {
                "type": family.kind,
                "help": family.help,
                "series": [
                    {"labels": dict(series.labels), "value": series.read()}
                    for series in series_list
                ],
            }
        return out

    def _iter_series(self):
        with self._lock:
            families = sorted(self._families.items())
            snapshot = [
                (name, family, [family.series[k] for k in sorted(family.series)])
                for name, family in families
            ]
        return snapshot

    # ---------------------------------------------------------- prometheus

    def render_prometheus(self) -> str:
        """The text exposition format for ``GET /metricz?format=prometheus``."""
        lines: list[str] = []
        for name, family, series_list in self._iter_series():
            if family.help:
                lines.append(f"# HELP {name} {_escape_help(family.help)}")
            lines.append(f"# TYPE {name} {family.kind}")
            for series in series_list:
                value = series.read()
                if family.kind == "histogram":
                    lines.extend(_render_histogram(name, series.labels, value))
                else:
                    lines.append(
                        f"{name}{_render_labels(series.labels)} {_fmt(value)}"
                    )
        return "\n".join(lines) + "\n" if lines else ""


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _render_labels(key: tuple, extra: tuple = ()) -> str:
    pairs = list(key) + list(extra)
    if not pairs:
        return ""
    rendered = ",".join(
        f'{label}="{_escape_label_value(str(value))}"' for label, value in pairs
    )
    return "{" + rendered + "}"


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _fmt(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _exemplar_suffix(exemplars: dict, bucket: int) -> str:
    """The OpenMetrics exemplar tail for one bucket line, or ``""``.

    ``{name}_bucket{{le="..."}} N # {{trace_id="..."}} 0.0031`` — the
    trace id of the slowest observation that landed in the bucket, so a
    scrape of a p99 outlier resolves to a span tree.
    """
    exemplar = exemplars.get(bucket)
    if exemplar is None:
        return ""
    trace_id = _escape_label_value(str(exemplar["trace_id"]))
    return f' # {{trace_id="{trace_id}"}} {_fmt(float(exemplar["value"]))}'


def _render_histogram(name: str, key: tuple, snap: dict) -> list[str]:
    """Cumulative ``_bucket`` lines plus ``_sum`` / ``_count``."""
    lines = []
    cumulative = 0
    # Exemplar keys are bucket indices; they may arrive as strings when a
    # snapshot crossed a JSON boundary before rendering.
    exemplars = {
        int(bucket): exemplar
        for bucket, exemplar in (snap.get("exemplars") or {}).items()
    }
    for bucket, (bound, count) in enumerate(
        zip(snap["bounds"], snap["bucket_counts"])
    ):
        cumulative += count
        labels = _render_labels(key, (("le", _fmt(bound)),))
        lines.append(
            f"{name}_bucket{labels} {cumulative}"
            f"{_exemplar_suffix(exemplars, bucket)}"
        )
    # The overflow bucket is the +Inf bucket; its cumulative count is the
    # total observation count, as the exposition format requires.
    inf_labels = _render_labels(key, (("le", "+Inf"),))
    lines.append(
        f"{name}_bucket{inf_labels} {snap['count']}"
        f"{_exemplar_suffix(exemplars, len(snap['bounds']))}"
    )
    lines.append(f"{name}_sum{_render_labels(key)} {_fmt(snap['total'])}")
    lines.append(f"{name}_count{_render_labels(key)} {snap['count']}")
    return lines
