"""Thread-aware span tracing with deterministic ids and a bounded buffer.

A :class:`Tracer` hands out :class:`Span` objects — named, timed windows
with attributes and events — and keeps the finished ones in an in-memory
ring buffer for JSONL export.  Three properties matter for this repo:

* **Deterministic ids.**  Trace and span ids come from an injectable
  monotone ``id_source`` (default: a process-local counter), not from a
  random source, so a test can assert the exact parent/child wiring of a
  request and two runs of the same scenario produce the same trace.
* **Explicit context handles.**  ``with tracer.span(...)`` maintains a
  *per-thread* active-span stack, so nested spans parent automatically —
  but a :class:`SpanContext` can be captured and passed across a thread
  pool (``tracer.span(name, parent=ctx)``), which is how one serve
  request stays a single trace through
  :class:`~repro.serve.service.EvaluationService`'s worker pool and the
  runtime's executors.
* **A disabled tracer is a no-op.**  ``Tracer(enabled=False)`` returns a
  shared :data:`NULL_SPAN` whose every method is a pass; nothing is
  allocated per call and nothing is ever buffered, which is what lets
  instrumented hot paths stay within the <5% overhead budget pinned by
  ``benchmarks/bench_obs.py``.

Spans are buffered when they *end* (ring capacity ``capacity``; the
oldest are dropped and counted).  A span closed by an exception is marked
``status="error"`` with the exception on its attributes — the error-path
contract ``tests/test_obs_propagation.py`` holds the serving layer to.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from collections import deque
from typing import Callable, Iterable, NamedTuple


class SpanContext(NamedTuple):
    """An immutable handle naming a span; safe to ship across threads."""

    trace_id: str
    span_id: str


# Wire propagation: a router (or any other HTTP client) stamps these two
# headers on an outgoing request, and the receiving server parents its
# request span on the carried context — so a client request proxied
# through repro.serve.cluster's router is still ONE trace even though the
# router and the shard worker are separate processes with separate
# tracers.
TRACE_ID_HEADER = "X-Repro-Trace-Id"
PARENT_SPAN_HEADER = "X-Repro-Parent-Span"


def context_headers(ctx: "SpanContext | None") -> dict:
    """HTTP headers carrying ``ctx`` across a process hop (empty if None).

    ``None`` covers both "no active span" and a disabled tracer (whose
    :data:`NULL_SPAN` has ``context is None``), so callers can write
    ``headers.update(context_headers(span.context))`` unconditionally.
    """
    if ctx is None:
        return {}
    return {TRACE_ID_HEADER: ctx.trace_id, PARENT_SPAN_HEADER: ctx.span_id}


def context_from_headers(headers) -> "SpanContext | None":
    """Recover a propagated :class:`SpanContext` from request headers.

    ``headers`` is anything with ``.get`` (an
    ``http.client.HTTPMessage``, a plain dict).  Both headers must be
    present and non-empty; otherwise the request roots its own trace.
    """
    trace_id = headers.get(TRACE_ID_HEADER)
    span_id = headers.get(PARENT_SPAN_HEADER)
    if not trace_id or not span_id:
        return None
    return SpanContext(str(trace_id), str(span_id))


class Span:
    """One named, timed operation inside a trace.

    Use as a context manager to activate it on the current thread (so
    nested spans parent to it automatically), or call :meth:`end`
    explicitly for manually managed lifetimes.  Mutators are single-
    threaded by convention — a span belongs to the code path that opened
    it; only the finished-span buffer is shared.
    """

    __slots__ = (
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "start_s",
        "end_s",
        "status",
        "thread",
        "attributes",
        "events",
        "_tracer",
        "_activated",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        trace_id: str,
        span_id: str,
        parent_id: str | None,
        start_s: float,
        attributes: dict | None,
    ) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.start_s = start_s
        self.end_s: float | None = None
        self.status = "ok"
        self.thread = threading.current_thread().name
        self.attributes = dict(attributes or {})
        self.events: list[dict] = []
        self._tracer = tracer
        self._activated = False

    # ------------------------------------------------------------- recording

    @property
    def recording(self) -> bool:
        return self.end_s is None

    @property
    def context(self) -> SpanContext:
        return SpanContext(self.trace_id, self.span_id)

    @property
    def duration_s(self) -> float | None:
        return None if self.end_s is None else self.end_s - self.start_s

    def set_attribute(self, key: str, value) -> None:
        self.attributes[key] = value

    def set_attributes(self, **attributes) -> None:
        self.attributes.update(attributes)

    def add_event(self, name: str, **attributes) -> None:
        """Record a point-in-time occurrence inside the span."""
        self.events.append(
            {"name": name, "time_s": self._tracer._clock(), **attributes}
        )

    def end(self, status: str | None = None) -> None:
        """Close the span and hand it to the tracer's ring buffer."""
        if self.end_s is not None:
            return  # idempotent: a double end must not double-buffer
        if status is not None:
            self.status = status
        self.end_s = self._tracer._clock()
        self._tracer._finish(self)

    # ------------------------------------------------------- context manager

    def __enter__(self) -> "Span":
        self._tracer._push(self)
        self._activated = True
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._activated:
            self._tracer._pop(self)
            self._activated = False
        if exc_type is not None:
            self.attributes.setdefault("error", f"{exc_type.__name__}: {exc}")
            self.end(status="error")
        else:
            self.end()
        return False

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "duration_s": self.duration_s,
            "status": self.status,
            "thread": self.thread,
            "attributes": self.attributes,
            "events": self.events,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "open" if self.recording else self.status
        return f"Span({self.name!r}, {self.span_id}, {state})"


class _NullSpan:
    """The shared do-nothing span a disabled tracer hands out.

    Stateless, so one instance serves every caller and every thread.
    ``context`` is ``None`` — there is nothing to propagate.
    """

    __slots__ = ()

    recording = False
    context = None
    status = "ok"
    attributes: dict = {}
    events: list = []

    def set_attribute(self, key, value) -> None:
        pass

    def set_attributes(self, **attributes) -> None:
        pass

    def add_event(self, name, **attributes) -> None:
        pass

    def end(self, status=None) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "NullSpan()"


NULL_SPAN = _NullSpan()


class Tracer:
    """Factory and ring buffer for :class:`Span` objects.

    ``enabled=False`` makes every :meth:`span` call return
    :data:`NULL_SPAN` — one attribute check, no allocation.
    ``id_source`` is any zero-argument callable yielding fresh integers
    (injectable for tests; the default counter makes ids deterministic
    per tracer).  ``capacity`` bounds the finished-span ring; overflow
    drops the oldest span and bumps :attr:`dropped`.
    """

    def __init__(
        self,
        *,
        enabled: bool = True,
        capacity: int = 4096,
        id_source: Callable[[], int] | None = None,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.enabled = enabled
        self.capacity = capacity
        self._ids = id_source if id_source is not None else itertools.count(1).__next__
        self._clock = clock
        self._finished: deque[Span] = deque(maxlen=capacity)
        self._buffer_lock = threading.Lock()
        self._local = threading.local()
        self.dropped = 0

    # ------------------------------------------------------------- span API

    def span(
        self,
        name: str,
        *,
        parent: "Span | SpanContext | None" = None,
        **attributes,
    ) -> Span | _NullSpan:
        """Open a span (use ``with``, or call ``.end()`` yourself).

        Parenting: an explicit ``parent`` (a :class:`Span` or a
        :class:`SpanContext` carried across a thread boundary) wins;
        otherwise the thread's innermost active span; otherwise the span
        roots a new trace.
        """
        if not self.enabled:
            return NULL_SPAN
        ctx = parent.context if isinstance(parent, Span) else parent
        if ctx is None:
            ctx = self.current_context()
        if ctx is None:
            trace_id = f"{self._ids():016x}"
            parent_id = None
        else:
            trace_id = ctx.trace_id
            parent_id = ctx.span_id
        return Span(
            self,
            name,
            trace_id,
            f"{self._ids():016x}",
            parent_id,
            self._clock(),
            attributes,
        )

    def current_context(self) -> SpanContext | None:
        """The innermost active span's context on *this* thread, if any."""
        stack = getattr(self._local, "stack", None)
        if not stack:
            return None
        return stack[-1].context

    # ------------------------------------------------------------- plumbing

    def _push(self, span: Span) -> None:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        stack.append(span)

    def _pop(self, span: Span) -> None:
        stack = getattr(self._local, "stack", None)
        if stack and stack[-1] is span:
            stack.pop()
        elif stack and span in stack:  # pragma: no cover - defensive
            stack.remove(span)

    def _finish(self, span: Span) -> None:
        with self._buffer_lock:
            if len(self._finished) == self._finished.maxlen:
                self.dropped += 1
            self._finished.append(span)

    # -------------------------------------------------------------- reading

    def spans(self, *, trace_id: str | None = None) -> list[Span]:
        """Finished spans, oldest first (optionally one trace's)."""
        with self._buffer_lock:
            spans = list(self._finished)
        if trace_id is not None:
            spans = [s for s in spans if s.trace_id == trace_id]
        return spans

    def traces(self) -> dict[str, list[Span]]:
        """Finished spans grouped by trace id, each oldest first."""
        grouped: dict[str, list[Span]] = {}
        for span in self.spans():
            grouped.setdefault(span.trace_id, []).append(span)
        return grouped

    def clear(self) -> None:
        with self._buffer_lock:
            self._finished.clear()
            self.dropped = 0

    def stats(self) -> dict:
        with self._buffer_lock:
            buffered = len(self._finished)
        return {
            "enabled": self.enabled,
            "capacity": self.capacity,
            "buffered": buffered,
            "dropped": self.dropped,
        }

    def export_jsonl(self, path) -> int:
        """Write finished spans (oldest first) as JSON lines; returns count."""
        spans = self.spans()
        with open(path, "w", encoding="utf-8") as fh:
            for span in spans:
                fh.write(json.dumps(span.to_dict(), default=str) + "\n")
        return len(spans)


def load_jsonl(path) -> list[dict]:
    """Read back a :meth:`Tracer.export_jsonl` file (tests / examples)."""
    with open(path, "r", encoding="utf-8") as fh:
        return [json.loads(line) for line in fh if line.strip()]


def slowest_spans(spans: Iterable, n: int = 5) -> list:
    """The ``n`` longest finished spans, slowest first.

    Accepts :class:`Span` objects or :meth:`Span.to_dict` dicts — the
    example scripts run it straight off an exported JSONL file.
    """

    def duration(span) -> float:
        value = (
            span.get("duration_s")
            if isinstance(span, dict)
            else span.duration_s
        )
        return value if value is not None else 0.0

    return sorted(spans, key=duration, reverse=True)[:n]


# The shared disabled tracer: stateless (a disabled tracer never mutates
# anything), so library code can default `tracer or NULL_TRACER` without
# coupling independent components through a hidden singleton's state.
NULL_TRACER = Tracer(enabled=False, capacity=1)
