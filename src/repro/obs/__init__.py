"""Unified observability: tracing, metrics, profiling, structured logs.

The paper's headline is *efficiency* — DIG-FL evaluates contributions in
less than one training epoch — and this package is how the repo defends
that claim beyond ad-hoc benchmark scripts: spans around every engine
round, participant task and serve request phase
(:mod:`repro.obs.trace`); one label-aware registry absorbing the
scattered histograms, gauges and counters with a Prometheus text
renderer (:mod:`repro.obs.registry`); per-run phase timers on the hot
paths — validation gradient, HVP, dot products, digest, WAL fsync —
(:mod:`repro.obs.profile`); and JSON logs carrying trace ids
(:mod:`repro.obs.log`).

The :class:`Observability` bundle ties the four together and is what the
engine and the serving layer accept: ``EvaluationService(obs=...)``,
``FederatedRuntime(..., obs=...)``.  The default bundle keeps tracing
*off* (a disabled tracer is a no-op; ``benchmarks/bench_obs.py`` pins
the armed-vs-bare overhead under 5%) while metrics and profiling stay on
— they are scrape-time or millisecond-scale work.  Zero dependencies
beyond the stdlib and the instruments :mod:`repro.metrics.cost` already
defines.
"""

from __future__ import annotations

from typing import IO, Callable

from repro.obs.log import NULL_LOGGER, JsonLogger
from repro.obs.profile import NULL_PHASE, NULL_PROFILER, Profiler, ProfileRegistry
from repro.obs.registry import PROMETHEUS_CONTENT_TYPE, Counter, MetricsRegistry
from repro.obs.slo import (
    DEFAULT_BURN_WINDOWS,
    SLO,
    BurnWindow,
    SloReport,
    SloTracker,
    default_slos,
    shed_from_response,
)
from repro.obs.trace import (
    NULL_SPAN,
    NULL_TRACER,
    PARENT_SPAN_HEADER,
    TRACE_ID_HEADER,
    Span,
    SpanContext,
    Tracer,
    context_from_headers,
    context_headers,
    load_jsonl,
    slowest_spans,
)

__all__ = [
    "BurnWindow",
    "Counter",
    "DEFAULT_BURN_WINDOWS",
    "JsonLogger",
    "MetricsRegistry",
    "NULL_LOGGER",
    "NULL_PHASE",
    "NULL_PROFILER",
    "NULL_SPAN",
    "NULL_TRACER",
    "Observability",
    "PARENT_SPAN_HEADER",
    "PROMETHEUS_CONTENT_TYPE",
    "ProfileRegistry",
    "Profiler",
    "SLO",
    "SloReport",
    "SloTracker",
    "Span",
    "SpanContext",
    "TRACE_ID_HEADER",
    "Tracer",
    "context_from_headers",
    "context_headers",
    "default_slos",
    "load_jsonl",
    "shed_from_response",
    "slowest_spans",
]


class Observability:
    """One tracer + one registry + per-run profilers + one logger.

    ``trace=True`` arms span recording (default off — the no-overhead
    posture); ``profile`` arms the per-run phase timers; ``log_stream``
    attaches a :class:`~repro.obs.log.JsonLogger` (trace-correlated)
    writing there.  ``id_source`` / ``capacity`` parameterise the tracer
    for deterministic tests and bounded memory.
    """

    def __init__(
        self,
        *,
        trace: bool = False,
        profile: bool = True,
        capacity: int = 4096,
        id_source: Callable[[], int] | None = None,
        log_stream: IO[str] | None = None,
    ) -> None:
        self.tracer = Tracer(enabled=trace, capacity=capacity, id_source=id_source)
        self.registry = MetricsRegistry()
        self.profiles = ProfileRegistry(enabled=profile)
        self.logger = (
            JsonLogger(log_stream, tracer=self.tracer)
            if log_stream is not None
            else NULL_LOGGER
        )

    def stats(self) -> dict:
        """The ``/metricz`` ``"obs"`` section: tracer state in one dict."""
        return {
            "tracing": self.tracer.stats(),
            "profiling": self.profiles.enabled,
            "logging": self.logger.enabled,
        }
