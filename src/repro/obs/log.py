"""Structured JSON logging that correlates with traces.

One :class:`JsonLogger` writes one JSON object per line — timestamp,
level, event name, bound fields, call-site fields — and, when built over
a :class:`~repro.obs.trace.Tracer`, stamps the current thread's active
``trace_id`` / ``span_id`` onto every line.  That is the whole point:
an engine round event, the serve request it triggered and the WAL append
underneath all carry the same trace id, so ``grep trace_id`` across a
log file reconstructs the request path without guessing at timestamps.

:meth:`bind` returns a child logger sharing the stream and lock with
extra fields pre-attached (``logger.bind(run_id=...)``), the structured-
logging idiom that keeps call sites terse.  A disabled logger
(:data:`NULL_LOGGER`) drops everything before formatting.
"""

from __future__ import annotations

import json
import threading
import time
from typing import IO, TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.obs.trace import Tracer

_LEVELS = ("debug", "info", "warning", "error")


class JsonLogger:
    """Thread-safe one-JSON-object-per-line logger with trace correlation."""

    def __init__(
        self,
        stream: IO[str] | None = None,
        *,
        tracer: "Tracer | None" = None,
        clock: Callable[[], float] = time.time,
        enabled: bool = True,
        _bound: dict | None = None,
        _lock: threading.Lock | None = None,
    ) -> None:
        self.stream = stream
        self.tracer = tracer
        self.enabled = enabled and stream is not None
        self._clock = clock
        self._bound = dict(_bound or {})
        self._lock = _lock if _lock is not None else threading.Lock()

    def bind(self, **fields) -> "JsonLogger":
        """A child logger with ``fields`` attached to every line."""
        return JsonLogger(
            self.stream,
            tracer=self.tracer,
            clock=self._clock,
            enabled=self.enabled,
            _bound={**self._bound, **fields},
            _lock=self._lock,
        )

    def log(self, event: str, *, level: str = "info", **fields) -> None:
        """Emit one line; no-op when disabled."""
        if not self.enabled:
            return
        if level not in _LEVELS:
            raise ValueError(f"level must be one of {_LEVELS}, got {level!r}")
        line: dict = {
            "ts": self._clock(),
            "level": level,
            "event": event,
            **self._bound,
            **fields,
        }
        if self.tracer is not None:
            ctx = self.tracer.current_context()
            if ctx is not None:
                line["trace_id"] = ctx.trace_id
                line["span_id"] = ctx.span_id
        rendered = json.dumps(line, default=str)
        with self._lock:
            self.stream.write(rendered + "\n")
            self.stream.flush()

    def debug(self, event: str, **fields) -> None:
        self.log(event, level="debug", **fields)

    def info(self, event: str, **fields) -> None:
        self.log(event, level="info", **fields)

    def warning(self, event: str, **fields) -> None:
        self.log(event, level="warning", **fields)

    def error(self, event: str, **fields) -> None:
        self.log(event, level="error", **fields)


# Shared disabled logger: drops every line before formatting, holds no
# stream, and mutates nothing — safe as a library-wide default.
NULL_LOGGER = JsonLogger(None, enabled=False)
