"""Declarative SLOs, windowed burn-rate evaluation, error budgets.

The registry (:mod:`repro.obs.registry`) answers "what happened"; this
module answers "is that *good enough*".  An :class:`SLO` declares a
target — availability, a latency threshold, or a shed-rate ceiling — and
an :class:`SloTracker` classifies every request the serving layer
handles into good/bad events per objective, bucketed into fixed-width
time bins so rolling-window ratios are O(window/bin) to read and O(1) to
record.

Classification follows the typed failure ladder of
:mod:`repro.serve.resilience`:

* a **shed** response (429, or 503 carrying ``Retry-After`` — the
  admission queue or a breaker deliberately refusing work) counts
  against the *shed* objective, **not** against availability: load
  shedding is the designed overload behaviour, and an SLO that punished
  it would teach the service to fall over instead;
* any other 5xx (a bare 500, a 504 deadline overrun, a 503 with no
  retry hint) is an availability failure;
* the latency objective judges only successful answers — a shed or
  errored request has no meaningful service latency.

Burn rates use the multi-window scheme from the SRE workbook: a window
pair fires only when *both* the short window (fast detection) and the
long window (sustained evidence) burn error budget faster than
``max_burn`` × the sustainable rate.  The clock is injectable, so the
unit tests drive hours of traffic through the math without sleeping.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field


@dataclass(frozen=True)
class BurnWindow:
    """One fast/slow window pair with its burn-rate alert threshold.

    ``max_burn`` is a multiple of the sustainable burn rate (1.0 means
    "spending budget exactly as fast as the objective allows").  The
    default pairs are the workbook's 2%-in-1h / 5%-in-6h page points.
    """

    short_s: float
    long_s: float
    max_burn: float

    def __post_init__(self) -> None:
        if not 0 < self.short_s < self.long_s:
            raise ValueError(
                f"need 0 < short_s < long_s, got {self.short_s}/{self.long_s}"
            )
        if self.max_burn <= 0:
            raise ValueError(f"max_burn must be positive, got {self.max_burn}")


DEFAULT_BURN_WINDOWS = (
    BurnWindow(short_s=300.0, long_s=3600.0, max_burn=14.4),
    BurnWindow(short_s=1800.0, long_s=21600.0, max_burn=6.0),
)

_SLO_KINDS = ("availability", "latency", "shed")


@dataclass(frozen=True)
class SLO:
    """One declarative objective over a rolling request stream.

    ``objective`` is the target good-fraction (0.999 == "three nines");
    its complement is the error budget.  ``kind`` picks the classifier:
    ``availability`` (non-shed 5xx is bad), ``latency`` (a successful
    answer slower than ``threshold_s`` is bad), ``shed`` (a shed
    response is bad — the budget for deliberate refusals).
    """

    name: str
    kind: str = "availability"
    objective: float = 0.999
    threshold_s: float | None = None
    windows: tuple[BurnWindow, ...] = DEFAULT_BURN_WINDOWS
    description: str = ""

    def __post_init__(self) -> None:
        if self.kind not in _SLO_KINDS:
            raise ValueError(
                f"kind must be one of {_SLO_KINDS}, got {self.kind!r}"
            )
        if not 0.0 < self.objective < 1.0:
            raise ValueError(
                f"objective must be in (0, 1), got {self.objective}"
            )
        if self.kind == "latency" and (
            self.threshold_s is None or self.threshold_s <= 0
        ):
            raise ValueError("a latency SLO needs a positive threshold_s")
        if not self.windows:
            raise ValueError("an SLO needs at least one burn window")

    @property
    def budget(self) -> float:
        """The error budget: the tolerated bad-fraction."""
        return 1.0 - self.objective

    def classify(
        self, *, status: int, latency_s: float, shed: bool
    ) -> bool | None:
        """``True`` good, ``False`` bad, ``None`` excluded from this SLO."""
        if self.kind == "availability":
            if shed:
                return None
            return status < 500
        if self.kind == "latency":
            if shed or status >= 400:
                return None
            return latency_s <= self.threshold_s
        return not shed  # kind == "shed"


def default_slos() -> tuple[SLO, ...]:
    """The serving stack's out-of-the-box objectives.

    Availability 99.9%, p99-style latency (99% of successful answers
    within 250 ms — warm cache hits are microseconds, cold estimator
    runs dominate the tail), and at most 1% of traffic shed.
    """
    return (
        SLO(
            "availability",
            kind="availability",
            objective=0.999,
            description="non-shed responses that are not 5xx",
        ),
        SLO(
            "latency",
            kind="latency",
            objective=0.99,
            threshold_s=0.25,
            description="successful answers within 250ms",
        ),
        SLO(
            "shed",
            kind="shed",
            objective=0.99,
            description="requests not deliberately refused (429/503+Retry-After)",
        ),
    )


def shed_from_response(status: int, *, retry_after: bool) -> bool:
    """Is this response a deliberate load-shed per the failure ladder?

    429 always is; 503 only when it carried ``Retry-After`` (a drain or
    breaker refusing politely) — a 503 without the header is a failure.
    """
    return status == 429 or (status == 503 and retry_after)


class SloTracker:
    """Classifies a request stream against a set of SLOs, windowed.

    Thread-safe and cheap on the hot path: one :meth:`observe` call is a
    lock, one classification per SLO, and one dict increment per SLO.
    Events land in fixed-width time bins (``bin_s``); bins older than
    the longest burn window are pruned as they age out, so memory is
    bounded by ``retention / bin_s`` regardless of traffic volume.

    ``clock`` is injectable (default ``time.monotonic``) so tests can
    march simulated hours through the burn-rate math deterministically.
    """

    def __init__(
        self,
        slos: tuple[SLO, ...] | list[SLO] | None = None,
        *,
        clock=time.monotonic,
        bin_s: float = 5.0,
    ) -> None:
        if bin_s <= 0:
            raise ValueError(f"bin_s must be positive, got {bin_s}")
        self.slos = tuple(slos) if slos is not None else default_slos()
        if len({slo.name for slo in self.slos}) != len(self.slos):
            raise ValueError("SLO names must be unique")
        self.clock = clock
        self.bin_s = float(bin_s)
        self._retention_s = max(
            window.long_s for slo in self.slos for window in slo.windows
        )
        self._lock = threading.Lock()
        # slo name -> bin index -> [good, bad]
        self._bins: dict[str, dict[int, list[int]]] = {
            slo.name: {} for slo in self.slos
        }
        self._total = 0
        self._shed = 0
        self._errors = 0

    # ------------------------------------------------------------ recording

    def observe(
        self, *, status: int, latency_s: float, shed: bool = False
    ) -> None:
        """Record one finished request against every SLO."""
        now = self.clock()
        bin_idx = int(now // self.bin_s)
        min_bin = bin_idx - int(self._retention_s // self.bin_s) - 1
        with self._lock:
            self._total += 1
            if shed:
                self._shed += 1
            elif status >= 500:
                self._errors += 1
            for slo in self.slos:
                verdict = slo.classify(
                    status=status, latency_s=latency_s, shed=shed
                )
                if verdict is None:
                    continue
                bins = self._bins[slo.name]
                cell = bins.get(bin_idx)
                if cell is None:
                    cell = bins[bin_idx] = [0, 0]
                    # Prune on the bin-creation edge only: at most once
                    # per bin_s, not per request.
                    for stale in [b for b in bins if b < min_bin]:
                        del bins[stale]
                cell[0 if verdict else 1] += 1

    def counts(self) -> dict:
        """Lifetime totals for the status surface."""
        with self._lock:
            return {
                "requests": self._total,
                "shed": self._shed,
                "errors": self._errors,
            }

    # ----------------------------------------------------------- evaluation

    def _window_ratio(
        self, bins: dict[int, list[int]], now: float, window_s: float
    ) -> tuple[int, int]:
        """(good, bad) counts inside ``(now - window_s, now]``."""
        first = int((now - window_s) // self.bin_s)
        last = int(now // self.bin_s)
        good = bad = 0
        for idx, (g, b) in bins.items():
            if first < idx <= last:
                good += g
                bad += b
        return good, bad

    def evaluate(self, now: float | None = None) -> "SloReport":
        """Judge every SLO's burn windows and error budget at ``now``."""
        if now is None:
            now = self.clock()
        with self._lock:
            frozen = {
                name: {idx: list(cell) for idx, cell in bins.items()}
                for name, bins in self._bins.items()
            }
            counts = {
                "requests": self._total,
                "shed": self._shed,
                "errors": self._errors,
            }
        results = []
        for slo in self.slos:
            bins = frozen[slo.name]
            windows = []
            burning = False
            for window in slo.windows:
                sg, sb = self._window_ratio(bins, now, window.short_s)
                lg, lb = self._window_ratio(bins, now, window.long_s)
                short_ratio = sb / (sg + sb) if sg + sb else 0.0
                long_ratio = lb / (lg + lb) if lg + lb else 0.0
                short_burn = short_ratio / slo.budget
                long_burn = long_ratio / slo.budget
                firing = (
                    sg + sb > 0
                    and short_burn > window.max_burn
                    and long_burn > window.max_burn
                )
                burning = burning or firing
                windows.append(
                    {
                        "short_s": window.short_s,
                        "long_s": window.long_s,
                        "max_burn": window.max_burn,
                        "short_burn": short_burn,
                        "long_burn": long_burn,
                        "firing": firing,
                    }
                )
            budget_window = max(w.long_s for w in slo.windows)
            bg, bb = self._window_ratio(bins, now, budget_window)
            consumed = (bb / (bg + bb) if bg + bb else 0.0) / slo.budget
            results.append(
                {
                    "name": slo.name,
                    "kind": slo.kind,
                    "objective": slo.objective,
                    "threshold_s": slo.threshold_s,
                    "description": slo.description,
                    "window_good": bg,
                    "window_bad": bb,
                    "budget_window_s": budget_window,
                    "budget_consumed": consumed,
                    "budget_remaining": 1.0 - consumed,
                    "budget_exhausted": consumed >= 1.0,
                    "burning": burning,
                    "windows": windows,
                }
            )
        return SloReport(generated_at=now, results=results, counts=counts)


@dataclass
class SloReport:
    """One :meth:`SloTracker.evaluate` verdict set, renderable two ways."""

    generated_at: float
    results: list[dict]
    counts: dict = field(default_factory=dict)

    @property
    def burning(self) -> bool:
        return any(result["burning"] for result in self.results)

    def result(self, name: str) -> dict:
        for entry in self.results:
            if entry["name"] == name:
                return entry
        raise KeyError(f"no SLO named {name!r} in this report")

    def to_dict(self) -> dict:
        """The JSON shape ``/statusz`` serves (and ``repro slo check`` reads)."""
        return {
            "burning": self.burning,
            "generated_at": self.generated_at,
            "counts": dict(self.counts),
            "slos": [dict(result) for result in self.results],
        }

    def table(self) -> str:
        """An aligned text table, one row per SLO, for the CLI."""
        header = ("slo", "kind", "objective", "budget left", "burn", "state")
        rows = [header]
        for result in self.results:
            fastest = max(
                (w["short_burn"] for w in result["windows"]), default=0.0
            )
            rows.append(
                (
                    result["name"],
                    result["kind"],
                    f"{result['objective']:.4g}",
                    f"{result['budget_remaining'] * 100:.1f}%",
                    f"{fastest:.2f}x",
                    "BURNING" if result["burning"] else "ok",
                )
            )
        widths = [max(len(row[i]) for row in rows) for i in range(len(header))]
        lines = [
            "  ".join(cell.ljust(width) for cell, width in zip(row, widths)).rstrip()
            for row in rows
        ]
        return "\n".join(lines)
