"""Plotting-free rendering of contribution reports and training curves.

Terminal-friendly output for the CLI and examples: horizontal bar charts
for contribution vectors, sparklines for convergence curves, and markdown
tables for dashboards — no matplotlib dependency anywhere in the library.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.contribution import ContributionReport

_SPARK_BLOCKS = "▁▂▃▄▅▆▇█"


def bar_chart(
    values: Sequence[float],
    labels: Sequence[str] | None = None,
    *,
    width: int = 40,
) -> str:
    """Horizontal bar chart with a zero axis; negative bars point left.

    Bars are scaled to the largest absolute value; each line reads
    ``label |bars| value``.
    """
    values = np.asarray(list(values), dtype=np.float64)
    if values.size == 0:
        raise ValueError("nothing to chart")
    if labels is None:
        labels = [str(i) for i in range(len(values))]
    if len(labels) != len(values):
        raise ValueError(f"{len(labels)} labels for {len(values)} values")
    scale = np.max(np.abs(values))
    if scale < 1e-300:
        scale = 1.0
    half = width // 2
    label_width = max(len(str(l)) for l in labels)
    lines = []
    for label, value in zip(labels, values):
        cells = int(round(abs(value) / scale * half))
        if value >= 0:
            bar = " " * half + "|" + "█" * cells + " " * (half - cells)
        else:
            bar = " " * (half - cells) + "░" * cells + "|" + " " * half
        lines.append(f"{str(label):>{label_width}} {bar} {value:+.4g}")
    return "\n".join(lines)


def sparkline(values: Sequence[float], *, width: int | None = None) -> str:
    """One-line unicode chart of a curve (min..max normalised)."""
    values = np.asarray(list(values), dtype=np.float64)
    if values.size == 0:
        raise ValueError("nothing to chart")
    if width is not None and width > 0 and len(values) > width:
        # Downsample by block means.
        edges = np.linspace(0, len(values), width + 1).astype(int)
        values = np.array(
            [values[a:b].mean() for a, b in zip(edges[:-1], edges[1:]) if b > a]
        )
    lo, hi = float(values.min()), float(values.max())
    span = hi - lo
    if span < 1e-300:
        return _SPARK_BLOCKS[0] * len(values)
    indices = ((values - lo) / span * (len(_SPARK_BLOCKS) - 1)).round().astype(int)
    return "".join(_SPARK_BLOCKS[i] for i in indices)


def contribution_bars(
    report: ContributionReport,
    *,
    qualities: Sequence[str] | None = None,
    width: int = 40,
) -> str:
    """Bar chart of a report's totals, labelled by participant (and quality)."""
    if qualities is not None and len(qualities) != report.n_participants:
        raise ValueError("qualities length mismatch")
    labels = []
    for row, pid in enumerate(report.participant_ids):
        label = f"p{pid}"
        if qualities is not None:
            label += f" ({qualities[row]})"
        labels.append(label)
    return bar_chart(report.totals, labels, width=width)


def report_markdown(
    report: ContributionReport,
    *,
    qualities: Sequence[str] | None = None,
) -> str:
    """Markdown table of a report: participant, contribution, share."""
    positive_total = float(np.maximum(report.totals, 0).sum())
    header = "| participant | contribution | share |"
    divider = "|---|---|---|"
    if qualities is not None:
        header = "| participant | quality | contribution | share |"
        divider = "|---|---|---|---|"
    lines = [f"**method:** `{report.method}`", "", header, divider]
    for row, pid in enumerate(report.participant_ids):
        share = (
            max(report.totals[row], 0.0) / positive_total
            if positive_total > 0
            else 0.0
        )
        cells = [str(pid)]
        if qualities is not None:
            cells.append(str(qualities[row]))
        cells.extend([f"{report.totals[row]:+.5f}", f"{share:.1%}"])
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)


def per_epoch_sparklines(report: ContributionReport) -> str:
    """One sparkline per participant over its per-epoch contributions."""
    if report.per_epoch is None:
        raise ValueError(f"method {report.method!r} has no per-epoch matrix")
    label_width = max(len(str(pid)) for pid in report.participant_ids)
    lines = []
    for row, pid in enumerate(report.participant_ids):
        curve = report.per_epoch[:, row]
        lines.append(
            f"p{str(pid):<{label_width}} {sparkline(curve)} "
            f"(Σ {report.totals[row]:+.4g})"
        )
    return "\n".join(lines)
