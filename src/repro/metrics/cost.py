"""Computation and communication cost accounting.

The paper quantifies computation cost as algorithm wall-clock seconds and
communication cost as megabytes exchanged between server and participants.
A :class:`CostLedger` is threaded through the simulators: every protocol
message records its payload size, and stopwatch windows accumulate compute
time, so benchmark tables can print both columns of Figs. 3–5.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

import numpy as np

from repro.utils.timer import Stopwatch

FLOAT64_BYTES = 8


def nbytes(payload) -> int:
    """Size in bytes of a message payload.

    Arrays count their buffer size; lists/tuples sum their elements;
    scalars count as one float64.  Ciphertext objects may provide
    ``payload.nbytes`` (Paillier ciphertexts do).
    """
    if payload is None:
        return 0
    if isinstance(payload, np.ndarray):
        return int(payload.nbytes)
    if isinstance(payload, (list, tuple)):
        return sum(nbytes(item) for item in payload)
    if isinstance(payload, dict):
        return sum(nbytes(v) for v in payload.values())
    if hasattr(payload, "nbytes"):
        return int(payload.nbytes)
    if isinstance(payload, (int, float, np.floating, np.integer, bool)):
        return FLOAT64_BYTES
    raise TypeError(f"cannot size payload of type {type(payload).__name__}")


@dataclass
class CostLedger:
    """Accumulates seconds of computation and bytes of communication.

    Communication is recorded per logical channel (e.g.
    ``"participant->server"``) so benches can report the per-direction
    breakdown as well as the total.
    """

    stopwatch: Stopwatch = field(default_factory=Stopwatch)
    comm_bytes: dict[str, int] = field(default_factory=lambda: defaultdict(int))

    def record_message(self, channel: str, payload) -> None:
        """Log a message of ``payload``'s size on ``channel``."""
        self.comm_bytes[channel] += nbytes(payload)

    def record_bytes(self, channel: str, size: int) -> None:
        """Log ``size`` raw bytes on ``channel``."""
        if size < 0:
            raise ValueError(f"size must be non-negative, got {size}")
        self.comm_bytes[channel] += int(size)

    @property
    def total_comm_bytes(self) -> int:
        return int(sum(self.comm_bytes.values()))

    @property
    def total_comm_mb(self) -> float:
        return self.total_comm_bytes / (1024.0 * 1024.0)

    @property
    def compute_seconds(self) -> float:
        return self.stopwatch.elapsed

    def computing(self):
        """Context manager: count the enclosed block as computation time."""
        return self.stopwatch.running()

    def merged_with(self, other: "CostLedger") -> "CostLedger":
        """A new ledger with both cost records summed."""
        merged = CostLedger()
        merged.stopwatch._elapsed = self.compute_seconds + other.compute_seconds
        for src in (self.comm_bytes, other.comm_bytes):
            for channel, size in src.items():
                merged.comm_bytes[channel] += size
        return merged

    def summary(self) -> dict[str, float]:
        return {
            "compute_seconds": self.compute_seconds,
            "comm_mb": self.total_comm_mb,
        }
