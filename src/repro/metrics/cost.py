"""Computation and communication cost accounting.

The paper quantifies computation cost as algorithm wall-clock seconds and
communication cost as megabytes exchanged between server and participants.
A :class:`CostLedger` is threaded through the simulators: every protocol
message records its payload size, and stopwatch windows accumulate compute
time, so benchmark tables can print both columns of Figs. 3–5.
"""

from __future__ import annotations

import bisect
import threading
from collections import defaultdict
from dataclasses import dataclass, field

import numpy as np

from repro.utils.timer import Stopwatch

FLOAT64_BYTES = 8


def nbytes(payload) -> int:
    """Size in bytes of a message payload.

    Arrays count their buffer size; lists/tuples sum their elements;
    strings/bytes count their encoded length (JSON API responses);
    scalars count as one float64.  Ciphertext objects may provide
    ``payload.nbytes`` (Paillier ciphertexts do).
    """
    if payload is None:
        return 0
    if isinstance(payload, np.ndarray):
        return int(payload.nbytes)
    if isinstance(payload, bytes):
        return len(payload)
    if isinstance(payload, str):
        return len(payload.encode())
    if isinstance(payload, (list, tuple)):
        return sum(nbytes(item) for item in payload)
    if isinstance(payload, dict):
        return sum(nbytes(v) for v in payload.values())
    if hasattr(payload, "nbytes"):
        return int(payload.nbytes)
    if isinstance(payload, (int, float, np.floating, np.integer, bool)):
        return FLOAT64_BYTES
    raise TypeError(f"cannot size payload of type {type(payload).__name__}")


# Default latency buckets: 1 µs … 10 s on a 1-2.5-5 log scale — wide enough
# for in-process cache hits and cold validation-gradient recomputation alike.
_LATENCY_BOUNDS = tuple(
    base * scale for base in (1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0) for scale in (1.0, 2.5, 5.0)
) + (10.0,)


class LatencyHistogram:
    """Thread-safe fixed-bucket latency histogram (seconds).

    The query service records one observation per request;
    ``/metricz`` serialises :meth:`summary`.  Percentiles are read off the
    bucket upper bounds — coarse, monotone, and allocation-free on the
    hot path, which is what a per-request counter needs.
    """

    def __init__(self, bounds: tuple[float, ...] = _LATENCY_BOUNDS) -> None:
        if list(bounds) != sorted(bounds) or len(bounds) != len(set(bounds)):
            raise ValueError("bucket bounds must be strictly increasing")
        self.bounds = tuple(float(b) for b in bounds)
        self._counts = [0] * (len(self.bounds) + 1)  # +1: overflow bucket
        self._count = 0
        self._total = 0.0
        self._max = 0.0
        # bucket index -> (trace_id, seconds): the slowest traced
        # observation that landed in each bucket (OpenMetrics exemplars).
        self._exemplars: dict[int, tuple[str, float]] = {}
        self._lock = threading.Lock()

    def record(self, seconds: float, *, trace_id: str | None = None) -> None:
        """Count one observation of ``seconds``.

        When the caller is inside a recorded trace it may pass the
        ``trace_id``; the bucket then retains an *exemplar* — the id of
        its slowest traced landing (ties go to the most recent) — so a
        p99 spike in ``/metricz`` links directly to a span tree.
        Untraced observations (the default, zero-overhead posture) leave
        exemplars untouched.
        """
        if seconds < 0:
            raise ValueError(f"latency must be non-negative, got {seconds}")
        bucket = bisect.bisect_left(self.bounds, seconds)
        with self._lock:
            self._counts[bucket] += 1
            self._count += 1
            self._total += seconds
            self._max = max(self._max, seconds)
            if trace_id is not None:
                current = self._exemplars.get(bucket)
                if current is None or seconds >= current[1]:
                    self._exemplars[bucket] = (str(trace_id), seconds)

    @property
    def count(self) -> int:
        return self._count

    @property
    def mean(self) -> float:
        with self._lock:
            return self._total / self._count if self._count else 0.0

    def snapshot(self) -> dict:
        """Every accumulator under *one* lock acquisition.

        The consistency primitive: ``summary()`` used to read count,
        mean, percentiles and ``_max`` under four separate acquisitions
        (``_max`` under none), so a summary taken during concurrent
        :meth:`record` calls could report a count from one instant and a
        mean from another — ``count * mean != total``.  Everything
        derived (summaries, percentiles, the metrics registry's
        Prometheus buckets) now reads from this snapshot, whose
        invariants (``sum(bucket_counts) == count``,
        ``mean * count == total``) hold exactly.
        """
        with self._lock:
            return {
                "bounds": self.bounds,
                "bucket_counts": tuple(self._counts),
                "count": self._count,
                "total": self._total,
                "max": self._max,
                "mean": self._total / self._count if self._count else 0.0,
                "exemplars": {
                    bucket: {"trace_id": trace_id, "value": value}
                    for bucket, (trace_id, value) in sorted(
                        self._exemplars.items()
                    )
                },
            }

    def merge(self, other: "LatencyHistogram") -> "LatencyHistogram":
        """Bucket-wise add ``other``'s observations into this histogram.

        Both histograms must share bucket bounds.  ``other`` is read
        through one :meth:`snapshot` (its own lock) and applied under
        this histogram's lock — never both locks at once, so concurrent
        ``a.merge(b)`` / ``b.merge(a)`` cannot deadlock.  This is how
        per-worker histograms aggregate into registry totals.  Returns
        ``self``.
        """
        return self.merge_snapshot(other.snapshot())

    def merge_snapshot(self, snap: dict) -> "LatencyHistogram":
        """Bucket-wise add a :meth:`snapshot` dict into this histogram.

        Accepts snapshots that crossed a process or wire boundary (JSON
        turns the bounds/counts tuples into lists), which is how a
        cluster router folds per-worker histograms scraped from worker
        ``/metricz?format=snapshot`` payloads into one series.  Bounds
        must match exactly — merged percentiles are only meaningful over
        identical buckets.  Returns ``self``.
        """
        bounds = tuple(float(b) for b in snap["bounds"])
        if bounds != self.bounds:
            raise ValueError(
                f"cannot merge histograms with different bounds "
                f"({len(bounds)} vs {len(self.bounds)} buckets)"
            )
        with self._lock:
            for bucket, n in enumerate(snap["bucket_counts"]):
                self._counts[bucket] += int(n)
            self._count += int(snap["count"])
            self._total += float(snap["total"])
            if snap["max"] > self._max:
                self._max = float(snap["max"])
            # Exemplar merge is keep-slowest and *order-independent*:
            # when two workers report the same bucket, the higher value
            # wins, and an exact tie breaks on the lexicographically
            # greater trace id — merging A into B and B into A agree, so
            # a router folding worker snapshots in any order renders the
            # same exemplar (and never sums or drops one).
            for raw_bucket, exemplar in (snap.get("exemplars") or {}).items():
                bucket = int(raw_bucket)  # JSON turns int keys into strings
                incoming = (str(exemplar["trace_id"]), float(exemplar["value"]))
                current = self._exemplars.get(bucket)
                if current is None or incoming[1] > current[1] or (
                    incoming[1] == current[1] and incoming[0] > current[0]
                ):
                    self._exemplars[bucket] = incoming
        return self

    def slowest_exemplar(self) -> dict | None:
        """The slowest traced observation across all buckets, or ``None``.

        The ``/statusz`` surface shows this per endpoint: the one trace
        id worth pulling up first when the tail looks wrong.
        """
        with self._lock:
            if not self._exemplars:
                return None
            trace_id, value = max(
                self._exemplars.values(), key=lambda item: (item[1], item[0])
            )
            return {"trace_id": trace_id, "value": value}

    def percentile(self, q: float) -> float:
        """Upper bound of the bucket holding the ``q``-quantile observation."""
        return self._percentile_of(self.snapshot(), q)

    def _percentile_of(self, snap: dict, q: float) -> float:
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if snap["count"] == 0:
            return 0.0
        rank = q * snap["count"]
        seen = 0
        for bucket, n in enumerate(snap["bucket_counts"]):
            seen += n
            if seen >= rank and n:
                if bucket < len(self.bounds):
                    return self.bounds[bucket]
                return snap["max"]
        return snap["max"]

    def summary(self) -> dict[str, float]:
        """Counters for ``/metricz``: count, mean/p50/p95/max milliseconds.

        Derived from one :meth:`snapshot`, so the five numbers are
        mutually consistent even under concurrent :meth:`record` calls.
        """
        snap = self.snapshot()
        return {
            "count": float(snap["count"]),
            "mean_ms": snap["mean"] * 1e3,
            "p50_ms": self._percentile_of(snap, 0.50) * 1e3,
            "p95_ms": self._percentile_of(snap, 0.95) * 1e3,
            "max_ms": snap["max"] * 1e3,
        }


class Gauge:
    """A thread-safe current-value counter that remembers its peak.

    The serving layer's admission control reports queue depth and
    in-flight request counts through these; unlike the histogram they
    answer "how loaded is the service *now*" (and "how loaded did it
    get"), which is what load-shedding decisions and ``/metricz``
    saturation panels need.
    """

    def __init__(self, value: int = 0) -> None:
        self._value = int(value)
        self._peak = int(value)
        self._lock = threading.Lock()

    def inc(self, n: int = 1) -> int:
        """Add ``n`` (may be negative); returns the new value."""
        with self._lock:
            self._value += n
            if self._value > self._peak:
                self._peak = self._value
            return self._value

    def dec(self, n: int = 1) -> int:
        return self.inc(-n)

    def set(self, value: int) -> None:
        with self._lock:
            self._value = int(value)
            if self._value > self._peak:
                self._peak = self._value

    @property
    def value(self) -> int:
        # Lock-free read: int rebinding is atomic under the GIL, and a
        # gauge read is a point-in-time snapshot by definition.  The
        # admission queue reads this on every request, so the lock here
        # was measurable on the warm serving path.
        return self._value

    @property
    def peak(self) -> int:
        return self._peak


@dataclass
class CostLedger:
    """Accumulates seconds of computation and bytes of communication.

    Communication is recorded per logical channel (e.g.
    ``"participant->server"``) so benches can report the per-direction
    breakdown as well as the total.
    """

    stopwatch: Stopwatch = field(default_factory=Stopwatch)
    comm_bytes: dict[str, int] = field(default_factory=lambda: defaultdict(int))

    def record_message(self, channel: str, payload) -> None:
        """Log a message of ``payload``'s size on ``channel``."""
        self.comm_bytes[channel] += nbytes(payload)

    def record_bytes(self, channel: str, size: int) -> None:
        """Log ``size`` raw bytes on ``channel``."""
        if size < 0:
            raise ValueError(f"size must be non-negative, got {size}")
        self.comm_bytes[channel] += int(size)

    @property
    def total_comm_bytes(self) -> int:
        return int(sum(self.comm_bytes.values()))

    @property
    def total_comm_mb(self) -> float:
        return self.total_comm_bytes / (1024.0 * 1024.0)

    @property
    def compute_seconds(self) -> float:
        return self.stopwatch.elapsed

    def computing(self):
        """Context manager: count the enclosed block as computation time."""
        return self.stopwatch.running()

    def merged_with(self, other: "CostLedger") -> "CostLedger":
        """A new ledger with both cost records summed."""
        merged = CostLedger()
        merged.stopwatch._elapsed = self.compute_seconds + other.compute_seconds
        for src in (self.comm_bytes, other.comm_bytes):
            for channel, size in src.items():
                merged.comm_bytes[channel] += size
        return merged

    def summary(self) -> dict[str, float]:
        return {
            "compute_seconds": self.compute_seconds,
            "comm_mb": self.total_comm_mb,
        }
