"""Accuracy (correlation) and cost metrics for contribution estimators."""

from repro.metrics.correlation import (
    pearson_correlation,
    relative_error,
    spearman_correlation,
    top_k_overlap,
)
from repro.metrics.cost import FLOAT64_BYTES, CostLedger, Gauge, LatencyHistogram, nbytes

__all__ = [
    "CostLedger",
    "FLOAT64_BYTES",
    "Gauge",
    "LatencyHistogram",
    "nbytes",
    "pearson_correlation",
    "relative_error",
    "spearman_correlation",
    "top_k_overlap",
]
