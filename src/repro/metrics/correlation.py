"""Agreement metrics between estimated and actual Shapley values.

The paper's headline accuracy metric is Pearson's correlation coefficient
(PCC) between DIG-FL's estimates and the exact Shapley values; we add
Spearman rank correlation and top-k overlap because downstream uses
(participant selection, reward ranking) care about order, not scale.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_matching_lengths


def pearson_correlation(a: np.ndarray, b: np.ndarray) -> float:
    """Pearson's r between two vectors.

    Degenerate inputs (length < 2 or zero variance) return ``nan`` — the
    caller decides how to report them, matching scipy's behaviour without
    the warning noise.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    check_matching_lengths("a", a, "b", b)
    if len(a) < 2:
        return float("nan")
    a = a - a.mean()
    b = b - b.mean()
    denom = np.linalg.norm(a) * np.linalg.norm(b)
    if denom < 1e-300:
        return float("nan")
    return float(np.clip(np.dot(a, b) / denom, -1.0, 1.0))


def spearman_correlation(a: np.ndarray, b: np.ndarray) -> float:
    """Spearman's rho: Pearson correlation of the rank transforms."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    check_matching_lengths("a", a, "b", b)
    return pearson_correlation(_ranks(a), _ranks(b))


def _ranks(x: np.ndarray) -> np.ndarray:
    """Average ranks (ties share the mean rank), like scipy.stats.rankdata."""
    order = np.argsort(x, kind="stable")
    ranks = np.empty(len(x), dtype=np.float64)
    ranks[order] = np.arange(1, len(x) + 1, dtype=np.float64)
    # Average ranks within tied groups.
    sorted_x = x[order]
    i = 0
    while i < len(x):
        j = i
        while j + 1 < len(x) and sorted_x[j + 1] == sorted_x[i]:
            j += 1
        if j > i:
            ranks[order[i : j + 1]] = ranks[order[i : j + 1]].mean()
        i = j + 1
    return ranks


def top_k_overlap(a: np.ndarray, b: np.ndarray, k: int) -> float:
    """Fraction of the top-k of ``a`` that also appears in the top-k of ``b``.

    Measures whether an estimator would select the same high-contribution
    participants as the exact Shapley value.
    """
    a = np.asarray(a)
    b = np.asarray(b)
    check_matching_lengths("a", a, "b", b)
    if not 1 <= k <= len(a):
        raise ValueError(f"k must be in [1, {len(a)}], got {k}")
    top_a = set(np.argsort(a)[-k:].tolist())
    top_b = set(np.argsort(b)[-k:].tolist())
    return len(top_a & top_b) / k


def relative_error(actual: float, estimate: float) -> float:
    """``|actual - estimate| / |actual|`` — Table II's error metric."""
    if actual == 0:
        return float("inf") if estimate != 0 else 0.0
    return abs(actual - estimate) / abs(actual)
