"""Exact Shapley values by full enumeration (Eq. 1).

This is the ground truth the paper compares every estimator against: it
retrains the model for all ``2^n`` coalitions — hence the ``8.9×10^5``
seconds on MNIST the paper reports, versus DIG-FL's ``1.1×10^3``.
"""

from __future__ import annotations

from itertools import combinations
from math import comb

import numpy as np

from repro.core.contribution import ContributionReport
from repro.shapley.utility import CoalitionUtility


def exact_shapley_values(utility: CoalitionUtility) -> np.ndarray:
    """Eq. 1 by direct enumeration of all coalitions.

    Equivalent formulation used here: for each player ``i`` and each subset
    ``S ⊆ N∖{i}``, the marginal ``V(S∪{i}) − V(S)`` is weighted by
    ``|S|!(n−|S|−1)!/n!``.  Utility memoisation means each of the ``2^n``
    coalitions is trained exactly once.
    """
    n = utility.n_players
    values = np.zeros(n)
    players = list(range(n))
    for i in players:
        others = [j for j in players if j != i]
        for size in range(n):
            weight = 1.0 / (n * comb(n - 1, size))
            for subset in combinations(others, size):
                s = frozenset(subset)
                values[i] += weight * (utility(s | {i}) - utility(s))
    return values


def exact_shapley(utility: CoalitionUtility, method: str = "exact") -> ContributionReport:
    """Exact Shapley values wrapped in a :class:`ContributionReport`."""
    values = exact_shapley_values(utility)
    return ContributionReport(
        method=method,
        participant_ids=list(range(utility.n_players)),
        totals=values,
        ledger=utility.ledger,
        extra={"coalition_evaluations": utility.evaluations},
    )
