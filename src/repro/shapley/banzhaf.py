"""Banzhaf values — the other canonical power index, exact and sampled.

The Banzhaf value replaces the Shapley value's size-dependent weighting
with a uniform average over all coalitions not containing the player:

    β_i = (1 / 2^{n-1}) Σ_{S ⊆ N∖{i}} [ V(S∪{i}) − V(S) ]

It drops the efficiency axiom (Σβ ≠ V(N) in general) but is more robust to
noisy utilities — the argument behind "Data Banzhaf" (Wang & Jia, 2023) —
which makes it a natural companion metric for FL contribution scoring.
DIG-FL's additive utility-change model makes the two coincide up to the
common factor: under Lemma 3 every marginal is the same, so Shapley and
Banzhaf agree exactly — a structural sanity check the tests exercise.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from repro.core.contribution import ContributionReport
from repro.shapley.utility import CoalitionUtility
from repro.utils.rng import make_rng
from repro.utils.validation import check_positive_int


def exact_banzhaf_values(utility: CoalitionUtility) -> np.ndarray:
    """β by direct enumeration (2^n coalition evaluations, memoised)."""
    n = utility.n_players
    values = np.zeros(n)
    for i in range(n):
        others = [j for j in range(n) if j != i]
        total = 0.0
        count = 0
        for size in range(n):
            for subset in combinations(others, size):
                s = frozenset(subset)
                total += utility(s | {i}) - utility(s)
                count += 1
        values[i] = total / count
    return values


def mc_banzhaf_values(
    utility: CoalitionUtility,
    *,
    n_samples: int = 100,
    seed=None,
) -> np.ndarray:
    """Monte-Carlo β: coalitions drawn by independent fair coin flips.

    Each sample costs two utility evaluations per player; unlike
    permutation sampling there is no coupling across players, which is the
    source of Banzhaf's noise robustness.
    """
    check_positive_int(n_samples, "n_samples")
    rng = make_rng(seed)
    n = utility.n_players
    totals = np.zeros(n)
    for _ in range(n_samples):
        membership = rng.random(n) < 0.5
        for i in range(n):
            coalition = frozenset(
                j for j in range(n) if j != i and membership[j]
            )
            totals[i] += utility(coalition | {i}) - utility(coalition)
    return totals / n_samples


def exact_banzhaf(utility: CoalitionUtility) -> ContributionReport:
    """Exact Banzhaf values wrapped in a report."""
    values = exact_banzhaf_values(utility)
    return ContributionReport(
        method="banzhaf",
        participant_ids=list(range(utility.n_players)),
        totals=values,
        ledger=utility.ledger,
        extra={"coalition_evaluations": utility.evaluations},
    )


def mc_banzhaf(
    utility: CoalitionUtility, *, n_samples: int = 100, seed=None
) -> ContributionReport:
    """Monte-Carlo Banzhaf values wrapped in a report."""
    values = mc_banzhaf_values(utility, n_samples=n_samples, seed=seed)
    return ContributionReport(
        method="banzhaf-mc",
        participant_ids=list(range(utility.n_players)),
        totals=values,
        ledger=utility.ledger,
        extra={"coalition_evaluations": utility.evaluations},
    )
