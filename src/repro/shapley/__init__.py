"""Shapley-value ground truth and the baselines the paper compares against."""

from repro.shapley.banzhaf import (
    exact_banzhaf,
    exact_banzhaf_values,
    mc_banzhaf,
    mc_banzhaf_values,
)
from repro.shapley.exact import exact_shapley, exact_shapley_values
from repro.shapley.group_testing import gt_shapley, gt_shapley_values
from repro.shapley.kernel import kernel_shapley, kernel_shapley_values
from repro.shapley.montecarlo import tmc_shapley, tmc_shapley_values
from repro.shapley.one_round import or_shapley
from repro.shapley.projection import im_scores
from repro.shapley.reconstruction import mr_shapley, per_round_exact_shapley
from repro.shapley.stratified import stratified_shapley, stratified_shapley_values
from repro.shapley.utility import (
    CallableUtility,
    CoalitionUtility,
    HFLRetrainUtility,
    VFLRetrainUtility,
)

__all__ = [
    "CallableUtility",
    "CoalitionUtility",
    "HFLRetrainUtility",
    "VFLRetrainUtility",
    "exact_banzhaf",
    "exact_banzhaf_values",
    "exact_shapley",
    "exact_shapley_values",
    "gt_shapley",
    "gt_shapley_values",
    "im_scores",
    "kernel_shapley",
    "kernel_shapley_values",
    "mc_banzhaf",
    "mc_banzhaf_values",
    "mr_shapley",
    "or_shapley",
    "per_round_exact_shapley",
    "stratified_shapley",
    "stratified_shapley_values",
    "tmc_shapley",
    "tmc_shapley_values",
]
