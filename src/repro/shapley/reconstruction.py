"""Multi-Rounds reconstruction Shapley — MR (Song et al., IEEE Big Data 2019).

MR avoids retraining by *reconstructing*, in every round ``t``, the model a
coalition ``S`` would have produced from the stored updates:

    θ_t(S) = θ_{t-1} − (1/|S|) Σ_{i∈S} δ_{t,i}

The round utility is the validation improvement
``u_t(S) = loss^v(θ_{t-1}) − loss^v(θ_t(S))`` and the round Shapley values
follow Eq. 1 exactly; totals are summed over rounds.  No retraining — but
``2^n`` validation evaluations *per round*, the exponential cost the paper
criticises (Sec. VI-B).

The same computation yields the "actual per-epoch Shapley value" of
Fig. 6, where a participant leaving an epoch means ignoring its uploaded
gradient in that round's aggregation.
"""

from __future__ import annotations

from itertools import combinations
from math import comb
from typing import Callable

import numpy as np

from repro.core.contribution import ContributionReport, from_per_epoch
from repro.data.dataset import Dataset
from repro.hfl.log import TrainingLog
from repro.metrics.cost import CostLedger
from repro.nn.models import Classifier


def per_round_exact_shapley(
    log: TrainingLog,
    validation: Dataset,
    model_factory: Callable[[], Classifier],
    *,
    ledger: CostLedger | None = None,
) -> np.ndarray:
    """Exact per-round Shapley matrix (τ, n) from reconstructed aggregates."""
    if log.n_epochs == 0:
        raise ValueError("training log is empty")
    ledger = ledger or CostLedger()
    model = model_factory()
    n = log.n_participants
    players = list(range(n))
    per_epoch = np.zeros((log.n_epochs, n))

    with ledger.computing():
        for t, record in enumerate(log.records):

            def round_utility(coalition: frozenset[int]) -> float:
                if not coalition:
                    return 0.0
                members = sorted(coalition)
                update = record.local_updates[members].mean(axis=0)
                model.set_flat(record.theta_before - update)
                after = model.loss(validation.X, validation.y).item()
                return base_loss - after

            model.set_flat(record.theta_before)
            base_loss = model.loss(validation.X, validation.y).item()

            cache: dict[frozenset[int], float] = {}

            def cached(coalition: frozenset[int]) -> float:
                if coalition not in cache:
                    cache[coalition] = round_utility(coalition)
                return cache[coalition]

            for i in players:
                others = [j for j in players if j != i]
                for size in range(n):
                    weight = 1.0 / (n * comb(n - 1, size))
                    for subset in combinations(others, size):
                        s = frozenset(subset)
                        per_epoch[t, i] += weight * (cached(s | {i}) - cached(s))
    return per_epoch


def mr_shapley(
    log: TrainingLog,
    validation: Dataset,
    model_factory: Callable[[], Classifier],
) -> ContributionReport:
    """MR estimate: per-round exact Shapley values summed over rounds."""
    ledger = CostLedger()
    per_epoch = per_round_exact_shapley(log, validation, model_factory, ledger=ledger)
    report = from_per_epoch("mr", log.participant_ids, per_epoch, ledger=ledger)
    report.extra["validation_evaluations"] = log.n_epochs * (2**log.n_participants)
    return report
