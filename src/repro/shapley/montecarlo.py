"""Truncated Monte-Carlo Shapley (Ghorbani & Zou 2019), adapted to FL.

Permutation sampling: for a random ordering ``π`` of participants, the
marginal of the participant at position ``k`` is
``V(π[:k+1]) − V(π[:k])``; averaging over permutations converges to the
Shapley value.  *Truncation* stops scanning a permutation once the running
coalition's utility is within ``tolerance`` of the grand coalition's —
later marginals are negligible and each skipped prefix saves a full
retraining.

The paper's comparison (Sec. V-D) budgets TMC at ``n² log n`` retrainings,
i.e. about ``n·log n`` permutations of ``n`` marginals each; that budget is
the default here.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.contribution import ContributionReport
from repro.shapley.utility import CoalitionUtility
from repro.utils.rng import make_rng


def tmc_shapley_values(
    utility: CoalitionUtility,
    *,
    n_permutations: int | None = None,
    tolerance: float = 0.01,
    seed=None,
) -> np.ndarray:
    """Estimate Shapley values by truncated permutation sampling.

    ``tolerance`` is relative to ``|V(N)|``: a prefix whose utility is
    within ``tolerance·|V(N)|`` of the full utility truncates the rest of
    the permutation (their marginals are attributed as zero this round).
    """
    n = utility.n_players
    if n_permutations is None:
        # ~ n² log n retrainings / n marginals per permutation.
        n_permutations = max(1, int(math.ceil(n * math.log(max(n, 2)))))
    if n_permutations < 1:
        raise ValueError(f"n_permutations must be >= 1, got {n_permutations}")
    rng = make_rng(seed)
    full_value = utility(utility.grand_coalition)
    threshold = tolerance * abs(full_value)

    totals = np.zeros(n)
    for _ in range(n_permutations):
        order = rng.permutation(n)
        prev_value = utility(frozenset())
        coalition: set[int] = set()
        for position, player in enumerate(order):
            if abs(full_value - prev_value) <= threshold:
                # Truncate: remaining players get zero marginal this round.
                break
            coalition.add(int(player))
            value = utility(frozenset(coalition))
            totals[player] += value - prev_value
            prev_value = value
            del position
    return totals / n_permutations


def tmc_shapley(
    utility: CoalitionUtility,
    *,
    n_permutations: int | None = None,
    tolerance: float = 0.01,
    seed=None,
) -> ContributionReport:
    """TMC-Shapley wrapped in a :class:`ContributionReport`."""
    values = tmc_shapley_values(
        utility, n_permutations=n_permutations, tolerance=tolerance, seed=seed
    )
    return ContributionReport(
        method="tmc-shapley",
        participant_ids=list(range(utility.n_players)),
        totals=values,
        ledger=utility.ledger,
        extra={"coalition_evaluations": utility.evaluations},
    )
