"""Coalition utility functions backed by real model retraining.

The utility of a coalition ``S`` is the paper's Eq. 2:

    V(S) = loss^v(θ_0) − loss^v(θ_τ(S))

where ``θ_τ(S)`` is the final model trained *by S alone* from the same
initialisation.  Every retraining-based baseline (exact Shapley, TMC, GT)
evaluates coalitions through the classes here, which memoise results —
the exact Shapley value touches every subset twice, so caching halves the
work honestly without hiding the exponential blow-up.

Evaluation counts and wall-clock are recorded so the cost columns of
Figs. 3–5 come out of the same run as the accuracy columns.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.data.dataset import Dataset
from repro.hfl.trainer import HFLTrainer
from repro.metrics.cost import FLOAT64_BYTES, CostLedger
from repro.nn.models import Classifier
from repro.vfl.trainer import VFLTrainer


class CoalitionUtility:
    """Base class: memoised ``V : 2^N → R`` with cost accounting."""

    def __init__(self, n_players: int) -> None:
        self.n_players = n_players
        self._cache: dict[frozenset[int], float] = {}
        self.evaluations = 0  # number of *uncached* coalition evaluations
        self.ledger = CostLedger()

    def __call__(self, coalition) -> float:
        key = frozenset(coalition)
        bad = [i for i in key if not 0 <= i < self.n_players]
        if bad:
            raise ValueError(f"unknown players {bad}")
        if key not in self._cache:
            self.evaluations += 1
            if key:
                with self.ledger.computing():
                    self._cache[key] = self._evaluate(key)
            else:
                self._cache[key] = 0.0  # V(∅) = 0 by Eq. 2
        return self._cache[key]

    def _evaluate(self, coalition: frozenset[int]) -> float:  # pragma: no cover
        raise NotImplementedError

    @property
    def grand_coalition(self) -> frozenset[int]:
        return frozenset(range(self.n_players))


class HFLRetrainUtility(CoalitionUtility):
    """Retrains FedSGD with the coalition's participants (Eq. 2 for HFL).

    All coalitions start from the same ``init_theta`` so utilities are
    comparable; communication for each retraining is charged to the ledger
    by the trainer itself.
    """

    def __init__(
        self,
        trainer: HFLTrainer,
        locals_: Sequence[Dataset],
        validation: Dataset,
        *,
        init_theta: np.ndarray | None = None,
    ) -> None:
        super().__init__(len(locals_))
        self.trainer = trainer
        self.locals_ = list(locals_)
        self.validation = validation
        self._probe = trainer.model_factory()
        if init_theta is None:
            init_theta = self._probe.get_flat()
        self.init_theta = np.asarray(init_theta, dtype=np.float64)
        self._probe.set_flat(self.init_theta)
        self.base_loss = self._probe.loss(validation.X, validation.y).item()

    def _evaluate(self, coalition: frozenset[int]) -> float:
        result = self.trainer.train(
            self.locals_,
            self.validation,
            participants=sorted(coalition),
            init_theta=self.init_theta,
            ledger=self.ledger,
        )
        final_loss = result.model.loss(self.validation.X, self.validation.y).item()
        return self.base_loss - final_loss


class VFLRetrainUtility(CoalitionUtility):
    """Retrains the vertical model with the coalition's parties.

    Removal semantics follow Sec. II-C2: θ_0 = 0 and excluded parties'
    blocks never update, so the coalition's training is exactly the model
    those parties would train alone.
    """

    def __init__(
        self,
        trainer: VFLTrainer,
        train: Dataset,
        validation: Dataset,
    ) -> None:
        super().__init__(trainer.n_parties)
        self.trainer = trainer
        self.train = train
        self.validation = validation
        zero = np.zeros(trainer.model.n_coefficients(train.X))
        self.base_loss = trainer.model.loss(zero, validation.X, validation.y)

    def _evaluate(self, coalition: frozenset[int]) -> float:
        result = self.trainer.train(
            self.train,
            self.validation,
            parties=sorted(coalition),
            ledger=self.ledger,
        )
        final_loss = self.trainer.model.loss(
            result.theta, self.validation.X, self.validation.y
        )
        return self.base_loss - final_loss


class CallableUtility(CoalitionUtility):
    """Wrap an arbitrary ``f(frozenset) -> float`` (used by tests/games)."""

    def __init__(self, n_players: int, fn: Callable[[frozenset[int]], float]) -> None:
        super().__init__(n_players)
        self._fn = fn

    def _evaluate(self, coalition: frozenset[int]) -> float:
        return self._fn(coalition)


def model_bytes(model: Classifier) -> int:
    """Wire size of one flat model/update vector."""
    return model.num_parameters() * FLOAT64_BYTES
