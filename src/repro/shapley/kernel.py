"""KernelSHAP-style weighted-least-squares Shapley estimation.

The Shapley value is the solution of a weighted linear regression (Lundberg
& Lee 2017; Charnes et al. 1988): fit an additive surrogate
``V(S) ≈ v_0 + Σ_{i∈S} φ_i`` over coalitions drawn with the Shapley kernel
weight

    π(s) = (n − 1) / ( C(n, s) · s · (n − s) ),   0 < s < n,

under the constraints ``v_0 = V(∅)`` and ``v_0 + Σφ = V(N)``.  Solved here
in closed form via the constrained normal equations.

Included as a third member of the sampling-baseline family: like TMC/GT it
needs real coalition evaluations (retraining in FL), unlike DIG-FL.
"""

from __future__ import annotations

from math import comb

import numpy as np

from repro.core.contribution import ContributionReport
from repro.shapley.utility import CoalitionUtility
from repro.utils.rng import make_rng
from repro.utils.validation import check_positive_int


def _kernel_size_distribution(n: int) -> np.ndarray:
    """Probability of each coalition size 1..n-1 under the Shapley kernel.

    π(s)·C(n,s) ∝ (n−1)/(s(n−s)) — the C(n,s) cancels because we sample a
    size first and a uniform subset of that size second.
    """
    sizes = np.arange(1, n)
    raw = (n - 1) / (sizes * (n - sizes))
    return raw / raw.sum()


def kernel_shapley_values(
    utility: CoalitionUtility,
    *,
    n_samples: int | None = None,
    ridge: float = 1e-10,
    seed=None,
) -> np.ndarray:
    """Weighted-least-squares Shapley estimates from sampled coalitions."""
    n = utility.n_players
    if n == 1:
        return np.array([utility(frozenset({0})) - utility(frozenset())])
    if n_samples is None:
        n_samples = max(2 * n, 10 * n)
    check_positive_int(n_samples, "n_samples")
    rng = make_rng(seed)

    size_probs = _kernel_size_distribution(n)
    masks = np.zeros((n_samples, n))
    values = np.zeros(n_samples)
    for t in range(n_samples):
        size = int(rng.choice(np.arange(1, n), p=size_probs))
        members = rng.choice(n, size=size, replace=False)
        masks[t, members] = 1.0
        values[t] = utility(frozenset(int(m) for m in members))

    v_empty = utility(frozenset())
    v_full = utility(utility.grand_coalition)

    # Solve min ||Z φ − (y − v_0)||²  s.t. 1ᵀφ = V(N) − V(∅)
    # via elimination of the constraint: φ_n = c − Σ φ_{1..n-1}.
    target = values - v_empty
    constraint = v_full - v_empty
    z_reduced = masks[:, :-1] - masks[:, [-1]]
    y_reduced = target - masks[:, -1] * constraint
    gram = z_reduced.T @ z_reduced + ridge * np.eye(n - 1)
    phi_head = np.linalg.solve(gram, z_reduced.T @ y_reduced)
    phi = np.empty(n)
    phi[:-1] = phi_head
    phi[-1] = constraint - phi_head.sum()
    return phi


def kernel_shapley(
    utility: CoalitionUtility,
    *,
    n_samples: int | None = None,
    seed=None,
) -> ContributionReport:
    """KernelSHAP estimator wrapped in a :class:`ContributionReport`."""
    values = kernel_shapley_values(utility, n_samples=n_samples, seed=seed)
    return ContributionReport(
        method="kernel-shap",
        participant_ids=list(range(utility.n_players)),
        totals=values,
        ledger=utility.ledger,
        extra={"coalition_evaluations": utility.evaluations},
    )


def exact_kernel_weights(n: int) -> dict[int, float]:
    """The exact Shapley kernel π(s) for each size (diagnostic helper)."""
    return {
        s: (n - 1) / (comb(n, s) * s * (n - s))
        for s in range(1, n)
    }
