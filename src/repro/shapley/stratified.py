"""Stratified-sampling Shapley estimation (part of Jia et al.'s repertoire).

The Shapley value is an average of per-size strata:

    φ_i = (1/n) Σ_{k=0}^{n-1}  E_{|S|=k, S ⊆ N∖{i}} [ V(S∪{i}) − V(S) ]

Sampling each stratum separately removes the size-imbalance variance of
plain permutation sampling.  Two allocation policies:

* ``uniform`` — the same number of samples per stratum,
* ``neyman`` — a pilot round estimates per-stratum variance, then the
  remaining budget is allocated proportionally to the sample standard
  deviation (Neyman allocation).

Returns per-player standard errors alongside the estimates, which the
paper's qualitative "still requires exponentially many evaluations"
critique makes tangible: tight errors need budgets far beyond DIG-FL's
zero-retraining cost.
"""

from __future__ import annotations

import numpy as np

from repro.core.contribution import ContributionReport
from repro.shapley.utility import CoalitionUtility
from repro.utils.rng import make_rng
from repro.utils.validation import check_positive_int


def _sample_marginal(
    utility: CoalitionUtility, player: int, size: int, rng: np.random.Generator
) -> float:
    """One marginal of ``player`` joining a random size-``size`` coalition."""
    others = [j for j in range(utility.n_players) if j != player]
    members = rng.choice(len(others), size=size, replace=False) if size else []
    coalition = frozenset(others[m] for m in members)
    return utility(coalition | {player}) - utility(coalition)


def stratified_shapley_values(
    utility: CoalitionUtility,
    *,
    samples_per_stratum: int = 10,
    allocation: str = "uniform",
    pilot_samples: int = 3,
    seed=None,
) -> tuple[np.ndarray, np.ndarray]:
    """Stratified estimates and their standard errors, shape (n,) each.

    ``samples_per_stratum`` is the *average* per-stratum budget; Neyman
    allocation redistributes the same total budget by pilot variance.
    """
    check_positive_int(samples_per_stratum, "samples_per_stratum")
    if allocation not in ("uniform", "neyman"):
        raise ValueError(
            f"allocation must be 'uniform' or 'neyman', got {allocation!r}"
        )
    rng = make_rng(seed)
    n = utility.n_players
    estimates = np.zeros(n)
    std_errors = np.zeros(n)

    for player in range(n):
        strata_samples: list[list[float]] = [[] for _ in range(n)]
        if allocation == "neyman":
            for k in range(n):
                for _ in range(min(pilot_samples, samples_per_stratum)):
                    strata_samples[k].append(
                        _sample_marginal(utility, player, k, rng)
                    )
            sds = np.array(
                [np.std(s) if len(s) > 1 else 1.0 for s in strata_samples]
            )
            total_budget = samples_per_stratum * n
            remaining = max(0, total_budget - sum(len(s) for s in strata_samples))
            weights = sds / sds.sum() if sds.sum() > 0 else np.full(n, 1.0 / n)
            extra = np.floor(weights * remaining).astype(int)
        else:
            extra = np.full(n, samples_per_stratum, dtype=int)

        for k in range(n):
            for _ in range(int(extra[k])):
                strata_samples[k].append(_sample_marginal(utility, player, k, rng))

        stratum_means = np.array([np.mean(s) for s in strata_samples])
        stratum_vars = np.array(
            [np.var(s, ddof=1) / len(s) if len(s) > 1 else 0.0 for s in strata_samples]
        )
        estimates[player] = stratum_means.mean()
        # Var of a mean of stratum means.
        std_errors[player] = float(np.sqrt(stratum_vars.sum()) / n)
    return estimates, std_errors


def stratified_shapley(
    utility: CoalitionUtility,
    *,
    samples_per_stratum: int = 10,
    allocation: str = "uniform",
    seed=None,
) -> ContributionReport:
    """Stratified estimator wrapped in a report (std errors in ``extra``)."""
    values, std_errors = stratified_shapley_values(
        utility,
        samples_per_stratum=samples_per_stratum,
        allocation=allocation,
        seed=seed,
    )
    return ContributionReport(
        method=f"stratified-{allocation}",
        participant_ids=list(range(utility.n_players)),
        totals=values,
        ledger=utility.ledger,
        extra={
            "std_errors": std_errors.tolist(),
            "coalition_evaluations": utility.evaluations,
        },
    )
