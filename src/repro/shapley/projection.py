"""IM — influence measurement by gradient projection (Zhang et al., WWW 2021).

Scores each HFL participant by projecting its local updates onto the
direction the global model actually moved over the whole run:

    φ_i = Σ_t ⟨δ_{t,i}, ĝ⟩,   ĝ = (θ_0 − θ_τ) / ‖θ_0 − θ_τ‖

Requires only the training log — but, as the paper's Table IV shows, it is
not a Shapley approximation (no efficiency/symmetry/null-player properties)
and correlates poorly with the exact values; it is included as the weakest
baseline of Fig. 4.
"""

from __future__ import annotations

import numpy as np

from repro.core.contribution import ContributionReport, from_per_epoch
from repro.hfl.log import TrainingLog
from repro.metrics.cost import CostLedger


def im_scores(log: TrainingLog, *, ledger: CostLedger | None = None) -> ContributionReport:
    """Projection-based contribution scores from the training log."""
    if log.n_epochs == 0:
        raise ValueError("training log is empty")
    ledger = ledger or CostLedger()
    with ledger.computing():
        direction = log.initial_theta - log.final_theta
        norm = np.linalg.norm(direction)
        if norm < 1e-300:
            direction = np.zeros_like(direction)
        else:
            direction = direction / norm
        per_epoch = np.stack(
            [record.local_updates @ direction for record in log.records]
        )
    return from_per_epoch("im", log.participant_ids, per_epoch, ledger=ledger)
