"""OR — One-Round reconstruction Shapley (Song et al., IEEE Big Data 2019).

The cheaper sibling of MR: instead of a per-round Shapley computation, OR
reconstructs, for each coalition ``S``, the model that *accumulating* only
S's updates over the whole run would have produced:

    θ(S) = θ_0 − (1/|S|) Σ_t Σ_{i∈S} δ_{t,i}

then computes a single exact Shapley value over these reconstructed
utilities (Eq. 2 with the reconstruction standing in for retraining).
Still ``2^n`` validation evaluations, but only once rather than per round,
and no retraining.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.contribution import ContributionReport
from repro.data.dataset import Dataset
from repro.hfl.log import TrainingLog
from repro.metrics.cost import CostLedger
from repro.nn.models import Classifier
from repro.shapley.exact import exact_shapley_values
from repro.shapley.utility import CallableUtility


def or_shapley(
    log: TrainingLog,
    validation: Dataset,
    model_factory: Callable[[], Classifier],
) -> ContributionReport:
    """OR estimate from accumulated updates (one reconstruction per subset)."""
    if log.n_epochs == 0:
        raise ValueError("training log is empty")
    ledger = CostLedger()
    model = model_factory()
    n = log.n_participants
    theta_0 = log.initial_theta

    # Σ_t δ_{t,i} per participant, shape (n, p).
    accumulated = np.zeros((n, theta_0.size))
    for record in log.records:
        accumulated += record.local_updates

    with ledger.computing():
        model.set_flat(theta_0)
        base_loss = model.loss(validation.X, validation.y).item()

        def utility_fn(coalition: frozenset[int]) -> float:
            members = sorted(coalition)
            update = accumulated[members].mean(axis=0)
            model.set_flat(theta_0 - update)
            return base_loss - model.loss(validation.X, validation.y).item()

        utility = CallableUtility(n, utility_fn)
        values = exact_shapley_values(utility)

    report = ContributionReport(
        method="or",
        participant_ids=list(log.participant_ids),
        totals=values,
        ledger=ledger,
        extra={"validation_evaluations": 2**n},
    )
    return report
