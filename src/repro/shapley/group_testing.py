"""Group-testing Shapley estimation (Jia et al., AISTATS 2019).

GT-Shapley draws random coalitions from the group-testing distribution,
estimates all pairwise Shapley *differences* ``φ_i − φ_j`` from the observed
utilities, and recovers the values from the differences plus the efficiency
constraint ``Σ φ_i = V(N)``.

The paper's comparison budgets GT at ``n (log n)²`` utility evaluations,
which is the default test count here.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.contribution import ContributionReport
from repro.shapley.utility import CoalitionUtility
from repro.utils.rng import make_rng


def _size_distribution(n: int) -> tuple[np.ndarray, float]:
    """Group-testing coalition-size law ``q(k) ∝ 1/k + 1/(n−k)``."""
    ks = np.arange(1, n)
    raw = 1.0 / ks + 1.0 / (n - ks)
    z = float(raw.sum())
    return raw / z, z


def gt_shapley_values(
    utility: CoalitionUtility,
    *,
    n_tests: int | None = None,
    seed=None,
) -> np.ndarray:
    """Estimate Shapley values by group testing.

    The pairwise-difference estimator is
    ``Δ_ij = (Z/T) Σ_t u_t (β_{t,i} − β_{t,j})``; values are recovered in
    closed form as the least-squares solution under the efficiency
    constraint: ``φ_i = (V(N) + Σ_{j≠i} Δ_ij) / n``.
    """
    n = utility.n_players
    if n < 2:
        return np.array([utility(utility.grand_coalition)])
    if n_tests is None:
        n_tests = max(n, int(math.ceil(n * math.log(max(n, 2)) ** 2)))
    if n_tests < 1:
        raise ValueError(f"n_tests must be >= 1, got {n_tests}")
    rng = make_rng(seed)
    q, z = _size_distribution(n)

    beta = np.zeros((n_tests, n))
    utilities = np.zeros(n_tests)
    sizes = rng.choice(np.arange(1, n), size=n_tests, p=q)
    for t, k in enumerate(sizes):
        members = rng.choice(n, size=int(k), replace=False)
        beta[t, members] = 1.0
        utilities[t] = utility(frozenset(int(m) for m in members))

    # Δ_ij estimates φ_i − φ_j for every pair at once.
    weighted = utilities[:, None] * beta  # (T, n)
    col_sums = weighted.sum(axis=0)  # Σ_t u_t β_{t,i}
    delta = (z / n_tests) * (col_sums[:, None] - col_sums[None, :])

    full_value = utility(utility.grand_coalition)
    return (full_value + delta.sum(axis=1)) / n


def gt_shapley(
    utility: CoalitionUtility,
    *,
    n_tests: int | None = None,
    seed=None,
) -> ContributionReport:
    """GT-Shapley wrapped in a :class:`ContributionReport`."""
    values = gt_shapley_values(utility, n_tests=n_tests, seed=seed)
    return ContributionReport(
        method="gt-shapley",
        participant_ids=list(range(utility.n_players)),
        totals=values,
        ledger=utility.ledger,
        extra={"coalition_evaluations": utility.evaluations},
    )
