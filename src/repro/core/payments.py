"""Contribution-based payment mechanisms.

"For the commercial use of FL, fair credit/reward allocation for
participants based on their contributions is needed" (Sec. I).  The Shapley
value is the canonical fair division, and DIG-FL makes it cheap enough to
compute per round — so payments can be allocated once at the end
(:func:`shapley_payments`) or streamed round by round
(:func:`streaming_payments`), which pays participants for *when* they
helped, not just how much overall.
"""

from __future__ import annotations

import numpy as np

from repro.core.contribution import ContributionReport
from repro.core.reweight import rectified_weights
from repro.utils.validation import check_positive_float


def proportional_payments(
    report: ContributionReport, budget: float
) -> dict[int, float]:
    """Split ``budget`` proportionally to rectified total contributions.

    Non-positive contributors receive nothing; if *nobody* contributed
    positively the budget is withheld (all-zero payout) rather than spread
    over harmful participants.
    """
    check_positive_float(budget, "budget")
    clipped = np.maximum(report.totals, 0.0)
    total = clipped.sum()
    if total <= 0:
        return {pid: 0.0 for pid in report.participant_ids}
    shares = clipped / total * budget
    return dict(zip(report.participant_ids, shares.astype(float)))


def shapley_payments(
    report: ContributionReport, budget: float, *, allow_negative: bool = False
) -> dict[int, float]:
    """Budget-balanced payments proportional to signed Shapley estimates.

    With ``allow_negative`` the division follows the signed values —
    participants with negative contribution owe the pool (a "penalty"
    reading some incentive designs use); the payments still sum to
    ``budget``.  Without it, this is :func:`proportional_payments`.
    """
    check_positive_float(budget, "budget")
    if not allow_negative:
        return proportional_payments(report, budget)
    total = report.totals.sum()
    if abs(total) < 1e-12:
        raise ValueError(
            "signed contributions sum to ~0; signed division is undefined "
            "— use proportional_payments instead"
        )
    shares = report.totals / total * budget
    return dict(zip(report.participant_ids, shares.astype(float)))


def streaming_payments(
    report: ContributionReport, round_budget: float
) -> dict[int, float]:
    """Pay ``round_budget`` per epoch, split by that epoch's contributions.

    Requires a per-epoch report (DIG-FL, MR); whole-process-only estimators
    cannot stream.  Each round's budget goes to that round's positive
    contributors (Eq. 17 weights); rounds where nobody helped fall back to
    a uniform split, mirroring the reweight mechanism's degenerate case.
    """
    check_positive_float(round_budget, "round_budget")
    if report.per_epoch is None:
        raise ValueError(
            f"method {report.method!r} has no per-epoch contributions to stream"
        )
    payments = np.zeros(report.n_participants)
    for t in range(report.per_epoch.shape[0]):
        payments += round_budget * rectified_weights(report.per_epoch[t])
    return dict(zip(report.participant_ids, payments.astype(float)))


def payment_summary(payments: dict[int, float]) -> str:
    """Human-readable, stable-ordered payment table."""
    lines = ["participant  payment"]
    for pid in sorted(payments):
        lines.append(f"{pid:>11}  {payments[pid]:>10,.2f}")
    lines.append(f"{'total':>11}  {sum(payments.values()):>10,.2f}")
    return "\n".join(lines)
