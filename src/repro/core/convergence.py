"""Empirical verification helpers for Lemmas 4 and 5.

The reweighting lemmas claim, for a sufficiently small learning rate:

1. monotone decrease — ``loss^v(θ_{t+1}) ≤ loss^v(θ_t)``;
2. a sublinear rate — ``min_{1≤t≤τ} ‖∇loss^v(θ_t)‖ ≤ ξ/√τ``.

These helpers extract both quantities from a finished run so tests and
benches can check the claims against actual trajectories rather than take
the proofs on faith.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.data.dataset import Dataset
from repro.hfl.log import TrainingLog
from repro.hfl.trainer import validation_gradient
from repro.nn.models import Classifier


def validation_gradient_norms(
    log: TrainingLog,
    validation: Dataset,
    model_factory: Callable[[], Classifier],
) -> np.ndarray:
    """``‖∇loss^v(θ_t)‖`` after every epoch of the run, shape (τ,)."""
    if log.n_epochs == 0:
        raise ValueError("training log is empty")
    model = model_factory()
    norms = np.empty(log.n_epochs)
    for t, record in enumerate(log.records):
        grad = validation_gradient(model, record.theta_after, validation)
        norms[t] = float(np.linalg.norm(grad))
    return norms


def running_min(values: np.ndarray) -> np.ndarray:
    """``min_{1≤s≤t} values[s]`` — the quantity Lemma 4/5 bound."""
    return np.minimum.accumulate(np.asarray(values, dtype=np.float64))


def is_monotone_decreasing(curve: np.ndarray, *, tolerance: float = 1e-9) -> bool:
    """True when the loss curve never increases beyond ``tolerance``."""
    curve = np.asarray(curve, dtype=np.float64)
    if curve.ndim != 1 or len(curve) < 2:
        raise ValueError("need a 1-D curve with at least two points")
    return bool(np.all(np.diff(curve) <= tolerance))


def violation_fraction(curve: np.ndarray, *, tolerance: float = 1e-9) -> float:
    """Fraction of steps where the curve increases (0.0 = perfectly monotone)."""
    curve = np.asarray(curve, dtype=np.float64)
    if len(curve) < 2:
        return 0.0
    increases = np.diff(curve) > tolerance
    return float(increases.mean())


@dataclass(frozen=True)
class RateFit:
    """Least-squares fit of ``min‖∇‖ ≈ ξ / τ^ρ`` on log-log axes.

    Lemma 4/5 predict ρ ≥ 0.5 (the bound allows faster decay); ``r2``
    reports the fit quality.
    """

    xi: float
    rho: float
    r2: float

    def bound_at(self, tau: int) -> float:
        return self.xi / tau**self.rho


def fit_inverse_power_rate(min_norms: np.ndarray) -> RateFit:
    """Fit the running-min gradient-norm curve to ``ξ/τ^ρ``.

    Expects the output of :func:`running_min` over
    :func:`validation_gradient_norms`; constant or near-constant curves
    yield ``rho ≈ 0``.
    """
    min_norms = np.asarray(min_norms, dtype=np.float64)
    if len(min_norms) < 3:
        raise ValueError("need at least 3 epochs to fit a rate")
    if np.any(min_norms <= 0):
        raise ValueError("gradient norms must be positive to fit on log axes")
    taus = np.arange(1, len(min_norms) + 1, dtype=np.float64)
    X = np.stack([np.ones_like(taus), -np.log(taus)], axis=1)
    y = np.log(min_norms)
    coef, *_ = np.linalg.lstsq(X, y, rcond=None)
    predictions = X @ coef
    ss_res = float(np.sum((y - predictions) ** 2))
    ss_tot = float(np.sum((y - y.mean()) ** 2))
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 1e-300 else 1.0
    return RateFit(xi=float(np.exp(coef[0])), rho=float(coef[1]), r2=r2)
