"""DIG-FL based participant reweighting (Sec. II-F, III-C, IV-D).

In every epoch the server computes per-epoch contributions with the
resource-saving estimator, rectifies negatives to zero and normalises
(Eq. 17):

    ω_{t,i} = max(φ_{t,i}, 0) / Σ_j max(φ_{t,j}, 0)

and aggregates the reweighted updates (Eq. 18).  Participants whose updates
point *against* the validation gradient — mislabeled or heavily non-IID
data — are silenced for that epoch.  Lemmas 4/5 guarantee monotone
validation-loss decrease for small enough learning rates; the fallback to
uniform weights when every contribution is non-positive keeps training
alive in the degenerate case (e.g. all-noise epochs near convergence).
"""

from __future__ import annotations

import warnings
from typing import Sequence

import numpy as np

from repro.core.valgrad import epoch_validation_gradient
from repro.data.dataset import Dataset
from repro.nn.models import Classifier


def _finite_or_uniform(contributions: np.ndarray, scheme: str) -> np.ndarray | None:
    """Uniform-fallback guard shared by the Eq. 17 projection and softmax.

    A single NaN/Inf contribution — one poisoned update dotted with the
    validation gradient — would otherwise propagate through the
    normalisation and corrupt *every* party's weight.  Uniform weights
    keep training alive for the round; screening (``repro.robust``)
    removes the source.
    """
    if np.all(np.isfinite(contributions)):
        return None
    warnings.warn(
        f"non-finite contributions passed to {scheme} weighting; "
        "falling back to uniform weights for this round "
        "(enable repro.robust screening to quarantine the source)",
        RuntimeWarning,
        stacklevel=3,
    )
    return np.full(len(contributions), 1.0 / len(contributions))


def rectified_weights(contributions: np.ndarray, *, epsilon: float = 1e-12) -> np.ndarray:
    """Eq. 17: clip at zero and normalise to a probability vector.

    Falls back to uniform weights when no participant has a positive
    contribution, so the aggregation never divides by zero — and likewise
    when any contribution is non-finite (with a ``RuntimeWarning``).
    """
    contributions = np.asarray(contributions, dtype=np.float64)
    fallback = _finite_or_uniform(contributions, "rectified")
    if fallback is not None:
        return fallback
    clipped = np.maximum(contributions, 0.0)
    total = clipped.sum()
    if total <= epsilon:
        return np.full(len(contributions), 1.0 / len(contributions))
    return clipped / total


def softmax_weights(contributions: np.ndarray, temperature: float = 1.0) -> np.ndarray:
    """Ablation alternative to Eq. 17: softmax over contributions.

    Unlike rectification it never zeroes a participant entirely, which
    trades robustness against corrupted updates for smoother aggregation.
    """
    contributions = np.asarray(contributions, dtype=np.float64)
    if temperature <= 0:
        raise ValueError(f"temperature must be positive, got {temperature}")
    fallback = _finite_or_uniform(contributions, "softmax")
    if fallback is not None:
        return fallback
    z = contributions / temperature
    z = z - z.max()
    expz = np.exp(z)
    return expz / expz.sum()


class DIGFLReweighter:
    """HFL reweighter plugging into :class:`repro.hfl.trainer.HFLTrainer`.

    Computes φ̂_{t,i} with the resource-saving estimator (one validation
    gradient, ``n`` dot products — Algorithm 2's per-epoch step) and maps
    them through the chosen weighting scheme.
    """

    def __init__(
        self,
        validation: Dataset,
        *,
        scheme: str = "rectified",
        temperature: float = 1.0,
    ) -> None:
        if scheme not in ("rectified", "softmax"):
            raise ValueError(f"scheme must be 'rectified' or 'softmax', got {scheme!r}")
        self.validation = validation
        self.scheme = scheme
        self.temperature = temperature
        self.history: list[np.ndarray] = []  # per-epoch contributions observed

    def weights(
        self,
        model: Classifier,
        theta_before: np.ndarray,
        local_updates: np.ndarray,
        lr: float,
        epoch: int,
    ) -> np.ndarray:
        del lr, epoch
        saved = model.get_flat()
        try:
            val_grad = epoch_validation_gradient(
                model, theta_before, self.validation
            )
        finally:
            model.set_flat(saved)
        n = len(local_updates)
        contributions = local_updates @ val_grad / n
        self.history.append(contributions)
        if self.scheme == "softmax":
            return softmax_weights(contributions, self.temperature)
        return rectified_weights(contributions)


class VFLDIGFLReweighter:
    """VFL reweighter for :class:`repro.vfl.trainer.VFLTrainer` (Eq. 31).

    Receives the block-partitioned training and validation gradients the
    trainer already computed, derives φ̂_{t,i} per Eq. 27 and returns
    weights over *all* parties (inactive parties get weight 0).
    """

    def __init__(
        self,
        feature_blocks: Sequence[np.ndarray],
        *,
        scheme: str = "rectified",
        temperature: float = 1.0,
    ) -> None:
        if scheme not in ("rectified", "softmax"):
            raise ValueError(f"scheme must be 'rectified' or 'softmax', got {scheme!r}")
        self.feature_blocks = [np.asarray(b) for b in feature_blocks]
        self.scheme = scheme
        self.temperature = temperature
        self.history: list[np.ndarray] = []

    def weights(
        self,
        theta_before: np.ndarray,
        train_gradient: np.ndarray,
        val_gradient: np.ndarray,
        lr: float,
        epoch: int,
        active_parties: Sequence[int],
    ) -> np.ndarray:
        del theta_before, epoch
        contributions = np.array(
            [
                lr * float(val_gradient[block] @ train_gradient[block])
                for block in self.feature_blocks
            ]
        )
        self.history.append(contributions)
        active = list(active_parties)
        if self.scheme == "softmax":
            active_weights = softmax_weights(contributions[active], self.temperature)
        else:
            active_weights = rectified_weights(contributions[active])
        # Scale so that uniform contributions reproduce plain descent
        # (weight 1 per active party), matching Eq. 31 where ω multiplies
        # each block's gradient rather than redistributing a unit budget.
        weights = np.zeros(len(self.feature_blocks))
        weights[active] = active_weights * len(active)
        return weights
