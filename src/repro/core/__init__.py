"""DIG-FL: the paper's contribution estimators and the reweight mechanism.

:mod:`repro.core.backends` adds the estimator *registry*: competing
contribution methods (:mod:`repro.estimators`) register under a name and
are served interchangeably (``get_backend("gtg_shapley")``).
"""

from repro.core.backends import (
    BackendInfo,
    EstimatorBackend,
    HFLRunContext,
    UnknownBackendError,
    UnsupportedLogKind,
    VFLRunContext,
    backend_infos,
    backend_names,
    choose_backend,
    get_backend,
    kind_capable_backends,
    register_backend,
)
from repro.core.contribution import ContributionReport, from_per_epoch
from repro.core.digfl_hfl import (
    estimate_hfl_interactive,
    estimate_hfl_resource_saving,
)
from repro.core.digfl_vfl import (
    estimate_vfl_first_order,
    estimate_vfl_second_order,
)
from repro.core.convergence import (
    RateFit,
    fit_inverse_power_rate,
    is_monotone_decreasing,
    running_min,
    validation_gradient_norms,
    violation_fraction,
)
from repro.core.payments import (
    payment_summary,
    proportional_payments,
    shapley_payments,
    streaming_payments,
)
from repro.core.sample_influence import (
    SampleInfluenceReport,
    mislabel_detection_score,
    sample_influences,
)
from repro.core.reweight import (
    DIGFLReweighter,
    VFLDIGFLReweighter,
    rectified_weights,
    softmax_weights,
)
from repro.core.selection import (
    SelectionResult,
    flag_low_quality,
    select_covering_fraction,
    select_top_k,
    select_under_budget,
)
from repro.core.valgrad import epoch_validation_gradient, validation_gradients

__all__ = [
    "BackendInfo",
    "ContributionReport",
    "DIGFLReweighter",
    "EstimatorBackend",
    "HFLRunContext",
    "RateFit",
    "SampleInfluenceReport",
    "SelectionResult",
    "UnknownBackendError",
    "UnsupportedLogKind",
    "VFLDIGFLReweighter",
    "VFLRunContext",
    "backend_infos",
    "backend_names",
    "choose_backend",
    "epoch_validation_gradient",
    "estimate_hfl_interactive",
    "estimate_hfl_resource_saving",
    "estimate_vfl_first_order",
    "estimate_vfl_second_order",
    "fit_inverse_power_rate",
    "flag_low_quality",
    "from_per_epoch",
    "get_backend",
    "is_monotone_decreasing",
    "kind_capable_backends",
    "mislabel_detection_score",
    "payment_summary",
    "proportional_payments",
    "rectified_weights",
    "register_backend",
    "running_min",
    "sample_influences",
    "select_covering_fraction",
    "select_top_k",
    "select_under_budget",
    "shapley_payments",
    "softmax_weights",
    "streaming_payments",
    "validation_gradient_norms",
    "validation_gradients",
    "violation_fraction",
]
