"""Estimator backend registry: one interface, many contribution methods.

DIG-FL is one answer to "what did each participant contribute?"; the
literature has others (GTG-Shapley's guided truncation Monte-Carlo over
reconstructed models, DPVS-style dynamic pruning), and comparing them is
itself an experiment the serving stack should run.  This module is the
seam: an :class:`EstimatorBackend` names a method, says which log kinds
it supports, and builds the streaming estimator the
:class:`~repro.serve.service.EvaluationService` feeds epoch records —
so ``POST /runs`` can carry an ``estimator:`` field and every backend
rides the same cache, WAL, breaker and cluster machinery.

The registry lives here in :mod:`repro.core` (imported by everything) and
the backend *implementations* live in :mod:`repro.estimators` (which
imports the serving layer's streaming base).  :func:`get_backend` breaks
that cycle lazily: the first lookup imports :mod:`repro.estimators`,
whose module-level :func:`register_backend` decorators populate the
table.

Cache identity: :meth:`EstimatorBackend.digest_token` folds the backend
name and its *options* into the run's content digest, so two runs over
the same log with different backends (or the same backend differently
parameterised) never share a cached query answer — while the validation
*gradients* they may have in common are shared through a separate
content-addressed memo (see :meth:`repro.serve.service.EvaluationService.register_hfl`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Sequence

import numpy as np

from repro.core.contribution import ContributionReport
from repro.metrics.cost import CostLedger

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.data.dataset import Dataset
    from repro.hfl.log import TrainingLog
    from repro.nn.models import Classifier
    from repro.vfl.log import VFLTrainingLog


class UnknownBackendError(ValueError):
    """An ``estimator:`` name no registered backend answers to."""

    def __init__(self, name: str, registered: Sequence[str]) -> None:
        super().__init__(
            f"unknown estimator backend {name!r}; registered backends: "
            f"{', '.join(registered)}"
        )
        self.name = name
        self.registered = list(registered)


class UnsupportedLogKind(ValueError):
    """A backend asked to evaluate a log kind it has no algorithm for.

    The message names the backends that *do* support the kind — "gtg
    can't do vfl" is only actionable if the error also says which
    registered backends can.
    """

    def __init__(
        self,
        backend: str,
        kind: str,
        supported: Sequence[str],
        capable: Sequence[str] | None = None,
    ) -> None:
        if capable is None:
            capable = kind_capable_backends(kind)
        capable = [name for name in capable if name != backend]
        message = (
            f"estimator backend {backend!r} does not support {kind!r} logs "
            f"(supported: {', '.join(supported)})"
        )
        if capable:
            message += (
                f"; backends supporting {kind!r}: {', '.join(capable)}"
            )
        super().__init__(message)
        self.backend = backend
        self.kind = kind
        self.capable = list(capable)


@dataclass
class HFLRunContext:
    """Everything a backend may need to stream-evaluate one HFL run.

    ``val_grad_memo`` is the service's cross-run validation-gradient memo
    (any ``MutableMapping``); backends that never touch validation
    gradients ignore it.
    """

    participant_ids: Sequence[int]
    validation: "Dataset"
    model_factory: Callable[[], "Classifier"]
    use_logged_weights: bool = False
    val_grad_memo: dict | None = None


@dataclass
class VFLRunContext:
    """Constructor inputs for a streaming VFL estimator."""

    feature_blocks: Sequence[np.ndarray]
    active_parties: Sequence[int]


@dataclass
class BackendInfo:
    """One registry row, as ``repro estimate``/``/runs`` report it."""

    name: str
    kinds: tuple[str, ...]
    summary: str
    option_defaults: dict = field(default_factory=dict)


class EstimatorBackend:
    """Base class: a named, optioned factory for streaming estimators.

    Subclasses set ``name`` (the registry key), ``kinds`` (the log kinds
    they can evaluate) and ``option_defaults`` (every tunable with its
    default — unknown option names are refused at construction, which is
    what turns a typo'd ``estimator_options`` into an HTTP 400 instead
    of a silently ignored knob).  They implement :meth:`streaming_hfl` /
    :meth:`streaming_vfl` for the kinds they support; the batch entry
    points below default to "stream the whole log" so only ``digfl``
    (whose batch algorithms predate the registry) overrides them.
    """

    name: str = ""
    kinds: tuple[str, ...] = ()
    summary: str = ""
    option_defaults: dict = {}

    def __init__(self, **options) -> None:
        unknown = sorted(set(options) - set(self.option_defaults))
        if unknown:
            raise ValueError(
                f"backend {self.name!r} has no option(s) {unknown}; "
                f"available: {sorted(self.option_defaults) or 'none'}"
            )
        self.options = {**self.option_defaults, **options}

    # ------------------------------------------------------------- identity

    def digest_token(self) -> str:
        """Deterministic cache-key component: backend name + options."""
        return json.dumps(
            {"backend": self.name, "options": self.options},
            sort_keys=True,
            default=str,
        )

    def supports(self, kind: str) -> bool:
        return kind in self.kinds

    def require(self, kind: str) -> None:
        if not self.supports(kind):
            raise UnsupportedLogKind(self.name, kind, self.kinds)

    # ------------------------------------------------------------ streaming

    def streaming_hfl(self, ctx: HFLRunContext):
        """A fresh streaming estimator for one HFL run."""
        raise UnsupportedLogKind(self.name, "hfl", self.kinds)

    def streaming_vfl(self, ctx: VFLRunContext):
        """A fresh streaming estimator for one VFL run."""
        raise UnsupportedLogKind(self.name, "vfl", self.kinds)

    # ---------------------------------------------------------------- batch

    def estimate_hfl(
        self,
        log: "TrainingLog",
        validation: "Dataset",
        model_factory: Callable[[], "Classifier"],
        *,
        use_logged_weights: bool = False,
        ledger: CostLedger | None = None,
        val_grad_memo: dict | None = None,
        profiler=None,
    ) -> ContributionReport:
        """Whole-log estimate: build the streaming estimator, feed it all.

        Streaming estimators are defined to be bit-for-bit equal to their
        batch algorithms on any prefix, so "stream everything" *is* the
        batch estimate; ``digfl`` overrides this with its original batch
        functions to keep the pre-registry call sites byte-identical.
        """
        self.require("hfl")
        if log.n_epochs == 0:
            raise ValueError("training log is empty")
        ctx = HFLRunContext(
            log.participant_ids,
            validation,
            model_factory,
            use_logged_weights=use_logged_weights,
            val_grad_memo=val_grad_memo,
        )
        estimator = self._configured(self.streaming_hfl(ctx), ledger, profiler)
        estimator.ingest_log(log)
        return estimator.report()

    def estimate_vfl(
        self,
        log: "VFLTrainingLog",
        *,
        ledger: CostLedger | None = None,
        profiler=None,
    ) -> ContributionReport:
        """Whole-log VFL estimate via the streaming path."""
        self.require("vfl")
        if log.n_epochs == 0:
            raise ValueError("training log is empty")
        ctx = VFLRunContext(log.feature_blocks, log.active_parties)
        estimator = self._configured(self.streaming_vfl(ctx), ledger, profiler)
        estimator.ingest_log(log)
        return estimator.report()

    @staticmethod
    def _configured(estimator, ledger, profiler):
        if ledger is not None:
            estimator.ledger = ledger
        if profiler is not None:
            estimator.profiler = profiler
        return estimator

    def info(self) -> BackendInfo:
        return BackendInfo(
            name=self.name,
            kinds=self.kinds,
            summary=self.summary,
            option_defaults=dict(self.option_defaults),
        )


_REGISTRY: dict[str, type[EstimatorBackend]] = {}


def register_backend(cls: type[EstimatorBackend]) -> type[EstimatorBackend]:
    """Class decorator adding ``cls`` to the registry under ``cls.name``.

    Duplicate names are refused — two algorithms answering to one name
    would make ``estimator:`` fields ambiguous — except for the exact
    same class, so re-importing :mod:`repro.estimators` stays harmless.
    """
    if not cls.name:
        raise ValueError(f"{cls.__name__} must set a non-empty 'name'")
    if not cls.kinds:
        raise ValueError(f"{cls.__name__} must declare supported log kinds")
    existing = _REGISTRY.get(cls.name)
    if existing is not None and existing is not cls:
        raise ValueError(
            f"estimator backend name {cls.name!r} is already registered "
            f"by {existing.__name__}"
        )
    _REGISTRY[cls.name] = cls
    return cls


def _ensure_populated() -> None:
    """Lazy bootstrap: importing the implementations fills the table."""
    if not _REGISTRY:
        import repro.estimators  # noqa: F401 - imported for its decorators


def backend_names() -> list[str]:
    """Registered backend names, sorted (CLI choices, 400 bodies)."""
    _ensure_populated()
    return sorted(_REGISTRY)


def backend_infos() -> list[BackendInfo]:
    """One :class:`BackendInfo` per registered backend, name-sorted."""
    _ensure_populated()
    return [_REGISTRY[name]().info() for name in sorted(_REGISTRY)]


def kind_capable_backends(kind: str) -> list[str]:
    """Names of registered backends supporting ``kind``, sorted.

    This is what :class:`UnsupportedLogKind` embeds in its message, and
    what the robustness matrix uses to enumerate the backend axis for a
    scenario's log kind.
    """
    _ensure_populated()
    return sorted(name for name, cls in _REGISTRY.items() if kind in cls.kinds)


#: BENCH_estimators.json lives at the repo root, three levels above this file.
_BENCH_ESTIMATORS = "BENCH_estimators.json"


def _crossover_parties(bench_path=None) -> int | None:
    """The gtg→dpvs crossover party count recorded by the benchmark, if any."""
    from pathlib import Path

    candidates = []
    if bench_path is not None:
        candidates.append(Path(bench_path))
    else:
        candidates.append(Path.cwd() / _BENCH_ESTIMATORS)
        candidates.append(Path(__file__).resolve().parents[3] / _BENCH_ESTIMATORS)
    for path in candidates:
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            continue
        crossover = payload.get("crossover")
        if isinstance(crossover, dict):
            n = crossover.get("n_parties")
            if isinstance(n, (int, float)) and n > 0:
                return int(n)
    return None


def choose_backend(n_parties: int, kind: str, *, bench_path=None) -> str:
    """Auto-select a backend name for a federation of ``n_parties``.

    Policy: ``digfl`` is the safe default (the only VFL-capable backend,
    and the cheapest HFL one).  For HFL, when ``BENCH_estimators.json``
    records a measured ``gtg_shapley``/``dpvs`` crossover, Shapley-style
    answers come from ``gtg_shapley`` below the crossover party count and
    ``dpvs`` at or above it; with no benchmark file (or a pre-crossover
    format) the choice falls back to ``digfl``.
    """
    if n_parties < 1:
        raise ValueError(f"n_parties must be positive, got {n_parties}")
    if kind not in ("hfl", "vfl"):
        raise ValueError(f"kind must be 'hfl' or 'vfl', got {kind!r}")
    if kind == "vfl":
        return "digfl"
    crossover = _crossover_parties(bench_path)
    if crossover is None:
        return "digfl"
    names = set(backend_names())
    if not {"gtg_shapley", "dpvs"} <= names:
        return "digfl"
    return "gtg_shapley" if n_parties < crossover else "dpvs"


def get_backend(name: str, **options) -> EstimatorBackend:
    """Construct the backend registered under ``name`` with ``options``.

    Raises :class:`UnknownBackendError` (a ``ValueError``, so the HTTP
    ladder answers 400) for an unregistered name, and plain
    ``ValueError`` for an unknown option of a known backend.
    """
    _ensure_populated()
    cls = _REGISTRY.get(name)
    if cls is None:
        raise UnknownBackendError(name, sorted(_REGISTRY))
    return cls(**options)
