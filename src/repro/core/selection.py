"""Participant selection driven by DIG-FL contributions.

Sec. II-F lists "optimal participant selection under budget constraint" as
a direct application of per-epoch contributions.  This module implements
the selection policies the paper sketches:

* :func:`select_top_k` — keep the k highest contributors,
* :func:`select_under_budget` — greedy knapsack by contribution density,
* :func:`select_covering_fraction` — smallest prefix covering a fraction of
  the total positive contribution,
* :func:`flag_low_quality` — robust outlier detection (median/MAD) over the
  contribution vector, the "localise low-quality participants" use case.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.contribution import ContributionReport
from repro.utils.validation import check_positive_int


@dataclass(frozen=True)
class SelectionResult:
    """Chosen participant ids plus the book-keeping selectors report."""

    selected: list[int]
    total_contribution: float
    total_cost: float

    def __contains__(self, participant_id: int) -> bool:
        return participant_id in self.selected


def select_top_k(report: ContributionReport, k: int) -> SelectionResult:
    """The ``k`` participants with the highest total contribution."""
    check_positive_int(k, "k")
    if k > report.n_participants:
        raise ValueError(
            f"k={k} exceeds the {report.n_participants} participants in the report"
        )
    order = np.argsort(report.totals)[::-1][:k]
    chosen = [report.participant_ids[i] for i in order]
    return SelectionResult(
        selected=sorted(chosen),
        total_contribution=float(report.totals[order].sum()),
        total_cost=float(len(chosen)),
    )


def select_under_budget(
    report: ContributionReport,
    costs: np.ndarray,
    budget: float,
) -> SelectionResult:
    """Greedy knapsack: pick by contribution-per-cost until the budget runs out.

    Participants with non-positive contribution are never selected —
    paying for harmful data is worse than leaving budget unspent.
    """
    costs = np.asarray(costs, dtype=np.float64)
    if costs.shape != (report.n_participants,):
        raise ValueError(
            f"costs shape {costs.shape} does not match {report.n_participants} participants"
        )
    if np.any(costs <= 0):
        raise ValueError("all participant costs must be positive")
    if budget <= 0:
        raise ValueError(f"budget must be positive, got {budget}")

    density = report.totals / costs
    order = np.argsort(density)[::-1]
    chosen: list[int] = []
    spent = 0.0
    gained = 0.0
    for i in order:
        if report.totals[i] <= 0:
            break  # density sorted: everything after is also non-positive
        if spent + costs[i] > budget:
            continue
        chosen.append(report.participant_ids[i])
        spent += float(costs[i])
        gained += float(report.totals[i])
    return SelectionResult(
        selected=sorted(chosen), total_contribution=gained, total_cost=spent
    )


def select_covering_fraction(
    report: ContributionReport, fraction: float
) -> SelectionResult:
    """Smallest top-contributor prefix covering ``fraction`` of total value.

    "Value" is the sum of positive contributions; negative contributors are
    never included.
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    positive_total = float(np.maximum(report.totals, 0).sum())
    if positive_total == 0.0:
        return SelectionResult(selected=[], total_contribution=0.0, total_cost=0.0)
    target = fraction * positive_total
    order = np.argsort(report.totals)[::-1]
    chosen: list[int] = []
    covered = 0.0
    for i in order:
        if covered >= target or report.totals[i] <= 0:
            break
        chosen.append(report.participant_ids[i])
        covered += float(report.totals[i])
    return SelectionResult(
        selected=sorted(chosen),
        total_contribution=covered,
        total_cost=float(len(chosen)),
    )


def flag_low_quality(
    report: ContributionReport, *, threshold: float = 2.5
) -> list[int]:
    """Participants whose contribution is a robust low outlier.

    Uses the modified z-score ``0.6745·(x − median)/MAD``; values below
    ``−threshold`` are flagged.  With a constant-ish contribution vector
    (MAD ≈ 0) nothing is flagged — no corruption signal, no alarm.
    """
    totals = report.totals
    median = float(np.median(totals))
    mad = float(np.median(np.abs(totals - median)))
    if mad < 1e-12:
        return []
    scores = 0.6745 * (totals - median) / mad
    return [
        report.participant_ids[i]
        for i in range(report.n_participants)
        if scores[i] < -threshold
    ]
