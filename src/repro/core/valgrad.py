"""Validation gradients of a training log — the shared DIG-FL hot loop.

Every log-based estimator needs ``∇loss^v(θ_{t-1})`` for each epoch: the
batch estimators of :mod:`repro.core.digfl_hfl` loop over the whole log,
the streaming estimators of :mod:`repro.serve` consume one epoch at a
time, and the reweight mechanism evaluates the same gradient mid-training.
This module is that loop, extracted once, so every path computes the same
floats through the same expressions — the bit-for-bit streaming/batch
equivalence of :mod:`repro.serve.streaming` depends on it.

Both entry points accept an optional *memo* — any ``MutableMapping`` from
``(key, epoch)`` to the gradient vector, e.g. the adapter returned by
:meth:`repro.serve.cache.ResultCache.memo` — so a service answering many
queries over the same log computes each epoch's validation gradient once.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, MutableMapping

import numpy as np

from repro.data.dataset import Dataset
from repro.hfl.trainer import flat_gradient
from repro.nn.models import Classifier

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.hfl.log import TrainingLog

GradientMemo = MutableMapping


def epoch_validation_gradient(
    model: Classifier,
    theta: np.ndarray,
    validation: Dataset,
    *,
    memo: GradientMemo | None = None,
    key: str | None = None,
    epoch: int | None = None,
) -> np.ndarray:
    """``∇loss^v(θ)`` for one epoch; the model is left loaded with ``θ``.

    With ``memo`` and ``key`` given, the result is looked up / stored under
    ``(key, epoch)``.  Callers that need the model's previous parameters
    back must save and restore them (see
    :func:`repro.hfl.trainer.validation_gradient` for the restoring
    variant) — the batch loop deliberately skips that round-trip.
    """
    if memo is not None and key is not None:
        cached = memo.get((key, epoch))
        if cached is not None:
            return cached
    model.set_flat(theta)
    gradient = flat_gradient(model, validation.X, validation.y)
    if memo is not None and key is not None:
        memo[(key, epoch)] = gradient
    return gradient


def validation_gradients(
    log: "TrainingLog",
    validation: Dataset,
    model: Classifier,
    *,
    memo: GradientMemo | None = None,
    key: str | None = None,
) -> np.ndarray:
    """``∇loss^v(θ_{t-1})`` for every epoch of an HFL log, shape (τ, p)."""
    grads = np.empty((log.n_epochs, log.records[0].theta_before.size))
    for t, record in enumerate(log.records):
        grads[t] = epoch_validation_gradient(
            model, record.theta_before, validation, memo=memo, key=key, epoch=t
        )
    return grads
