"""DIG-FL contribution estimation for vertical FL (Sec. IV, Eq. 26–27).

The VFL estimator reads the vertical training log — full-model training and
validation gradients per epoch, block-partitioned across parties — and
computes per-epoch contributions.

**First-order (Eq. 27, the deployed form):**

    φ̂_{t,i} = ⟨∇loss^v(θ_{t-1}), (E − diag(v_i))·G_t⟩
             = α_t · ⟨∇loss^v(θ_{t-1}), ∇loss(θ_{t-1})⟩  restricted to block i

Party ``i`` owns both factors of its block, so it can compute its own φ̂
locally — the reason the paper's VFL algorithm adds no privacy exposure.

**With the second-order correction (Eq. 26, evaluated for Table II):**

    ΔG_t^{-z} = −(E − diag(v_z))·G_t − α_t·diag(v_z)·H_{θ_{t-1}}·(Σ_{j<t} ΔG_j^{-z})
    φ_{t,z}   = −⟨∇loss^v(θ_{t-1}), ΔG_t^{-z}⟩

The Hessian term needs HVPs of the *training* loss; in a deployed VFL
system the model is distributed and encrypted so this is unavailable
(Sec. II-E) — here it is computed by the simulator to quantify the error
of dropping it.
"""

from __future__ import annotations

import numpy as np

from repro.core.contribution import ContributionReport, from_per_epoch
from repro.data.dataset import Dataset
from repro.metrics.cost import CostLedger
from repro.vfl.log import VFLTrainingLog


def estimate_vfl_first_order(
    log: VFLTrainingLog,
    *,
    ledger: CostLedger | None = None,
) -> ContributionReport:
    """Eq. 27 contributions straight from the vertical training log.

    Runtime logs under faults carry per-round participation masks: a party
    whose block update missed round ``t`` applied nothing that round, so
    its per-epoch contribution is zero — the block term of Eq. 27 only
    exists for updates that entered ``G_t``.
    """
    if log.n_epochs == 0:
        raise ValueError("training log is empty")
    ledger = ledger or CostLedger()
    parties = log.active_parties
    per_epoch = np.zeros((log.n_epochs, len(parties)))
    with ledger.computing():
        for t, record in enumerate(log.records):
            for col, party in enumerate(parties):
                if not record.participated(party):
                    continue  # per_epoch stays 0 for the missed round
                block = log.feature_blocks[party]
                per_epoch[t, col] = record.lr * float(
                    record.val_gradient[block] @ record.train_gradient[block]
                )
    return from_per_epoch("digfl-vfl", parties, per_epoch, ledger=ledger)


def estimate_vfl_second_order(
    log: VFLTrainingLog,
    model,
    train: Dataset,
    *,
    ledger: CostLedger | None = None,
) -> ContributionReport:
    """Eq. 26 contributions including the Hessian correction.

    ``model`` is the analytic VFL model (linear/logistic); ``train`` the
    full training dataset — experimenter-side knowledge used only to
    measure the second-term error (Fig. 2 / Table II).
    """
    if log.n_epochs == 0:
        raise ValueError("training log is empty")
    ledger = ledger or CostLedger()
    parties = log.active_parties
    n = len(parties)
    d = log.records[0].theta_before.size
    per_epoch = np.zeros((log.n_epochs, n))
    with ledger.computing():
        delta_g_sum = np.zeros((n, d))
        for t, record in enumerate(log.records):
            g_t = record.lr * record.train_gradient  # G_t includes α_t
            v_t = record.val_gradient
            for col, party in enumerate(parties):
                present = record.participated(party)
                block = log.feature_blocks[party]
                removed_mask = np.zeros(d, dtype=bool)
                removed_mask[block] = True
                # A party that missed this round applied nothing, so there
                # is nothing to remove — only the trajectory drift remains.
                first = (
                    np.where(removed_mask, g_t, 0.0)  # (E - diag(v_i))·G_t
                    if present
                    else np.zeros(d)
                )
                omega = np.zeros(d)
                if t > 0 and np.any(delta_g_sum[col]):
                    hv = model.hvp(
                        record.theta_before, train.X, train.y, delta_g_sum[col]
                    )
                    omega = np.where(removed_mask, 0.0, hv)  # diag(v_i)·H·(Σ ΔG)
                delta_g = -first - record.lr * omega
                per_epoch[t, col] = -float(v_t @ delta_g) if present else 0.0
                delta_g_sum[col] += delta_g
    return from_per_epoch(
        "digfl-vfl-second-order", parties, per_epoch, ledger=ledger
    )
