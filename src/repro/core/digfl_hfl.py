"""DIG-FL contribution estimation for horizontal FL (Algorithms 1 and 2).

Both estimators consume the FedSGD :class:`~repro.hfl.log.TrainingLog` and
the server's validation set — no retraining, no access to local data.

**Algorithm 2 — resource-saving** (Eq. 16):

    φ̂_{t,i} = (1/n) ⟨∇loss^v(θ_{t-1}), δ_{t,i}⟩

The server already holds every δ, so the only extra work is one validation
gradient per epoch and ``n`` dot products: O(τ·n·p) server-side, zero extra
communication (level-2 privacy).

**Algorithm 1 — interactive** adds the second-order correction.  Expanding
the removal of participant ``z`` to first order around the joint training
trajectory (the paper's Eq. 6 with ε = −1/n) gives the recursion

    ΔG_t^{-z} = −(1/n)·δ_{t,z} − α_t · H_{θ_{t-1}} ( Σ_{j<t} ΔG_j^{-z} )
    φ_{t,z}   = −⟨∇loss^v(θ_{t-1}), ΔG_t^{-z}⟩

(The paper's Lemma 1 / Eq. 19 / Algorithm 1 disagree with each other on the
sign of the Hessian term — a typo chain; the form above is the one all
three reduce to when re-derived from Eq. 6, and it is what we implement.)

Each participant evaluates the Hessian-vector product ``Ĥ_i·v`` on its own
local data (cheap HVPs, never a p×p matrix) as an unbiased estimator of the
global ``H·v``, and uploads the p-vector — level-1 privacy, O(τ·n·p) compute.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.autodiff.grad import hvp
from repro.autodiff.tensor import Tensor
from repro.core.contribution import ContributionReport, from_per_epoch
from repro.core.valgrad import GradientMemo, validation_gradients
from repro.data.dataset import Dataset
from repro.hfl.log import TrainingLog
from repro.metrics.cost import FLOAT64_BYTES, CostLedger
from repro.nn.models import Classifier
from repro.obs.profile import NULL_PROFILER, Profiler
from repro.utils.packing import unflatten_params


def estimate_hfl_resource_saving(
    log: TrainingLog,
    validation: Dataset,
    model_factory: Callable[[], Classifier],
    *,
    use_logged_weights: bool = False,
    ledger: CostLedger | None = None,
    val_grad_memo: GradientMemo | None = None,
    val_grad_key: str | None = None,
    profiler: Profiler | None = None,
) -> ContributionReport:
    """Algorithm 2: first-order per-epoch contributions from the log only.

    ``use_logged_weights`` replaces the paper's uniform ``1/n`` with the
    aggregation weights the server actually applied (recorded per epoch in
    the log) — the consistent choice when training used FedAvg data-size
    weights or the reweight mechanism, since removing participant ``i``
    then removes ``ω_{t,i}·δ_{t,i}`` from the aggregate.

    Logs produced by :mod:`repro.runtime` under faults carry per-round
    participation masks.  A participant absent from round ``t`` shipped no
    update, so its per-epoch contribution for that round is zero (the
    paper's per-epoch formulation has no term for it), and the uniform
    divisor becomes the number of updates the server actually aggregated
    that round.

    ``val_grad_memo`` / ``val_grad_key`` thread an optional gradient memo
    through :func:`repro.core.valgrad.validation_gradients`, so a caching
    layer (:mod:`repro.serve`) computes each epoch's validation gradient
    once per (log, epoch) no matter how many estimators consume it.
    ``profiler`` attributes the two hot phases (validation gradients, the
    per-epoch dot products) to :mod:`repro.obs` phase timers.
    """
    if log.n_epochs == 0:
        raise ValueError("training log is empty")
    ledger = ledger or CostLedger()
    profiler = profiler if profiler is not None else NULL_PROFILER
    model = model_factory()
    n = log.n_participants
    with ledger.computing():
        with profiler.phase("estimator.valgrad"):
            val_grads = validation_gradients(
                log, validation, model, memo=val_grad_memo, key=val_grad_key
            )
        per_epoch = np.empty((log.n_epochs, n))
        with profiler.phase("estimator.dot_products"):
            for t, record in enumerate(log.records):
                raw = record.local_updates @ val_grads[t]
                if use_logged_weights:
                    # Absent participants were renormalised to weight 0, so
                    # the logged weights already zero their round share.
                    per_epoch[t] = record.weights * raw
                elif record.participation is None:
                    per_epoch[t] = raw / n
                else:
                    mask = record.participation
                    arrived = int(mask.sum())
                    if arrived == 0:
                        per_epoch[t] = 0.0
                    else:
                        per_epoch[t] = np.where(mask, raw, 0.0) / arrived
    return from_per_epoch(
        "digfl-resource-saving", log.participant_ids, per_epoch, ledger=ledger
    )


def estimate_hfl_interactive(
    log: TrainingLog,
    validation: Dataset,
    model_factory: Callable[[], Classifier],
    locals_: Sequence[Dataset],
    *,
    ledger: CostLedger | None = None,
    profiler: Profiler | None = None,
) -> ContributionReport:
    """Algorithm 1: adds the Hessian correction via participant-local HVPs.

    ``locals_`` indexes the full federation; only the participants present
    in the log are queried (they compute ``Ĥ_{θ_{t-1}}·Σ_{j<t}ΔG_j^{-i}`` on
    their own data, exactly the quantity they upload in Algorithm 1).

    Under partial participation (runtime logs), a participant absent from
    round ``t`` contributes no direct ``−δ_{t,i}/m_t`` term and earns zero
    per-epoch contribution that round; the Hessian term still propagates
    its earlier rounds' influence along the trajectory.
    """
    if log.n_epochs == 0:
        raise ValueError("training log is empty")
    ledger = ledger or CostLedger()
    profiler = profiler if profiler is not None else NULL_PROFILER
    model = model_factory()
    spec = model.param_spec()
    n = log.n_participants
    p = log.records[0].theta_before.size

    def local_hvp(participant: int, theta: np.ndarray, vector: np.ndarray) -> np.ndarray:
        """Participant-side HVP of its local loss at θ against ``vector``."""
        with profiler.phase("estimator.hvp"):
            data = locals_[participant]
            model.set_flat(theta)
            params = model.parameters()
            v_parts = unflatten_params(vector, spec)

            def loss_fn(ps):
                del ps  # hvp re-reads the live parameters
                return model.loss(data.X, data.y)

            hv = hvp(loss_fn, params, [Tensor(vp) for vp in v_parts])
            return np.concatenate([h.data.ravel() for h in hv])

    with ledger.computing():
        with profiler.phase("estimator.valgrad"):
            val_grads = validation_gradients(log, validation, model)
        per_epoch = np.empty((log.n_epochs, n))
        # running Σ_j ΔG_j^{-i} per participant
        delta_g_sum = np.zeros((n, p))
        for t, record in enumerate(log.records):
            v_t = val_grads[t]
            mask = record.participation
            divisor = n if mask is None else max(int(mask.sum()), 1)
            for row, participant in enumerate(log.participant_ids):
                present = mask is None or bool(mask[row])
                omega = np.zeros(p)
                if t > 0 and np.any(delta_g_sum[row]):
                    omega = local_hvp(
                        participant, record.theta_before, delta_g_sum[row]
                    )
                    # Participant uploads the HVP vector (the only extra
                    # communication of Algorithm 1).
                    ledger.record_bytes("participant->server", p * FLOAT64_BYTES)
                direct = (
                    -record.local_updates[row] / divisor
                    if present
                    else np.zeros(p)
                )
                delta_g = direct - record.lr * omega
                per_epoch[t, row] = -float(v_t @ delta_g) if present else 0.0
                delta_g_sum[row] += delta_g
    return from_per_epoch(
        "digfl-interactive", log.participant_ids, per_epoch, ledger=ledger
    )
