"""Per-sample influence drill-down inside a flagged participant.

DIG-FL scores *participants*; once one is flagged, the natural follow-up —
the model-debugging use case of the paper's introduction ("trace back to
distributed training datasets") — is to ask *which of its samples* hurt.
The same first-order machinery answers it: sample ``j``'s per-epoch
influence is the alignment of its individual gradient with the validation
gradient,

    s_{t,j} = α_t · ⟨∇loss(x_j, y_j; θ_{t-1}), ∇loss^v(θ_{t-1})⟩ / m_i

(the participant's update is the mean of its per-sample gradients, so
these scores sum to the participant's own φ̂_{t,i} — a per-sample
decomposition of the DIG-FL contribution).

Privacy note: this runs **on the participant's side** (it needs per-sample
gradients), with only the validation gradient shipped in — the server
never sees local data, matching the paper's trust model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.data.dataset import Dataset
from repro.hfl.log import TrainingLog
from repro.hfl.trainer import flat_gradient, validation_gradient
from repro.nn.models import Classifier


@dataclass
class SampleInfluenceReport:
    """Per-sample influence scores for one participant."""

    participant_id: int
    scores: np.ndarray  # (m,) summed over the requested epochs
    per_epoch: np.ndarray  # (τ, m)

    @property
    def n_samples(self) -> int:
        return len(self.scores)

    def worst(self, k: int) -> np.ndarray:
        """Indices of the k most harmful samples (lowest scores first)."""
        if not 1 <= k <= self.n_samples:
            raise ValueError(f"k must be in [1, {self.n_samples}], got {k}")
        return np.argsort(self.scores)[:k]

    def harmful_mask(self) -> np.ndarray:
        """Boolean mask of samples with negative total influence."""
        return self.scores < 0


def sample_influences(
    log: TrainingLog,
    participant_id: int,
    local_data: Dataset,
    validation: Dataset,
    model_factory: Callable[[], Classifier],
    *,
    epochs: slice | None = None,
) -> SampleInfluenceReport:
    """Per-sample influence of one participant's data across the run.

    ``epochs`` optionally restricts to a slice of the training run (e.g.
    ``slice(-3, None)`` for the final epochs, where mislabeled samples
    stand out most).
    """
    if participant_id not in log.participant_ids:
        raise KeyError(
            f"participant {participant_id} not in log ({log.participant_ids})"
        )
    records = log.records[epochs] if epochs is not None else log.records
    if not records:
        raise ValueError("no epochs selected")
    model = model_factory()
    m = len(local_data)
    per_epoch = np.empty((len(records), m))
    for t, record in enumerate(records):
        v = validation_gradient(model, record.theta_before, validation)
        model.set_flat(record.theta_before)
        for j in range(m):
            g_j = flat_gradient(
                model, local_data.X[j : j + 1], local_data.y[j : j + 1]
            )
            per_epoch[t, j] = record.lr * float(g_j @ v) / m
    return SampleInfluenceReport(
        participant_id=participant_id,
        scores=per_epoch.sum(axis=0),
        per_epoch=per_epoch,
    )


def mislabel_detection_score(
    report: SampleInfluenceReport, corrupted_mask: np.ndarray
) -> float:
    """AUC-style separation: P(corrupted sample scores below clean sample).

    Used by the tests/benches to quantify how well per-sample influences
    expose injected label noise; 0.5 = chance, 1.0 = perfect separation.
    """
    corrupted_mask = np.asarray(corrupted_mask, dtype=bool)
    if corrupted_mask.shape != report.scores.shape:
        raise ValueError("mask shape does not match scores")
    bad = report.scores[corrupted_mask]
    good = report.scores[~corrupted_mask]
    if len(bad) == 0 or len(good) == 0:
        raise ValueError("need both corrupted and clean samples")
    comparisons = (bad[:, None] < good[None, :]).mean()
    ties = (bad[:, None] == good[None, :]).mean()
    return float(comparisons + 0.5 * ties)
