"""Contribution report container shared by all estimators and baselines.

Every estimator — DIG-FL, the exact Shapley value, TMC/GT/MR/IM — returns a
:class:`ContributionReport`, so benchmarks compare them uniformly: totals
for the whole training process (Eq. 15) and, where available, the per-epoch
matrix (Eq. 14) that drives the reweight mechanism and Fig. 6.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.metrics.cost import CostLedger


@dataclass
class ContributionReport:
    """Per-participant contribution estimates.

    ``per_epoch`` is ``(τ, n)`` when the method produces per-epoch values
    (DIG-FL, per-epoch exact Shapley); methods that only yield whole-process
    values (TMC, GT, exact) leave it ``None`` and set ``totals`` directly.
    """

    method: str
    participant_ids: list[int]
    totals: np.ndarray
    per_epoch: np.ndarray | None = None
    ledger: CostLedger = field(default_factory=CostLedger)
    extra: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.totals = np.asarray(self.totals, dtype=np.float64)
        if self.totals.shape != (len(self.participant_ids),):
            raise ValueError(
                f"totals shape {self.totals.shape} does not match "
                f"{len(self.participant_ids)} participants"
            )
        if self.per_epoch is not None:
            self.per_epoch = np.asarray(self.per_epoch, dtype=np.float64)
            if self.per_epoch.ndim != 2 or self.per_epoch.shape[1] != len(
                self.participant_ids
            ):
                raise ValueError(
                    f"per_epoch shape {self.per_epoch.shape} does not match "
                    f"{len(self.participant_ids)} participants"
                )

    @property
    def n_participants(self) -> int:
        return len(self.participant_ids)

    def ranking(self) -> list[int]:
        """Participant ids sorted by contribution, best first."""
        order = np.argsort(self.totals)[::-1]
        return [self.participant_ids[i] for i in order]

    def aligned_with(self, other: "ContributionReport") -> tuple[np.ndarray, np.ndarray]:
        """Totals of self and other aligned on common participant ids."""
        common = [i for i in self.participant_ids if i in set(other.participant_ids)]
        mine = np.array([self.totals[self.participant_ids.index(i)] for i in common])
        theirs = np.array([other.totals[other.participant_ids.index(i)] for i in common])
        return mine, theirs


def from_per_epoch(
    method: str,
    participant_ids: list[int],
    per_epoch: np.ndarray,
    *,
    ledger: CostLedger | None = None,
    extra: dict | None = None,
) -> ContributionReport:
    """Build a report from a per-epoch matrix (totals = column sums, Eq. 15)."""
    per_epoch = np.asarray(per_epoch, dtype=np.float64)
    return ContributionReport(
        method=method,
        participant_ids=list(participant_ids),
        totals=per_epoch.sum(axis=0),
        per_epoch=per_epoch,
        ledger=ledger or CostLedger(),
        extra=extra or {},
    )
