"""Contribution audit of a federation that keeps dropping out.

Scenario: eight edge devices train a shared classifier, but this is not a
lab — on any round each device has a 20% chance of being offline, the
online ones finish after an exponential straggler delay, and the server
aggregates whatever arrived within an 80 ms round deadline.  One device
also has mislabeled data.  The operator wants to know: do DIG-FL's
contribution scores still identify the bad device when a fifth of the
updates never arrive?

The run uses :mod:`repro.runtime`: the thread-pool executor computes the
round's local updates concurrently, the fault injector replays the same
dropout/straggler pattern for a given seed, and the training log records
a participation mask per round so the estimator only credits updates the
server actually aggregated.

Run:  PYTHONPATH=src python examples/runtime_faulty_federation.py
"""

import numpy as np

from repro.core import estimate_hfl_resource_saving
from repro.data import build_hfl_federation, mnist_like
from repro.hfl import HFLTrainer
from repro.nn import LRSchedule, make_hfl_model
from repro.runtime import FaultPlan, FederatedRuntime, RuntimeConfig

N_PARTIES = 8
EPOCHS = 12


def main() -> None:
    federation = build_hfl_federation(
        mnist_like(2400, seed=3),
        n_parties=N_PARTIES,
        n_mislabeled=1,
        mislabel_fraction=0.5,
        seed=3,
    )

    def model_factory():
        return make_hfl_model("mnist", seed=3)

    trainer = HFLTrainer(model_factory, epochs=EPOCHS, lr_schedule=LRSchedule(0.5))
    runtime = FederatedRuntime(
        RuntimeConfig(
            executor="threads",
            workers=4,
            faults=FaultPlan(dropout_rate=0.2, straggler_ms=25.0, seed=3),
            round_deadline_ms=80.0,
        )
    )
    result = runtime.run_hfl(trainer, federation.locals, federation.validation)

    stats = runtime.event_log.summary()
    print(
        f"ran {stats['rounds']:.0f} rounds in {stats['sim_seconds'] * 1e3:.1f} "
        f"simulated ms: {stats['completed']:.0f}/{stats['dispatched']:.0f} "
        f"dispatched updates arrived, {stats['dropouts']:.0f} dropouts, "
        f"{stats['timeouts']:.0f} deadline misses"
    )

    attendance = result.log.participation_matrix().mean(axis=0)
    report = estimate_hfl_resource_saving(
        result.log, federation.validation, model_factory
    )

    print("\ndevice  quality     attendance  contribution")
    for i in range(N_PARTIES):
        print(
            f"{i:>6}  {federation.qualities[i]:<10}  "
            f"{attendance[i]:>9.0%}  {report.totals[i]:+12.5f}"
        )

    worst = int(np.argmin(report.totals))
    mislabeled = federation.qualities.index("mislabeled")
    verdict = "correctly" if worst == mislabeled else "NOT"
    print(
        f"\nlowest-ranked device is {worst} — the mislabeled device "
        f"({mislabeled}) was {verdict} identified despite "
        f"{1 - attendance.mean():.0%} of updates missing"
    )


if __name__ == "__main__":
    main()
