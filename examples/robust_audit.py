"""Crash-safe contribution audit of a federation with an active attacker.

Scenario: ten participants train a shared classifier, but participant 9
is hostile — it boosts its update by ×500 (a model-replacement attempt)
every round.  The operator runs the audit with the :mod:`repro.robust`
defense/recovery layer on:

* the **screening pass** quarantines the boosted updates before they
  reach the aggregate, records each incident in the quarantine ledger
  and marks the attacker absent in the round's participation mask;
* the **trimmed-mean aggregator** bounds whatever screening misses;
* **checkpointing** persists the training log after every round — and
  halfway through, this demo *kills the run* to prove it, then resumes
  from the checkpoint and finishes with a log that is bit-for-bit the
  one an uninterrupted run produces;
* DIG-FL, reading that log, ranks the attacker last.

Run:  PYTHONPATH=src python examples/robust_audit.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.core import estimate_hfl_resource_saving
from repro.data import build_hfl_federation, mnist_like
from repro.hfl.attacks import AdversarialHFLTrainer, scale
from repro.nn import LRSchedule, make_mlp_classifier
from repro.robust import (
    CheckpointManager,
    QuarantineLedger,
    ScreenConfig,
    UpdateScreener,
    make_aggregator,
)

N_PARTIES = 10
ATTACKER = 9
EPOCHS = 8
SEED = 0


class SimulatedCrash(RuntimeError):
    """Raised to kill the first run mid-training."""


class CrashingCheckpoint(CheckpointManager):
    """Checkpoint manager that pulls the plug after round ``crash_after``."""

    def __init__(self, directory, crash_after):
        super().__init__(directory, kind="hfl")
        self.crash_after = crash_after

    def save(self, log):
        super().save(log)
        if log.n_epochs == self.crash_after:
            raise SimulatedCrash(f"power lost after round {log.n_epochs}")


def model_factory():
    return make_mlp_classifier(100, 10, hidden=(16,), seed=SEED)


def make_trainer():
    return AdversarialHFLTrainer(
        model_factory,
        epochs=EPOCHS,
        lr_schedule=LRSchedule(0.5),
        attacks={ATTACKER: scale(500.0)},  # ×500 boosting attack
    )


def main() -> None:
    federation = build_hfl_federation(
        mnist_like(1500, seed=SEED), n_parties=N_PARTIES, seed=SEED
    )
    screen_config = ScreenConfig(norm_factor=5.0)
    checkpoint_dir = Path(tempfile.mkdtemp(prefix="robust_audit_"))

    print(f"federation: {N_PARTIES} participants, "
          f"participant {ATTACKER} ships x500 boosted updates")
    print(f"defense: screening (norm_factor=5) + trimmed-mean aggregation")
    print(f"checkpoints: {checkpoint_dir}\n")

    # --- first run: killed after round 4 ------------------------------
    crashing = CrashingCheckpoint(checkpoint_dir, crash_after=EPOCHS // 2)
    try:
        make_trainer().train(
            federation.locals,
            federation.validation,
            track_validation=True,
            aggregator=make_aggregator("trimmed", trim_ratio=0.2),
            screener=UpdateScreener(screen_config),
            checkpoint=crashing,
        )
    except SimulatedCrash as crash:
        print(f"CRASH: {crash}")

    saved = CheckpointManager(checkpoint_dir).resume()
    print(f"checkpoint holds {saved.n_epochs} complete rounds "
          f"(validated checksum)\n")

    # --- resume: continue from the checkpoint to the full run ---------
    ledger = QuarantineLedger()
    resumed = make_trainer().train(
        federation.locals,
        federation.validation,
        track_validation=True,
        aggregator=make_aggregator("trimmed", trim_ratio=0.2),
        screener=UpdateScreener(screen_config, ledger),
        checkpoint=CheckpointManager(checkpoint_dir),
        resume=True,
    )
    print(f"resumed and finished: {resumed.log.n_epochs} rounds, "
          f"final val loss {resumed.log.val_loss_curve()[-1]:.4f}")

    # --- prove the resume was lossless --------------------------------
    reference = make_trainer().train(
        federation.locals,
        federation.validation,
        track_validation=True,
        aggregator=make_aggregator("trimmed", trim_ratio=0.2),
        screener=UpdateScreener(screen_config),
    )
    identical = all(
        np.array_equal(a.theta_before, b.theta_before)
        and np.array_equal(a.local_updates, b.local_updates)
        for a, b in zip(reference.log.records, resumed.log.records)
    ) and np.array_equal(reference.final_theta, resumed.final_theta)
    print(f"resumed log bit-for-bit equals an uninterrupted run: {identical}\n")

    # --- the quarantine ledger: who was excluded, when, why -----------
    # (the ledger covers the resumed rounds; the checkpointed rounds'
    # exclusions are already in the log's participation masks)
    matrix = resumed.log.participation_matrix()
    quarantined_rounds = [t + 1 for t in range(EPOCHS) if not matrix[t, ATTACKER]]
    print(f"participation mask: participant {ATTACKER} excluded in rounds "
          f"{quarantined_rounds}")
    for incident in ledger:
        detail = ", ".join(f"{k}={v:.3g}" for k, v in incident.detail.items())
        print(f"  ledger: round {incident.round} party {incident.party} "
              f"rule={incident.rule} ({detail})")

    # --- DIG-FL still ranks the attacker last --------------------------
    report = estimate_hfl_resource_saving(
        resumed.log, federation.validation, model_factory
    )
    ranking = [int(i) for i in np.argsort(report.totals)[::-1]]
    print(f"\nDIG-FL contribution ranking (best first): {ranking}")
    print(f"attacker ranked last: {ranking[-1] == ATTACKER}")


if __name__ == "__main__":
    main()
