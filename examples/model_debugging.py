"""Drilling into a flagged participant: which samples hurt?

Scenario: DIG-FL flags one participant in a 3-member federation.  The
participant (locally, without exporting data) decomposes its own DIG-FL
contribution into per-sample influence scores and discovers that almost all
of its negative contribution comes from a batch of mislabeled records —
the "model debugging / trace back to training data" use case from the
paper's introduction, and the bridge to the authors' companion ICDE'21
work on federated model debugging.

Run:  python examples/model_debugging.py
"""

import numpy as np

from repro.core import (
    estimate_hfl_resource_saving,
    flag_low_quality,
    mislabel_detection_score,
    sample_influences,
)
from repro.data import Dataset, build_hfl_federation, mislabel, mnist_like
from repro.hfl import HFLTrainer
from repro.nn import LRSchedule, make_hfl_model


def main() -> None:
    federation = build_hfl_federation(mnist_like(900, seed=55), 3, seed=55)
    locals_ = list(federation.locals)

    # Corrupt half of party 0's labels; keep the mask as ground truth.
    corrupted_y, truth_mask = mislabel(locals_[0].y, 0.5, 10, seed=56)
    locals_[0] = Dataset(
        name=locals_[0].name, X=locals_[0].X, y=corrupted_y,
        task=locals_[0].task, num_classes=locals_[0].num_classes,
    )

    def factory():
        return make_hfl_model("mnist", seed=55)

    trainer = HFLTrainer(factory, epochs=8, lr_schedule=LRSchedule(0.4))
    result = trainer.train(locals_, federation.validation)

    # Step 1 — server-side: participant-level contributions.
    report = estimate_hfl_resource_saving(result.log, federation.validation, factory)
    print("participant contributions:", np.round(report.totals, 4))
    flagged = flag_low_quality(report, threshold=1.5)
    print("flagged participants:", flagged)

    # Step 2 — participant-side: per-sample drill-down on the flagged one.
    target = flagged[0] if flagged else int(np.argmin(report.totals))
    influence = sample_influences(
        result.log, target, locals_[target], federation.validation, factory
    )
    auc = mislabel_detection_score(influence, truth_mask)
    print(f"\nper-sample influence on participant {target}:")
    print(f"  samples with negative influence: {influence.harmful_mask().sum()}"
          f" / {influence.n_samples}")
    print(f"  mislabel separation AUC: {auc:.3f}")

    worst = influence.worst(15)
    hit_rate = truth_mask[worst].mean()
    print(f"  of the 15 most harmful samples, {hit_rate:.0%} are truly mislabeled")

    # Step 3 — act: drop the flagged samples and retrain.
    keep = ~influence.harmful_mask()
    cleaned = locals_[target].subset(np.flatnonzero(keep))
    repaired_locals = list(locals_)
    repaired_locals[target] = cleaned
    repaired = trainer.train(
        repaired_locals, federation.validation, track_validation=True
    )
    baseline = trainer.train(locals_, federation.validation, track_validation=True)
    print(f"\nvalidation accuracy before cleaning: "
          f"{baseline.log.records[-1].val_accuracy:.3f}")
    print(f"validation accuracy after cleaning:  "
          f"{repaired.log.records[-1].val_accuracy:.3f}")


if __name__ == "__main__":
    main()
