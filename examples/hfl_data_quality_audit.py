"""Data-quality audit for a cross-silo federation.

Scenario: ten clinics jointly train a diagnostic model.  Two clinics have
labelling problems and one has a heavily skewed patient mix.  The server
wants to (a) rank clinics by contribution without seeing their data, and
(b) sanity-check the cheap estimate against the exact Shapley value before
acting on it.

The exact Shapley value needs 2^10 = 1024 federated retrainings — feasible
here only because the example is scaled down; DIG-FL reads the training log
it already has.

Run:  python examples/hfl_data_quality_audit.py
"""

import numpy as np

from repro.core import estimate_hfl_resource_saving
from repro.data import build_hfl_federation, real_like
from repro.hfl import HFLTrainer
from repro.metrics import pearson_correlation, top_k_overlap
from repro.nn import LRSchedule, make_hfl_model
from repro.shapley import HFLRetrainUtility, exact_shapley


def main() -> None:
    federation = build_hfl_federation(
        real_like(3000, seed=1),
        n_parties=10,
        n_mislabeled=2,
        n_noniid=1,
        mislabel_fraction=0.5,
        seed=1,
    )

    def model_factory():
        return make_hfl_model("real", seed=1)

    trainer = HFLTrainer(model_factory, epochs=12, lr_schedule=LRSchedule(0.5))
    result = trainer.train(federation.locals, federation.validation)

    digfl = estimate_hfl_resource_saving(
        result.log, federation.validation, model_factory
    )
    print(f"DIG-FL estimation: {digfl.ledger.compute_seconds:.2f}s")

    utility = HFLRetrainUtility(
        trainer,
        federation.locals,
        federation.validation,
        init_theta=result.log.initial_theta,
    )
    actual = exact_shapley(utility)
    print(
        f"exact Shapley:     {utility.ledger.compute_seconds:.2f}s "
        f"({utility.evaluations} retrainings)"
    )

    print("\nclinic  quality      DIG-FL     exact")
    for i in range(10):
        print(
            f"{i:>6}  {federation.qualities[i]:<11} "
            f"{digfl.totals[i]:+.4f}  {actual.totals[i]:+.4f}"
        )

    pcc = pearson_correlation(digfl.totals, actual.totals)
    overlap = top_k_overlap(digfl.totals, actual.totals, k=5)
    print(f"\nPCC(DIG-FL, exact) = {pcc:.3f}")
    print(f"top-5 clinic overlap = {overlap:.0%}")

    flagged = [
        i for i in range(10) if digfl.totals[i] < 0.8 * np.median(digfl.totals)
    ]
    print(f"clinics flagged for data review: {flagged}")
    print(
        "ground truth low-quality clinics:",
        [i for i, q in enumerate(federation.qualities) if q != "clean"],
    )


if __name__ == "__main__":
    main()
