"""A three-shard cluster that loses a worker and keeps its leaderboards.

One router, three worker processes, each owning a consistent-hash shard
of run ids with its own write-ahead log.  The demo registers VFL runs
across all shards, streams one registration in slow motion, and — while
those epochs are still flowing — SIGKILLs the worker that owns it.  The
router answers queries for the dead shard with a typed 503 (``Retry-After``
included, never a bare 500) while leaderboards on the surviving shards
keep serving.  The supervisor's health probes notice the corpse within a
probe interval, respawn the shard, and the replacement replays its WAL:
the revived leaderboard is bit-for-bit the batch answer over every epoch
the WAL acknowledged.

Run:  PYTHONPATH=src python examples/cluster_leaderboard.py
"""

import json
import os
import signal
import tempfile
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

from repro.experiments.workloads import build_vfl_workload
from repro.io import save_vfl_training_log
from repro.serve import ClusterRouter, ClusterSupervisor

N_SHARDS = 3
N_RUNS = 6
EPOCHS = 20


def _get(port: int, path: str):
    try:
        with urllib.request.urlopen(
            f"http://127.0.0.1:{port}{path}", timeout=30
        ) as response:
            return response.status, json.loads(response.read()), dict(
                response.headers
            )
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read()), dict(exc.headers)


def _register(port: int, log_path: str, run_id: str) -> None:
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}/runs",
        data=json.dumps(
            {"kind": "vfl", "log_path": log_path, "run_id": run_id}
        ).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        urllib.request.urlopen(request, timeout=120).read()
    except (urllib.error.URLError, ConnectionError):
        pass  # the demo kills the owner mid-stream; the tear is the point


def main() -> int:
    workload = build_vfl_workload("boston", n_parties=5, epochs=EPOCHS, seed=0)
    with tempfile.TemporaryDirectory() as scratch:
        log_path = str(Path(scratch) / "vfl_run.npz")
        save_vfl_training_log(workload.result.log, log_path)

        supervisor = ClusterSupervisor(
            N_SHARDS,
            wal_root=Path(scratch) / "wals",
            probe_interval_s=0.2,
            probe_reset_s=1.0,
            chaos_ingest_ms=150.0,  # slow the stream so the kill lands mid-run
        )
        print(f"starting {N_SHARDS} shard workers + router ...")
        with supervisor:
            router = ClusterRouter(("127.0.0.1", 0), supervisor)
            router.serve_background()
            try:
                _demo(router, supervisor, log_path)
            finally:
                router.shutdown()
                router.server_close()
    print("\nclean shutdown: workers SIGTERMed, WALs closed")
    return 0


def _demo(router, supervisor, log_path: str) -> None:
    port = router.port
    # Spread warm runs across every shard (fast path: no chaos on these
    # because they are registered sequentially before the slow stream).
    for index in range(N_RUNS):
        threading.Thread(
            target=_register, args=(port, log_path, f"warm-{index}")
        ).start()
    deadline = time.monotonic() + 120
    while time.monotonic() < deadline:
        status, runs, _ = _get(port, "/runs")
        if status == 200 and len(runs["runs"]) == N_RUNS:
            break
        time.sleep(0.2)
    by_shard = {}
    for run in runs["runs"]:
        by_shard.setdefault(run["shard"], []).append(run["run_id"])
    print(f"{N_RUNS} runs spread across shards: "
          + ", ".join(f"{s}: {sorted(r)}" for s, r in sorted(by_shard.items())))

    # Stream one more registration in slow motion, then kill its owner.
    victim_run = "victim-stream"
    owner = supervisor.ring.shard_for(victim_run)
    wal = os.path.join(supervisor.specs[owner].wal_dir, "serve.wal")

    def wal_lines() -> int:
        try:
            with open(wal, "rb") as fh:
                return sum(1 for _ in fh)
        except FileNotFoundError:
            return 0

    baseline = wal_lines()  # the owner may already hold warm runs
    streamer = threading.Thread(
        target=_register, args=(port, log_path, victim_run), daemon=True
    )
    streamer.start()
    while wal_lines() < baseline + 4:  # register + >=3 acknowledged epochs
        time.sleep(0.05)
    _, info, _ = _get(port, f"/cluster?key={victim_run}")
    pid = info["shards"][str(owner)]["pid"]
    print(f"\nSIGKILL shard {owner} (pid {pid}) mid-ingest of {victim_run!r}")
    os.kill(pid, signal.SIGKILL)

    # The dead shard answers typed 503s; the others stay live.
    status, body, headers = _get(port, f"/runs/{victim_run}/leaderboard")
    print(f"query to dead shard  -> {status} {body.get('error', '')!r} "
          f"(Retry-After: {headers.get('Retry-After')})")
    survivor = next(r for r in runs["runs"] if r["shard"] != str(owner))
    status, board, _ = _get(port, f"/runs/{survivor['run_id']}/leaderboard")
    print(f"query to live shard  -> {status}, leaderboard of "
          f"{survivor['run_id']!r} still serving "
          f"(top: {board['leaderboard'][0]['participant']})")

    streamer.join(timeout=120)
    while True:  # supervisor respawn + WAL replay
        status, health, _ = _get(port, "/healthz")
        if status == 200 and health["status"] == "ok":
            break
        time.sleep(0.2)
    _, info, _ = _get(port, "/cluster")
    shard_info = info["shards"][str(owner)]
    print(f"\nshard {owner} respawned (pid {shard_info['pid']}, "
          f"respawns={shard_info['respawns']}) and replayed its WAL")
    # Immediately after the respawn the breaker may still be half-open
    # (one probe in flight at a time); the typed 503 tells us to retry.
    deadline = time.monotonic() + 60
    while True:
        status, board, _ = _get(port, f"/runs/{victim_run}/leaderboard")
        if status == 200:
            break
        assert status in (503, 504), (status, board)
        assert time.monotonic() < deadline, "shard never came back"
        time.sleep(0.2)
    _, run_list, _ = _get(port, "/runs")
    epochs = next(
        r["epochs"] for r in run_list["runs"] if r["run_id"] == victim_run
    )
    print(f"revived leaderboard  -> {status}, {victim_run!r} at the "
          f"{epochs} WAL-acknowledged epoch(s), top: "
          f"{board['leaderboard'][0]['participant']}")


if __name__ == "__main__":
    raise SystemExit(main())
