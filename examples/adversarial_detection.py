"""Detecting protocol-level adversaries with per-epoch contributions.

Scenario: a 6-member federation where one member runs gradient ascent
(sign-flipped updates) and one free-rides (zero updates).  The server uses
DIG-FL per-epoch contributions to (a) spot both from the very first
epochs, (b) quantify how differently the two misbehave — the attacker's
contribution is strongly *negative*, the free-rider's exactly zero — and
(c) neutralise them with the reweight mechanism, all without ever seeing
local data.

Run:  python examples/adversarial_detection.py
"""

import numpy as np

from repro.core import DIGFLReweighter, estimate_hfl_resource_saving, flag_low_quality
from repro.data import build_hfl_federation, mnist_like
from repro.hfl import AdversarialHFLTrainer, sign_flip, zero_update
from repro.nn import LRSchedule, make_hfl_model

ATTACKER, FREE_RIDER = 1, 4


def main() -> None:
    federation = build_hfl_federation(mnist_like(2400, seed=21), 6, seed=21)

    def factory():
        return make_hfl_model("mnist", seed=21)

    trainer = AdversarialHFLTrainer(
        factory,
        epochs=15,
        lr_schedule=LRSchedule(0.5),
        attacks={ATTACKER: sign_flip(1.0), FREE_RIDER: zero_update()},
    )
    result = trainer.train(
        federation.locals, federation.validation, track_validation=True
    )
    report = estimate_hfl_resource_saving(
        result.log, federation.validation, factory
    )

    roles = {ATTACKER: "sign-flip attacker", FREE_RIDER: "free-rider"}
    print("participant  role                total φ   first-3-epoch φ")
    for i in range(6):
        early = report.per_epoch[:3, i].sum()
        print(
            f"{i:>11}  {roles.get(i, 'honest'):<18} {report.totals[i]:+9.4f}"
            f"   {early:+9.4f}"
        )

    flagged = flag_low_quality(report, threshold=1.5)
    print(f"\nflagged by the robust outlier rule: {flagged}")
    print(f"ground truth misbehaving members:   {sorted(roles)}")

    # Defence: reweight by per-epoch contributions.
    defended = trainer.train(
        federation.locals,
        federation.validation,
        reweighter=DIGFLReweighter(federation.validation),
        track_validation=True,
    )
    acc_attacked = result.log.records[-1].val_accuracy
    acc_defended = defended.log.records[-1].val_accuracy
    print(f"\nvalidation accuracy under attack : {acc_attacked:.3f}")
    print(f"validation accuracy with reweight: {acc_defended:.3f}")

    mean_attacker_weight = float(
        np.mean([rec.weights[ATTACKER] for rec in defended.log.records])
    )
    print(f"attacker's mean aggregation weight after defence: "
          f"{mean_attacker_weight:.4f} (uniform would be {1/6:.3f})")


if __name__ == "__main__":
    main()
