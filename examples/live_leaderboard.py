"""A contribution leaderboard that updates while the federation trains.

Scenario: six hospitals train a shared classifier; one of them has
mislabeled a third of its records, and on any round each hospital has a
25% chance of dropping out.  The consortium operator does not want to
wait for the audit batch job — they want a leaderboard *during* training.

The run wires three subsystems together:

* :mod:`repro.runtime` trains on the fault-injecting engine and hands
  every finished round to a publisher;
* :class:`repro.serve.EvaluationService` feeds each round into a
  streaming DIG-FL estimator (Lemma 3 additivity: one validation
  gradient per round, never a re-read of the history) and answers
  leaderboard / Eq. 17 weight queries from its content-addressed cache;
* the engine's event log records a ``contrib_updated`` event per round,
  so the leaderboard's evolution is replayable after the fact.

At the end, the live-fed estimator is compared bit-for-bit against a
batch re-estimate of the final training log — same numbers, no batch job.

Run:  PYTHONPATH=src python examples/live_leaderboard.py
"""

import numpy as np

from repro.core import estimate_hfl_resource_saving
from repro.data import build_hfl_federation, mnist_like
from repro.hfl import HFLTrainer
from repro.nn import LRSchedule, make_mlp_classifier
from repro.runtime import FaultPlan, FederatedRuntime, RuntimeConfig
from repro.runtime.events import CONTRIB_UPDATED
from repro.serve import EvaluationService

N_PARTIES = 6
EPOCHS = 6


def model_factory():
    return make_mlp_classifier(100, 10, hidden=(16,), seed=5)


def main() -> None:
    federation = build_hfl_federation(
        mnist_like(900, seed=5),
        n_parties=N_PARTIES,
        n_mislabeled=1,
        mislabel_fraction=0.35,
        seed=5,
    )
    bad = federation.qualities.index("mislabeled")
    trainer = HFLTrainer(model_factory, epochs=EPOCHS, lr_schedule=LRSchedule(0.5))
    runtime = FederatedRuntime(
        RuntimeConfig(faults=FaultPlan(dropout_rate=0.25, seed=5))
    )

    with EvaluationService() as service:
        run_id = service.register_hfl(
            range(N_PARTIES), federation.validation, model_factory
        )
        print(f"registered live run {run_id!r}; training with dropouts...\n")
        result = runtime.run_hfl(
            trainer,
            federation.locals,
            federation.validation,
            publisher=service.publisher(run_id),
        )

        # The event log replays how the leaderboard head evolved per round.
        for event in runtime.event_log.of_kind(CONTRIB_UPDATED):
            detail = event.detail
            print(
                f"round {detail['epochs']}: leader is party "
                f"{detail['leader']} ({detail['leader_contribution']:+.5f})"
            )

        board = service.leaderboard(run_id)["leaderboard"]
        print("\nfinal leaderboard (best first)")
        for row in board:
            tag = "  <-- mislabeled" if row["participant"] == bad else ""
            print(
                f"  #{row['rank']} party {row['participant']}: "
                f"{row['contribution']:+.5f}{tag}"
            )
        print(f"mislabeled party ranked last: {board[-1]['participant'] == bad}")

        weights = service.weights(run_id)["weights"]
        print(
            "next-round Eq. 17 weights: "
            + ", ".join(f"{w:.3f}" for w in weights)
        )

        batch = estimate_hfl_resource_saving(
            result.log, federation.validation, model_factory
        )
        live = service.report(run_id)
        print(
            "live totals bit-for-bit equal batch audit: "
            f"{np.array_equal(live.totals, batch.totals)}"
        )
        stats = service.stats()["cache"]
        print(
            f"cache: {stats['hits']} hits / {stats['lookups']} lookups "
            f"({stats['entries']} entries)"
        )


if __name__ == "__main__":
    main()
